// bench_diff — the bench-regression gate.
//
//   $ ./tools/bench_diff --baseline BENCH_chain.json \
//                        --candidate /tmp/BENCH_chain.json \
//                        --metrics speedup,equivalence \
//                        --tolerance 0.5 --tolerance schnorr=0.9 \
//                        --out verdict.json
//
// Compares every shared numeric/boolean metric of two BENCH_*.json
// documents under per-metric relative tolerances (see
// src/obs/bench_diff.h for the direction heuristics), writes a
// machine-readable verdict JSON and exits 0 when clean, 1 on any
// regression or missing metric, 2 on usage/parse errors. Wired into
// scripts/ci_check.sh against the committed baselines.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/bench_diff.h"
#include "obs/json_reader.h"

namespace {

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s --baseline F --candidate F [options]\n"
      "  --baseline F        committed bench JSON (required)\n"
      "  --candidate F       freshly generated bench JSON (required)\n"
      "  --tolerance FRAC    default relative tolerance (default 0.25)\n"
      "  --tolerance P=FRAC  override for metrics whose path contains P\n"
      "                      (repeatable; longest match wins)\n"
      "  --metrics S[,S...]  only check paths containing a listed "
      "substring\n"
      "  --ignore S[,S...]   never check paths containing a listed "
      "substring\n"
      "  --out F             verdict JSON path (default: stdout, - = "
      "stdout)\n"
      "  --quiet             suppress the per-metric summary\n"
      "  --help              this message\n",
      argv0);
}

void SplitCsv(const std::string& csv, std::vector<std::string>* out) {
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out->push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  std::string out_path = "-";
  bool quiet = false;
  bcfl::obs::BenchDiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--baseline") {
      const char* v = next_value("--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
    } else if (arg == "--candidate") {
      const char* v = next_value("--candidate");
      if (v == nullptr) return 2;
      candidate_path = v;
    } else if (arg == "--out") {
      const char* v = next_value("--out");
      if (v == nullptr) return 2;
      out_path = v;
    } else if (arg == "--metrics") {
      const char* v = next_value("--metrics");
      if (v == nullptr) return 2;
      SplitCsv(v, &options.metric_filters);
    } else if (arg == "--ignore") {
      const char* v = next_value("--ignore");
      if (v == nullptr) return 2;
      SplitCsv(v, &options.ignored);
    } else if (arg == "--tolerance") {
      const char* v = next_value("--tolerance");
      if (v == nullptr) return 2;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) {
        options.default_tolerance = std::atof(v);
      } else {
        options.tolerance_overrides[std::string(v, eq - v)] =
            std::atof(eq + 1);
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::fprintf(stderr, "--baseline and --candidate are required\n");
    PrintUsage(argv[0]);
    return 2;
  }

  auto baseline = bcfl::obs::ParseJsonFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 2;
  }
  auto candidate = bcfl::obs::ParseJsonFile(candidate_path);
  if (!candidate.ok()) {
    std::fprintf(stderr, "%s\n", candidate.status().ToString().c_str());
    return 2;
  }

  const bcfl::obs::BenchDiffResult result =
      bcfl::obs::DiffBench(*baseline, *candidate, options);

  if (!quiet) {
    for (const auto& verdict : result.verdicts) {
      if (verdict.status == "ok" || verdict.status == "info") continue;
      std::fprintf(stderr, "%-16s %s: baseline %.6g, candidate %.6g\n",
                   verdict.status.c_str(), verdict.path.c_str(),
                   verdict.baseline, verdict.candidate);
    }
    std::fprintf(stderr,
                 "bench_diff: %zu checked, %zu regression(s), %zu "
                 "missing -> %s\n",
                 result.checked, result.regressions, result.missing,
                 result.ok ? "OK" : "FAIL");
  }

  const std::string verdict_json =
      result.ToJson(baseline_path, candidate_path);
  if (out_path == "-") {
    std::printf("%s\n", verdict_json.c_str());
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(verdict_json.data(), 1, verdict_json.size(), f) !=
            verdict_json.size()) {
      std::fprintf(stderr, "cannot write verdict to %s\n", out_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 2;
    }
    std::fputc('\n', f);
    std::fclose(f);
  }
  return result.ok ? 0 : 1;
}
