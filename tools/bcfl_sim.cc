// bcfl_sim — command-line driver for the full BCFL protocol.
//
//   $ ./tools/bcfl_sim --owners 9 --miners 5 --rounds 10 --groups 3 \
//                      --sigma 1.0 --reward 1000000 --byzantine 1
//
// Runs setup, R on-chain training rounds with masked updates, GroupSV
// contribution evaluation and (optionally) reward distribution, then
// prints a session report. `--byzantine K` makes the first K miners
// fraudulent leaders (SV inflation) to demonstrate rejection.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/adversary.h"
#include "common/logging.h"
#include "core/coordinator.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

struct CliOptions {
  bcfl::core::BcflConfig config;
  size_t byzantine = 0;
  bool verbose = false;
  std::string metrics_out = "metrics.json";
  std::string trace_out = "trace.json";
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --owners N      data owners (default 9)\n"
      "  --miners N      blockchain miners (default 5)\n"
      "  --rounds N      FL rounds R (default 10)\n"
      "  --groups M      GroupSV group count m (default 3)\n"
      "  --sigma S       data-quality gradient (default 1.0)\n"
      "  --instances N   dataset size (default 5620)\n"
      "  --seed N        master seed (default 42)\n"
      "  --reward N      reward pool to distribute on chain (default 0)\n"
      "  --byzantine K   make the first K miners fraudulent leaders\n"
      "  --metrics-out F metrics JSON path (default metrics.json, - skips)\n"
      "  --trace-out F   Chrome trace JSON path (default trace.json, - "
      "skips)\n"
      "  --verbose       INFO-level protocol logging\n"
      "  --help          this message\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help") {
      PrintUsage(argv[0]);
      std::exit(0);
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else if (arg == "--owners") {
      const char* v = next_value("--owners");
      if (v == nullptr) return false;
      options->config.num_owners = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--miners") {
      const char* v = next_value("--miners");
      if (v == nullptr) return false;
      options->config.num_miners = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--rounds") {
      const char* v = next_value("--rounds");
      if (v == nullptr) return false;
      options->config.rounds = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--groups") {
      const char* v = next_value("--groups");
      if (v == nullptr) return false;
      options->config.num_groups = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--sigma") {
      const char* v = next_value("--sigma");
      if (v == nullptr) return false;
      options->config.sigma = std::atof(v);
    } else if (arg == "--instances") {
      const char* v = next_value("--instances");
      if (v == nullptr) return false;
      options->config.digits.num_instances =
          static_cast<size_t>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = next_value("--seed");
      if (v == nullptr) return false;
      options->config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--reward") {
      const char* v = next_value("--reward");
      if (v == nullptr) return false;
      options->config.reward_pool = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--byzantine") {
      const char* v = next_value("--byzantine");
      if (v == nullptr) return false;
      options->byzantine = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--metrics-out") {
      const char* v = next_value("--metrics-out");
      if (v == nullptr) return false;
      options->metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next_value("--trace-out");
      if (v == nullptr) return false;
      options->trace_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  options.config.local.epochs = 5;
  options.config.local.learning_rate = 0.05;
  if (!ParseArgs(argc, argv, &options)) return 2;
  if (options.verbose) {
    bcfl::Logger::Global().set_min_level(bcfl::LogLevel::kInfo);
  }

  std::printf("BCFL session: %u owners, %zu miners, R=%u rounds, m=%u "
              "groups, sigma=%.2f\n",
              options.config.num_owners, options.config.num_miners,
              options.config.rounds, options.config.num_groups,
              options.config.sigma);

  auto coordinator = bcfl::core::BcflCoordinator::Create(options.config);
  if (!coordinator.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  // Spans recorded from here on also carry simulated network time.
  bcfl::obs::Tracer::Global().AttachSimClock(
      &(*coordinator)->engine().network().clock());
  for (size_t m = 0; m < options.byzantine; ++m) {
    auto st = (*coordinator)
                  ->InstallMinerBehavior(
                      m, bcfl::core::MakeSvInflationBehavior(
                             options.config.num_owners - 1, 1000.0));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  auto result = (*coordinator)->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nchain: %zu blocks committed, %zu transactions\n",
              result->blocks_committed, result->total_transactions);
  std::printf("network: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(
                  (*coordinator)->engine().network().stats().messages_sent),
              static_cast<unsigned long long>(
                  (*coordinator)->engine().network().stats().bytes_sent));
  std::printf("\naccuracy per round:");
  for (double acc : result->round_accuracies) std::printf(" %.3f", acc);
  std::printf("\n\n%-8s %-14s %-14s", "owner", "noise sigma", "total SV");
  if (!result->rewards.empty()) std::printf(" %-12s", "reward");
  std::printf("\n");
  for (size_t i = 0; i < result->total_sv.size(); ++i) {
    std::printf("%-8zu %-14.2f %+-14.4f",
                i, options.config.sigma * static_cast<double>(i),
                result->total_sv[i]);
    if (!result->rewards.empty()) {
      std::printf(" %-12llu",
                  static_cast<unsigned long long>(result->rewards[i]));
    }
    std::printf("\n");
  }
  if (options.byzantine > 0) {
    std::printf("\n%zu fraudulent miner(s) were active; honest-majority "
                "re-execution kept the results truthful.\n",
                options.byzantine);
  }

  bcfl::obs::ExportPaths paths;
  paths.metrics_json = options.metrics_out == "-" ? "" : options.metrics_out;
  paths.trace_json = options.trace_out == "-" ? "" : options.trace_out;
  bcfl::Status exported = bcfl::obs::ExportGlobal(paths);
  if (!exported.ok()) {
    std::fprintf(stderr, "export failed: %s\n",
                 exported.ToString().c_str());
    return 1;
  }
  if (!paths.metrics_json.empty() || !paths.trace_json.empty()) {
    std::printf("\nobservability:");
    if (!paths.metrics_json.empty()) {
      std::printf(" metrics -> %s", paths.metrics_json.c_str());
    }
    if (!paths.trace_json.empty()) {
      std::printf("  trace -> %s (chrome://tracing)",
                  paths.trace_json.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
