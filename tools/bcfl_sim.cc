// bcfl_sim — command-line driver for the full BCFL protocol.
//
//   $ ./tools/bcfl_sim --owners 9 --miners 5 --rounds 10 --groups 3 \
//                      --sigma 1.0 --reward 1000000 --byzantine 1
//
// Runs setup, R on-chain training rounds with masked updates, GroupSV
// contribution evaluation and (optionally) reward distribution, then
// prints a session report. `--byzantine K` makes the first K miners
// fraudulent leaders (SV inflation) to demonstrate rejection.
//
// Chaos testing: `--fault-plan SPEC` injects a hand-written fault DSL
// document (see src/fault/fault_plan.h for the grammar), `--fault-seed N`
// generates a random plan within the protocol's safety envelope, and
// `--chaos-sweep N` runs N consecutive random-plan sessions (seeds
// fault-seed .. fault-seed+N-1), exiting non-zero if any fails to
// converge. The executed fault schedule is exported into metrics.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "core/adversary.h"
#include "common/logging.h"
#include "core/coordinator.h"
#include "crypto/sha256.h"
#include "fault/fault_plan.h"
#include "obs/exporter.h"
#include "obs/http_exporter.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/round_ledger.h"
#include "obs/trace.h"

namespace {

struct CliOptions {
  bcfl::core::BcflConfig config;
  size_t byzantine = 0;
  bool verbose = false;
  std::string metrics_out = "metrics.json";
  std::string trace_out = "trace.json";
  std::string fault_plan_spec;
  uint64_t fault_seed = 0;
  bool have_fault_seed = false;
  size_t chaos_sweep = 0;
  double chaos_byzantine_rate = 0.0;
  int metrics_port = -1;  ///< -1 = no HTTP endpoint; 0 = ephemeral port.
  std::string ledger_out;
  bool obs_off = false;
  std::string state_dir;
  uint64_t checkpoint_every = 1;
  bool resume = false;
  bool ignore_kill_faults = false;
};

/// Exit code of a process death staged by a `kill` fault — distinct from
/// failure (1) and usage (2) so the restart supervisor in ci_check.sh can
/// tell "killed as planned" from "actually broke".
constexpr int kKilledExitCode = 77;

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --owners N      data owners (default 9)\n"
      "  --miners N      blockchain miners (default 5)\n"
      "  --rounds N      FL rounds R (default 10)\n"
      "  --groups M      GroupSV group count m (default 3)\n"
      "  --sigma S       data-quality gradient (default 1.0)\n"
      "  --instances N   dataset size (default 5620)\n"
      "  --seed N        master seed (default 42)\n"
      "  --reward N      reward pool to distribute on chain (default 0)\n"
      "  --byzantine K   make the first K miners fraudulent leaders\n"
      "  --round-engine M serial|parallel round execution (default parallel;\n"
      "                  bit-identical results either way, see DESIGN.md §13;\n"
      "                  BCFL_ROUND_REFERENCE=1 also forces serial)\n"
      "  --pool-threads N round-engine worker threads (default: hardware)\n"
      "  --fault-plan S  chaos DSL document (e.g. 'crash owner 2 @1')\n"
      "  --fault-seed N  random fault plan within the safety envelope\n"
      "  --chaos-sweep N run N random-plan sessions; non-zero exit on any\n"
      "                  failed/hung round\n"
      "  --chaos-byzantine R  per-owner byzantine-event probability for\n"
      "                  random plans (bad-share / equivocate / poison /\n"
      "                  inconsistent-mask; default 0 = crash-only)\n"
      "  --norm-bound F  L2 bound on decoded aggregates; >0 arms the\n"
      "                  poisoning gate + norm audit (default 0 = off)\n"
      "  --metrics-out F metrics JSON path (default metrics.json, - skips)\n"
      "  --trace-out F   Chrome trace JSON path (default trace.json, - "
      "skips)\n"
      "  --metrics-port P serve Prometheus text on http://127.0.0.1:P/metrics\n"
      "                  while the session runs (0 picks an ephemeral port)\n"
      "  --ledger-out F  per-round protocol ledger JSONL path\n"
      "  --state-dir D   durable session state (append-only block log +\n"
      "                  crash-consistent checkpoints) in directory D\n"
      "  --checkpoint-every N  rounds between checkpoints (default 1)\n"
      "  --resume        continue a killed session from --state-dir\n"
      "                  (bit-identical to the uninterrupted run)\n"
      "  --ignore-kill-faults  disarm `kill` events in the fault plan (the\n"
      "                  uninterrupted baseline of the crash-restart check)\n"
      "  --obs MODE      on|off: off disables metrics + tracing for this\n"
      "                  process (same as BCFL_OBS=off)\n"
      "  --verbose       INFO-level protocol logging\n"
      "  --help          this message\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help") {
      PrintUsage(argv[0]);
      std::exit(0);
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else if (arg == "--owners") {
      const char* v = next_value("--owners");
      if (v == nullptr) return false;
      options->config.num_owners = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--miners") {
      const char* v = next_value("--miners");
      if (v == nullptr) return false;
      options->config.num_miners = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--rounds") {
      const char* v = next_value("--rounds");
      if (v == nullptr) return false;
      options->config.rounds = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--groups") {
      const char* v = next_value("--groups");
      if (v == nullptr) return false;
      options->config.num_groups = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--sigma") {
      const char* v = next_value("--sigma");
      if (v == nullptr) return false;
      options->config.sigma = std::atof(v);
    } else if (arg == "--instances") {
      const char* v = next_value("--instances");
      if (v == nullptr) return false;
      options->config.digits.num_instances =
          static_cast<size_t>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = next_value("--seed");
      if (v == nullptr) return false;
      options->config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--reward") {
      const char* v = next_value("--reward");
      if (v == nullptr) return false;
      options->config.reward_pool = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--byzantine") {
      const char* v = next_value("--byzantine");
      if (v == nullptr) return false;
      options->byzantine = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--round-engine") {
      const char* v = next_value("--round-engine");
      if (v == nullptr) return false;
      std::string mode = v;
      if (mode == "serial") {
        options->config.round_engine = bcfl::core::RoundEngineMode::kSerial;
      } else if (mode == "parallel") {
        options->config.round_engine = bcfl::core::RoundEngineMode::kParallel;
      } else {
        std::fprintf(stderr, "--round-engine takes serial|parallel, got '%s'\n",
                     mode.c_str());
        return false;
      }
    } else if (arg == "--pool-threads") {
      const char* v = next_value("--pool-threads");
      if (v == nullptr) return false;
      options->config.pool_threads = static_cast<size_t>(std::atol(v));
    } else if (arg == "--fault-plan") {
      const char* v = next_value("--fault-plan");
      if (v == nullptr) return false;
      options->fault_plan_spec = v;
    } else if (arg == "--fault-seed") {
      const char* v = next_value("--fault-seed");
      if (v == nullptr) return false;
      options->fault_seed = static_cast<uint64_t>(std::atoll(v));
      options->have_fault_seed = true;
    } else if (arg == "--chaos-sweep") {
      const char* v = next_value("--chaos-sweep");
      if (v == nullptr) return false;
      options->chaos_sweep = static_cast<size_t>(std::atol(v));
    } else if (arg == "--chaos-byzantine") {
      const char* v = next_value("--chaos-byzantine");
      if (v == nullptr) return false;
      options->chaos_byzantine_rate = std::atof(v);
      if (options->chaos_byzantine_rate < 0.0 ||
          options->chaos_byzantine_rate > 1.0) {
        std::fprintf(stderr, "--chaos-byzantine must be in [0, 1]\n");
        return false;
      }
    } else if (arg == "--norm-bound") {
      const char* v = next_value("--norm-bound");
      if (v == nullptr) return false;
      options->config.update_norm_bound = std::atof(v);
    } else if (arg == "--metrics-port") {
      const char* v = next_value("--metrics-port");
      if (v == nullptr) return false;
      int port = std::atoi(v);
      if (port < 0 || port > 65535) {
        std::fprintf(stderr, "--metrics-port must be in [0, 65535]\n");
        return false;
      }
      options->metrics_port = port;
    } else if (arg == "--ledger-out") {
      const char* v = next_value("--ledger-out");
      if (v == nullptr) return false;
      options->ledger_out = v;
    } else if (arg == "--state-dir") {
      const char* v = next_value("--state-dir");
      if (v == nullptr) return false;
      options->state_dir = v;
    } else if (arg == "--checkpoint-every") {
      const char* v = next_value("--checkpoint-every");
      if (v == nullptr) return false;
      options->checkpoint_every = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--resume") {
      options->resume = true;
    } else if (arg == "--ignore-kill-faults") {
      options->ignore_kill_faults = true;
    } else if (arg == "--obs" || arg.rfind("--obs=", 0) == 0) {
      std::string mode;
      if (arg == "--obs") {
        const char* v = next_value("--obs");
        if (v == nullptr) return false;
        mode = v;
      } else {
        mode = arg.substr(std::strlen("--obs="));
      }
      if (mode == "off" || mode == "0") {
        options->obs_off = true;
      } else if (mode == "on" || mode == "1") {
        options->obs_off = false;
      } else {
        std::fprintf(stderr, "--obs takes on|off, got '%s'\n", mode.c_str());
        return false;
      }
    } else if (arg == "--metrics-out") {
      const char* v = next_value("--metrics-out");
      if (v == nullptr) return false;
      options->metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next_value("--trace-out");
      if (v == nullptr) return false;
      options->trace_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
  }
  return true;
}

bcfl::fault::FaultPlanOptions PlanOptionsFor(const CliOptions& options) {
  const bcfl::core::BcflConfig& config = options.config;
  bcfl::fault::FaultPlanOptions plan_options;
  plan_options.num_owners = config.num_owners;
  plan_options.num_miners = static_cast<uint32_t>(config.num_miners);
  plan_options.rounds = config.rounds;
  plan_options.shamir_threshold = config.secure_agg_threshold;
  plan_options.byzantine_rate = options.chaos_byzantine_rate;
  return plan_options;
}

/// Random-plan convergence sweep: every seed must complete all rounds.
/// Returns the number of failed seeds. When a ledger is attached, every
/// session appends its per-round records to the same JSONL stream.
size_t RunChaosSweep(const CliOptions& options,
                     bcfl::obs::RoundLedger* ledger) {
  size_t failures = 0;
  for (size_t k = 0; k < options.chaos_sweep; ++k) {
    uint64_t seed = options.fault_seed + k;
    bcfl::core::BcflConfig config = options.config;
    config.fault_plan =
        bcfl::fault::FaultPlan::Random(seed, PlanOptionsFor(options));
    auto coordinator = bcfl::core::BcflCoordinator::Create(config);
    if (!coordinator.ok()) {
      std::printf("chaos seed %llu: SETUP FAILED: %s\n",
                  static_cast<unsigned long long>(seed),
                  coordinator.status().ToString().c_str());
      ++failures;
      continue;
    }
    (*coordinator)->set_round_ledger(ledger);
    auto result = (*coordinator)->Run();
    if (!result.ok()) {
      std::printf("chaos seed %llu: FAILED: %s\n",
                  static_cast<unsigned long long>(seed),
                  result.status().ToString().c_str());
      std::printf("  plan:\n%s\n", config.fault_plan.ToString().c_str());
      ++failures;
      continue;
    }
    if (result->round_accuracies.size() != config.rounds) {
      std::printf("chaos seed %llu: HUNG after %zu/%u rounds\n",
                  static_cast<unsigned long long>(seed),
                  result->round_accuracies.size(), config.rounds);
      ++failures;
      continue;
    }
    std::printf("chaos seed %llu: ok (%zu fault events, %zu owners retired, "
                "%zu slashed, %zu blocks)\n",
                static_cast<unsigned long long>(seed),
                config.fault_plan.events.size(), result->retired_at.size(),
                result->slashed_at.size(), result->blocks_committed);
  }
  std::printf("\nchaos sweep: %zu/%zu seeds converged\n",
              options.chaos_sweep - failures, options.chaos_sweep);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  options.config.local.epochs = 5;
  options.config.local.learning_rate = 0.05;
  if (!ParseArgs(argc, argv, &options)) return 2;
  if (options.verbose) {
    bcfl::Logger::Global().set_min_level(bcfl::LogLevel::kInfo);
  }
  if (options.obs_off) {
    bcfl::obs::MetricsRegistry::set_enabled(false);
    bcfl::obs::Tracer::Global().set_enabled(false);
  }

  // Live sinks first, so a scrape or a tail works from round 0 on.
  bcfl::obs::HttpExporter http_exporter;
  if (options.metrics_port >= 0) {
    bcfl::Status started =
        http_exporter.Start(static_cast<uint16_t>(options.metrics_port));
    if (!started.ok()) {
      std::fprintf(stderr, "--metrics-port: %s\n",
                   started.ToString().c_str());
      return 2;
    }
  }
  if (options.resume && options.state_dir.empty()) {
    std::fprintf(stderr, "--resume needs --state-dir\n");
    return 2;
  }
  bcfl::obs::RoundLedger ledger;
  // On --resume the ledger reopens *after* the checkpoint is restored
  // (below), keeping exactly the records the checkpoint covers.
  if (!options.ledger_out.empty() && !options.resume) {
    bcfl::Status opened = ledger.Open(options.ledger_out);
    if (!opened.ok()) {
      std::fprintf(stderr, "--ledger-out: %s\n", opened.ToString().c_str());
      return 2;
    }
  }
  bcfl::obs::RoundLedger* ledger_ptr = ledger.is_open() ? &ledger : nullptr;

  std::printf("obs sinks: %s", options.obs_off ? "off" : "on");
  if (!options.obs_off) {
    if (options.metrics_out != "-") {
      std::printf("  metrics -> %s", options.metrics_out.c_str());
    }
    if (options.trace_out != "-") {
      std::printf("  trace -> %s", options.trace_out.c_str());
    }
  }
  if (http_exporter.running()) {
    std::printf("  http -> http://127.0.0.1:%u/metrics", http_exporter.port());
  }
  if (ledger.is_open()) {
    std::printf("  ledger -> %s", ledger.path().c_str());
  }
  std::printf("\n");

  if (options.chaos_sweep > 0) {
    std::printf("chaos sweep: %zu seeds starting at %llu (%u owners, %zu "
                "miners, R=%u)\n",
                options.chaos_sweep,
                static_cast<unsigned long long>(options.fault_seed),
                options.config.num_owners, options.config.num_miners,
                options.config.rounds);
    return RunChaosSweep(options, ledger_ptr) == 0 ? 0 : 1;
  }

  if (!options.fault_plan_spec.empty()) {
    auto plan = bcfl::fault::FaultPlan::Parse(options.fault_plan_spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --fault-plan: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    options.config.fault_plan = *plan;
  } else if (options.have_fault_seed) {
    options.config.fault_plan = bcfl::fault::FaultPlan::Random(
        options.fault_seed, PlanOptionsFor(options));
  }
  if (!options.config.fault_plan.empty()) {
    std::printf("fault plan (%zu events):\n%s\n",
                options.config.fault_plan.events.size(),
                options.config.fault_plan.ToString().c_str());
  }

  std::printf("BCFL session: %u owners, %zu miners, R=%u rounds, m=%u "
              "groups, sigma=%.2f\n",
              options.config.num_owners, options.config.num_miners,
              options.config.rounds, options.config.num_groups,
              options.config.sigma);

  auto coordinator = bcfl::core::BcflCoordinator::Create(options.config);
  if (!coordinator.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  std::printf("round engine: %s (%zu pool threads)\n",
              bcfl::core::RoundEngineModeName(
                  (*coordinator)->round_engine_mode()),
              (*coordinator)->pool_threads_in_use());
  // Spans recorded from here on also carry simulated network time.
  bcfl::obs::Tracer::Global().AttachSimClock(
      &(*coordinator)->engine().network().clock());

  // Durable session state (PR 10): block log + checkpoints + kill
  // journal. A `kill` fault then exits with kKilledExitCode after the
  // journal entry is on disk; `--resume` picks the session back up.
  if (!options.state_dir.empty()) {
    bcfl::core::PersistenceOptions persist;
    persist.state_dir = options.state_dir;
    persist.checkpoint_every = options.checkpoint_every;
    persist.resume = options.resume;
    bcfl::Status attached = (*coordinator)->AttachPersistence(persist);
    if (!attached.ok()) {
      std::fprintf(stderr, "--state-dir: %s\n", attached.ToString().c_str());
      return 1;
    }
    (*coordinator)->set_kill_handler([](uint64_t round) {
      std::printf("fault plan killed the coordinator at round %llu; "
                  "resume with --resume --state-dir\n",
                  static_cast<unsigned long long>(round));
      std::fflush(stdout);
      std::_Exit(kKilledExitCode);
    });
    if (options.resume) {
      std::printf("resumed session: %llu completed rounds restored from the "
                  "state dir; continuing at round %llu\n",
                  static_cast<unsigned long long>(
                      (*coordinator)->start_round()),
                  static_cast<unsigned long long>(
                      (*coordinator)->start_round()));
      if (!options.ledger_out.empty()) {
        bcfl::Status reopened = ledger.OpenForResume(
            options.ledger_out,
            static_cast<size_t>((*coordinator)->start_round()),
            &(*coordinator)->restored_sv_history());
        if (!reopened.ok()) {
          std::fprintf(stderr, "--ledger-out: %s\n",
                       reopened.ToString().c_str());
          return 1;
        }
        std::printf("  ledger -> %s (kept %zu records)\n",
                    ledger.path().c_str(), ledger.rounds_written());
        ledger_ptr = &ledger;
      }
    }
  }
  if (options.ignore_kill_faults) {
    if (auto* injector = (*coordinator)->fault_injector();
        injector != nullptr) {
      injector->DisarmAllKills();
    }
  }
  (*coordinator)->set_round_ledger(ledger_ptr);
  for (size_t m = 0; m < options.byzantine; ++m) {
    auto st = (*coordinator)
                  ->InstallMinerBehavior(
                      m, bcfl::core::MakeSvInflationBehavior(
                             options.config.num_owners - 1, 1000.0));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  auto result = (*coordinator)->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nchain: %zu blocks committed, %zu transactions\n",
              result->blocks_committed, result->total_transactions);
  std::printf("network: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(
                  (*coordinator)->engine().network().stats().messages_sent),
              static_cast<unsigned long long>(
                  (*coordinator)->engine().network().stats().bytes_sent));
  std::printf("\naccuracy per round:");
  for (double acc : result->round_accuracies) std::printf(" %.3f", acc);
  std::printf("\n\n%-8s %-14s %-14s", "owner", "noise sigma", "total SV");
  if (!result->rewards.empty()) std::printf(" %-12s", "reward");
  std::printf("\n");
  for (size_t i = 0; i < result->total_sv.size(); ++i) {
    std::printf("%-8zu %-14.2f %+-14.4f",
                i, options.config.sigma * static_cast<double>(i),
                result->total_sv[i]);
    if (!result->rewards.empty()) {
      std::printf(" %-12llu",
                  static_cast<unsigned long long>(result->rewards[i]));
    }
    std::printf("\n");
  }
  if (options.byzantine > 0) {
    std::printf("\n%zu fraudulent miner(s) were active; honest-majority "
                "re-execution kept the results truthful.\n",
                options.byzantine);
  }
  if (!result->retired_at.empty()) {
    std::printf("\ndropouts recovered on chain (SV frozen at retirement):");
    for (const auto& [owner, round] : result->retired_at) {
      std::printf(" owner %u @round %llu;", owner,
                  static_cast<unsigned long long>(round));
    }
    std::printf("\n");
  }
  if (!result->slashed_at.empty()) {
    std::printf("\nslashed on chain (evidence verified by every miner):");
    for (const auto& [owner, round] : result->slashed_at) {
      std::printf(" owner %u @round %llu;", owner,
                  static_cast<unsigned long long>(round));
    }
    std::printf("\n%zu accusation tx(s); %llu reward unit(s) burned.\n",
                result->slash_transactions,
                static_cast<unsigned long long>(result->reward_burned));
  }

  bcfl::obs::ExportPaths paths;
  paths.metrics_json = options.metrics_out == "-" ? "" : options.metrics_out;
  paths.trace_json = options.trace_out == "-" ? "" : options.trace_out;
  // The active round-execution path, next to CryptoActivePath()-style
  // reporting: which engine actually ran (config + BCFL_ROUND_REFERENCE)
  // and how wide its pool was.
  paths.metrics_extra["round_engine"] =
      std::string("\"") +
      bcfl::core::RoundEngineModeName((*coordinator)->round_engine_mode()) +
      "\"";
  paths.metrics_extra["round_engine_pool_threads"] =
      std::to_string((*coordinator)->pool_threads_in_use());
  if (auto* injector = (*coordinator)->fault_injector(); injector != nullptr) {
    // The *executed* schedule (what actually fired, including view
    // changes and recoveries) plus the input plan, for triage.
    paths.metrics_extra["fault_schedule"] = injector->ExecutedScheduleJson();
    bcfl::obs::JsonWriter plan_json;
    plan_json.BeginArray();
    for (const auto& event : injector->plan().events) {
      plan_json.Element(event.ToString().c_str());
    }
    plan_json.EndArray();
    paths.metrics_extra["fault_plan"] = plan_json.str();
  }
  // Slashing outcome (PR 9): how many accusations were filed, who was
  // convicted (owner -> round) and the burned reward, for triage next to
  // the fault schedule.
  paths.metrics_extra["slash_transactions"] =
      std::to_string(result->slash_transactions);
  paths.metrics_extra["reward_burned"] = std::to_string(result->reward_burned);
  {
    bcfl::obs::JsonWriter slashed_json;
    slashed_json.BeginObject();
    for (const auto& [owner, round] : result->slashed_at) {
      slashed_json.Field(std::to_string(owner).c_str(),
                         static_cast<size_t>(round));
    }
    slashed_json.EndObject();
    paths.metrics_extra["slashed_at"] = slashed_json.str();
  }
  // Deterministic end-of-session fingerprint: everything here is a pure
  // function of the protocol run (no wall clock, no process-local counter
  // baselines), so the crash-restart CI stage diffs this object between a
  // killed+resumed session and the uninterrupted baseline byte for byte.
  {
    const bcfl::chain::Blockchain& chain =
        (*coordinator)->engine().CanonicalChain();
    bcfl::ByteWriter sv_bits;
    for (double v : result->total_sv) sv_bits.WriteDouble(v);
    for (const auto& round_sv : result->per_round_sv) {
      for (double v : round_sv) sv_bits.WriteDouble(v);
    }
    bcfl::ByteWriter weight_bits;
    result->global_weights.Serialize(&weight_bits);
    bcfl::ByteWriter accuracy_bits;
    for (double acc : result->round_accuracies) {
      accuracy_bits.WriteDouble(acc);
    }
    bcfl::obs::JsonWriter summary;
    summary.BeginObject();
    summary.Field("chain_tip_height", static_cast<size_t>(chain.Height()));
    summary.Field("chain_tip_hash",
                  bcfl::crypto::DigestToHex(chain.Tip().header.Hash()));
    summary.Field("blocks_committed", result->blocks_committed);
    summary.Field("transactions", result->total_transactions);
    summary.Field("recover_transactions", result->recover_transactions);
    summary.Field("submission_retries", result->submission_retries);
    summary.Field("slash_transactions", result->slash_transactions);
    summary.Field("sv_digest", bcfl::crypto::DigestToHex(
                                   bcfl::crypto::Sha256::Hash(
                                       sv_bits.buffer())));
    summary.Field("weights_digest", bcfl::crypto::DigestToHex(
                                        bcfl::crypto::Sha256::Hash(
                                            weight_bits.buffer())));
    summary.Field("accuracy_digest", bcfl::crypto::DigestToHex(
                                         bcfl::crypto::Sha256::Hash(
                                             accuracy_bits.buffer())));
    summary.EndObject();
    paths.metrics_extra["session_summary"] = summary.str();
  }
  bcfl::Status exported = bcfl::obs::ExportGlobal(paths);
  if (!exported.ok()) {
    std::fprintf(stderr, "export failed: %s\n",
                 exported.ToString().c_str());
    return 1;
  }
  if (!paths.metrics_json.empty() || !paths.trace_json.empty()) {
    std::printf("\nobservability:");
    if (!paths.metrics_json.empty()) {
      std::printf(" metrics -> %s", paths.metrics_json.c_str());
    }
    if (!paths.trace_json.empty()) {
      std::printf("  trace -> %s (chrome://tracing)",
                  paths.trace_json.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
