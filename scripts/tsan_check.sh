#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and runs
# the thread-pool, coalition-engine, kernel, secure-aggregation, native-SV
# and observability suites. These are the places real data races could
# hide: the chunked ParallelFor, the row-partitioned parallel GEMM, the
# per-peer parallel mask expansion, the engine's parallel utility scoring
# + sharded CachingUtility, parallel coalition retraining, and the
# sharded metrics / thread-local span machinery in src/obs.
# bench_kernels --quick also runs: it exercises every optimized kernel
# against the reference path with a pool attached, under TSan.
# test_fault and a reduced test_chaos sweep run the full faulted
# protocol (fault injection, recovery, view changes) under TSan too.
# Since the chain-throughput-engine PR the sweep also covers the sharded
# signature-verify cache, the pooled Merkle/mempool builds (test_sig_cache,
# test_merkle) and bench_chain_throughput --quick, whose pre-verification
# fan-out and chain pool run hot under TSan.
# Since the telemetry-plane PR it also covers the HTTP exporter (scrape
# threads racing a live coordinator round) and the round ledger's
# coordinator wiring, plus the snapshot-vs-Reset stress in test_metrics.
# Since the parallel-round-engine PR it also covers the owner fan-out
# (test_round_engine: concurrent train/mask/payload against the
# allocation-free ParallelFor), the batched Shamir recovery under a pool
# (test_shamir, test_dropout_recovery) and bench_e2e_rounds --quick,
# whose serial-vs-parallel sessions run the whole protocol both ways.
# Since the byzantine-hardening PR it also covers the Feldman share
# verification (test_vss, batched ModPow under a pool) and the full
# accusation/slashing path on both round engines (test_byzantine), where
# slash transactions race the parallel owner fan-out.
# Since the durable-persistence PR it also covers kill/restart recovery
# (test_resume, reduced to the parallel-engine cases): the block-log
# commit sink and checkpoint writes interleave with the hot owner
# fan-out, and the resumed session must still be bit-identical.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBCFL_SANITIZE=thread \
  -DBCFL_BUILD_BENCHMARKS=ON \
  -DBCFL_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_thread_pool test_coalition_engine test_utility \
  test_kernels test_secureagg test_native_sv \
  test_metrics test_tracer test_http_exporter test_round_ledger \
  test_fault test_chaos \
  test_round_engine test_shamir test_vss test_dropout_recovery \
  test_byzantine test_sig_cache test_merkle test_resume bench_kernels \
  bench_chain_throughput bench_e2e_rounds

# halt_on_error: fail the script on the first race instead of limping on.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

"$BUILD_DIR/tests/test_thread_pool"
"$BUILD_DIR/tests/test_coalition_engine"
"$BUILD_DIR/tests/test_utility"
"$BUILD_DIR/tests/test_kernels"
"$BUILD_DIR/tests/test_secureagg"
"$BUILD_DIR/tests/test_native_sv"
"$BUILD_DIR/tests/test_metrics"
"$BUILD_DIR/tests/test_tracer"
"$BUILD_DIR/tests/test_http_exporter"
"$BUILD_DIR/tests/test_round_ledger"
"$BUILD_DIR/tests/test_fault"
"$BUILD_DIR/tests/test_round_engine"
"$BUILD_DIR/tests/test_shamir"
"$BUILD_DIR/tests/test_vss"
"$BUILD_DIR/tests/test_dropout_recovery"
# Byzantine coordinator rounds under TSan: slash transactions landing
# during recovery while the parallel engine's owner fan-out is hot.
"$BUILD_DIR/tests/test_byzantine" \
  --gtest_filter='Engines/SlashEqualsCrashTest.BadShareForgerDuringRecovery/Parallel:ByzantineTest.MixedByzantinePlanIsEngineModeInvariant'
"$BUILD_DIR/tests/test_sig_cache"
"$BUILD_DIR/tests/test_merkle"
# Kill/restart under TSan, reduced to the parallel-engine cases where
# checkpoint/block-log writes race the owner fan-out.
"$BUILD_DIR/tests/test_resume" \
  --gtest_filter='ResumeTest.ParallelKillMidSessionResumesBitIdentical:ResumeTest.ResumeSurvivesFaultsBesidesTheKill'
# Chaos under TSan: full faulted protocol runs (coordinator + consensus
# + recovery) with a reduced sweep — TSan is ~10x slower per seed.
BCFL_CHAOS_SEEDS="${BCFL_CHAOS_SEEDS:-2}" "$BUILD_DIR/tests/test_chaos"

# The benches write BENCH_*.json; keep them out of the tree.
TSAN_TMP="$(mktemp -d)"
trap 'rm -rf "$TSAN_TMP"' EXIT
BENCH_KERNELS="$(cd "$BUILD_DIR" && pwd)/bench/bench_kernels"
(cd "$TSAN_TMP" && "$BENCH_KERNELS" --quick)
BENCH_CHAIN="$(cd "$BUILD_DIR" && pwd)/bench/bench_chain_throughput"
(cd "$TSAN_TMP" && "$BENCH_CHAIN" --quick)
BENCH_E2E="$(cd "$BUILD_DIR" && pwd)/bench/bench_e2e_rounds"
(cd "$TSAN_TMP" && "$BENCH_E2E" --quick)

echo "TSan: all clean"
