#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and runs
# the thread-pool and coalition-engine suites. These are the two places
# real data races could hide: the chunked ParallelFor and the engine's
# parallel utility scoring + sharded CachingUtility.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBCFL_SANITIZE=thread \
  -DBCFL_BUILD_BENCHMARKS=OFF \
  -DBCFL_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_thread_pool test_coalition_engine test_utility

# halt_on_error: fail the script on the first race instead of limping on.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

"$BUILD_DIR/tests/test_thread_pool"
"$BUILD_DIR/tests/test_coalition_engine"
"$BUILD_DIR/tests/test_utility"

echo "TSan: all clean"
