#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and runs
# the thread-pool, coalition-engine and observability suites. These are
# the places real data races could hide: the chunked ParallelFor, the
# engine's parallel utility scoring + sharded CachingUtility, and the
# sharded metrics / thread-local span machinery in src/obs.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBCFL_SANITIZE=thread \
  -DBCFL_BUILD_BENCHMARKS=OFF \
  -DBCFL_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_thread_pool test_coalition_engine test_utility \
  test_metrics test_tracer

# halt_on_error: fail the script on the first race instead of limping on.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

"$BUILD_DIR/tests/test_thread_pool"
"$BUILD_DIR/tests/test_coalition_engine"
"$BUILD_DIR/tests/test_utility"
"$BUILD_DIR/tests/test_metrics"
"$BUILD_DIR/tests/test_tracer"

echo "TSan: all clean"
