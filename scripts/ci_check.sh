#!/usr/bin/env bash
# One-shot CI gate: configure, build, run the full ctest suite, then run
# a small end-to-end bcfl_sim session and assert the observability
# artifacts it emits are valid — metrics.json parses and carries the
# expected per-round counters, trace.json parses as Chrome trace_event.
# A telemetry stage gates the fresh quick chain bench against the
# committed BENCH_chain.json baseline with tools/bench_diff (and proves
# the gate bites on an injected 2x regression), then runs the
# bench_table1_runtime --quick obs-overhead gate (<3%, bit-identical SV).
# A round-engine stage runs bench_e2e_rounds --quick: the parallel
# round engine must be bit-identical to the serial reference (pool-size
# invariant, faults included) and its batched Shamir recovery must match
# the per-secret reference; the fresh numbers are gated against the
# committed BENCH_e2e.json baseline with tools/bench_diff.
# A chaos stage follows: one faulted session whose executed fault
# schedule must land in metrics.json, then a BCFL_CHAOS_SEEDS-wide
# random-fault sweep (default 200) in which every seed must converge —
# bcfl_sim exits non-zero on any failed or hung round — while writing a
# per-round JSONL protocol ledger that must parse end to end.
# A byzantine stage closes it out: hand-written plans covering every
# misbehavior kind (forged recovery share, equivocating submit, poisoned
# update) must produce exactly the expected on-chain slash schedule with
# the offender's reward burned, and a BCFL_CHAOS_SEEDS-wide byzantine-mix
# sweep must converge on every seed while the shared ledger records the
# slashes and accusations.
#
# Usage: scripts/ci_check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
ROUNDS=2
CHAOS_SEEDS="${BCFL_CHAOS_SEEDS:-200}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# End-to-end smoke: a tiny session must finish and export artifacts.
ARTIFACT_DIR="$(mktemp -d)"
trap 'rm -rf "$ARTIFACT_DIR"' EXIT
# --metrics-port 0 exercises the Prometheus exporter's bind/serve/stop
# path on an ephemeral port; --ledger-out adds the per-round ledger.
"$BUILD_DIR/tools/bcfl_sim" \
  --owners 6 --miners 3 --rounds "$ROUNDS" --groups 3 --instances 800 \
  --metrics-port 0 \
  --metrics-out "$ARTIFACT_DIR/metrics.json" \
  --trace-out "$ARTIFACT_DIR/trace.json" \
  --ledger-out "$ARTIFACT_DIR/ledger.jsonl"

# Kernel-equivalence smoke: bench_kernels exits non-zero unless every
# optimized kernel (GEMM, transposed GEMM, fused softmax step, batched
# ChaCha20, mask expansion) is bit-identical to its reference path, and
# it drops BENCH_kernels.json in the working directory.
BENCH_KERNELS="$(cd "$BUILD_DIR" && pwd)/bench/bench_kernels"
(cd "$ARTIFACT_DIR" && "$BENCH_KERNELS" --quick)

# Chain-equivalence smoke: bench_chain_throughput exits non-zero unless
# the Montgomery Schnorr path agrees with the seed reference verifier,
# incremental/pooled Merkle builds are bit-identical to the batch build,
# the mempool's promoted root matches a from-scratch block root, and a
# consensus run commits identical blocks with and without a chain pool.
# It drops BENCH_chain.json in the working directory.
BENCH_CHAIN="$(cd "$BUILD_DIR" && pwd)/bench/bench_chain_throughput"
(cd "$ARTIFACT_DIR" && "$BENCH_CHAIN" --quick)

# Round-engine equivalence smoke: bench_e2e_rounds exits non-zero unless
# the parallel engine's chain content is bit-identical to the serial
# reference (for pool sizes 1 and N, clean and faulted) and the batched
# Shamir recovery matches the per-secret reference. It drops
# BENCH_e2e.json in the working directory.
BENCH_E2E="$(cd "$BUILD_DIR" && pwd)/bench/bench_e2e_rounds"
(cd "$ARTIFACT_DIR" && "$BENCH_E2E" --quick)

if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR" "$ROUNDS" <<'EOF'
import json
import sys

artifact_dir, rounds = sys.argv[1], int(sys.argv[2])

metrics = json.load(open(f"{artifact_dir}/metrics.json"))
counters = metrics["counters"]
assert counters["fl.rounds"] == rounds, counters
assert counters["contract.round_evals"] > 0, counters
assert counters["chain.block.committed"] > 0, counters
assert counters["shapley.coalitions_scored"] > 0, counters
assert "fl.round_accuracy" in metrics["gauges"], metrics["gauges"]
assert metrics["histograms"]["chain.consensus.round_us"]["count"] > 0

ledger = [json.loads(line)
          for line in open(f"{artifact_dir}/ledger.jsonl") if line.strip()]
assert len(ledger) == rounds, f"{len(ledger)} ledger records, want {rounds}"
for record in ledger:
    for phase in ("train", "tx_admission", "secureagg_mask", "consensus",
                  "sv_eval", "owner_fanout"):
        # owner_fanout: bcfl_sim defaults to the parallel round engine.
        assert record["phase_us"][phase] >= 0, record["phase_us"]
    assert len(record["sv"]) == 6, record["sv"]
    assert len(record["sv_volatility"]) == 6, record["sv_volatility"]
    assert 0.0 <= record["sig_cache_hit_rate"] <= 1.0, record
assert ledger[-1]["round"] == rounds - 1, ledger[-1]

trace = json.load(open(f"{artifact_dir}/trace.json"))
categories = {event["cat"] for event in trace["traceEvents"]}
expected = {"chain", "secureagg", "fl", "shapley", "contract"}
assert expected <= categories, f"missing categories: {expected - categories}"

kernels = json.load(open(f"{artifact_dir}/BENCH_kernels.json"))
assert kernels["all_equivalent"] is True, kernels["equivalence"]
missing = {"gemm", "gemm_trans_a", "transpose", "softmax_rows",
           "fused_step", "parallel_gemm", "chacha20_batched"} \
    - set(kernels["equivalence"])
assert not missing, f"missing equivalence checks: {missing}"
assert kernels["kernel_path"] in {"reference", "scalar", "avx2"}, kernels

chain = json.load(open(f"{artifact_dir}/BENCH_chain.json"))
assert chain["all_equivalent"] is True, chain["equivalence"]
missing = {"schnorr_reference", "merkle_incremental_batch_parallel",
           "mempool_promotion", "chain_pool_determinism"} \
    - set(chain["equivalence"])
assert not missing, f"missing chain equivalence checks: {missing}"
assert chain["crypto_path"] in {"montgomery", "reference"}, chain
speedup = chain["schnorr_verify"]["speedup"]
if chain["crypto_path"] == "montgomery":
    assert speedup >= 4.0, \
        f"schnorr verify speedup {speedup:.2f}x below the 4x floor"

e2e = json.load(open(f"{artifact_dir}/BENCH_e2e.json"))
assert e2e["all_equivalent"] is True, e2e["equivalence"]
missing = {"serial_parallel_identical", "pool_size_invariant",
           "faulted_identical", "shamir_batch_reference"} \
    - set(e2e["equivalence"])
assert not missing, f"missing e2e equivalence checks: {missing}"
e2e_speedup = e2e["parallel"]["speedup"]
if e2e["pool_threads"] >= 4:
    # The >= 2x floor only applies where the cores exist to deliver it
    # (bench_e2e_rounds itself exits non-zero in that case too).
    assert e2e_speedup >= 2.0, \
        f"round-engine speedup {e2e_speedup:.2f}x below the 2x floor"
# bcfl_sim must report which engine ran (default: parallel).
assert metrics["round_engine"] == "parallel", metrics["round_engine"]
assert metrics["round_engine_pool_threads"] >= 1, metrics

print(f"artifacts OK: {len(counters)} counters, "
      f"{len(trace['traceEvents'])} spans, categories {sorted(categories)}, "
      f"{len(ledger)} ledger records, "
      f"kernel path {kernels['kernel_path']}, "
      f"crypto path {chain['crypto_path']} ({speedup:.0f}x verify)")
EOF
else
  # No python3: fall back to grep-level checks so the gate still bites.
  grep -q '"fl.rounds":'"$ROUNDS" "$ARTIFACT_DIR/metrics.json"
  grep -q '"traceEvents"' "$ARTIFACT_DIR/trace.json"
  grep -q '"phase_us"' "$ARTIFACT_DIR/ledger.jsonl"
  grep -q '"all_equivalent":true' "$ARTIFACT_DIR/BENCH_kernels.json"
  grep -q '"all_equivalent":true' "$ARTIFACT_DIR/BENCH_chain.json"
  echo "artifacts OK (python3 unavailable; grep-level validation only)"
fi

# Telemetry gate, part 1: the fresh quick chain bench must not regress
# against the committed baseline. Only robust metrics gate here — the
# equivalence booleans (exact) and the Schnorr verify speedup with a
# generous tolerance, since quick reps on shared CI hardware are noisy.
BENCH_DIFF="$(cd "$BUILD_DIR" && pwd)/tools/bench_diff"
"$BENCH_DIFF" \
  --baseline BENCH_chain.json \
  --candidate "$ARTIFACT_DIR/BENCH_chain.json" \
  --metrics equivalence,all_equivalent,schnorr_verify.speedup \
  --tolerance schnorr_verify.speedup=0.95 \
  --out "$ARTIFACT_DIR/bench_diff_chain.json"

# Round-engine gate: the fresh quick e2e bench must not regress against
# the committed BENCH_e2e.json baseline. The equivalence booleans gate
# exactly; the serial-vs-parallel and batched-Shamir speedups gate with
# a generous tolerance — both are wall-clock ratios and quick reps on
# shared CI hardware are noisy.
"$BENCH_DIFF" \
  --baseline BENCH_e2e.json \
  --candidate "$ARTIFACT_DIR/BENCH_e2e.json" \
  --metrics equivalence,all_equivalent,parallel.speedup,shamir_recover.speedup \
  --tolerance parallel.speedup=0.5 \
  --tolerance shamir_recover.speedup=0.5 \
  --out "$ARTIFACT_DIR/bench_diff_e2e.json"

# Telemetry gate, part 2: the gate must bite. A doctored baseline copy
# with the verify speedup halved and an equivalence bit flipped has to
# make bench_diff exit non-zero, or the regression gate is decorative.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR" <<'EOF'
import json
import sys

bench = json.load(open("BENCH_chain.json"))
bench["schnorr_verify"]["speedup"] /= 2.0
bench["all_equivalent"] = False
json.dump(bench, open(f"{sys.argv[1]}/BENCH_chain_regressed.json", "w"))
EOF
  if "$BENCH_DIFF" \
      --baseline BENCH_chain.json \
      --candidate "$ARTIFACT_DIR/BENCH_chain_regressed.json" \
      --metrics equivalence,all_equivalent,schnorr_verify.speedup \
      --tolerance schnorr_verify.speedup=0.25 \
      --quiet --out "$ARTIFACT_DIR/bench_diff_regressed.json"; then
    echo "bench_diff failed to flag an injected 2x regression" >&2
    exit 1
  fi
  echo "bench_diff gate bites: injected 2x regression flagged"
fi

# Telemetry gate, part 3: observability must be effectively free.
# bench_table1_runtime --quick interleaves obs-on/obs-off Shapley
# evaluations (m=9, serial engine) and exits non-zero if the histogram
# overhead exceeds 3% or the SV outputs are not bit-identical.
BENCH_TABLE1="$(cd "$BUILD_DIR" && pwd)/bench/bench_table1_runtime"
(cd "$ARTIFACT_DIR" && "$BENCH_TABLE1" --quick)

# Chaos smoke, part 1: a hand-written fault plan (owner dropout, miner
# crash + re-admission, slow links) must converge and export the
# executed fault schedule into metrics.json.
"$BUILD_DIR/tools/bcfl_sim" \
  --owners 6 --miners 5 --rounds 4 --groups 2 --instances 600 --sigma 0 \
  --fault-plan "crash owner 2 @1; crash miner 3 @1; recover miner 3 @3; slow miner 0 @0..2 +5000us" \
  --metrics-out "$ARTIFACT_DIR/chaos_metrics.json" --trace-out -

if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR" <<'EOF'
import json
import sys

metrics = json.load(open(f"{sys.argv[1]}/chaos_metrics.json"))
counters = metrics["counters"]
assert counters["fl.dropouts_detected"] == 1, counters
assert counters["fl.recoveries"] == 1, counters
assert counters["chain.consensus.view_changes"] >= 1, counters
assert counters["chain.consensus.catchups"] >= 1, counters

plan = metrics["fault_plan"]
schedule = metrics["fault_schedule"]
assert len(plan) == 4, plan
assert any("crash owner 2" in entry["event"] for entry in schedule), schedule
assert any("recover" in entry["event"] for entry in schedule), schedule
assert all("round" in entry for entry in schedule), schedule
print(f"chaos artifacts OK: {len(schedule)} executed fault events")
EOF
else
  grep -q '"fault_schedule"' "$ARTIFACT_DIR/chaos_metrics.json"
  grep -q 'crash owner 2' "$ARTIFACT_DIR/chaos_metrics.json"
fi

# Chaos smoke, part 2: every random fault plan in the sweep must
# converge (bcfl_sim exits non-zero on a failed or hung seed). The
# sweep writes one shared protocol ledger covering every seed's rounds.
"$BUILD_DIR/tools/bcfl_sim" \
  --owners 6 --miners 5 --rounds 3 --groups 2 --instances 400 --sigma 0 \
  --chaos-sweep "$CHAOS_SEEDS" --fault-seed 0 \
  --metrics-out - --trace-out - \
  --ledger-out "$ARTIFACT_DIR/chaos_ledger.jsonl"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR" "$CHAOS_SEEDS" <<'EOF'
import json
import sys

artifact_dir, seeds = sys.argv[1], int(sys.argv[2])
records = [json.loads(line)
           for line in open(f"{artifact_dir}/chaos_ledger.jsonl")
           if line.strip()]
assert len(records) == 3 * seeds, \
    f"{len(records)} chaos ledger records, want {3 * seeds}"
for record in records:
    assert record["phase_us"]["consensus"] >= 0, record
    assert len(record["sv"]) == 6, record
faulted = sum(1 for r in records if r["fault_events"])
dropped = sum(len(r["dropouts"]) for r in records)
if seeds >= 50:
    # A wide random sweep must actually exercise the fault machinery.
    assert faulted > 0 and dropped > 0, (faulted, dropped)
print(f"chaos ledger OK: {len(records)} records, {faulted} faulted "
      f"rounds, {dropped} dropouts")
EOF
else
  grep -q '"phase_us"' "$ARTIFACT_DIR/chaos_ledger.jsonl"
fi

# Byzantine smoke, part 1: hand-written misbehavior plans must produce
# exactly the asserted slash schedule. Session A: a forged recovery
# share is attributed via its Feldman commitment while a genuine crash
# is recovered in the same round. Session B: an equivocating submitter
# and a (masked) poisoned update caught by the norm gate. Both sessions
# must retire the offenders and burn their pending reward.
"$BUILD_DIR/tools/bcfl_sim" \
  --owners 6 --miners 5 --rounds 3 --groups 2 --instances 400 --sigma 0 \
  --norm-bound 5 --reward 1000000 \
  --fault-plan "crash owner 1 @1; bad-share owner 3 @1" \
  --metrics-out "$ARTIFACT_DIR/byz_badshare_metrics.json" --trace-out -
"$BUILD_DIR/tools/bcfl_sim" \
  --owners 6 --miners 5 --rounds 3 --groups 2 --instances 400 --sigma 0 \
  --norm-bound 5 --reward 1000000 \
  --fault-plan "equivocate-submit owner 2 @1; poison-update owner 4 @2 *50" \
  --metrics-out "$ARTIFACT_DIR/byz_mixed_metrics.json" --trace-out -

if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR" <<'EOF'
import json
import sys

artifact_dir = sys.argv[1]

bad = json.load(open(f"{artifact_dir}/byz_badshare_metrics.json"))
assert bad["slashed_at"] == {"3": 1}, bad["slashed_at"]
assert bad["slash_transactions"] == 1, bad["slash_transactions"]
assert bad["reward_burned"] > 0, bad["reward_burned"]

mixed = json.load(open(f"{artifact_dir}/byz_mixed_metrics.json"))
assert mixed["slashed_at"] == {"2": 1, "4": 2}, mixed["slashed_at"]
assert mixed["slash_transactions"] == 2, mixed["slash_transactions"]
assert mixed["reward_burned"] > 0, mixed["reward_burned"]
print("byzantine slash schedules OK: "
      f"bad-share {bad['slashed_at']}, mixed {mixed['slashed_at']}")
EOF
else
  grep -q '"slashed_at":{"3":1}' "$ARTIFACT_DIR/byz_badshare_metrics.json"
  grep -q '"slash_transactions":2' "$ARTIFACT_DIR/byz_mixed_metrics.json"
fi

# Byzantine smoke, part 2: every random byzantine-mix plan in the sweep
# must converge (a slashed offender degrades the round to the honest
# survivors instead of stalling it), and the shared ledger must record
# the convictions a wide sweep is guaranteed to produce.
"$BUILD_DIR/tools/bcfl_sim" \
  --owners 6 --miners 5 --rounds 3 --groups 2 --instances 400 --sigma 0 \
  --norm-bound 5 \
  --chaos-sweep "$CHAOS_SEEDS" --chaos-byzantine 0.4 --fault-seed 0 \
  --metrics-out - --trace-out - \
  --ledger-out "$ARTIFACT_DIR/byz_ledger.jsonl"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR" "$CHAOS_SEEDS" <<'EOF'
import json
import sys

artifact_dir, seeds = sys.argv[1], int(sys.argv[2])
records = [json.loads(line)
           for line in open(f"{artifact_dir}/byz_ledger.jsonl")
           if line.strip()]
assert len(records) == 3 * seeds, \
    f"{len(records)} byzantine ledger records, want {3 * seeds}"
slashes = sum(len(r["slashed"]) for r in records)
accusations = sum(r["accusations"] for r in records)
assert accusations >= slashes, (accusations, slashes)
if seeds >= 50:
    # A wide byzantine sweep must actually convict someone.
    assert slashes > 0, "no slashes across the byzantine sweep"
print(f"byzantine ledger OK: {len(records)} records, {slashes} slashes, "
      f"{accusations} accusations")
EOF
else
  grep -q '"slashed"' "$ARTIFACT_DIR/byz_ledger.jsonl"
fi

# Crash-restart stage (PR 10): a session killed mid-run by a `kill` fault
# and resumed from its durable state dir must finish bit-identical to the
# same session run uninterrupted — per-round SV, global weights, chain tip
# and the per-round ledger (modulo wall-clock phase timings). Runs on both
# round engines. Also asserts the chain persisted through O(1) block-log
# appends, never a full-chain rewrite.
for ENGINE in serial parallel; do
  BASE_DIR="$ARTIFACT_DIR/restart_base_$ENGINE"
  CRASH_DIR="$ARTIFACT_DIR/restart_crash_$ENGINE"
  RESTART_ARGS=(--owners 5 --miners 3 --rounds 4 --groups 2 --instances 400
                --seed 7 --round-engine "$ENGINE" --trace-out -
                --fault-plan "crash owner 4 @1; kill @2")

  # Uninterrupted baseline: same plan, kill disarmed.
  "$BUILD_DIR/tools/bcfl_sim" "${RESTART_ARGS[@]}" \
    --ignore-kill-faults --state-dir "$BASE_DIR" \
    --metrics-out "$BASE_DIR.metrics.json" \
    --ledger-out "$BASE_DIR.ledger.jsonl"

  # Killed run: the kill fault must take the process down with exit 77.
  set +e
  "$BUILD_DIR/tools/bcfl_sim" "${RESTART_ARGS[@]}" \
    --state-dir "$CRASH_DIR" \
    --metrics-out "$CRASH_DIR.metrics.json" \
    --ledger-out "$CRASH_DIR.ledger.jsonl"
  KILL_EXIT=$?
  set -e
  if [ "$KILL_EXIT" -ne 77 ]; then
    echo "crash-restart ($ENGINE): kill run exited $KILL_EXIT, want 77" >&2
    exit 1
  fi

  # Resume: picks the session up from the state dir and finishes it.
  "$BUILD_DIR/tools/bcfl_sim" "${RESTART_ARGS[@]}" \
    --resume --state-dir "$CRASH_DIR" \
    --metrics-out "$CRASH_DIR.metrics.json" \
    --ledger-out "$CRASH_DIR.ledger.jsonl"

  if command -v python3 >/dev/null 2>&1; then
    python3 - "$BASE_DIR" "$CRASH_DIR" "$ENGINE" <<'EOF'
import json
import sys

base_dir, crash_dir, engine = sys.argv[1], sys.argv[2], sys.argv[3]

base = json.load(open(f"{base_dir}.metrics.json"))
resumed = json.load(open(f"{crash_dir}.metrics.json"))

# Bit-identity: the session summary digests SV/weights/accuracy doubles
# and the chain tip; a single flipped bit anywhere diverges the digests.
assert base["session_summary"] == resumed["session_summary"], (
    f"resumed {engine} session diverged from the uninterrupted baseline:\n"
    f"  base    {base['session_summary']}\n"
    f"  resumed {resumed['session_summary']}")

# The ledger must match record for record modulo wall-clock phase
# timings (everything deterministic: SV, volatility, rosters, faults).
def ledger(path):
    out = []
    for line in open(path):
        record = json.loads(line)
        record.pop("phase_us", None)
        out.append(record)
    return out
base_ledger = ledger(f"{base_dir}.ledger.jsonl")
crash_ledger = ledger(f"{crash_dir}.ledger.jsonl")
assert base_ledger == crash_ledger, f"{engine} ledgers diverge"
assert len(crash_ledger) == 4, len(crash_ledger)

# Durability ran through the O(1) append path, never a full rewrite.
counters = resumed["counters"]
assert counters.get("chain.blocklog.appends", 0) > 0, counters
assert counters.get("chain.storage.full_saves", 0) == 0, counters
assert counters.get("core.checkpoints_written", 0) > 0, counters
assert counters.get("core.resume.blocks_replayed", 0) > 0, counters

print(f"crash-restart OK ({engine}): kill @2 -> resume matched the "
      f"baseline across {len(crash_ledger)} ledger records, "
      f"{counters['core.resume.blocks_replayed']:.0f} blocks replayed")
EOF
  else
    grep -q '"session_summary"' "$CRASH_DIR.metrics.json"
  fi
done

echo "CI check: all green"
