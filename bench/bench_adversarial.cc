// Ablation D (future-work Sect. VI): adversarial participants and the
// privacy/resolution trade-off.
//
// Part 1: a fraudulent leader inflates its own contribution record; we
// measure how many proposals honest-majority verification rejects and
// the overhead that rejection adds, while confirming the on-chain SVs
// stay truthful.
// Part 2: the m-knob — group size (n/m "anonymity") against how well
// GroupSV resolves individual contributions (Spearman rank correlation
// against the per-user evaluation).

#include <cstdio>

#include "common/sim_clock.h"
#include "core/adversary.h"
#include "core/coordinator.h"
#include "data/noise.h"
#include "data/partition.h"
#include "fl/trainer.h"
#include "shapley/group_sv.h"
#include "shapley/similarity.h"
#include "shapley/utility.h"

using namespace bcfl;
using namespace bcfl::core;

namespace {

BcflConfig BaseConfig() {
  BcflConfig config;
  config.num_owners = 6;
  config.num_miners = 5;
  config.rounds = 3;
  config.num_groups = 3;
  config.seed = 11;
  config.seed_e = 5;
  config.sigma = 0.3;
  config.local.epochs = 3;
  config.local.learning_rate = 0.05;
  config.digits.num_instances = 1200;
  return config;
}

void RunAttackExperiment() {
  std::printf("Part 1: fraudulent leader inflating its own SV\n");
  std::printf("%-22s %-12s %-12s %-16s %-14s\n", "scenario", "committed",
              "rejected", "owner3 total SV", "wall s");

  // Honest baseline.
  Stopwatch honest_timer;
  auto honest = BcflCoordinator::Create(BaseConfig()).value();
  auto honest_result = honest->Run().value();
  double honest_time = honest_timer.ElapsedSeconds();
  std::printf("%-22s %-12zu %-12s %-16.4f %-14.2f\n", "honest",
              honest_result.blocks_committed, "0",
              honest_result.total_sv[3], honest_time);

  // One fraudulent miner (tampering whenever it leads).
  for (size_t evil_miners : {1, 2}) {
    Stopwatch timer;
    auto attacked = BcflCoordinator::Create(BaseConfig()).value();
    for (size_t m = 0; m < evil_miners; ++m) {
      (void)attacked->InstallMinerBehavior(
          m, MakeSvInflationBehavior(/*beneficiary_owner=*/3,
                                     /*inflation=*/100.0));
    }
    auto result = attacked->Run().value();
    double elapsed = timer.ElapsedSeconds();
    // Rejections = extra proposals beyond committed blocks; count via
    // chain height vs total proposals is not directly exposed, so infer
    // truthfulness from the SV instead and report committed blocks.
    bool truthful = true;
    for (size_t i = 0; i < result.total_sv.size(); ++i) {
      if (std::abs(result.total_sv[i] - honest_result.total_sv[i]) > 1e-9) {
        truthful = false;
      }
    }
    char label[64];
    std::snprintf(label, sizeof(label), "%zu fraudulent miner%s",
                  evil_miners, evil_miners > 1 ? "s" : "");
    std::printf("%-22s %-12zu %-12s %-16.4f %-14.2f  (truthful: %s)\n",
                label, result.blocks_committed, "yes",
                result.total_sv[3], elapsed, truthful ? "yes" : "NO");
  }
  std::printf("Honest-majority verification rejects every tampered "
              "proposal; the chain state stays truthful,\nat the cost of "
              "extra leader rotations (wall-time overhead above).\n\n");
}

void RunResolutionExperiment() {
  std::printf("Part 2: privacy (group size) vs resolution (rank fidelity)\n");
  const size_t kOwners = 9;
  const uint64_t kSeedE = 7;

  // Build an off-chain workload with a strong quality gradient so the
  // per-user ranking is meaningful.
  data::DigitsConfig digits;
  digits.num_instances = 2000;
  digits.seed = 3;
  ml::Dataset full = data::DigitsGenerator(digits).Generate();
  Xoshiro256 rng(3);
  auto split = full.TrainTestSplit(0.8, &rng).value();
  auto parts = data::PartitionUniform(split.first, kOwners, &rng).value();
  (void)data::ApplyQualityGradient(&parts, 0.5, 4);

  ml::LogisticRegressionConfig lr;
  lr.learning_rate = 0.05;
  lr.epochs = 5;
  std::vector<fl::FlClient> clients;
  for (size_t i = 0; i < kOwners; ++i) {
    clients.emplace_back(static_cast<fl::OwnerId>(i), std::move(parts[i]),
                         lr);
  }
  fl::FlConfig fl_config;
  fl_config.rounds = 8;
  fl_config.local = lr;
  fl::FederatedTrainer trainer(std::move(clients), fl_config);
  auto run = trainer.Run().value();

  // Reference: per-user GroupSV at m = n (maximum resolution, no
  // privacy).
  shapley::TestAccuracyUtility ref_utility(split.second);
  shapley::GroupShapley reference(kOwners, {kOwners, kSeedE}, &ref_utility);
  auto per_user = reference.AccumulateOverRounds(run.per_round_locals)
                      .value();

  std::printf("%-6s %-18s %-16s %-16s\n", "m", "group size (n/m)",
              "spearman", "cosine");
  for (size_t m = 1; m <= kOwners; ++m) {
    shapley::TestAccuracyUtility utility(split.second);
    shapley::GroupShapley evaluator(kOwners, {m, kSeedE}, &utility);
    auto totals =
        evaluator.AccumulateOverRounds(run.per_round_locals).value();
    auto rho = shapley::SpearmanCorrelation(totals, per_user);
    auto cosine = shapley::CosineSimilarity(totals, per_user);
    std::printf("%-6zu %-18.2f %-16s %-16s\n", m,
                static_cast<double>(kOwners) / static_cast<double>(m),
                rho.ok() ? std::to_string(*rho).c_str() : "n/a",
                cosine.ok() ? std::to_string(*cosine).c_str() : "n/a");
  }
  std::printf("Shape: larger m -> smaller groups (less privacy, the "
              "averaged model of a\nsmaller group is closer to an "
              "individual update) but higher rank fidelity.\n");
}

}  // namespace

int main() {
  std::printf("Ablation D: adversarial behaviour and the privacy/"
              "resolution knob\n");
  std::printf("============================================================"
              "==========\n");
  RunAttackExperiment();
  RunResolutionExperiment();
  return 0;
}
