// Kernel-layer micro-benchmark and equivalence gate.
//
// Times the optimized compute kernels (blocked GEMM, transposed GEMM,
// fused softmax-cross-entropy step, batched ChaCha20 keystream, mask
// expansion) against the seed-faithful reference implementations on the
// training-workload shapes, and — more importantly — *verifies* the
// determinism contract: every optimized kernel must be bit-identical to
// its reference, including under the row-parallel pool path. A mismatch
// makes the process exit non-zero, so CI can use this binary as the
// kernel-vs-reference smoke test.
//
// Emits BENCH_kernels.json for cross-PR trend tracking.
//
// Flags: --quick  lower repetition counts (CI smoke mode).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "crypto/chacha20.h"
#include "ml/kernels.h"
#include "obs/exporter.h"
#include "obs/json_writer.h"
#include "secureagg/mask.h"

using namespace bcfl;
using bcfl::obs::JsonWriter;
namespace kernels = bcfl::ml::kernels;

namespace {

/// Pool width used by the parallel-determinism checks (and reported in
/// the JSON so cross-PR diffs know what ran).
constexpr size_t kDeterminismPoolThreads = 4;

void FillRandom(std::vector<double>* v, Xoshiro256* rng) {
  for (double& x : *v) x = rng->NextDouble() * 2.0 - 1.0;
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Seconds per call, best of `reps` (after one warm-up call).
template <typename Fn>
double TimeBest(Fn&& fn, int reps) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

struct Shape {
  size_t m, k, n;
};

/// Shapes chosen to hit every dispatch path: empty, single row/column,
/// narrow (< 4 columns, the sub-vector tail), the fixed-width tables
/// (<= 16 columns), and the generic wide path (> 16 columns).
constexpr Shape kCheckShapes[] = {
    {0, 0, 0}, {0, 5, 3},   {1, 1, 1},  {1, 7, 1},   {5, 1, 9},
    {7, 5, 1}, {3, 9, 2},   {6, 4, 3},  {37, 65, 10}, {33, 17, 29},
    {64, 64, 64}, {128, 3, 21}, {513, 5, 4},
};

bool CheckGemmEquivalence(Xoshiro256* rng) {
  for (const Shape& s : kCheckShapes) {
    std::vector<double> a(s.m * s.k), b(s.k * s.n);
    FillRandom(&a, rng);
    FillRandom(&b, rng);
    std::vector<double> ref(s.m * s.n, 0.0), opt(s.m * s.n, 1e9);
    kernels::reference::Gemm(a.data(), s.m, s.k, b.data(), s.n, ref.data());
    kernels::Gemm(a.data(), s.m, s.k, b.data(), s.n, opt.data());
    if (s.m * s.n == 0) continue;
    if (!BitEqual(ref, opt)) {
      std::printf("  !! Gemm mismatch at %zux%zux%zu\n", s.m, s.k, s.n);
      return false;
    }
  }
  return true;
}

bool CheckGemmTransAEquivalence(Xoshiro256* rng) {
  for (const Shape& s : kCheckShapes) {
    // a is rows x m (transposed operand), b is rows x n, out m x n.
    const size_t rows = s.k;
    std::vector<double> a(rows * s.m), b(rows * s.n);
    FillRandom(&a, rng);
    FillRandom(&b, rng);
    std::vector<double> ref(s.m * s.n, 0.0), opt(s.m * s.n, 1e9);
    kernels::reference::GemmTransA(a.data(), rows, s.m, b.data(), s.n,
                                   ref.data());
    kernels::GemmTransA(a.data(), rows, s.m, b.data(), s.n, opt.data());
    if (s.m * s.n == 0) continue;
    if (!BitEqual(ref, opt)) {
      std::printf("  !! GemmTransA mismatch at rows=%zu %zux%zu\n", rows,
                  s.m, s.n);
      return false;
    }
  }
  return true;
}

bool CheckTransposeEquivalence(Xoshiro256* rng) {
  for (const Shape& s : kCheckShapes) {
    std::vector<double> a(s.m * s.k);
    FillRandom(&a, rng);
    std::vector<double> ref(s.k * s.m, 0.0), opt(s.k * s.m, 1e9);
    kernels::reference::Transpose(a.data(), s.m, s.k, ref.data());
    kernels::Transpose(a.data(), s.m, s.k, opt.data());
    if (s.m * s.k == 0) continue;
    if (!BitEqual(ref, opt)) {
      std::printf("  !! Transpose mismatch at %zux%zu\n", s.m, s.k);
      return false;
    }
  }
  return true;
}

bool CheckSoftmaxEquivalence() {
  // Extreme logits: without the row-max subtraction exp() would overflow
  // to inf and the row would collapse to NaN.
  std::vector<double> extreme = {1e4,  -1e4, 700.0, -700.0, 0.0,
                                 300.0, -2e4, 5e3,   1.5,   -0.5};
  std::vector<double> ref = extreme, opt = extreme;
  kernels::reference::SoftmaxRows(ref.data(), 2, 5);
  kernels::SoftmaxRows(opt.data(), 2, 5);
  if (!BitEqual(ref, opt)) {
    std::printf("  !! SoftmaxRows mismatch on extreme logits\n");
    return false;
  }
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 5; ++c) {
      const double p = opt[r * 5 + c];
      if (!std::isfinite(p)) {
        std::printf("  !! SoftmaxRows produced non-finite prob\n");
        return false;
      }
      sum += p;
    }
    if (std::abs(sum - 1.0) > 1e-12) {
      std::printf("  !! SoftmaxRows row sum %.17g != 1\n", sum);
      return false;
    }
  }
  return true;
}

bool CheckFusedStepEquivalence(Xoshiro256* rng) {
  const size_t rows = 123, cols = 17, classes = 10, epochs = 5;
  std::vector<double> aug(rows * cols);
  FillRandom(&aug, rng);
  std::vector<int> labels(rows);
  for (int& l : labels) {
    l = static_cast<int>(rng->NextBounded(classes));
  }
  std::vector<double> w_ref(cols * classes, 0.0), w_opt(cols * classes, 0.0);
  kernels::FusedStepScratch scratch;
  for (size_t e = 0; e < epochs; ++e) {
    const double loss_ref = kernels::reference::FusedSoftmaxCeStep(
        aug.data(), rows, cols, labels.data(), classes, 0.05, 1e-4,
        w_ref.data());
    const double loss_opt = kernels::FusedSoftmaxCeStep(
        aug.data(), rows, cols, labels.data(), classes, 0.05, 1e-4,
        w_opt.data(), &scratch);
    if (loss_ref != loss_opt) {
      std::printf("  !! fused-step loss diverged at epoch %zu\n", e);
      return false;
    }
  }
  if (!BitEqual(w_ref, w_opt)) {
    std::printf("  !! fused-step weights diverged after %zu epochs\n", epochs);
    return false;
  }
  return true;
}

bool CheckParallelGemmDeterminism(Xoshiro256* rng) {
  // 1024 rows crosses the parallel threshold; chunking is fixed-size, so
  // any pool size must reproduce the serial result bit for bit.
  const size_t m = 1024, k = 65, n = 10;
  std::vector<double> a(m * k), b(k * n);
  FillRandom(&a, rng);
  FillRandom(&b, rng);
  std::vector<double> serial(m * n, 0.0), parallel(m * n, 1e9);
  kernels::Gemm(a.data(), m, k, b.data(), n, serial.data());
  {
    ThreadPool pool(kDeterminismPoolThreads);
    kernels::SetParallelPool(&pool);
    kernels::Gemm(a.data(), m, k, b.data(), n, parallel.data());
    kernels::SetParallelPool(nullptr);
  }
  if (!BitEqual(serial, parallel)) {
    std::printf("  !! parallel Gemm diverged from serial\n");
    return false;
  }
  return true;
}

bool CheckChaChaBatched() {
  std::array<uint8_t, 32> key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  std::array<uint8_t, 12> nonce{};
  nonce[0] = 0x4a;
  // Batched whole blocks vs one byte at a time (forces the buffered
  // path); also an unaligned size so drain + batch + tail all run.
  for (size_t size : {size_t{64 * 37 + 13}, size_t{200}, size_t{64}}) {
    crypto::ChaCha20 batched(key, nonce), serial(key, nonce);
    std::vector<uint8_t> out_b(size), out_s(size);
    batched.Keystream(out_b.data(), size);
    for (size_t i = 0; i < size; ++i) serial.Keystream(&out_s[i], 1);
    if (out_b != out_s) {
      std::printf("  !! batched ChaCha20 keystream diverged (size %zu)\n",
                  size);
      return false;
    }
  }
  // ExpandMask must equal the per-word NextU64 expansion it replaced.
  const uint64_t round = 3;
  std::vector<uint64_t> fast = secureagg::ExpandMask(key, round, 1001);
  std::array<uint8_t, 12> mask_nonce{};
  for (int i = 0; i < 8; ++i) {
    mask_nonce[static_cast<size_t>(i)] = static_cast<uint8_t>(round >> (8 * i));
  }
  mask_nonce[8] = 0x01;
  crypto::ChaCha20 cipher(key, mask_nonce);
  for (size_t i = 0; i < fast.size(); ++i) {
    if (fast[i] != cipher.NextU64()) {
      std::printf("  !! ExpandMask diverged from per-word expansion at %zu\n",
                  i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int reps = quick ? 3 : 20;

  Xoshiro256 rng(42);
  std::printf("Kernel bench (path: %s%s)\n", kernels::ActivePath(),
              quick ? ", quick" : "");

  // ---- Equivalence gate -------------------------------------------------
  struct NamedCheck {
    const char* name;
    bool ok;
  };
  const NamedCheck checks[] = {
      {"gemm", CheckGemmEquivalence(&rng)},
      {"gemm_trans_a", CheckGemmTransAEquivalence(&rng)},
      {"transpose", CheckTransposeEquivalence(&rng)},
      {"softmax_rows", CheckSoftmaxEquivalence()},
      {"fused_step", CheckFusedStepEquivalence(&rng)},
      {"parallel_gemm", CheckParallelGemmDeterminism(&rng)},
      {"chacha20_batched", CheckChaChaBatched()},
  };
  bool all_ok = true;
  std::printf("equivalence vs reference:");
  for (const NamedCheck& c : checks) {
    all_ok = all_ok && c.ok;
    std::printf(" %s=%s", c.name, c.ok ? "ok" : "FAIL");
  }
  std::printf("\n");

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "kernels");
  json.Field("quick", quick);
  json.Field("kernel_path", kernels::ActivePath());
  json.Field("hardware_threads",
             std::max<size_t>(1, std::thread::hardware_concurrency()));
  json.Field("pool_threads", kDeterminismPoolThreads);
  json.BeginObject("equivalence");
  for (const NamedCheck& c : checks) json.Field(c.name, c.ok);
  json.EndObject();
  json.Field("all_equivalent", all_ok);

  // ---- GEMM on the training shape --------------------------------------
  {
    // The shape every coalition retrain runs: augmented digits features
    // (4496 x 65) times the weight matrix (65 x 10).
    const size_t m = 4496, k = 65, n = 10;
    std::vector<double> a(m * k), b(k * n), out(m * n);
    FillRandom(&a, &rng);
    FillRandom(&b, &rng);
    const double flops = 2.0 * static_cast<double>(m * k * n);
    const double ref_s = TimeBest(
        [&] {
          kernels::reference::Gemm(a.data(), m, k, b.data(), n, out.data());
        },
        reps);
    const double opt_s = TimeBest(
        [&] { kernels::Gemm(a.data(), m, k, b.data(), n, out.data()); },
        reps);
    std::printf("gemm %zux%zux%zu: ref %.3f ms (%.2f GF/s), opt %.3f ms "
                "(%.2f GF/s), %.2fx\n",
                m, k, n, ref_s * 1e3, flops / ref_s * 1e-9, opt_s * 1e3,
                flops / opt_s * 1e-9, ref_s / opt_s);
    json.BeginObject("gemm");
    json.Field("m", m);
    json.Field("k", k);
    json.Field("n", n);
    json.Field("ref_gflops", flops / ref_s * 1e-9);
    json.Field("opt_gflops", flops / opt_s * 1e-9);
    json.Field("speedup", ref_s / opt_s);
    json.EndObject();
  }

  // ---- Transposed GEMM (gradient shape) --------------------------------
  {
    const size_t rows = 4496, m = 65, n = 10;
    std::vector<double> a(rows * m), b(rows * n), out(m * n);
    FillRandom(&a, &rng);
    FillRandom(&b, &rng);
    const double flops = 2.0 * static_cast<double>(rows * m * n);
    const double ref_s = TimeBest(
        [&] {
          kernels::reference::GemmTransA(a.data(), rows, m, b.data(), n,
                                         out.data());
        },
        reps);
    const double opt_s = TimeBest(
        [&] {
          kernels::GemmTransA(a.data(), rows, m, b.data(), n, out.data());
        },
        reps);
    std::printf("gemm_trans_a %zu-row: ref %.3f ms, opt %.3f ms, %.2fx\n",
                rows, ref_s * 1e3, opt_s * 1e3, ref_s / opt_s);
    json.BeginObject("gemm_trans_a");
    json.Field("rows", rows);
    json.Field("ref_gflops", flops / ref_s * 1e-9);
    json.Field("opt_gflops", flops / opt_s * 1e-9);
    json.Field("speedup", ref_s / opt_s);
    json.EndObject();
  }

  // ---- Fused training step ---------------------------------------------
  {
    const size_t rows = 4496, cols = 65, classes = 10;
    std::vector<double> aug(rows * cols);
    FillRandom(&aug, &rng);
    std::vector<int> labels(rows);
    for (int& l : labels) l = static_cast<int>(rng.NextBounded(classes));
    std::vector<double> w_ref(cols * classes, 0.0),
        w_opt(cols * classes, 0.0);
    kernels::FusedStepScratch scratch;
    const double ref_s = TimeBest(
        [&] {
          kernels::reference::FusedSoftmaxCeStep(aug.data(), rows, cols,
                                                 labels.data(), classes, 0.05,
                                                 1e-4, w_ref.data());
        },
        reps);
    const double opt_s = TimeBest(
        [&] {
          kernels::FusedSoftmaxCeStep(aug.data(), rows, cols, labels.data(),
                                      classes, 0.05, 1e-4, w_opt.data(),
                                      &scratch);
        },
        reps);
    std::printf("fused_step %zux%zu c=%zu: ref %.3f ms/epoch, opt %.3f "
                "ms/epoch, %.2fx\n",
                rows, cols, classes, ref_s * 1e3, opt_s * 1e3, ref_s / opt_s);
    json.BeginObject("fused_step");
    json.Field("rows", rows);
    json.Field("cols", cols);
    json.Field("classes", classes);
    json.Field("ref_ms_per_epoch", ref_s * 1e3);
    json.Field("opt_ms_per_epoch", opt_s * 1e3);
    json.Field("speedup", ref_s / opt_s);
    json.EndObject();
  }

  // ---- ChaCha20 keystream ----------------------------------------------
  {
    std::array<uint8_t, 32> key{};
    std::array<uint8_t, 12> nonce{};
    const size_t bytes = 520000;  // One 65000-word mask.
    std::vector<uint8_t> buf(bytes);
    crypto::ChaCha20 cipher(key, nonce);
    const double batched_s = TimeBest(
        [&] { cipher.FillBlocks(buf.data(), bytes / 64); }, reps);
    crypto::ChaCha20 word_cipher(key, nonce);
    const double serial_s = TimeBest(
        [&] {
          // The pre-batching path: one 64-bit word at a time.
          for (size_t i = 0; i < bytes / 8; ++i) {
            volatile uint64_t sink = word_cipher.NextU64();
            (void)sink;
          }
        },
        quick ? 2 : 5);
    std::printf("chacha20 520kB: per-word %.1f MB/s, batched %.1f MB/s, "
                "%.2fx\n",
                bytes / serial_s / 1e6, bytes / batched_s / 1e6,
                serial_s / batched_s);
    json.BeginObject("chacha20");
    json.Field("bytes", bytes);
    json.Field("per_word_mb_s", bytes / serial_s / 1e6);
    json.Field("batched_mb_s", bytes / batched_s / 1e6);
    json.Field("speedup", serial_s / batched_s);
    json.EndObject();
  }

  // ---- Mask expansion ---------------------------------------------------
  {
    std::array<uint8_t, 32> key{};
    key[0] = 0x7f;
    const size_t words = 65000;
    const double s = TimeBest(
        [&] {
          std::vector<uint64_t> mask = secureagg::ExpandMask(key, 1, words);
          volatile uint64_t sink = mask[0];
          (void)sink;
        },
        reps);
    std::printf("expand_mask %zu words: %.3f ms (%.1f MB/s)\n", words,
                s * 1e3, static_cast<double>(words) * 8 / s / 1e6);
    json.BeginObject("expand_mask");
    json.Field("words", words);
    json.Field("ms", s * 1e3);
    json.Field("mb_s", static_cast<double>(words) * 8 / s / 1e6);
    json.EndObject();
  }

  json.EndObject();
  const char* out_path = "BENCH_kernels.json";
  if (json.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("failed to write %s\n", out_path);
    return 1;
  }
  Status exported = obs::ExportGlobalWithPrefix("BENCH_kernels");
  if (!exported.ok()) {
    std::printf("failed to export observability artifacts: %s\n",
                exported.ToString().c_str());
    return 1;
  }
  if (!all_ok) {
    std::printf("EQUIVALENCE FAILURE: optimized kernels diverge from "
                "reference\n");
    return 1;
  }
  return 0;
}
