// Reproduces Table I: wall-clock time of GroupSV for m = 2..9 versus the
// native SV method (n = 9).
//
// Paper numbers (Python/NumPy): GroupSV 2/3/4/7/11/20/39/77 s for
// m=2..9; NativeSV 316 s. Absolute values differ (C++ vs Python, our
// simulator vs their testbed); the *shape* to reproduce is (a) GroupSV
// cost grows ~2x per extra group (2^m coalition evaluations) and (b)
// native SV is an order of magnitude above GroupSV at m = 9, because it
// retrains 2^n coalition models while GroupSV only aggregates local
// updates.
//
// Since the coalition-engine PR this bench also tracks the engine
// speedup: each m is timed three ways — the seed's naive serial walk
// (rebuild every coalition from scratch, unfused utility), the engine
// without a pool, and the engine on a hardware-sized pool — and the
// rows land in BENCH_table1.json for cross-PR trend tracking. The
// engine's 1-thread and N-thread SV outputs are asserted bit-identical.
//
// Flags: --skip-native omits the (slow) 2^9-retraining baseline.
// --quick runs the CI observability-overhead gate instead of the full
// table: the m=9 engine evaluation is timed with instruments live and
// with BCFL_OBS-style disablement (interleaved, min-of-reps), the two
// SV outputs must stay bit-identical, and the run fails when the
// instrumented path is more than 3% slower. Writes
// BENCH_obs_overhead.json (the full-table BENCH_table1.json baseline
// schema is untouched).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/sim_clock.h"
#include "obs/exporter.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shapley/group_sv.h"
#include "shapley/shapley_math.h"
#include "workload.h"

using namespace bcfl;
using namespace bcfl::bench;
using bcfl::obs::JsonWriter;

namespace {

/// The seed implementation of GroupSV, kept verbatim as the serial
/// baseline: per coalition, gather members, rebuild the mean from
/// scratch (O(2^m * m) matrix adds) and score it through the unfused
/// FromWeights + Accuracy path (re-copies weights, re-augments, builds
/// the full probability matrix).
Result<std::vector<double>> NaiveGroupTotals(
    const std::vector<std::vector<ml::Matrix>>& per_round_locals,
    size_t num_users, size_t m, uint64_t seed_e,
    const ml::Dataset& test_set) {
  std::vector<double> totals(num_users, 0.0);
  for (size_t r = 0; r < per_round_locals.size(); ++r) {
    const auto& locals = per_round_locals[r];
    std::vector<size_t> perm = shapley::PermutationFromSeed(seed_e, r,
                                                           num_users);
    BCFL_ASSIGN_OR_RETURN(std::vector<std::vector<size_t>> groups,
                          shapley::GroupUsers(perm, m));
    std::vector<ml::Matrix> group_models;
    group_models.reserve(m);
    for (const auto& members : groups) {
      std::vector<ml::Matrix> parts;
      parts.reserve(members.size());
      for (size_t i : members) parts.push_back(locals[i]);
      BCFL_ASSIGN_OR_RETURN(ml::Matrix mean, ml::MeanOfMatrices(parts));
      group_models.push_back(std::move(mean));
    }

    const uint64_t full = 1ULL << m;
    const size_t rows = group_models[0].rows();
    const size_t cols = group_models[0].cols();
    std::vector<double> utilities(full);
    for (uint64_t mask = 0; mask < full; ++mask) {
      ml::Matrix coalition(rows, cols);
      size_t count = 0;
      for (size_t j = 0; j < m; ++j) {
        if (mask & (1ULL << j)) {
          BCFL_RETURN_IF_ERROR(coalition.AddInPlace(group_models[j]));
          ++count;
        }
      }
      if (count > 0) coalition.Scale(1.0 / static_cast<double>(count));
      BCFL_ASSIGN_OR_RETURN(ml::LogisticRegression model,
                            ml::LogisticRegression::FromWeights(coalition));
      BCFL_ASSIGN_OR_RETURN(utilities[mask], model.Accuracy(test_set));
    }
    BCFL_ASSIGN_OR_RETURN(std::vector<double> values,
                          shapley::ExactShapleyFromTable(m, utilities));
    for (size_t j = 0; j < m; ++j) {
      double share = values[j] / static_cast<double>(groups[j].size());
      for (size_t i : groups[j]) totals[i] += share;
    }
  }
  return totals;
}

Result<std::vector<double>> EngineGroupTotals(
    const std::vector<std::vector<ml::Matrix>>& per_round_locals,
    size_t num_users, size_t m, uint64_t seed_e,
    const ml::Dataset& test_set, ThreadPool* pool) {
  shapley::TestAccuracyUtility utility(test_set);
  shapley::GroupShapleyConfig config;
  config.num_groups = m;
  config.seed_e = seed_e;
  config.pool = pool;
  shapley::GroupShapley evaluator(num_users, config, &utility);
  return evaluator.AccumulateOverRounds(per_round_locals);
}

bool BitIdentical(const std::vector<double>& a,
                  const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// The --quick CI gate: per-coalition histogram/span recording on the
/// m=9 hot path must cost < 3% wall time and must not perturb the SV
/// numbers. Timed serially (no pool) so the comparison isn't at the
/// mercy of scheduler jitter, interleaved on/off with min-of-reps so
/// thermal drift hits both sides equally.
int RunObsOverheadGate(uint64_t seed_e) {
  constexpr size_t kGateGroups = 9;
  constexpr int kReps = 5;
  constexpr double kMaxOverhead = 0.03;

  ThreadPool pool(std::max<size_t>(
      1, std::thread::hardware_concurrency()));
  Workload workload = Workload::Make(/*sigma=*/1.0, /*seed=*/42,
                                     /*instances=*/2000);
  auto run = workload.trainer->Run(&pool).value();

  double best_on_s = HUGE_VAL;
  double best_off_s = HUGE_VAL;
  bool identical = true;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::MetricsRegistry::set_enabled(true);
    obs::Tracer::Global().set_enabled(true);
    Stopwatch on_timer;
    auto with_obs = EngineGroupTotals(run.per_round_locals, Workload::kOwners,
                                      kGateGroups, seed_e, workload.test_set,
                                      nullptr);
    best_on_s = std::min(best_on_s, on_timer.ElapsedSeconds());

    obs::MetricsRegistry::set_enabled(false);
    obs::Tracer::Global().set_enabled(false);
    Stopwatch off_timer;
    auto without_obs = EngineGroupTotals(run.per_round_locals,
                                         Workload::kOwners, kGateGroups,
                                         seed_e, workload.test_set, nullptr);
    best_off_s = std::min(best_off_s, off_timer.ElapsedSeconds());
    obs::MetricsRegistry::set_enabled(true);
    obs::Tracer::Global().set_enabled(true);

    if (!with_obs.ok() || !without_obs.ok()) {
      std::printf("obs-overhead gate: evaluation failed at m=%zu\n",
                  kGateGroups);
      return 1;
    }
    identical = identical && BitIdentical(*with_obs, *without_obs);
  }

  const double overhead =
      best_off_s > 0 ? best_on_s / best_off_s - 1.0 : 0.0;
  const bool within_budget = overhead < kMaxOverhead;
  std::printf("obs-overhead gate (m=%zu, min of %d reps): "
              "on %.4f s, off %.4f s, overhead %+.2f%% (budget %.0f%%) — "
              "%s; SV outputs %s\n",
              kGateGroups, kReps, best_on_s, best_off_s, overhead * 100.0,
              kMaxOverhead * 100.0, within_budget ? "ok" : "OVER BUDGET",
              identical ? "bit-identical" : "DIVERGED");

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "table1_obs_overhead");
  json.Field("m", kGateGroups);
  json.Field("reps", static_cast<size_t>(kReps));
  json.Field("obs_on_s", best_on_s);
  json.Field("obs_off_s", best_off_s);
  json.Field("overhead_frac", overhead);
  json.Field("overhead_budget_frac", kMaxOverhead);
  json.Field("obs_overhead_ok", within_budget);
  json.Field("sv_identical_with_obs_off", identical);
  json.EndObject();
  const char* out_path = "BENCH_obs_overhead.json";
  if (!json.WriteFile(out_path)) {
    std::printf("failed to write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return within_budget && identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t kSeedE = 7;
  const double kSigma = 1.0;
  const double kPaperGroup[] = {2, 3, 4, 7, 11, 20, 39, 77};
  const double kPaperNative = 316;
  bool skip_native = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-native") == 0) skip_native = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) return RunObsOverheadGate(kSeedE);

  const size_t hw_threads =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  ThreadPool pool(hw_threads);
  ThreadPool single(1);

  Workload workload = Workload::Make(kSigma);
  // The FL run itself is not part of the timed evaluation (the paper
  // times the contribution evaluation, which consumes recorded updates).
  auto run = workload.trainer->Run(&pool).value();

  std::printf("Table I reproduction: contribution-evaluation runtime\n");
  std::printf("(naive = seed serial walk; engine = coalition engine, "
              "serial and %zu-thread)\n", hw_threads);
  PrintRule();
  std::printf("%-8s %-9s %-11s %-11s %-11s %-9s %-12s\n", "method",
              "# groups", "naive/s", "engine1/s", "engineN/s", "speedup",
              "paper time/s");
  PrintRule();

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "table1_runtime");
  json.Field("sigma", kSigma);
  json.Field("owners", Workload::kOwners);
  json.Field("rounds", Workload::kRounds);
  json.Field("hardware_threads", hw_threads);
  json.Field("pool_threads", pool.num_threads());
  json.BeginArray("group_sv");

  double naive_total = 0, engine_total = 0;
  double group_sv_at_9 = 0;
  bool all_bit_identical = true;
  for (size_t m = 2; m <= 9; ++m) {
    Stopwatch naive_timer;
    auto naive = NaiveGroupTotals(run.per_round_locals, Workload::kOwners,
                                  m, kSeedE, workload.test_set);
    const double naive_s = naive_timer.ElapsedSeconds();
    if (!naive.ok()) {
      std::printf("naive GroupSV failed at m=%zu: %s\n", m,
                  naive.status().ToString().c_str());
      return 1;
    }

    Stopwatch serial_timer;
    auto serial = EngineGroupTotals(run.per_round_locals, Workload::kOwners,
                                    m, kSeedE, workload.test_set, nullptr);
    const double serial_s = serial_timer.ElapsedSeconds();

    Stopwatch parallel_timer;
    auto parallel = EngineGroupTotals(run.per_round_locals,
                                      Workload::kOwners, m, kSeedE,
                                      workload.test_set, &pool);
    const double parallel_s = parallel_timer.ElapsedSeconds();
    if (!serial.ok() || !parallel.ok()) {
      std::printf("engine GroupSV failed at m=%zu\n", m);
      return 1;
    }

    // Determinism contract: 1 worker vs hardware_threads workers must be
    // bit-for-bit identical.
    auto one_thread = EngineGroupTotals(run.per_round_locals,
                                        Workload::kOwners, m, kSeedE,
                                        workload.test_set, &single);
    const bool bit_identical = one_thread.ok() &&
                               BitIdentical(*one_thread, *parallel) &&
                               BitIdentical(*serial, *parallel);
    all_bit_identical = all_bit_identical && bit_identical;

    const double speedup = parallel_s > 0 ? naive_s / parallel_s : 0;
    naive_total += naive_s;
    engine_total += parallel_s;
    if (m == 9) group_sv_at_9 = parallel_s;
    std::printf("%-8s %-9zu %-11.3f %-11.3f %-11.3f %-9.2f %-12.0f%s\n",
                "GroupSV", m, naive_s, serial_s, parallel_s, speedup,
                kPaperGroup[m - 2], bit_identical ? "" : "  !!nondet");

    json.BeginObject();
    json.Field("m", m);
    json.Field("naive_s", naive_s);
    json.Field("engine_serial_s", serial_s);
    json.Field("engine_parallel_s", parallel_s);
    json.Field("speedup_serial", serial_s > 0 ? naive_s / serial_s : 0.0);
    json.Field("speedup_parallel", speedup);
    json.Field("bit_identical_across_threads", bit_identical);
    json.Field("paper_s", kPaperGroup[m - 2]);
    json.EndObject();
  }
  json.EndArray();
  json.Field("group_sv_naive_total_s", naive_total);
  json.Field("group_sv_engine_total_s", engine_total);
  json.Field("group_sv_total_speedup",
             engine_total > 0 ? naive_total / engine_total : 0.0);
  json.Field("bit_identical_across_threads", all_bit_identical);

  PrintRule();
  std::printf("GroupSV m=2..9 end-to-end: naive %.3f s, engine %.3f s "
              "(%.2fx); 1-thread vs %zu-thread outputs %s\n",
              naive_total, engine_total,
              engine_total > 0 ? naive_total / engine_total : 0.0,
              hw_threads,
              all_bit_identical ? "bit-identical" : "DIVERGED");

  if (!skip_native) {
    // Native SV: 2^9 coalition models retrained from scratch (the
    // paper's transparency-incompatible baseline), on the same pool.
    Stopwatch timer;
    auto truth = workload.GroundTruth(&pool,
                                      /*epochs=*/Workload::kRounds *
                                          Workload::kLocalEpochs);
    double elapsed = timer.ElapsedSeconds();
    (void)truth;
    PrintRule();
    std::printf("%-8s %-9d %-11s %-11s %-11.3f %-9s %-12.0f\n", "NativeSV",
                9, "-", "-", elapsed, "-", kPaperNative);
    std::printf(
        "Shape check: GroupSV(m=9) / NativeSV = %.3f (paper: %.3f);\n"
        "GroupSV cost roughly doubles per extra group in both columns.\n",
        group_sv_at_9 / elapsed, 77.0 / 316.0);
    json.Field("native_sv_s", elapsed);
  }
  json.EndObject();

  const char* out_path = "BENCH_table1.json";
  if (json.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("failed to write %s\n", out_path);
    return 1;
  }
  Status exported = obs::ExportGlobalWithPrefix("BENCH_table1");
  if (!exported.ok()) {
    std::printf("failed to export observability artifacts: %s\n",
                exported.ToString().c_str());
    return 1;
  }
  return all_bit_identical ? 0 : 1;
}
