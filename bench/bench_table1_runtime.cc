// Reproduces Table I: wall-clock time of GroupSV for m = 2..9 versus the
// native SV method (n = 9).
//
// Paper numbers (Python/NumPy): GroupSV 2/3/4/7/11/20/39/77 s for
// m=2..9; NativeSV 316 s. Absolute values differ (C++ vs Python, our
// simulator vs their testbed); the *shape* to reproduce is (a) GroupSV
// cost grows ~2x per extra group (2^m coalition evaluations) and (b)
// native SV is an order of magnitude above GroupSV at m = 9, because it
// retrains 2^n coalition models while GroupSV only aggregates local
// updates.

#include <cstdio>

#include "common/sim_clock.h"
#include "shapley/group_sv.h"
#include "workload.h"

using namespace bcfl;
using namespace bcfl::bench;

int main() {
  const uint64_t kSeedE = 7;
  const double kSigma = 1.0;
  const double kPaperGroup[] = {2, 3, 4, 7, 11, 20, 39, 77};
  const double kPaperNative = 316;

  Workload workload = Workload::Make(kSigma);
  // The FL run itself is not part of the timed evaluation (the paper
  // times the contribution evaluation, which consumes recorded updates).
  auto run = workload.trainer->Run().value();

  std::printf("Table I reproduction: contribution-evaluation runtime "
              "(single-threaded)\n");
  PrintRule();
  std::printf("%-12s %-10s %-14s %-14s\n", "method", "# groups", "time/s",
              "paper time/s");
  PrintRule();

  double group_sv_at_9 = 0;
  for (size_t m = 2; m <= 9; ++m) {
    shapley::TestAccuracyUtility utility(workload.test_set);
    shapley::GroupShapley evaluator(Workload::kOwners, {m, kSeedE},
                                    &utility);
    Stopwatch timer;
    auto totals = evaluator.AccumulateOverRounds(run.per_round_locals);
    double elapsed = timer.ElapsedSeconds();
    if (!totals.ok()) {
      std::printf("GroupSV evaluation failed at m=%zu: %s\n", m,
                  totals.status().ToString().c_str());
      return 1;
    }
    if (m == 9) group_sv_at_9 = elapsed;
    std::printf("%-12s %-10zu %-14.3f %-14.0f\n", "GroupSV", m, elapsed,
                kPaperGroup[m - 2]);
  }

  // Native SV: 2^9 coalition models retrained from scratch (the paper's
  // transparency-incompatible baseline). Single-threaded for a fair
  // comparison with the GroupSV timing above.
  {
    Stopwatch timer;
    auto truth = workload.GroundTruth(/*pool=*/nullptr,
                                      /*epochs=*/Workload::kRounds *
                                          Workload::kLocalEpochs);
    double elapsed = timer.ElapsedSeconds();
    (void)truth;
    std::printf("%-12s %-10d %-14.3f %-14.0f\n", "NativeSV", 9, elapsed,
                kPaperNative);
    PrintRule();
    std::printf(
        "Shape check: GroupSV(m=9) / NativeSV = %.3f (paper: %.3f);\n"
        "GroupSV cost roughly doubles per extra group in both columns.\n",
        group_sv_at_9 / elapsed, 77.0 / 316.0);
  }
  return 0;
}
