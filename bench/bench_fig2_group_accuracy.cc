// Reproduces Fig. 2: cosine similarity between the GroupSV totals and
// the ground-truth native SV, versus the number of groups m, for several
// data-quality sigmas.
//
// Paper shape to reproduce:
//  - sigma = 0: similarity *decreases* with m (ground truth is ~uniform;
//    coarse groups allocate uniformly and match it best).
//  - sigma > 0: similarity *increases* with m (finer groups approach the
//    native per-user evaluation) and with sigma (more diverse quality is
//    easier to rank).

#include <cstdio>
#include <thread>

#include "common/sim_clock.h"
#include "shapley/group_sv.h"
#include "shapley/similarity.h"
#include "workload.h"

using namespace bcfl;
using namespace bcfl::bench;

std::vector<double> Centered(std::vector<double> v) {
  double mean = 0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (double& x : v) x -= mean;
  return v;
}

int main() {
  const double sigmas[] = {0.0, 0.5, 1.0, 2.0};
  const uint64_t kSeedE = 7;
  ThreadPool pool(std::thread::hardware_concurrency());

  // For each sigma collect GroupSV totals for every m plus the ground
  // truth, then print both the raw cosine (scale-sensitive, dominated by
  // the common positive mean that the efficiency axiom forces on all
  // SV vectors) and the mean-centered cosine (which compares the
  // *relative ranking signal*, the quantity Fig. 2's trends describe).
  std::vector<std::vector<double>> raw(std::size(sigmas)),
      centered(std::size(sigmas));
  for (size_t s = 0; s < std::size(sigmas); ++s) {
    // 30 FL rounds: GroupSV totals average over 30 random groupings,
    // which is what smooths the per-owner estimate at moderate sigma.
    Workload workload = Workload::Make(sigmas[s], 42, 5620, 30);
    auto truth = workload.GroundTruth(&pool);
    auto run = workload.trainer->Run(&pool).value();
    for (size_t m = 2; m <= 9; ++m) {
      shapley::TestAccuracyUtility utility(workload.test_set);
      shapley::GroupShapley evaluator(Workload::kOwners, {m, kSeedE},
                                      &utility);
      auto totals =
          evaluator.AccumulateOverRounds(run.per_round_locals).value();
      raw[s].push_back(
          shapley::CosineSimilarity(totals, truth.values).ValueOr(0.0));
      centered[s].push_back(
          shapley::CosineSimilarity(Centered(totals),
                                    Centered(truth.values))
              .ValueOr(0.0));
    }
  }

  auto print_table = [&](const char* title,
                         const std::vector<std::vector<double>>& table) {
    std::printf("%s\n", title);
    PrintRule();
    std::printf("%-7s", "sigma");
    for (size_t m = 2; m <= 9; ++m) std::printf("   m=%zu  ", m);
    std::printf("\n");
    PrintRule();
    for (size_t s = 0; s < std::size(sigmas); ++s) {
      std::printf("%-7.2f", sigmas[s]);
      for (double v : table[s]) std::printf("%+7.4f ", v);
      std::printf("\n");
    }
    PrintRule();
  };

  std::printf("Fig. 2 reproduction: similarity of GroupSV vs native SV "
              "over # of groups\n\n");
  print_table("Raw cosine similarity:", raw);
  std::printf("\n");
  print_table("Mean-centered cosine similarity (ranking signal):",
              centered);
  std::printf(
      "\nExpected shape (paper): for sigma=0 similarity decreases with m\n"
      "(ground truth is ~uniform, which coarse groups match best); for\n"
      "sigma>0 it increases with m (finer groups approach the native\n"
      "per-user evaluation) and with sigma (stronger quality signal).\n"
      "The centered table exposes these trends; the raw table is pinned\n"
      "near 1 by the common positive mean the efficiency axiom forces.\n");
  return 0;
}
