// Ablation E: why the paper chooses secure aggregation over LDP
// (Sect. II-B: "the accumulated noises make the model not very useful").
//
// Sweeps the per-round privacy budget epsilon for LDP-FL and compares
// the final model accuracy against (a) plain FL with no protection and
// (b) FL over secure aggregation, which is numerically exact up to
// fixed-point quantisation — the whole point of the paper's design.

#include <cstdio>

#include "data/digits.h"
#include "data/partition.h"
#include "fl/trainer.h"
#include "privacy/ldp_fl.h"
#include "secureagg/session.h"
#include "workload.h"

using namespace bcfl;
using namespace bcfl::bench;

namespace {

constexpr size_t kOwners = 9;
constexpr size_t kRounds = 10;

std::vector<fl::FlClient> MakeClients(ml::Dataset* test_out) {
  data::DigitsConfig digits;
  digits.num_instances = 3000;
  digits.seed = 8;
  ml::Dataset full = data::DigitsGenerator(digits).Generate();
  Xoshiro256 rng(8);
  auto split = full.TrainTestSplit(0.8, &rng).value();
  *test_out = std::move(split.second);
  auto parts = data::PartitionUniform(split.first, kOwners, &rng).value();
  ml::LogisticRegressionConfig lr;
  lr.learning_rate = 0.05;
  lr.epochs = 5;
  std::vector<fl::FlClient> clients;
  for (size_t i = 0; i < kOwners; ++i) {
    clients.emplace_back(static_cast<fl::OwnerId>(i), std::move(parts[i]),
                         lr);
  }
  return clients;
}

double Accuracy(const ml::Matrix& weights, const ml::Dataset& test) {
  auto model = ml::LogisticRegression::FromWeights(weights).value();
  return model.Accuracy(test).value();
}

/// Plain FL run through secure aggregation: every round the clients'
/// updates pass the full mask/unmask pipeline (one global group).
double SecureAggAccuracy(std::vector<fl::FlClient> clients,
                         const ml::Dataset& test) {
  secureagg::SessionConfig sa_config;
  sa_config.use_self_masks = false;
  auto session = secureagg::SecureAggSession::Create(kOwners, sa_config)
                     .value();
  std::vector<secureagg::OwnerId> group;
  for (size_t i = 0; i < kOwners; ++i) {
    group.push_back(static_cast<secureagg::OwnerId>(i));
  }
  ml::Matrix global(65, 10);
  for (uint64_t round = 0; round < kRounds; ++round) {
    std::map<secureagg::OwnerId, std::vector<uint64_t>> submissions;
    for (size_t i = 0; i < kOwners; ++i) {
      ml::Matrix local = clients[i].LocalUpdate(global).value();
      submissions[static_cast<secureagg::OwnerId>(i)] =
          session
              .Submit(static_cast<secureagg::OwnerId>(i), round, group,
                      local.data())
              .value();
    }
    auto mean =
        session.AggregateGroupMean(round, group, submissions).value();
    global.mutable_data() = mean;
  }
  return Accuracy(global, test);
}

}  // namespace

int main() {
  ml::Dataset test;

  std::printf("Ablation E: privacy mechanism vs model utility "
              "(9 owners, %zu rounds)\n", kRounds);
  PrintRule();
  std::printf("%-28s %-16s %-18s\n", "mechanism", "test accuracy",
              "total eps (basic)");
  PrintRule();

  // Baseline: plain FedAvg, no protection.
  {
    auto clients = MakeClients(&test);
    fl::FlConfig config;
    config.rounds = kRounds;
    config.local.learning_rate = 0.05;
    config.local.epochs = 5;
    fl::FederatedTrainer trainer(std::move(clients), config);
    auto run = trainer.Run().value();
    std::printf("%-28s %-16.4f %-18s\n", "plain FL (no privacy)",
                Accuracy(run.global_weights, test), "-");
  }

  // Secure aggregation: exact up to fixed-point quantisation.
  {
    auto clients = MakeClients(&test);
    double acc = SecureAggAccuracy(std::move(clients), test);
    std::printf("%-28s %-16.4f %-18s\n", "secure aggregation (paper)", acc,
                "-");
  }

  // LDP at several per-round budgets.
  for (double eps : {10.0, 3.0, 1.0, 0.3, 0.1}) {
    auto clients = MakeClients(&test);
    privacy::LdpFlConfig config;
    config.fl.rounds = kRounds;
    config.fl.local.learning_rate = 0.05;
    config.fl.local.epochs = 5;
    config.per_round = {eps, 1e-5};
    config.clip_norm = 1.0;
    privacy::LdpFederatedTrainer trainer(std::move(clients), config);
    auto result = trainer.Run().value();
    char label[64];
    std::snprintf(label, sizeof(label), "LDP, eps=%.1f/round", eps);
    std::printf("%-28s %-16.4f %-18.1f\n", label,
                Accuracy(result.global_weights, test),
                result.total_basic.epsilon);
  }
  PrintRule();
  std::printf(
      "Shape: secure aggregation matches plain FL to within fixed-point\n"
      "quantisation, while LDP utility collapses as the per-round budget\n"
      "tightens — the Sect. II-B claim that motivates the paper's design.\n");
  return 0;
}
