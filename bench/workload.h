#pragma once

// Shared experiment workload for the paper-reproduction benches: the
// Sect. V setup — synthetic digits (5620 x 64, 10 classes), 8:2 split,
// 9 data owners with the N(0, sigma*i) quality gradient, logistic
// regression + FedAvg.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "data/digits.h"
#include "data/noise.h"
#include "data/partition.h"
#include "fl/trainer.h"
#include "shapley/native_sv.h"
#include "shapley/utility.h"

namespace bcfl::bench {

struct Workload {
  ml::Dataset test_set;
  std::unique_ptr<fl::FederatedTrainer> trainer;

  static constexpr size_t kOwners = 9;
  static constexpr size_t kRounds = 10;
  static constexpr size_t kLocalEpochs = 5;

  /// Builds the paper's workload for a given data-quality sigma.
  /// `rounds` overrides the default FL round count (0 = kRounds) —
  /// contribution-evaluation experiments average GroupSV over the
  /// per-round groupings, so more rounds give a smoother estimate.
  static Workload Make(double sigma, uint64_t seed = 42,
                       size_t instances = 5620, size_t rounds = 0) {
    data::DigitsConfig digits;
    digits.num_instances = instances;
    digits.seed = seed;
    ml::Dataset full = data::DigitsGenerator(digits).Generate();
    Xoshiro256 rng(seed);
    auto split = full.TrainTestSplit(0.8, &rng).value();
    auto parts =
        data::PartitionUniform(split.first, kOwners, &rng).value();
    data::ApplyQualityGradient(&parts, sigma, seed + 1);

    ml::LogisticRegressionConfig lr;
    lr.learning_rate = 0.05;
    lr.epochs = kLocalEpochs;
    std::vector<fl::FlClient> clients;
    clients.reserve(kOwners);
    for (size_t i = 0; i < kOwners; ++i) {
      clients.emplace_back(static_cast<fl::OwnerId>(i), std::move(parts[i]),
                           lr);
    }
    fl::FlConfig fl_config;
    fl_config.rounds = rounds != 0 ? rounds : kRounds;
    fl_config.local = lr;

    Workload w;
    w.test_set = std::move(split.second);
    w.trainer = std::make_unique<fl::FederatedTrainer>(std::move(clients),
                                                       fl_config);
    return w;
  }

  /// Ground-truth native SV (Eq. 1) over 2^9 retrained coalition models,
  /// exactly as the paper's Sect. V-B-1. `epochs` is the per-coalition
  /// training budget.
  shapley::NativeShapleyResult GroundTruth(ThreadPool* pool,
                                           size_t epochs = 20) const {
    shapley::TestAccuracyUtility utility(test_set);
    shapley::NativeShapleyConfig config;
    config.source = shapley::CoalitionModelSource::kRetrainCentralized;
    config.epochs = epochs;
    config.pool = pool;
    shapley::NativeShapley shapley(trainer.get(), &utility, config);
    return shapley.Compute().value();
  }
};

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bcfl::bench
