// End-to-end round-engine gate: the parallel round engine (concurrent
// owner train/mask/submit with canonical-order replay) must be
// bit-identical to the serial reference path — same per-round SV
// vectors, same global model, same canonical chain tip — for any pool
// size, under faults included; and on multi-core hosts it must actually
// be faster. This binary asserts the identities (exit non-zero on any
// divergence), measures serial vs parallel rounds/s at the paper's n=9
// roster, microbenches the batched Shamir recovery against the
// per-secret reference, and drops BENCH_e2e.json in the working
// directory for the CI bench_diff gate.
//
// The >= 2x speedup floor is only enforced when the parallel engine has
// >= 4 pool threads — on small CI boxes (1-2 cores) the identity checks
// still gate, the speedup is merely reported (same convention as the
// Schnorr-speedup floor in bench_chain_throughput, which gates only on
// the montgomery path).
//
// Flags: --quick  fewer rounds and smaller datasets (CI smoke mode).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "core/coordinator.h"
#include "crypto/shamir.h"
#include "obs/json_writer.h"

namespace {

using namespace bcfl;
using bcfl::obs::JsonWriter;

struct SessionStats {
  double wall_seconds = 0.0;
  core::BcflRunResult result;
  crypto::Digest tip_hash;
  size_t pool_threads = 1;
};

/// Creates and runs one full session; only Run() (the R rounds) is
/// timed — dataset synthesis and setup are identical across engines.
bool RunSession(core::BcflConfig config, SessionStats* stats) {
  auto coordinator = core::BcflCoordinator::Create(std::move(config));
  if (!coordinator.ok()) {
    std::printf("  !! Create failed: %s\n",
                coordinator.status().ToString().c_str());
    return false;
  }
  Stopwatch timer;
  auto result = (*coordinator)->Run();
  stats->wall_seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::printf("  !! Run failed: %s\n", result.status().ToString().c_str());
    return false;
  }
  stats->result = std::move(result).value();
  stats->tip_hash = (*coordinator)->engine().CanonicalChain().Tip().header.Hash();
  stats->pool_threads = (*coordinator)->pool_threads_in_use();
  return true;
}

/// Everything the chain and the evaluation make visible must match.
bool SameRun(const SessionStats& a, const SessionStats& b,
             const char* label) {
  bool same = a.result.per_round_sv == b.result.per_round_sv &&
              a.result.total_sv == b.result.total_sv &&
              a.result.global_weights == b.result.global_weights &&
              a.result.round_accuracies == b.result.round_accuracies &&
              a.result.blocks_committed == b.result.blocks_committed &&
              a.result.total_transactions == b.result.total_transactions &&
              a.result.retired_at == b.result.retired_at &&
              a.result.recover_transactions == b.result.recover_transactions &&
              a.result.submission_retries == b.result.submission_retries &&
              a.tip_hash == b.tip_hash;
  if (!same) std::printf("  !! %s diverged\n", label);
  return same;
}

core::BcflConfig PaperRosterConfig(bool quick) {
  core::BcflConfig config;
  config.num_owners = 9;
  config.num_miners = 3;
  config.num_groups = 3;
  config.rounds = quick ? 2 : 4;
  config.seed = 42;
  config.seed_e = 7;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  config.digits.num_instances = quick ? 600 : 1200;
  return config;
}

/// Faulted identity: the round engine must not disturb the dropout /
/// recovery / retry machinery either.
bool CheckFaultedEquivalence() {
  core::BcflConfig config;
  config.num_owners = 4;
  config.num_miners = 3;
  config.num_groups = 2;
  config.rounds = 3;
  config.seed = 21;
  config.seed_e = 5;
  config.local.epochs = 2;
  config.digits.num_instances = 400;
  config.fault_plan = *fault::FaultPlan::Parse(
      "crash owner 2 @1; drop-submit owner 1 @2 x2");
  config.round_engine = core::RoundEngineMode::kSerial;
  SessionStats serial;
  if (!RunSession(config, &serial)) return false;
  config.round_engine = core::RoundEngineMode::kParallel;
  config.pool_threads = 3;
  SessionStats parallel;
  if (!RunSession(config, &parallel)) return false;
  if (serial.result.retired_at.empty()) {
    std::printf("  !! faulted run recovered nobody — plan did not bite\n");
    return false;
  }
  return SameRun(serial, parallel, "faulted serial-vs-parallel");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const size_t hw_threads =
      std::max<size_t>(1, std::thread::hardware_concurrency());

  std::printf("End-to-end round-engine bench (n=9 roster%s)\n",
              quick ? ", quick" : "");

  // ---- Timed runs + identity gate ---------------------------------------
  core::BcflConfig config = PaperRosterConfig(quick);
  config.round_engine = core::RoundEngineMode::kSerial;
  SessionStats serial;
  if (!RunSession(config, &serial)) return 1;

  config.round_engine = core::RoundEngineMode::kParallel;
  config.pool_threads = 0;  // One per hardware thread.
  SessionStats parallel;
  if (!RunSession(config, &parallel)) return 1;

  // Pool-size invariance: one worker must see the exact same chain as N.
  config.pool_threads = 1;
  SessionStats single;
  if (!RunSession(config, &single)) return 1;

  const bool serial_parallel_ok =
      SameRun(serial, parallel, "serial-vs-parallel");
  const bool pool_size_ok = SameRun(parallel, single, "pool-N-vs-pool-1");
  const bool faulted_ok = CheckFaultedEquivalence();

  const double rounds = static_cast<double>(serial.result.per_round_sv.size());
  const double serial_rps = rounds / serial.wall_seconds;
  const double parallel_rps = rounds / parallel.wall_seconds;
  const double speedup =
      parallel.wall_seconds > 0 ? serial.wall_seconds / parallel.wall_seconds
                                : 0.0;
  std::printf("serial:   %.2f s  (%.2f rounds/s)\n", serial.wall_seconds,
              serial_rps);
  std::printf("parallel: %.2f s  (%.2f rounds/s, %zu pool threads) -> %.2fx\n",
              parallel.wall_seconds, parallel_rps, parallel.pool_threads,
              speedup);

  // ---- Batched Shamir recovery microbench -------------------------------
  // The recovery shape: many 32-byte secrets revealed by one surviving
  // roster. The batch path hoists the Lagrange basis (one batch-inverted
  // set of coefficients for the whole batch) where the reference pays a
  // per-coefficient field inversion per secret.
  bool shamir_ok = true;
  double shamir_ref_us = 0.0, shamir_batch_us = 0.0, shamir_speedup = 0.0;
  {
    auto scheme = crypto::ShamirSecretSharing::Create(5, 9).value();
    Xoshiro256 rng(17);
    const size_t kSecrets = 16;
    std::vector<Bytes> secrets(kSecrets);
    std::vector<std::vector<crypto::ShamirShare>> sets(kSecrets);
    std::vector<size_t> sizes(kSecrets, 32);
    for (size_t s = 0; s < kSecrets; ++s) {
      secrets[s].resize(32);
      for (auto& b : secrets[s]) b = static_cast<uint8_t>(rng.Next());
      auto shares = scheme.Split(secrets[s], &rng);
      sets[s].assign(shares.begin(), shares.begin() + 5);
    }
    const size_t reps = quick ? 20 : 100;
    Stopwatch ref_timer;
    for (size_t r = 0; r < reps && shamir_ok; ++r) {
      for (size_t s = 0; s < kSecrets; ++s) {
        auto back = scheme.ReconstructReference(sets[s], sizes[s]);
        if (!back.ok() || *back != secrets[s]) shamir_ok = false;
      }
    }
    const double ref_s = ref_timer.ElapsedSeconds();
    Stopwatch batch_timer;
    for (size_t r = 0; r < reps && shamir_ok; ++r) {
      auto back = scheme.ReconstructBatch(sets, sizes, nullptr);
      if (!back.ok()) {
        shamir_ok = false;
        break;
      }
      for (size_t s = 0; s < kSecrets; ++s) {
        if ((*back)[s] != secrets[s]) shamir_ok = false;
      }
    }
    const double batch_s = batch_timer.ElapsedSeconds();
    const double per = static_cast<double>(reps) * kSecrets;
    shamir_ref_us = ref_s / per * 1e6;
    shamir_batch_us = batch_s / per * 1e6;
    shamir_speedup = batch_s > 0 ? ref_s / batch_s : 0.0;
    std::printf("shamir recover (16 x 32B): ref %.1f us, batch %.1f us, "
                "%.1fx%s\n",
                shamir_ref_us, shamir_batch_us, shamir_speedup,
                shamir_ok ? "" : "  !! MISMATCH");
  }

  struct NamedCheck {
    const char* name;
    bool ok;
  };
  const NamedCheck checks[] = {
      {"serial_parallel_identical", serial_parallel_ok},
      {"pool_size_invariant", pool_size_ok},
      {"faulted_identical", faulted_ok},
      {"shamir_batch_reference", shamir_ok},
  };
  bool all_ok = true;
  std::printf("equivalence vs reference:");
  for (const NamedCheck& c : checks) {
    all_ok = all_ok && c.ok;
    std::printf(" %s=%s", c.name, c.ok ? "ok" : "FAIL");
  }
  std::printf("\n");

  // The speedup floor gates only where the parallelism exists to deliver
  // it; identity always gates.
  const bool enforce_speedup = parallel.pool_threads >= 4;
  bool speedup_ok = true;
  if (enforce_speedup && speedup < 2.0) {
    std::printf("!! parallel speedup %.2fx below the 2x floor "
                "(%zu pool threads)\n",
                speedup, parallel.pool_threads);
    speedup_ok = false;
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "e2e_rounds");
  json.Field("quick", quick);
  json.Field("owners", static_cast<size_t>(9));
  json.Field("rounds", static_cast<size_t>(rounds));
  json.Field("hardware_threads", hw_threads);
  json.Field("pool_threads", parallel.pool_threads);
  json.BeginObject("equivalence");
  for (const NamedCheck& c : checks) json.Field(c.name, c.ok);
  json.EndObject();
  json.Field("all_equivalent", all_ok);
  json.BeginObject("serial");
  json.Field("wall_s", serial.wall_seconds);
  json.Field("rounds_per_s", serial_rps);
  json.EndObject();
  json.BeginObject("parallel");
  json.Field("wall_s", parallel.wall_seconds);
  json.Field("rounds_per_s", parallel_rps);
  json.Field("speedup", speedup);
  json.Field("speedup_gate_enforced", enforce_speedup);
  json.EndObject();
  json.BeginObject("shamir_recover");
  json.Field("reference_us", shamir_ref_us);
  json.Field("batch_us", shamir_batch_us);
  json.Field("speedup", shamir_speedup);
  json.EndObject();
  json.EndObject();

  const char* out_path = "BENCH_e2e.json";
  if (json.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("failed to write %s\n", out_path);
    return 1;
  }
  return (all_ok && speedup_ok) ? 0 : 1;
}
