// Reproduces Fig. 1: ground-truth (native, Eq. 1) Shapley value per data
// owner for several data-quality sigmas.
//
// Paper shape to reproduce:
//  - sigma = 0: every owner's SV is close to zero (uniform random split,
//    negligible marginal contributions).
//  - sigma > 0: SV decreases with the owner index (owner 0 holds the
//    cleanest data) and the spread widens with sigma.

#include <cstdio>
#include <thread>

#include "common/sim_clock.h"
#include "workload.h"

using namespace bcfl;
using namespace bcfl::bench;

int main() {
  const double sigmas[] = {0.0, 0.5, 1.0, 2.0};
  ThreadPool pool(std::thread::hardware_concurrency());

  std::printf("Fig. 1 reproduction: ground-truth SV distribution over "
              "users w.r.t. sigma\n");
  std::printf("(native SV, Eq. 1, over 2^9 retrained coalition models; "
              "9 owners, synthetic digits)\n");
  PrintRule();
  std::printf("%-7s", "sigma");
  for (size_t i = 0; i < Workload::kOwners; ++i) {
    std::printf("  user%zu  ", i);
  }
  std::printf("\n");
  PrintRule();

  for (double sigma : sigmas) {
    Workload workload = Workload::Make(sigma);
    Stopwatch timer;
    auto truth = workload.GroundTruth(&pool);
    std::printf("%-7.2f", sigma);
    for (double v : truth.values) std::printf("%+8.4f ", v);
    std::printf("  (%.1fs)\n", timer.ElapsedSeconds());
  }
  PrintRule();
  std::printf(
      "Expected shape: near-zero flat SVs at sigma=0; monotone-decreasing\n"
      "SV with owner index (noise grows as sigma*i) once sigma > 0, with\n"
      "the spread widening as sigma increases.\n");
  return 0;
}
