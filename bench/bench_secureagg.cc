// Ablation A: secure-aggregation overhead and exactness.
//
// Part 1 (google-benchmark): masking / aggregation cost vs update size
// and group size, compared against plain (unmasked) aggregation.
// Part 2 (printed table): fixed-point quantisation error vs scale bits —
// the design knob DESIGN.md calls out (resolution vs overflow headroom).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "secureagg/session.h"

namespace {

using namespace bcfl;
using namespace bcfl::secureagg;

std::vector<double> RandomUpdate(size_t len, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> out(len);
  for (auto& v : out) v = rng.NextGaussian(0.0, 1.0);
  return out;
}

void BM_MaskUpdate(benchmark::State& state) {
  size_t group_size = static_cast<size_t>(state.range(0));
  size_t length = static_cast<size_t>(state.range(1));
  SessionConfig config;
  config.use_self_masks = false;
  auto session = SecureAggSession::Create(group_size, config).value();
  std::vector<OwnerId> group;
  for (size_t i = 0; i < group_size; ++i) {
    group.push_back(static_cast<OwnerId>(i));
  }
  auto update = RandomUpdate(length, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Submit(0, 0, group, update));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(length) * 8);
}
BENCHMARK(BM_MaskUpdate)
    ->Args({3, 650})
    ->Args({9, 650})
    ->Args({9, 65000});

void BM_SecureAggregate(benchmark::State& state) {
  size_t group_size = static_cast<size_t>(state.range(0));
  size_t length = 650;  // 65 x 10 model.
  SessionConfig config;
  config.use_self_masks = false;
  auto session = SecureAggSession::Create(group_size, config).value();
  std::vector<OwnerId> group;
  for (size_t i = 0; i < group_size; ++i) {
    group.push_back(static_cast<OwnerId>(i));
  }
  std::map<OwnerId, std::vector<uint64_t>> submissions;
  for (OwnerId id : group) {
    submissions[id] =
        session.Submit(id, 0, group, RandomUpdate(length, id + 1)).value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.AggregateGroupMean(0, group, submissions));
  }
}
BENCHMARK(BM_SecureAggregate)->Arg(3)->Arg(5)->Arg(9);

void BM_PlainAggregate(benchmark::State& state) {
  // Baseline: the same mean without any masking.
  size_t group_size = static_cast<size_t>(state.range(0));
  size_t length = 650;
  std::vector<std::vector<double>> updates;
  for (size_t i = 0; i < group_size; ++i) {
    updates.push_back(RandomUpdate(length, i + 1));
  }
  for (auto _ : state) {
    std::vector<double> mean(length, 0.0);
    for (const auto& u : updates) {
      for (size_t k = 0; k < length; ++k) mean[k] += u[k];
    }
    for (auto& v : mean) v /= static_cast<double>(group_size);
    benchmark::DoNotOptimize(mean.data());
  }
}
BENCHMARK(BM_PlainAggregate)->Arg(3)->Arg(5)->Arg(9);

void BM_DropoutRecovery(benchmark::State& state) {
  // Aggregation with one dropped member: includes share reconstruction
  // and residual-mask regeneration.
  SessionConfig config;
  config.use_self_masks = true;
  auto session = SecureAggSession::Create(9, config).value();
  std::vector<OwnerId> group;
  for (size_t i = 0; i < 9; ++i) group.push_back(static_cast<OwnerId>(i));
  std::map<OwnerId, std::vector<uint64_t>> submissions;
  for (OwnerId id : group) {
    if (id == 4) continue;
    submissions[id] =
        session.Submit(id, 0, group, RandomUpdate(650, id + 1)).value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.AggregateGroupMean(0, group, submissions, {4}));
  }
}
BENCHMARK(BM_DropoutRecovery);

void PrintQuantisationTable() {
  std::printf("\nFixed-point quantisation error vs scale bits "
              "(650-element update, 9 owners summed)\n");
  std::printf("%-12s %-22s %-22s\n", "scale bits", "max |error| / element",
              "headroom (values)");
  for (int bits : {8, 16, 24, 32, 40}) {
    FixedPointCodec codec(bits);
    Xoshiro256 rng(9);
    double max_err = 0;
    std::vector<uint64_t> sum(650, 0);
    std::vector<double> true_sum(650, 0.0);
    for (int owner = 0; owner < 9; ++owner) {
      auto update = RandomUpdate(650, static_cast<uint64_t>(owner) + 40);
      auto encoded = codec.EncodeVector(update);
      for (size_t k = 0; k < 650; ++k) {
        sum[k] += encoded[k];
        true_sum[k] += update[k];
      }
    }
    for (size_t k = 0; k < 650; ++k) {
      max_err = std::max(max_err, std::abs(codec.Decode(sum[k]) -
                                           true_sum[k]));
    }
    // Headroom: the largest summed magnitude before the ring wraps.
    double headroom = std::ldexp(1.0, 63 - bits);
    std::printf("%-12d %-22.3e %-22.3e\n", bits, max_err, headroom);
  }
  std::printf("Trade-off: each extra scale bit halves the quantisation "
              "error and the overflow headroom.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintQuantisationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
