// Ablation F (future-work Sect. VI, item 2): "the effects of adversarial
// participants on the Shapley value calculation".
//
// Some owners flip a fraction of their labels (data poisoning). We
// measure, for several group counts m:
//  (a) whether GroupSV still assigns the poisoners the lowest scores,
//  (b) how much an honest owner's score suffers from sharing a group
//      with a poisoner (the contamination effect the paper worries
//      about), and
//  (c) whether Byzantine-robust aggregation (Krum/median) of the group
//      models blunts the poison's effect on the *global* model.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "data/digits.h"
#include "data/noise.h"
#include "data/partition.h"
#include "fl/robust.h"
#include "fl/trainer.h"
#include "shapley/group_sv.h"
#include "shapley/utility.h"
#include "workload.h"

using namespace bcfl;
using namespace bcfl::bench;

namespace {

constexpr size_t kOwners = 9;
constexpr uint64_t kSeedE = 7;
// Owners 7 and 8 are the poisoners.
const std::vector<size_t> kPoisoners = {7, 8};

struct Setup {
  ml::Dataset test;
  std::unique_ptr<fl::FederatedTrainer> trainer;
};

Setup MakeSetup(double flip_prob) {
  data::DigitsConfig digits;
  digits.num_instances = 3000;
  digits.seed = 15;
  ml::Dataset full = data::DigitsGenerator(digits).Generate();
  Xoshiro256 rng(15);
  auto split = full.TrainTestSplit(0.8, &rng).value();
  auto parts = data::PartitionUniform(split.first, kOwners, &rng).value();
  for (size_t p : kPoisoners) {
    Xoshiro256 flip_rng(100 + p);
    (void)data::FlipLabels(&parts[p], flip_prob, &flip_rng);
  }
  ml::LogisticRegressionConfig lr;
  lr.learning_rate = 0.05;
  lr.epochs = 5;
  std::vector<fl::FlClient> clients;
  for (size_t i = 0; i < kOwners; ++i) {
    clients.emplace_back(static_cast<fl::OwnerId>(i), std::move(parts[i]),
                         lr);
  }
  fl::FlConfig config;
  config.rounds = 12;
  config.local = lr;
  Setup s;
  s.test = std::move(split.second);
  s.trainer =
      std::make_unique<fl::FederatedTrainer>(std::move(clients), config);
  return s;
}

double MeanOf(const std::vector<double>& values,
              const std::vector<size_t>& indices) {
  double sum = 0;
  for (size_t i : indices) sum += values[i];
  return sum / static_cast<double>(indices.size());
}

}  // namespace

int main() {
  std::printf("Ablation F: adversarial owners (label flipping) and "
              "GroupSV\n");
  PrintRule();

  for (double flip : {0.0, 0.5, 1.0}) {
    Setup setup = MakeSetup(flip);
    auto run = setup.trainer->Run().value();

    std::printf("label-flip probability of owners {7, 8}: %.1f\n", flip);
    std::printf("%-6s %-22s %-22s %-14s\n", "m", "mean SV honest(0-6)",
                "mean SV poisoners", "detected?");
    for (size_t m : {2u, 3u, 5u, 9u}) {
      shapley::TestAccuracyUtility utility(setup.test);
      shapley::GroupShapley evaluator(kOwners, {m, kSeedE}, &utility);
      auto totals =
          evaluator.AccumulateOverRounds(run.per_round_locals).value();
      std::vector<size_t> honest;
      for (size_t i = 0; i < 7; ++i) honest.push_back(i);
      double honest_mean = MeanOf(totals, honest);
      double poisoner_mean = MeanOf(totals, kPoisoners);
      // Detection: both poisoners rank in the bottom three.
      std::vector<size_t> order(kOwners);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return totals[a] < totals[b];
      });
      bool detected =
          std::find(order.begin(), order.begin() + 3, 7) !=
              order.begin() + 3 &&
          std::find(order.begin(), order.begin() + 3, 8) !=
              order.begin() + 3;
      std::printf("%-6zu %-22.4f %-22.4f %-14s\n", m, honest_mean,
                  poisoner_mean,
                  flip == 0.0 ? "n/a" : (detected ? "yes" : "NO"));
    }

    // Global-model damage with and without robust aggregation of the
    // final-round local models.
    const auto& finals = run.per_round_locals.back();
    auto fedavg = ml::MeanOfMatrices(finals).value();
    auto krum = fl::Krum(finals, kPoisoners.size()).value();
    auto median = fl::CoordinateMedian(finals).value();
    auto acc = [&](const ml::Matrix& w) {
      return ml::LogisticRegression::FromWeights(w)
          .value()
          .Accuracy(setup.test)
          .value();
    };
    std::printf("global accuracy: fedavg %.4f | krum %.4f | median %.4f\n\n",
                acc(fedavg), acc(krum), acc(median));
  }
  PrintRule();
  std::printf(
      "Shapes: poisoners' mean SV drops below the honest mean as the\n"
      "flip probability rises, and finer groupings (larger m) separate\n"
      "them more sharply — quantifying Sect. VI's concern. Krum/median\n"
      "recover part of the global-model accuracy FedAvg loses.\n");
  return 0;
}
