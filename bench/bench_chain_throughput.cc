// Ablation B (future-work Sect. VI): blockchain bottleneck analysis —
// transaction throughput and per-block consensus latency versus miner
// count and update payload size. Every proposal/vote crosses the
// simulated P2P network, so the reported simulated latency reflects the
// message complexity (leader broadcast + validator votes), while the
// wall-clock column reflects re-execution cost.
//
// Since the chain-throughput-engine PR this binary is also the
// equivalence gate for the optimized chain/crypto paths, in the same
// mold as bench_kernels: Montgomery Schnorr verification must agree
// with the seed's reference::SchnorrVerify, incremental / pooled Merkle
// builds must be bit-identical to the batch build, the mempool's
// promoted root must match a from-scratch block root, and a consensus
// run must commit identical block hashes with and without a chain pool.
// Any mismatch makes the process exit non-zero. It drops
// BENCH_chain.json in the working directory, including a Schnorr-verify
// microbench (optimized vs reference) that CI asserts on.
//
// Flags: --quick  lower repetition counts and a reduced sweep (CI smoke
// mode).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "chain/consensus.h"
#include "chain/mempool.h"
#include "chain/merkle.h"
#include "chain/sig_cache.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "crypto/schnorr.h"
#include "obs/exporter.h"
#include "obs/json_writer.h"

namespace {

using namespace bcfl;
using namespace bcfl::chain;
using bcfl::obs::JsonWriter;

/// Stores opaque payload blobs — stands in for masked model updates of a
/// given size without ML cost dominating the measurement.
class BlobContract : public SmartContract {
 public:
  std::string name() const override { return "blob"; }
  Status Execute(const Transaction& tx, ContractState* state) override {
    state->Put("blob/" + std::to_string(tx.nonce), tx.payload);
    return Status::OK();
  }
};

struct RunStats {
  double wall_seconds;
  uint64_t sim_micros;
  size_t blocks;
  size_t txs;
  uint64_t messages;
  crypto::Digest tip_hash;
};

RunStats RunWorkload(size_t miners, size_t num_txs, size_t payload_bytes,
                     size_t max_txs_per_block) {
  crypto::Schnorr scheme;
  Xoshiro256 rng(7);
  auto key = scheme.GenerateKeyPair(&rng);

  auto host = std::make_shared<ContractHost>(scheme);
  (void)host->Register(std::make_shared<BlobContract>());

  ConsensusConfig config;
  config.leader_seed = 3;
  config.max_txs_per_block = max_txs_per_block;
  config.network.min_latency_us = 500;
  config.network.max_latency_us = 5000;
  ConsensusEngine engine(miners, host, config);

  for (size_t i = 0; i < num_txs; ++i) {
    Transaction tx;
    tx.contract = "blob";
    tx.method = "put";
    tx.payload = Bytes(payload_bytes, static_cast<uint8_t>(i));
    tx.nonce = i;
    tx.Sign(scheme, key, &rng);
    (void)engine.SubmitTransaction(tx);
  }

  Stopwatch timer;
  auto results = engine.RunUntilDrained(10000).value();
  RunStats stats;
  stats.wall_seconds = timer.ElapsedSeconds();
  stats.sim_micros = engine.network().clock().NowMicros();
  stats.blocks = results.size();
  stats.txs = engine.CanonicalChain().TotalTransactions();
  stats.messages = engine.network().stats().messages_sent;
  stats.tip_hash = engine.CanonicalChain().Tip().header.Hash();
  return stats;
}

// ---- Equivalence gates ---------------------------------------------------

/// Optimized Schnorr::Verify must agree with the seed's scalar
/// reference::SchnorrVerify on valid, message-tampered and
/// signature-tampered inputs.
bool CheckSchnorrReferenceEquivalence(Xoshiro256* rng) {
  crypto::Schnorr scheme;
  auto key = scheme.GenerateKeyPair(rng);
  for (int i = 0; i < 8; ++i) {
    Bytes msg(64 + static_cast<size_t>(i) * 13);
    for (auto& b : msg) b = static_cast<uint8_t>(rng->Next());
    auto sig = scheme.Sign(key, msg, rng);
    bool opt = scheme.Verify(key.public_key, msg, sig);
    bool ref = crypto::reference::SchnorrVerify(scheme.params(),
                                                key.public_key, msg, sig);
    if (!opt || !ref) {
      std::printf("  !! valid signature rejected (opt=%d ref=%d)\n", opt,
                  ref);
      return false;
    }
    Bytes tampered = msg;
    tampered[i % tampered.size()] ^= 0x40;
    if (scheme.Verify(key.public_key, tampered, sig) ||
        crypto::reference::SchnorrVerify(scheme.params(), key.public_key,
                                         tampered, sig)) {
      std::printf("  !! tampered message verified\n");
      return false;
    }
    Bytes sig_bytes = sig.ToBytes();
    sig_bytes[7 + i] ^= 0x01;
    auto bad_sig = crypto::SchnorrSignature::FromBytes(sig_bytes);
    if (bad_sig.ok() &&
        (scheme.Verify(key.public_key, msg, *bad_sig) !=
         crypto::reference::SchnorrVerify(scheme.params(), key.public_key,
                                          msg, *bad_sig))) {
      std::printf("  !! paths disagree on a tampered signature\n");
      return false;
    }
  }
  return true;
}

/// Batch, incremental (Append) and pooled Merkle builds must produce the
/// same root for every pool size, including odd leaf counts and counts
/// crossing the parallel-chunking threshold.
bool CheckMerkleEquivalence(Xoshiro256* rng) {
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 255u, 256u, 257u, 1000u}) {
    std::vector<crypto::Digest> leaves(n);
    for (auto& leaf : leaves) {
      for (auto& byte : leaf) byte = static_cast<uint8_t>(rng->Next());
    }
    MerkleTree batch(leaves);
    MerkleTree incremental({});
    for (const auto& leaf : leaves) incremental.Append(leaf);
    if (incremental.root() != batch.root()) {
      std::printf("  !! incremental root diverged at n=%zu\n", n);
      return false;
    }
    for (size_t threads : {1u, 2u}) {
      ThreadPool pool(threads);
      SetChainPool(&pool);
      MerkleTree pooled(leaves);
      SetChainPool(nullptr);
      if (pooled.root() != batch.root()) {
        std::printf("  !! pooled root diverged at n=%zu threads=%zu\n", n,
                    threads);
        return false;
      }
    }
  }
  return true;
}

/// The mempool's incrementally maintained root (what a full-pool
/// proposal promotes into the header) must equal the block's
/// from-scratch Merkle root.
bool CheckMempoolPromotion(Xoshiro256* rng) {
  crypto::Schnorr scheme;
  auto key = scheme.GenerateKeyPair(rng);
  Mempool pool;
  for (uint64_t n = 0; n < 7; ++n) {
    Transaction tx;
    tx.contract = "blob";
    tx.method = "put";
    tx.payload = Bytes(128, static_cast<uint8_t>(n));
    tx.nonce = n;
    tx.Sign(scheme, key, rng);
    if (!pool.Add(tx).ok()) return false;
    Block block;
    block.txs = pool.Peek(0);
    if (pool.PendingRoot() != block.ComputeMerkleRoot()) {
      std::printf("  !! promoted root diverged after %llu adds\n",
                  static_cast<unsigned long long>(n + 1));
      return false;
    }
  }
  return true;
}

/// A consensus run must commit identical blocks with and without a
/// chain pool installed: the chunk partition may never leak into a
/// digest.
bool CheckChainPoolDeterminism() {
  RunStats serial = RunWorkload(3, 12, 2048, 5);
  ThreadPool pool(2);
  SetChainPool(&pool);
  RunStats pooled = RunWorkload(3, 12, 2048, 5);
  SetChainPool(nullptr);
  if (serial.tip_hash != pooled.tip_hash || serial.blocks != pooled.blocks ||
      serial.txs != pooled.txs) {
    std::printf("  !! chain run diverged with a pool installed\n");
    return false;
  }
  return true;
}

// ---- Sweeps --------------------------------------------------------------

void SweepRow(JsonWriter* json, size_t miners, size_t payload,
              const RunStats& s) {
  json->BeginObject();
  json->Field("miners", miners);
  json->Field("payload_bytes", payload);
  json->Field("blocks", s.blocks);
  json->Field("txs", s.txs);
  json->Field("tx_per_s", static_cast<double>(s.txs) / s.wall_seconds);
  json->Field("sim_ms_per_block", static_cast<double>(s.sim_micros) /
                                      1000.0 /
                                      static_cast<double>(s.blocks));
  json->Field("wall_ms_per_block",
              s.wall_seconds * 1000.0 / static_cast<double>(s.blocks));
  json->Field("messages", static_cast<size_t>(s.messages));
  json->EndObject();
}

void PrintRow(size_t miners, const RunStats& s) {
  std::printf("%-8zu %-8zu %-10.0f %-14.2f %-14.3f %-10llu\n", miners,
              s.blocks, static_cast<double>(s.txs) / s.wall_seconds,
              static_cast<double>(s.sim_micros) / 1000.0 /
                  static_cast<double>(s.blocks),
              s.wall_seconds * 1000.0 / static_cast<double>(s.blocks),
              static_cast<unsigned long long>(s.messages));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const size_t hw_threads =
      std::max<size_t>(1, std::thread::hardware_concurrency());

  std::printf("Ablation B: blockchain throughput and consensus latency\n");
  std::printf("(crypto path: %s, sha256 batch path: %s%s)\n",
              std::string(crypto::CryptoActivePath()).c_str(),
              std::string(crypto::Sha256BatchActivePath()).c_str(),
              quick ? ", quick" : "");

  // ---- Equivalence gate -------------------------------------------------
  Xoshiro256 rng(11);
  struct NamedCheck {
    const char* name;
    bool ok;
  };
  const NamedCheck checks[] = {
      {"schnorr_reference", CheckSchnorrReferenceEquivalence(&rng)},
      {"merkle_incremental_batch_parallel", CheckMerkleEquivalence(&rng)},
      {"mempool_promotion", CheckMempoolPromotion(&rng)},
      {"chain_pool_determinism", CheckChainPoolDeterminism()},
  };
  bool all_ok = true;
  std::printf("equivalence vs reference:");
  for (const NamedCheck& c : checks) {
    all_ok = all_ok && c.ok;
    std::printf(" %s=%s", c.name, c.ok ? "ok" : "FAIL");
  }
  std::printf("\n");

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "chain_throughput");
  json.Field("quick", quick);
  json.Field("crypto_path", std::string(crypto::CryptoActivePath()));
  json.Field("sha256_batch_path",
             std::string(crypto::Sha256BatchActivePath()));
  json.Field("hardware_threads", hw_threads);
  json.Field("pool_threads", hw_threads);
  json.BeginObject("equivalence");
  for (const NamedCheck& c : checks) json.Field(c.name, c.ok);
  json.EndObject();
  json.Field("all_equivalent", all_ok);

  // ---- Schnorr verify microbench ---------------------------------------
  {
    crypto::Schnorr scheme;
    auto key = scheme.GenerateKeyPair(&rng);
    const size_t kPairs = 4;
    std::vector<Bytes> msgs(kPairs);
    std::vector<crypto::SchnorrSignature> sigs(kPairs);
    for (size_t i = 0; i < kPairs; ++i) {
      msgs[i] = Bytes(200, static_cast<uint8_t>(i));
      sigs[i] = scheme.Sign(key, msgs[i], &rng);
    }
    // Warm the per-key fixed-base table so the steady state is timed.
    (void)scheme.Verify(key.public_key, msgs[0], sigs[0]);
    (void)scheme.Verify(key.public_key, msgs[0], sigs[0]);
    const size_t reps = quick ? 20 : 200;
    Stopwatch opt_timer;
    for (size_t r = 0; r < reps; ++r) {
      if (!scheme.Verify(key.public_key, msgs[r % kPairs],
                         sigs[r % kPairs])) {
        return 1;
      }
    }
    const double opt_s = opt_timer.ElapsedSeconds();
    Stopwatch ref_timer;
    for (size_t r = 0; r < reps; ++r) {
      if (!crypto::reference::SchnorrVerify(scheme.params(), key.public_key,
                                            msgs[r % kPairs],
                                            sigs[r % kPairs])) {
        return 1;
      }
    }
    const double ref_s = ref_timer.ElapsedSeconds();
    const double speedup = opt_s > 0 ? ref_s / opt_s : 0.0;
    std::printf("schnorr verify: ref %.1f us, opt %.1f us, %.1fx\n",
                ref_s / static_cast<double>(reps) * 1e6,
                opt_s / static_cast<double>(reps) * 1e6, speedup);
    json.BeginObject("schnorr_verify");
    json.Field("reps", reps);
    json.Field("reference_us", ref_s / static_cast<double>(reps) * 1e6);
    json.Field("optimized_us", opt_s / static_cast<double>(reps) * 1e6);
    json.Field("speedup", speedup);
    json.EndObject();
  }

  // ---- Throughput sweeps ------------------------------------------------
  // All sweeps run with the chain pool installed, as bcfl_sim would.
  ThreadPool chain_pool(hw_threads);
  SetChainPool(&chain_pool);

  std::printf("\n(50 transactions, 10 txs/block, 5.2KB payload = one masked "
              "65x10 update)\n");
  std::printf("%-8s %-8s %-10s %-14s %-14s %-10s\n", "miners", "blocks",
              "tx/s", "sim ms/block", "wall ms/blk", "messages");
  json.BeginArray("miner_sweep_5k2");
  const std::vector<size_t> sweep_miners =
      quick ? std::vector<size_t>{3, 5} : std::vector<size_t>{3, 5, 7, 9, 13};
  const size_t sweep_txs = quick ? 20 : 50;
  for (size_t miners : sweep_miners) {
    RunStats s = RunWorkload(miners, sweep_txs, 5200, 10);
    PrintRow(miners, s);
    SweepRow(&json, miners, 5200, s);
  }
  json.EndArray();

  // 64KiB payloads: the block-body size where hashing and signature
  // re-verification across N miners dominated before this engine.
  std::printf("\n64KiB payload sweep (%zu txs, 10 txs/block):\n", sweep_txs);
  std::printf("%-8s %-8s %-10s %-14s %-14s %-10s\n", "miners", "blocks",
              "tx/s", "sim ms/block", "wall ms/blk", "messages");
  json.BeginArray("miner_sweep_64k");
  const std::vector<size_t> sweep_miners_64k =
      quick ? std::vector<size_t>{5} : std::vector<size_t>{3, 5, 7, 9, 13};
  for (size_t miners : sweep_miners_64k) {
    RunStats s = RunWorkload(miners, sweep_txs, 65536, 10);
    PrintRow(miners, s);
    SweepRow(&json, miners, 65536, s);
  }
  json.EndArray();

  if (!quick) {
    std::printf("\nPayload scaling (5 miners, 30 txs, 10 txs/block):\n");
    std::printf("%-14s %-10s %-14s\n", "payload B", "tx/s", "wall ms/blk");
    json.BeginArray("payload_sweep");
    for (size_t payload : {520, 5200, 52000, 520000}) {
      RunStats s = RunWorkload(5, 30, payload, 10);
      std::printf("%-14zu %-10.0f %-14.3f\n", payload,
                  static_cast<double>(s.txs) / s.wall_seconds,
                  s.wall_seconds * 1000.0 / static_cast<double>(s.blocks));
      SweepRow(&json, 5, payload, s);
    }
    json.EndArray();

    std::printf("\nBlock-size scaling (5 miners, 60 txs, 5.2KB payload):\n");
    std::printf("%-14s %-8s %-10s\n", "txs/block", "blocks", "tx/s");
    json.BeginArray("block_size_sweep");
    for (size_t batch : {1, 5, 15, 60}) {
      RunStats s = RunWorkload(5, 60, 5200, batch);
      std::printf("%-14zu %-8zu %-10.0f\n", batch, s.blocks,
                  static_cast<double>(s.txs) / s.wall_seconds);
      json.BeginObject();
      json.Field("txs_per_block", batch);
      json.Field("blocks", s.blocks);
      json.Field("tx_per_s", static_cast<double>(s.txs) / s.wall_seconds);
      json.EndObject();
    }
    json.EndArray();
  }
  SetChainPool(nullptr);
  json.EndObject();

  std::printf("\nShape: message count grows linearly with miner count (one\n"
              "proposal + one vote per validator). The shared verify cache\n"
              "makes the N-miner re-execution pay each signature once, so\n"
              "wall ms/blk now tracks hashing + state, not N modexps.\n");

  const char* out_path = "BENCH_chain.json";
  if (json.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("failed to write %s\n", out_path);
    return 1;
  }
  bcfl::Status exported =
      bcfl::obs::ExportGlobalWithPrefix("BENCH_chain_throughput");
  if (!exported.ok()) {
    std::printf("failed to export observability artifacts: %s\n",
                exported.ToString().c_str());
    return 1;
  }
  return all_ok ? 0 : 1;
}
