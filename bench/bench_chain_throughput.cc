// Ablation B (future-work Sect. VI): blockchain bottleneck analysis —
// transaction throughput and per-block consensus latency versus miner
// count and update payload size. Every proposal/vote crosses the
// simulated P2P network, so the reported simulated latency reflects the
// message complexity (leader broadcast + validator votes), while the
// wall-clock column reflects re-execution cost.

#include <cstdio>
#include <memory>

#include "chain/consensus.h"
#include "common/sim_clock.h"
#include "obs/exporter.h"

namespace {

using namespace bcfl;
using namespace bcfl::chain;

/// Stores opaque payload blobs — stands in for masked model updates of a
/// given size without ML cost dominating the measurement.
class BlobContract : public SmartContract {
 public:
  std::string name() const override { return "blob"; }
  Status Execute(const Transaction& tx, ContractState* state) override {
    state->Put("blob/" + std::to_string(tx.nonce), tx.payload);
    return Status::OK();
  }
};

struct RunStats {
  double wall_seconds;
  uint64_t sim_micros;
  size_t blocks;
  size_t txs;
  uint64_t messages;
};

RunStats RunWorkload(size_t miners, size_t num_txs, size_t payload_bytes,
                     size_t max_txs_per_block) {
  crypto::Schnorr scheme;
  Xoshiro256 rng(7);
  auto key = scheme.GenerateKeyPair(&rng);

  auto host = std::make_shared<ContractHost>(scheme);
  (void)host->Register(std::make_shared<BlobContract>());

  ConsensusConfig config;
  config.leader_seed = 3;
  config.max_txs_per_block = max_txs_per_block;
  config.network.min_latency_us = 500;
  config.network.max_latency_us = 5000;
  ConsensusEngine engine(miners, host, config);

  for (size_t i = 0; i < num_txs; ++i) {
    Transaction tx;
    tx.contract = "blob";
    tx.method = "put";
    tx.payload = Bytes(payload_bytes, static_cast<uint8_t>(i));
    tx.nonce = i;
    tx.Sign(scheme, key, &rng);
    (void)engine.SubmitTransaction(tx);
  }

  Stopwatch timer;
  auto results = engine.RunUntilDrained(10000).value();
  RunStats stats;
  stats.wall_seconds = timer.ElapsedSeconds();
  stats.sim_micros = engine.network().clock().NowMicros();
  stats.blocks = results.size();
  stats.txs = engine.CanonicalChain().TotalTransactions();
  stats.messages = engine.network().stats().messages_sent;
  return stats;
}

}  // namespace

int main() {
  std::printf("Ablation B: blockchain throughput and consensus latency\n");
  std::printf("(50 transactions, 10 txs/block, 5.2KB payload = one masked "
              "65x10 update)\n");
  std::printf("%-8s %-8s %-10s %-14s %-14s %-10s\n", "miners", "blocks",
              "tx/s", "sim ms/block", "wall ms/blk", "messages");
  for (size_t miners : {3, 5, 7, 9, 13}) {
    RunStats s = RunWorkload(miners, 50, 5200, 10);
    std::printf("%-8zu %-8zu %-10.0f %-14.2f %-14.3f %-10llu\n", miners,
                s.blocks, static_cast<double>(s.txs) / s.wall_seconds,
                static_cast<double>(s.sim_micros) / 1000.0 /
                    static_cast<double>(s.blocks),
                s.wall_seconds * 1000.0 / static_cast<double>(s.blocks),
                static_cast<unsigned long long>(s.messages));
  }

  std::printf("\nPayload scaling (5 miners, 30 txs, 10 txs/block):\n");
  std::printf("%-14s %-10s %-14s\n", "payload B", "tx/s", "wall ms/blk");
  for (size_t payload : {520, 5200, 52000, 520000}) {
    RunStats s = RunWorkload(5, 30, payload, 10);
    std::printf("%-14zu %-10.0f %-14.3f\n", payload,
                static_cast<double>(s.txs) / s.wall_seconds,
                s.wall_seconds * 1000.0 / static_cast<double>(s.blocks));
  }

  std::printf("\nBlock-size scaling (5 miners, 60 txs, 5.2KB payload):\n");
  std::printf("%-14s %-8s %-10s\n", "txs/block", "blocks", "tx/s");
  for (size_t batch : {1, 5, 15, 60}) {
    RunStats s = RunWorkload(5, 60, 5200, batch);
    std::printf("%-14zu %-8zu %-10.0f\n", batch, s.blocks,
                static_cast<double>(s.txs) / s.wall_seconds);
  }
  std::printf("\nShape: message count grows linearly with miner count (one\n"
              "proposal + one vote per validator), so per-block latency and\n"
              "throughput degrade with the miner count and payload size —\n"
              "the transaction-throughput bottleneck Sect. VI anticipates.\n");
  bcfl::Status exported =
      bcfl::obs::ExportGlobalWithPrefix("BENCH_chain_throughput");
  if (!exported.ok()) {
    std::printf("failed to export observability artifacts: %s\n",
                exported.ToString().c_str());
    return 1;
  }
  return 0;
}
