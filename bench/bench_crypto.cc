// Ablation C: micro-benchmarks of the from-scratch crypto primitives the
// protocol is built on. These bound the per-round client cost (masking,
// signing) and the per-block miner cost (hash, verify).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/dh.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "crypto/shamir.h"

namespace {

using namespace bcfl;
using namespace bcfl::crypto;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ChaCha20Keystream(benchmark::State& state) {
  std::array<uint8_t, 32> key{};
  std::array<uint8_t, 12> nonce{};
  Bytes out(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ChaCha20 cipher(key, nonce);
    cipher.Keystream(out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20Keystream)->Arg(1024)->Arg(65536);

void BM_ModPow(benchmark::State& state) {
  GroupParams params = GroupParams::Default();
  Xoshiro256 rng(1);
  UInt256 exponent(rng.Next(), rng.Next(), rng.Next(), rng.Next() >> 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(params.g.ModPow(exponent, params.p));
  }
}
BENCHMARK(BM_ModPow);

void BM_DhSharedSecret(benchmark::State& state) {
  DiffieHellman dh;
  Xoshiro256 rng(2);
  DhKeyPair alice = dh.GenerateKeyPair(&rng);
  DhKeyPair bob = dh.GenerateKeyPair(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dh.ComputeShared(alice.private_key, bob.public_key));
  }
}
BENCHMARK(BM_DhSharedSecret);

void BM_SchnorrSign(benchmark::State& state) {
  Schnorr scheme;
  Xoshiro256 rng(3);
  SchnorrKeyPair key = scheme.GenerateKeyPair(&rng);
  Bytes msg(256, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.Sign(key, msg, &rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  Schnorr scheme;
  Xoshiro256 rng(4);
  SchnorrKeyPair key = scheme.GenerateKeyPair(&rng);
  Bytes msg(256, 0x5a);
  SchnorrSignature sig = scheme.Sign(key, msg, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.Verify(key.public_key, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_ShamirSplit(benchmark::State& state) {
  auto scheme = ShamirSecretSharing::Create(5, 9).value();
  Xoshiro256 rng(5);
  Bytes secret(32, 0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.Split(secret, &rng));
  }
}
BENCHMARK(BM_ShamirSplit);

void BM_ShamirReconstruct(benchmark::State& state) {
  auto scheme = ShamirSecretSharing::Create(5, 9).value();
  Xoshiro256 rng(6);
  Bytes secret(32, 0x77);
  auto shares = scheme.Split(secret, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.Reconstruct(shares, secret.size()));
  }
}
BENCHMARK(BM_ShamirReconstruct);

}  // namespace

BENCHMARK_MAIN();
