#pragma once

// Minimal JSON emitter for machine-readable bench results (BENCH_*.json):
// just enough structure for per-row metric dumps that CI or a notebook
// can diff across PRs, with none of the quoting corner cases the benches
// don't need (keys and string values are plain ASCII identifiers here).

#include <cstdio>
#include <string>

namespace bcfl::bench {

class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray(const char* key) {
    Key(key);
    Open('[');
  }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }
  void BeginObject(const char* key) {
    Key(key);
    Open('{');
  }

  void Field(const char* key, double value) {
    Key(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out_ += buf;
    need_comma_ = true;
  }
  void Field(const char* key, size_t value) {
    Key(key);
    out_ += std::to_string(value);
    need_comma_ = true;
  }
  void Field(const char* key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    need_comma_ = true;
  }
  void Field(const char* key, const char* value) {
    Key(key);
    out_ += '"';
    out_ += value;
    out_ += '"';
    need_comma_ = true;
  }

  const std::string& str() const { return out_; }

  /// Writes the document to `path`; returns false on I/O failure.
  bool WriteFile(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  void MaybeComma() {
    if (need_comma_) out_ += ',';
    need_comma_ = false;
  }
  void Key(const char* key) {
    MaybeComma();
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }
  void Open(char c) {
    MaybeComma();
    out_ += c;
    need_comma_ = false;
  }
  void Close(char c) {
    out_ += c;
    need_comma_ = true;
  }

 private:
  std::string out_;
  bool need_comma_ = false;
};

}  // namespace bcfl::bench
