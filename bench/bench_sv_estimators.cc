// Ablation G: the contribution-evaluation design space. The paper's
// related work ([2], [3]) is about making SV affordable; this bench
// places GroupSV among the standard estimators on the same workload:
//
//   exact/native  — Eq. 1 over retrained coalitions (ground truth)
//   MC            — permutation-sampling Monte Carlo over aggregated
//                   coalition models
//   TMC           — truncated MC (Ghorbani & Zou style)
//   GroupSV       — the paper's method (m = 3 and m = 9)
//
// Reported: utility evaluations / models trained (the cost driver),
// wall time, and mean-centered cosine vs ground truth.

#include <cstdio>

#include "common/sim_clock.h"
#include "shapley/group_sv.h"
#include "shapley/monte_carlo.h"
#include "shapley/similarity.h"
#include "workload.h"

using namespace bcfl;
using namespace bcfl::bench;

namespace {

std::vector<double> Centered(std::vector<double> v) {
  double mean = 0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (double& x : v) x -= mean;
  return v;
}

void Report(const char* name, double seconds, size_t evals,
            const std::vector<double>& values,
            const std::vector<double>& truth) {
  auto cosine =
      shapley::CosineSimilarity(Centered(values), Centered(truth));
  auto rank = shapley::SpearmanCorrelation(values, truth);
  std::printf("%-18s %-12.2f %-14zu %-12s %-12s\n", name, seconds, evals,
              cosine.ok() ? std::to_string(*cosine).substr(0, 7).c_str()
                          : "n/a",
              rank.ok() ? std::to_string(*rank).substr(0, 7).c_str()
                        : "n/a");
}

}  // namespace

int main() {
  const double kSigma = 2.0;
  const size_t n = Workload::kOwners;
  ThreadPool pool(std::thread::hardware_concurrency());

  Workload workload = Workload::Make(kSigma, 42, 5620, 20);
  auto run = workload.trainer->Run(&pool).value();

  std::printf("Ablation G: SV estimators on the sigma=%.1f workload "
              "(9 owners, 20 FL rounds)\n", kSigma);
  PrintRule();
  std::printf("%-18s %-12s %-14s %-12s %-12s\n", "estimator", "time/s",
              "evals", "cosine*", "spearman");
  PrintRule();

  // Ground truth.
  Stopwatch truth_timer;
  auto truth = workload.GroundTruth(&pool);
  Report("native (truth)", truth_timer.ElapsedSeconds(), 1u << n,
         truth.values, truth.values);

  // Aggregated-coalition utility shared by MC/TMC: mean of the members'
  // final local weights, scored on the test set (memoised internally by
  // MonteCarloShapley).
  const auto& finals = run.per_round_locals.back();
  shapley::TestAccuracyUtility mc_utility(workload.test_set);
  auto coalition_utility = [&](uint64_t mask) -> Result<double> {
    std::vector<ml::Matrix> members;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) members.push_back(finals[i]);
    }
    if (members.empty()) {
      return mc_utility.Evaluate(
          ml::Matrix(finals[0].rows(), finals[0].cols()));
    }
    BCFL_ASSIGN_OR_RETURN(ml::Matrix mean, ml::MeanOfMatrices(members));
    return mc_utility.Evaluate(mean);
  };

  for (size_t perms : {50u, 200u}) {
    shapley::MonteCarloConfig config;
    config.num_permutations = perms;
    config.seed = 3;
    Stopwatch timer;
    auto mc = shapley::MonteCarloShapley(n, coalition_utility, config)
                  .value();
    char label[32];
    std::snprintf(label, sizeof(label), "MC (%zu perms)", perms);
    Report(label, timer.ElapsedSeconds(), mc.utility_evaluations,
           mc.values, truth.values);
  }
  {
    shapley::MonteCarloConfig config;
    config.num_permutations = 200;
    config.seed = 3;
    config.truncation_tolerance = 0.01;
    Stopwatch timer;
    auto tmc = shapley::MonteCarloShapley(n, coalition_utility, config)
                   .value();
    Report("TMC (200 perms)", timer.ElapsedSeconds(),
           tmc.utility_evaluations, tmc.values, truth.values);
  }

  for (size_t m : {3u, 9u}) {
    shapley::TestAccuracyUtility utility(workload.test_set);
    shapley::GroupShapley evaluator(n, {m, 7}, &utility);
    Stopwatch timer;
    auto totals =
        evaluator.AccumulateOverRounds(run.per_round_locals).value();
    char label[32];
    std::snprintf(label, sizeof(label), "GroupSV (m=%zu)", m);
    Report(label, timer.ElapsedSeconds(),
           run.per_round_locals.size() * (1u << m), totals, truth.values);
  }
  PrintRule();
  std::printf(
      "cosine* = mean-centered cosine vs the retrained ground truth.\n"
      "GroupSV is the only estimator here that works on *masked* data;\n"
      "MC/TMC need per-owner coalition models and native needs raw data.\n");
  return 0;
}
