// Ablation G: the contribution-evaluation design space. The paper's
// related work ([2], [3]) is about making SV affordable; this bench
// places GroupSV among the standard estimators on the same workload:
//
//   exact/native  — Eq. 1 over retrained coalitions (ground truth)
//   MC            — permutation-sampling Monte Carlo over aggregated
//                   coalition models
//   TMC           — truncated MC (Ghorbani & Zou style)
//   GroupSV       — the paper's method (m = 3 and m = 9)
//
// Reported: utility evaluations / models trained (the cost driver),
// wall time, and mean-centered cosine vs ground truth. Rows are also
// dumped to BENCH_sv_estimators.json for cross-PR trend tracking.
//
// MC/TMC go through MonteCarloShapleyFromModels, which walks each
// permutation with the engine's CoalitionAccumulator: one matrix add
// per prefix extension instead of an O(n) rebuild, and the linear-score
// fast path when the utility supports it.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "obs/exporter.h"
#include "obs/json_writer.h"
#include "shapley/group_sv.h"
#include "shapley/monte_carlo.h"
#include "shapley/similarity.h"
#include "workload.h"

using namespace bcfl;
using namespace bcfl::bench;
using bcfl::obs::JsonWriter;

namespace {

std::vector<double> Centered(std::vector<double> v) {
  double mean = 0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (double& x : v) x -= mean;
  return v;
}

void Report(JsonWriter* json, const char* name, double seconds,
            size_t evals, const std::vector<double>& values,
            const std::vector<double>& truth) {
  auto cosine =
      shapley::CosineSimilarity(Centered(values), Centered(truth));
  auto rank = shapley::SpearmanCorrelation(values, truth);
  std::printf("%-18s %-12.2f %-14zu %-12s %-12s\n", name, seconds, evals,
              cosine.ok() ? std::to_string(*cosine).substr(0, 7).c_str()
                          : "n/a",
              rank.ok() ? std::to_string(*rank).substr(0, 7).c_str()
                        : "n/a");
  json->BeginObject();
  json->Field("estimator", name);
  json->Field("seconds", seconds);
  json->Field("utility_evaluations", evals);
  if (cosine.ok()) json->Field("cosine_centered", *cosine);
  if (rank.ok()) json->Field("spearman", *rank);
  json->EndObject();
}

}  // namespace

int main() {
  const double kSigma = 2.0;
  const size_t n = Workload::kOwners;
  ThreadPool pool(std::thread::hardware_concurrency());

  Workload workload = Workload::Make(kSigma, 42, 5620, 20);
  auto run = workload.trainer->Run(&pool).value();

  std::printf("Ablation G: SV estimators on the sigma=%.1f workload "
              "(9 owners, 20 FL rounds)\n", kSigma);
  PrintRule();
  std::printf("%-18s %-12s %-14s %-12s %-12s\n", "estimator", "time/s",
              "evals", "cosine*", "spearman");
  PrintRule();

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "sv_estimators");
  json.Field("sigma", kSigma);
  json.Field("owners", n);
  json.Field("rounds", run.per_round_locals.size());
  json.Field("hardware_threads",
             std::max<size_t>(1, std::thread::hardware_concurrency()));
  json.Field("pool_threads", pool.num_threads());
  json.BeginArray("estimators");

  // Ground truth.
  Stopwatch truth_timer;
  auto truth = workload.GroundTruth(&pool);
  Report(&json, "native (truth)", truth_timer.ElapsedSeconds(), 1u << n,
         truth.values, truth.values);

  // MC/TMC score aggregated coalitions: mean of the members' final local
  // weights, scored on the test set. MonteCarloShapleyFromModels builds
  // each mean incrementally along the permutation and memoises repeated
  // coalitions internally.
  const auto& finals = run.per_round_locals.back();
  shapley::TestAccuracyUtility mc_utility(workload.test_set);

  for (size_t perms : {50u, 200u}) {
    shapley::MonteCarloConfig config;
    config.num_permutations = perms;
    config.seed = 3;
    Stopwatch timer;
    auto mc =
        shapley::MonteCarloShapleyFromModels(finals, &mc_utility, config)
            .value();
    char label[32];
    std::snprintf(label, sizeof(label), "MC (%zu perms)", perms);
    Report(&json, label, timer.ElapsedSeconds(), mc.utility_evaluations,
           mc.values, truth.values);
  }
  {
    shapley::MonteCarloConfig config;
    config.num_permutations = 200;
    config.seed = 3;
    config.truncation_tolerance = 0.01;
    Stopwatch timer;
    auto tmc =
        shapley::MonteCarloShapleyFromModels(finals, &mc_utility, config)
            .value();
    Report(&json, "TMC (200 perms)", timer.ElapsedSeconds(),
           tmc.utility_evaluations, tmc.values, truth.values);
  }

  for (size_t m : {3u, 9u}) {
    shapley::TestAccuracyUtility utility(workload.test_set);
    shapley::GroupShapleyConfig config;
    config.num_groups = m;
    config.seed_e = 7;
    config.pool = &pool;
    shapley::GroupShapley evaluator(n, config, &utility);
    Stopwatch timer;
    auto totals =
        evaluator.AccumulateOverRounds(run.per_round_locals).value();
    char label[32];
    std::snprintf(label, sizeof(label), "GroupSV (m=%zu)", m);
    Report(&json, label, timer.ElapsedSeconds(),
           run.per_round_locals.size() * (1u << m), totals, truth.values);
  }
  json.EndArray();
  json.EndObject();

  PrintRule();
  std::printf(
      "cosine* = mean-centered cosine vs the retrained ground truth.\n"
      "GroupSV is the only estimator here that works on *masked* data;\n"
      "MC/TMC need per-owner coalition models and native needs raw data.\n");

  const char* out_path = "BENCH_sv_estimators.json";
  if (json.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("failed to write %s\n", out_path);
    return 1;
  }
  Status exported = obs::ExportGlobalWithPrefix("BENCH_sv_estimators");
  if (!exported.ok()) {
    std::printf("failed to export observability artifacts: %s\n",
                exported.ToString().c_str());
    return 1;
  }
  return 0;
}
