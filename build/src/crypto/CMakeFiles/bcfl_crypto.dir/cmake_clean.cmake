file(REMOVE_RECURSE
  "CMakeFiles/bcfl_crypto.dir/chacha20.cc.o"
  "CMakeFiles/bcfl_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/bcfl_crypto.dir/dh.cc.o"
  "CMakeFiles/bcfl_crypto.dir/dh.cc.o.d"
  "CMakeFiles/bcfl_crypto.dir/hmac.cc.o"
  "CMakeFiles/bcfl_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/bcfl_crypto.dir/schnorr.cc.o"
  "CMakeFiles/bcfl_crypto.dir/schnorr.cc.o.d"
  "CMakeFiles/bcfl_crypto.dir/sha256.cc.o"
  "CMakeFiles/bcfl_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/bcfl_crypto.dir/shamir.cc.o"
  "CMakeFiles/bcfl_crypto.dir/shamir.cc.o.d"
  "CMakeFiles/bcfl_crypto.dir/uint256.cc.o"
  "CMakeFiles/bcfl_crypto.dir/uint256.cc.o.d"
  "libbcfl_crypto.a"
  "libbcfl_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
