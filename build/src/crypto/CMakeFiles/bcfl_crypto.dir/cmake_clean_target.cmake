file(REMOVE_RECURSE
  "libbcfl_crypto.a"
)
