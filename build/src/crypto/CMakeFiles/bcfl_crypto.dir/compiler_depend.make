# Empty compiler generated dependencies file for bcfl_crypto.
# This may be replaced when dependencies are built.
