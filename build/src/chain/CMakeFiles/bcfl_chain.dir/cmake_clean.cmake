file(REMOVE_RECURSE
  "CMakeFiles/bcfl_chain.dir/block.cc.o"
  "CMakeFiles/bcfl_chain.dir/block.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/blockchain.cc.o"
  "CMakeFiles/bcfl_chain.dir/blockchain.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/consensus.cc.o"
  "CMakeFiles/bcfl_chain.dir/consensus.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/contract_host.cc.o"
  "CMakeFiles/bcfl_chain.dir/contract_host.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/leader.cc.o"
  "CMakeFiles/bcfl_chain.dir/leader.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/mempool.cc.o"
  "CMakeFiles/bcfl_chain.dir/mempool.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/merkle.cc.o"
  "CMakeFiles/bcfl_chain.dir/merkle.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/miner.cc.o"
  "CMakeFiles/bcfl_chain.dir/miner.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/state.cc.o"
  "CMakeFiles/bcfl_chain.dir/state.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/storage.cc.o"
  "CMakeFiles/bcfl_chain.dir/storage.cc.o.d"
  "CMakeFiles/bcfl_chain.dir/transaction.cc.o"
  "CMakeFiles/bcfl_chain.dir/transaction.cc.o.d"
  "libbcfl_chain.a"
  "libbcfl_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
