file(REMOVE_RECURSE
  "libbcfl_chain.a"
)
