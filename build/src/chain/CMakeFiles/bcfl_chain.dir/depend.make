# Empty dependencies file for bcfl_chain.
# This may be replaced when dependencies are built.
