
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cc" "src/chain/CMakeFiles/bcfl_chain.dir/block.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/block.cc.o.d"
  "/root/repo/src/chain/blockchain.cc" "src/chain/CMakeFiles/bcfl_chain.dir/blockchain.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/blockchain.cc.o.d"
  "/root/repo/src/chain/consensus.cc" "src/chain/CMakeFiles/bcfl_chain.dir/consensus.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/consensus.cc.o.d"
  "/root/repo/src/chain/contract_host.cc" "src/chain/CMakeFiles/bcfl_chain.dir/contract_host.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/contract_host.cc.o.d"
  "/root/repo/src/chain/leader.cc" "src/chain/CMakeFiles/bcfl_chain.dir/leader.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/leader.cc.o.d"
  "/root/repo/src/chain/mempool.cc" "src/chain/CMakeFiles/bcfl_chain.dir/mempool.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/mempool.cc.o.d"
  "/root/repo/src/chain/merkle.cc" "src/chain/CMakeFiles/bcfl_chain.dir/merkle.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/merkle.cc.o.d"
  "/root/repo/src/chain/miner.cc" "src/chain/CMakeFiles/bcfl_chain.dir/miner.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/miner.cc.o.d"
  "/root/repo/src/chain/state.cc" "src/chain/CMakeFiles/bcfl_chain.dir/state.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/state.cc.o.d"
  "/root/repo/src/chain/storage.cc" "src/chain/CMakeFiles/bcfl_chain.dir/storage.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/storage.cc.o.d"
  "/root/repo/src/chain/transaction.cc" "src/chain/CMakeFiles/bcfl_chain.dir/transaction.cc.o" "gcc" "src/chain/CMakeFiles/bcfl_chain.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcfl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bcfl_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
