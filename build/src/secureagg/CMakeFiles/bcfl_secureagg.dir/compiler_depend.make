# Empty compiler generated dependencies file for bcfl_secureagg.
# This may be replaced when dependencies are built.
