file(REMOVE_RECURSE
  "libbcfl_secureagg.a"
)
