
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secureagg/aggregator.cc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/aggregator.cc.o" "gcc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/aggregator.cc.o.d"
  "/root/repo/src/secureagg/fixed_point.cc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/fixed_point.cc.o" "gcc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/fixed_point.cc.o.d"
  "/root/repo/src/secureagg/mask.cc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/mask.cc.o" "gcc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/mask.cc.o.d"
  "/root/repo/src/secureagg/participant.cc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/participant.cc.o" "gcc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/participant.cc.o.d"
  "/root/repo/src/secureagg/session.cc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/session.cc.o" "gcc" "src/secureagg/CMakeFiles/bcfl_secureagg.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcfl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bcfl_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
