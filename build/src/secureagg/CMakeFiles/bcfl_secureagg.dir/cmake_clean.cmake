file(REMOVE_RECURSE
  "CMakeFiles/bcfl_secureagg.dir/aggregator.cc.o"
  "CMakeFiles/bcfl_secureagg.dir/aggregator.cc.o.d"
  "CMakeFiles/bcfl_secureagg.dir/fixed_point.cc.o"
  "CMakeFiles/bcfl_secureagg.dir/fixed_point.cc.o.d"
  "CMakeFiles/bcfl_secureagg.dir/mask.cc.o"
  "CMakeFiles/bcfl_secureagg.dir/mask.cc.o.d"
  "CMakeFiles/bcfl_secureagg.dir/participant.cc.o"
  "CMakeFiles/bcfl_secureagg.dir/participant.cc.o.d"
  "CMakeFiles/bcfl_secureagg.dir/session.cc.o"
  "CMakeFiles/bcfl_secureagg.dir/session.cc.o.d"
  "libbcfl_secureagg.a"
  "libbcfl_secureagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_secureagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
