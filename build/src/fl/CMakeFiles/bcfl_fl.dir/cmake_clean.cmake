file(REMOVE_RECURSE
  "CMakeFiles/bcfl_fl.dir/client.cc.o"
  "CMakeFiles/bcfl_fl.dir/client.cc.o.d"
  "CMakeFiles/bcfl_fl.dir/fedavg.cc.o"
  "CMakeFiles/bcfl_fl.dir/fedavg.cc.o.d"
  "CMakeFiles/bcfl_fl.dir/robust.cc.o"
  "CMakeFiles/bcfl_fl.dir/robust.cc.o.d"
  "CMakeFiles/bcfl_fl.dir/trainer.cc.o"
  "CMakeFiles/bcfl_fl.dir/trainer.cc.o.d"
  "libbcfl_fl.a"
  "libbcfl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
