# Empty dependencies file for bcfl_fl.
# This may be replaced when dependencies are built.
