
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/client.cc" "src/fl/CMakeFiles/bcfl_fl.dir/client.cc.o" "gcc" "src/fl/CMakeFiles/bcfl_fl.dir/client.cc.o.d"
  "/root/repo/src/fl/fedavg.cc" "src/fl/CMakeFiles/bcfl_fl.dir/fedavg.cc.o" "gcc" "src/fl/CMakeFiles/bcfl_fl.dir/fedavg.cc.o.d"
  "/root/repo/src/fl/robust.cc" "src/fl/CMakeFiles/bcfl_fl.dir/robust.cc.o" "gcc" "src/fl/CMakeFiles/bcfl_fl.dir/robust.cc.o.d"
  "/root/repo/src/fl/trainer.cc" "src/fl/CMakeFiles/bcfl_fl.dir/trainer.cc.o" "gcc" "src/fl/CMakeFiles/bcfl_fl.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bcfl_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
