file(REMOVE_RECURSE
  "libbcfl_fl.a"
)
