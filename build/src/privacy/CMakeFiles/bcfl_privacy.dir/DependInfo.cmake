
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/ldp_fl.cc" "src/privacy/CMakeFiles/bcfl_privacy.dir/ldp_fl.cc.o" "gcc" "src/privacy/CMakeFiles/bcfl_privacy.dir/ldp_fl.cc.o.d"
  "/root/repo/src/privacy/leakage.cc" "src/privacy/CMakeFiles/bcfl_privacy.dir/leakage.cc.o" "gcc" "src/privacy/CMakeFiles/bcfl_privacy.dir/leakage.cc.o.d"
  "/root/repo/src/privacy/mechanisms.cc" "src/privacy/CMakeFiles/bcfl_privacy.dir/mechanisms.cc.o" "gcc" "src/privacy/CMakeFiles/bcfl_privacy.dir/mechanisms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bcfl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/bcfl_fl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
