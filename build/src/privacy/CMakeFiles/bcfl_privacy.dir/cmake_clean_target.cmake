file(REMOVE_RECURSE
  "libbcfl_privacy.a"
)
