# Empty compiler generated dependencies file for bcfl_privacy.
# This may be replaced when dependencies are built.
