file(REMOVE_RECURSE
  "CMakeFiles/bcfl_privacy.dir/ldp_fl.cc.o"
  "CMakeFiles/bcfl_privacy.dir/ldp_fl.cc.o.d"
  "CMakeFiles/bcfl_privacy.dir/leakage.cc.o"
  "CMakeFiles/bcfl_privacy.dir/leakage.cc.o.d"
  "CMakeFiles/bcfl_privacy.dir/mechanisms.cc.o"
  "CMakeFiles/bcfl_privacy.dir/mechanisms.cc.o.d"
  "libbcfl_privacy.a"
  "libbcfl_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
