file(REMOVE_RECURSE
  "libbcfl_net.a"
)
