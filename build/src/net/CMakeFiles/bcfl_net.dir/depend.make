# Empty dependencies file for bcfl_net.
# This may be replaced when dependencies are built.
