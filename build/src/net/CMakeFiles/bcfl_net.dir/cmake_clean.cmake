file(REMOVE_RECURSE
  "CMakeFiles/bcfl_net.dir/network.cc.o"
  "CMakeFiles/bcfl_net.dir/network.cc.o.d"
  "libbcfl_net.a"
  "libbcfl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
