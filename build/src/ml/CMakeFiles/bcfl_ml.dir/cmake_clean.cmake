file(REMOVE_RECURSE
  "CMakeFiles/bcfl_ml.dir/dataset.cc.o"
  "CMakeFiles/bcfl_ml.dir/dataset.cc.o.d"
  "CMakeFiles/bcfl_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/bcfl_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/bcfl_ml.dir/matrix.cc.o"
  "CMakeFiles/bcfl_ml.dir/matrix.cc.o.d"
  "CMakeFiles/bcfl_ml.dir/metrics.cc.o"
  "CMakeFiles/bcfl_ml.dir/metrics.cc.o.d"
  "libbcfl_ml.a"
  "libbcfl_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
