file(REMOVE_RECURSE
  "libbcfl_ml.a"
)
