# Empty dependencies file for bcfl_ml.
# This may be replaced when dependencies are built.
