
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cc" "src/core/CMakeFiles/bcfl_core.dir/adversary.cc.o" "gcc" "src/core/CMakeFiles/bcfl_core.dir/adversary.cc.o.d"
  "/root/repo/src/core/coordinator.cc" "src/core/CMakeFiles/bcfl_core.dir/coordinator.cc.o" "gcc" "src/core/CMakeFiles/bcfl_core.dir/coordinator.cc.o.d"
  "/root/repo/src/core/fl_contract.cc" "src/core/CMakeFiles/bcfl_core.dir/fl_contract.cc.o" "gcc" "src/core/CMakeFiles/bcfl_core.dir/fl_contract.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/bcfl_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/bcfl_core.dir/params.cc.o.d"
  "/root/repo/src/core/reward_contract.cc" "src/core/CMakeFiles/bcfl_core.dir/reward_contract.cc.o" "gcc" "src/core/CMakeFiles/bcfl_core.dir/reward_contract.cc.o.d"
  "/root/repo/src/core/state_keys.cc" "src/core/CMakeFiles/bcfl_core.dir/state_keys.cc.o" "gcc" "src/core/CMakeFiles/bcfl_core.dir/state_keys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcfl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bcfl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bcfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/bcfl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/secureagg/CMakeFiles/bcfl_secureagg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bcfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/bcfl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/shapley/CMakeFiles/bcfl_shapley.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
