file(REMOVE_RECURSE
  "CMakeFiles/bcfl_core.dir/adversary.cc.o"
  "CMakeFiles/bcfl_core.dir/adversary.cc.o.d"
  "CMakeFiles/bcfl_core.dir/coordinator.cc.o"
  "CMakeFiles/bcfl_core.dir/coordinator.cc.o.d"
  "CMakeFiles/bcfl_core.dir/fl_contract.cc.o"
  "CMakeFiles/bcfl_core.dir/fl_contract.cc.o.d"
  "CMakeFiles/bcfl_core.dir/params.cc.o"
  "CMakeFiles/bcfl_core.dir/params.cc.o.d"
  "CMakeFiles/bcfl_core.dir/reward_contract.cc.o"
  "CMakeFiles/bcfl_core.dir/reward_contract.cc.o.d"
  "CMakeFiles/bcfl_core.dir/state_keys.cc.o"
  "CMakeFiles/bcfl_core.dir/state_keys.cc.o.d"
  "libbcfl_core.a"
  "libbcfl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
