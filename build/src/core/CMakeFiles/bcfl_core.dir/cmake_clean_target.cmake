file(REMOVE_RECURSE
  "libbcfl_core.a"
)
