# Empty dependencies file for bcfl_core.
# This may be replaced when dependencies are built.
