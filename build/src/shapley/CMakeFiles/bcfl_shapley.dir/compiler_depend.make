# Empty compiler generated dependencies file for bcfl_shapley.
# This may be replaced when dependencies are built.
