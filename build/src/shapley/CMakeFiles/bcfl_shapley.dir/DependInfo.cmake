
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shapley/coalition_engine.cc" "src/shapley/CMakeFiles/bcfl_shapley.dir/coalition_engine.cc.o" "gcc" "src/shapley/CMakeFiles/bcfl_shapley.dir/coalition_engine.cc.o.d"
  "/root/repo/src/shapley/group_sv.cc" "src/shapley/CMakeFiles/bcfl_shapley.dir/group_sv.cc.o" "gcc" "src/shapley/CMakeFiles/bcfl_shapley.dir/group_sv.cc.o.d"
  "/root/repo/src/shapley/monte_carlo.cc" "src/shapley/CMakeFiles/bcfl_shapley.dir/monte_carlo.cc.o" "gcc" "src/shapley/CMakeFiles/bcfl_shapley.dir/monte_carlo.cc.o.d"
  "/root/repo/src/shapley/native_sv.cc" "src/shapley/CMakeFiles/bcfl_shapley.dir/native_sv.cc.o" "gcc" "src/shapley/CMakeFiles/bcfl_shapley.dir/native_sv.cc.o.d"
  "/root/repo/src/shapley/shapley_math.cc" "src/shapley/CMakeFiles/bcfl_shapley.dir/shapley_math.cc.o" "gcc" "src/shapley/CMakeFiles/bcfl_shapley.dir/shapley_math.cc.o.d"
  "/root/repo/src/shapley/similarity.cc" "src/shapley/CMakeFiles/bcfl_shapley.dir/similarity.cc.o" "gcc" "src/shapley/CMakeFiles/bcfl_shapley.dir/similarity.cc.o.d"
  "/root/repo/src/shapley/utility.cc" "src/shapley/CMakeFiles/bcfl_shapley.dir/utility.cc.o" "gcc" "src/shapley/CMakeFiles/bcfl_shapley.dir/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcfl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bcfl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/bcfl_fl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
