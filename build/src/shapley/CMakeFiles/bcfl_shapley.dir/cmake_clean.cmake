file(REMOVE_RECURSE
  "CMakeFiles/bcfl_shapley.dir/coalition_engine.cc.o"
  "CMakeFiles/bcfl_shapley.dir/coalition_engine.cc.o.d"
  "CMakeFiles/bcfl_shapley.dir/group_sv.cc.o"
  "CMakeFiles/bcfl_shapley.dir/group_sv.cc.o.d"
  "CMakeFiles/bcfl_shapley.dir/monte_carlo.cc.o"
  "CMakeFiles/bcfl_shapley.dir/monte_carlo.cc.o.d"
  "CMakeFiles/bcfl_shapley.dir/native_sv.cc.o"
  "CMakeFiles/bcfl_shapley.dir/native_sv.cc.o.d"
  "CMakeFiles/bcfl_shapley.dir/shapley_math.cc.o"
  "CMakeFiles/bcfl_shapley.dir/shapley_math.cc.o.d"
  "CMakeFiles/bcfl_shapley.dir/similarity.cc.o"
  "CMakeFiles/bcfl_shapley.dir/similarity.cc.o.d"
  "CMakeFiles/bcfl_shapley.dir/utility.cc.o"
  "CMakeFiles/bcfl_shapley.dir/utility.cc.o.d"
  "libbcfl_shapley.a"
  "libbcfl_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
