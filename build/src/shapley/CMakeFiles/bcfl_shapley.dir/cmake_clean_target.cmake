file(REMOVE_RECURSE
  "libbcfl_shapley.a"
)
