file(REMOVE_RECURSE
  "libbcfl_data.a"
)
