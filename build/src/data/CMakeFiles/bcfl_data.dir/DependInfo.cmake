
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/digits.cc" "src/data/CMakeFiles/bcfl_data.dir/digits.cc.o" "gcc" "src/data/CMakeFiles/bcfl_data.dir/digits.cc.o.d"
  "/root/repo/src/data/noise.cc" "src/data/CMakeFiles/bcfl_data.dir/noise.cc.o" "gcc" "src/data/CMakeFiles/bcfl_data.dir/noise.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/data/CMakeFiles/bcfl_data.dir/partition.cc.o" "gcc" "src/data/CMakeFiles/bcfl_data.dir/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bcfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bcfl_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
