# Empty compiler generated dependencies file for bcfl_data.
# This may be replaced when dependencies are built.
