file(REMOVE_RECURSE
  "CMakeFiles/bcfl_data.dir/digits.cc.o"
  "CMakeFiles/bcfl_data.dir/digits.cc.o.d"
  "CMakeFiles/bcfl_data.dir/noise.cc.o"
  "CMakeFiles/bcfl_data.dir/noise.cc.o.d"
  "CMakeFiles/bcfl_data.dir/partition.cc.o"
  "CMakeFiles/bcfl_data.dir/partition.cc.o.d"
  "libbcfl_data.a"
  "libbcfl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
