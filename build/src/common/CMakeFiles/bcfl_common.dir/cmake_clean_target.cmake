file(REMOVE_RECURSE
  "libbcfl_common.a"
)
