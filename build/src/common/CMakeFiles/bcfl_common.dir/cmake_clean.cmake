file(REMOVE_RECURSE
  "CMakeFiles/bcfl_common.dir/bytes.cc.o"
  "CMakeFiles/bcfl_common.dir/bytes.cc.o.d"
  "CMakeFiles/bcfl_common.dir/logging.cc.o"
  "CMakeFiles/bcfl_common.dir/logging.cc.o.d"
  "CMakeFiles/bcfl_common.dir/rng.cc.o"
  "CMakeFiles/bcfl_common.dir/rng.cc.o.d"
  "CMakeFiles/bcfl_common.dir/sim_clock.cc.o"
  "CMakeFiles/bcfl_common.dir/sim_clock.cc.o.d"
  "CMakeFiles/bcfl_common.dir/status.cc.o"
  "CMakeFiles/bcfl_common.dir/status.cc.o.d"
  "CMakeFiles/bcfl_common.dir/thread_pool.cc.o"
  "CMakeFiles/bcfl_common.dir/thread_pool.cc.o.d"
  "libbcfl_common.a"
  "libbcfl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
