# Empty dependencies file for bcfl_common.
# This may be replaced when dependencies are built.
