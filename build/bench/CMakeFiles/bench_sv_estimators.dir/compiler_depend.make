# Empty compiler generated dependencies file for bench_sv_estimators.
# This may be replaced when dependencies are built.
