file(REMOVE_RECURSE
  "CMakeFiles/bench_sv_estimators.dir/bench_sv_estimators.cc.o"
  "CMakeFiles/bench_sv_estimators.dir/bench_sv_estimators.cc.o.d"
  "bench_sv_estimators"
  "bench_sv_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sv_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
