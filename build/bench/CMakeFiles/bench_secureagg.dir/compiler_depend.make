# Empty compiler generated dependencies file for bench_secureagg.
# This may be replaced when dependencies are built.
