file(REMOVE_RECURSE
  "CMakeFiles/bench_secureagg.dir/bench_secureagg.cc.o"
  "CMakeFiles/bench_secureagg.dir/bench_secureagg.cc.o.d"
  "bench_secureagg"
  "bench_secureagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secureagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
