file(REMOVE_RECURSE
  "CMakeFiles/bench_ldp_tradeoff.dir/bench_ldp_tradeoff.cc.o"
  "CMakeFiles/bench_ldp_tradeoff.dir/bench_ldp_tradeoff.cc.o.d"
  "bench_ldp_tradeoff"
  "bench_ldp_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ldp_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
