# Empty compiler generated dependencies file for bench_fig1_ground_truth.
# This may be replaced when dependencies are built.
