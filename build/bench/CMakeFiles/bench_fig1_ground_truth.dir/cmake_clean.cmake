file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ground_truth.dir/bench_fig1_ground_truth.cc.o"
  "CMakeFiles/bench_fig1_ground_truth.dir/bench_fig1_ground_truth.cc.o.d"
  "bench_fig1_ground_truth"
  "bench_fig1_ground_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ground_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
