# Empty dependencies file for bench_adversarial_owners.
# This may be replaced when dependencies are built.
