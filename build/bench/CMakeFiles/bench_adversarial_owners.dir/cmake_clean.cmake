file(REMOVE_RECURSE
  "CMakeFiles/bench_adversarial_owners.dir/bench_adversarial_owners.cc.o"
  "CMakeFiles/bench_adversarial_owners.dir/bench_adversarial_owners.cc.o.d"
  "bench_adversarial_owners"
  "bench_adversarial_owners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adversarial_owners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
