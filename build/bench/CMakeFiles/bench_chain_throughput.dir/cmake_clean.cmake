file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_throughput.dir/bench_chain_throughput.cc.o"
  "CMakeFiles/bench_chain_throughput.dir/bench_chain_throughput.cc.o.d"
  "bench_chain_throughput"
  "bench_chain_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
