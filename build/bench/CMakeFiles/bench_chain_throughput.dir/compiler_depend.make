# Empty compiler generated dependencies file for bench_chain_throughput.
# This may be replaced when dependencies are built.
