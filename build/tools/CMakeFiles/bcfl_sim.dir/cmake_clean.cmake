file(REMOVE_RECURSE
  "CMakeFiles/bcfl_sim.dir/bcfl_sim.cc.o"
  "CMakeFiles/bcfl_sim.dir/bcfl_sim.cc.o.d"
  "bcfl_sim"
  "bcfl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcfl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
