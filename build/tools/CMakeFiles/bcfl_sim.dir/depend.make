# Empty dependencies file for bcfl_sim.
# This may be replaced when dependencies are built.
