# Empty compiler generated dependencies file for adversarial_leader.
# This may be replaced when dependencies are built.
