file(REMOVE_RECURSE
  "CMakeFiles/adversarial_leader.dir/adversarial_leader.cpp.o"
  "CMakeFiles/adversarial_leader.dir/adversarial_leader.cpp.o.d"
  "adversarial_leader"
  "adversarial_leader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_leader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
