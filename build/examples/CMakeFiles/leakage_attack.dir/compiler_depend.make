# Empty compiler generated dependencies file for leakage_attack.
# This may be replaced when dependencies are built.
