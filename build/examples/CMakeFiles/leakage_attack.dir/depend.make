# Empty dependencies file for leakage_attack.
# This may be replaced when dependencies are built.
