file(REMOVE_RECURSE
  "CMakeFiles/leakage_attack.dir/leakage_attack.cpp.o"
  "CMakeFiles/leakage_attack.dir/leakage_attack.cpp.o.d"
  "leakage_attack"
  "leakage_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
