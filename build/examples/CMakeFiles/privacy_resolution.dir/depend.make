# Empty dependencies file for privacy_resolution.
# This may be replaced when dependencies are built.
