file(REMOVE_RECURSE
  "CMakeFiles/privacy_resolution.dir/privacy_resolution.cpp.o"
  "CMakeFiles/privacy_resolution.dir/privacy_resolution.cpp.o.d"
  "privacy_resolution"
  "privacy_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
