file(REMOVE_RECURSE
  "CMakeFiles/dropout_recovery.dir/dropout_recovery.cpp.o"
  "CMakeFiles/dropout_recovery.dir/dropout_recovery.cpp.o.d"
  "dropout_recovery"
  "dropout_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dropout_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
