# Empty dependencies file for dropout_recovery.
# This may be replaced when dependencies are built.
