file(REMOVE_RECURSE
  "CMakeFiles/cross_silo_banks.dir/cross_silo_banks.cpp.o"
  "CMakeFiles/cross_silo_banks.dir/cross_silo_banks.cpp.o.d"
  "cross_silo_banks"
  "cross_silo_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_silo_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
