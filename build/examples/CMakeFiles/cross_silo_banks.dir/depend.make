# Empty dependencies file for cross_silo_banks.
# This may be replaced when dependencies are built.
