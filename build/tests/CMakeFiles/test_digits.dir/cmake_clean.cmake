file(REMOVE_RECURSE
  "CMakeFiles/test_digits.dir/test_digits.cc.o"
  "CMakeFiles/test_digits.dir/test_digits.cc.o.d"
  "test_digits"
  "test_digits.pdb"
  "test_digits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
