# Empty compiler generated dependencies file for test_digits.
# This may be replaced when dependencies are built.
