file(REMOVE_RECURSE
  "CMakeFiles/test_blockchain.dir/test_blockchain.cc.o"
  "CMakeFiles/test_blockchain.dir/test_blockchain.cc.o.d"
  "test_blockchain"
  "test_blockchain.pdb"
  "test_blockchain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blockchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
