# Empty dependencies file for test_blockchain.
# This may be replaced when dependencies are built.
