file(REMOVE_RECURSE
  "CMakeFiles/test_coalition_engine.dir/test_coalition_engine.cc.o"
  "CMakeFiles/test_coalition_engine.dir/test_coalition_engine.cc.o.d"
  "test_coalition_engine"
  "test_coalition_engine.pdb"
  "test_coalition_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coalition_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
