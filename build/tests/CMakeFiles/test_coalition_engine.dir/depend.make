# Empty dependencies file for test_coalition_engine.
# This may be replaced when dependencies are built.
