
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_coalition_engine.cc" "tests/CMakeFiles/test_coalition_engine.dir/test_coalition_engine.cc.o" "gcc" "tests/CMakeFiles/test_coalition_engine.dir/test_coalition_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bcfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/bcfl_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/shapley/CMakeFiles/bcfl_shapley.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/bcfl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bcfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/secureagg/CMakeFiles/bcfl_secureagg.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/bcfl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bcfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bcfl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcfl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bcfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
