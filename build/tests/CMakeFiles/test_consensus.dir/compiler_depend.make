# Empty compiler generated dependencies file for test_consensus.
# This may be replaced when dependencies are built.
