file(REMOVE_RECURSE
  "CMakeFiles/test_native_sv.dir/test_native_sv.cc.o"
  "CMakeFiles/test_native_sv.dir/test_native_sv.cc.o.d"
  "test_native_sv"
  "test_native_sv.pdb"
  "test_native_sv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_native_sv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
