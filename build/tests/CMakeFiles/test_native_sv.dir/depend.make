# Empty dependencies file for test_native_sv.
# This may be replaced when dependencies are built.
