file(REMOVE_RECURSE
  "CMakeFiles/test_group_sv.dir/test_group_sv.cc.o"
  "CMakeFiles/test_group_sv.dir/test_group_sv.cc.o.d"
  "test_group_sv"
  "test_group_sv.pdb"
  "test_group_sv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group_sv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
