# Empty dependencies file for test_group_sv.
# This may be replaced when dependencies are built.
