file(REMOVE_RECURSE
  "CMakeFiles/test_uint256.dir/test_uint256.cc.o"
  "CMakeFiles/test_uint256.dir/test_uint256.cc.o.d"
  "test_uint256"
  "test_uint256.pdb"
  "test_uint256[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uint256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
