file(REMOVE_RECURSE
  "CMakeFiles/test_dh.dir/test_dh.cc.o"
  "CMakeFiles/test_dh.dir/test_dh.cc.o.d"
  "test_dh"
  "test_dh.pdb"
  "test_dh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
