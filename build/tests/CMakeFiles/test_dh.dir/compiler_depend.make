# Empty compiler generated dependencies file for test_dh.
# This may be replaced when dependencies are built.
