# Empty compiler generated dependencies file for test_shapley_math.
# This may be replaced when dependencies are built.
