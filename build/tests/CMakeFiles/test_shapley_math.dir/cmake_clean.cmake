file(REMOVE_RECURSE
  "CMakeFiles/test_shapley_math.dir/test_shapley_math.cc.o"
  "CMakeFiles/test_shapley_math.dir/test_shapley_math.cc.o.d"
  "test_shapley_math"
  "test_shapley_math.pdb"
  "test_shapley_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shapley_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
