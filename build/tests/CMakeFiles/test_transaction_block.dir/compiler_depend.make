# Empty compiler generated dependencies file for test_transaction_block.
# This may be replaced when dependencies are built.
