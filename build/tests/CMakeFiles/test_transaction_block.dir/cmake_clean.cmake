file(REMOVE_RECURSE
  "CMakeFiles/test_transaction_block.dir/test_transaction_block.cc.o"
  "CMakeFiles/test_transaction_block.dir/test_transaction_block.cc.o.d"
  "test_transaction_block"
  "test_transaction_block.pdb"
  "test_transaction_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transaction_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
