file(REMOVE_RECURSE
  "CMakeFiles/test_fl_contract.dir/test_fl_contract.cc.o"
  "CMakeFiles/test_fl_contract.dir/test_fl_contract.cc.o.d"
  "test_fl_contract"
  "test_fl_contract.pdb"
  "test_fl_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
