# Empty compiler generated dependencies file for test_fl_contract.
# This may be replaced when dependencies are built.
