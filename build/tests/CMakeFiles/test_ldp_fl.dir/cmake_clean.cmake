file(REMOVE_RECURSE
  "CMakeFiles/test_ldp_fl.dir/test_ldp_fl.cc.o"
  "CMakeFiles/test_ldp_fl.dir/test_ldp_fl.cc.o.d"
  "test_ldp_fl"
  "test_ldp_fl.pdb"
  "test_ldp_fl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldp_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
