# Empty dependencies file for test_ldp_fl.
# This may be replaced when dependencies are built.
