file(REMOVE_RECURSE
  "CMakeFiles/test_shamir.dir/test_shamir.cc.o"
  "CMakeFiles/test_shamir.dir/test_shamir.cc.o.d"
  "test_shamir"
  "test_shamir.pdb"
  "test_shamir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shamir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
