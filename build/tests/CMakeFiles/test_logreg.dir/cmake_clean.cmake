file(REMOVE_RECURSE
  "CMakeFiles/test_logreg.dir/test_logreg.cc.o"
  "CMakeFiles/test_logreg.dir/test_logreg.cc.o.d"
  "test_logreg"
  "test_logreg.pdb"
  "test_logreg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
