# Empty compiler generated dependencies file for test_state_contract.
# This may be replaced when dependencies are built.
