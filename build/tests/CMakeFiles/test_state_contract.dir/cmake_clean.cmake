file(REMOVE_RECURSE
  "CMakeFiles/test_state_contract.dir/test_state_contract.cc.o"
  "CMakeFiles/test_state_contract.dir/test_state_contract.cc.o.d"
  "test_state_contract"
  "test_state_contract.pdb"
  "test_state_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
