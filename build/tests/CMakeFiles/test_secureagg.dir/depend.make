# Empty dependencies file for test_secureagg.
# This may be replaced when dependencies are built.
