file(REMOVE_RECURSE
  "CMakeFiles/test_secureagg.dir/test_secureagg.cc.o"
  "CMakeFiles/test_secureagg.dir/test_secureagg.cc.o.d"
  "test_secureagg"
  "test_secureagg.pdb"
  "test_secureagg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secureagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
