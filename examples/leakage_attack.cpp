// Why the paper masks updates at all: the "deep leakage from gradients"
// motivation ([6], Sect. III-A). A curious on-chain observer who sees a
// data owner's *unmasked* model update can reconstruct the owner's
// private training images; the same observer staring at the masked
// update recovers only noise.
//
//   $ ./examples/leakage_attack
//
// Renders the victim's private digit, the attacker's reconstruction from
// the raw update, and the "reconstruction" from the masked update.

#include <algorithm>
#include <cstdio>

#include "data/digits.h"
#include "ml/logistic_regression.h"
#include "privacy/leakage.h"
#include "secureagg/fixed_point.h"
#include "secureagg/mask.h"

using namespace bcfl;

namespace {

/// Normalises an attack reconstruction to the digit intensity range for
/// rendering (the attack recovers the image up to a positive scale).
std::vector<double> NormaliseForDisplay(const std::vector<double>& image) {
  double lo = *std::min_element(image.begin(), image.end());
  double hi = *std::max_element(image.begin(), image.end());
  std::vector<double> out(image.size());
  double span = hi > lo ? hi - lo : 1.0;
  for (size_t i = 0; i < image.size(); ++i) {
    out[i] = (image[i] - lo) / span * 16.0;
  }
  return out;
}

void SideBySide(const std::string& left, const std::string& mid,
                const std::string& right) {
  std::printf("%-14s %-14s %-14s\n", "private", "from raw", "from masked");
  size_t li = 0, mi = 0, ri = 0;
  for (int row = 0; row < 8; ++row) {
    std::string l = left.substr(li, 8);
    std::string m = mid.substr(mi, 8);
    std::string r = right.substr(ri, 8);
    std::printf("%-14s %-14s %-14s\n", l.c_str(), m.c_str(), r.c_str());
    li += 9;
    mi += 9;
    ri += 9;
  }
}

}  // namespace

int main() {
  const int kVictimDigit = 5;

  // The victim: a data owner whose local dataset is a single example.
  auto tpl = data::DigitsGenerator::Template(kVictimDigit).value();
  ml::Matrix x(1, 64);
  for (size_t f = 0; f < 64; ++f) x.At(0, f) = tpl[f];
  ml::Dataset victim_data(std::move(x), {kVictimDigit}, 10);

  // The victim performs one local step from the public global model
  // (zero weights at round 0) and shares the update.
  ml::LogisticRegressionConfig config;
  config.learning_rate = 0.5;
  config.l2_penalty = 0.0;
  ml::LogisticRegression model(64, 10, config);
  ml::Matrix w_before = model.weights();
  if (!model.TrainEpochs(victim_data, 1).ok()) return 1;
  ml::Matrix w_after = model.weights();

  // --- Attack 1: the raw (unmasked) update. ---------------------------
  auto g = privacy::RecoverClassGradient(w_before, w_after,
                                         config.learning_rate,
                                         config.l2_penalty);
  if (!g.ok()) return 1;
  auto images = privacy::ExtractClassImages(*g);
  auto corr_raw =
      privacy::ImageCorrelation(images[kVictimDigit], tpl).ValueOr(0.0);

  // --- Attack 2: the masked update (what the blockchain stores). ------
  secureagg::FixedPointCodec codec(24);
  auto encoded = codec.EncodeMatrix(w_after);
  std::array<uint8_t, 32> pair_key{};
  pair_key[0] = 99;
  auto mask = secureagg::ExpandMask(pair_key, 0, encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) encoded[i] += mask[i];
  auto masked_after =
      codec.DecodeMatrix(encoded, w_after.rows(), w_after.cols()).value();
  auto g_masked = privacy::RecoverClassGradient(
      w_before, masked_after, config.learning_rate, config.l2_penalty);
  auto masked_images = privacy::ExtractClassImages(*g_masked);
  auto corr_masked =
      privacy::ImageCorrelation(masked_images[kVictimDigit], tpl)
          .ValueOr(0.0);

  std::printf("Gradient-leakage attack against a single-example owner "
              "(digit %d)\n\n",
              kVictimDigit);
  std::vector<double> raw_display = NormaliseForDisplay(images[kVictimDigit]);
  std::vector<double> masked_display =
      NormaliseForDisplay(masked_images[kVictimDigit]);
  SideBySide(data::RenderDigit(tpl.data()),
             data::RenderDigit(raw_display.data()),
             data::RenderDigit(masked_display.data()));

  std::printf("\ncorrelation with the private image:\n");
  std::printf("  raw update    : %+.4f  (private data fully leaked)\n",
              corr_raw);
  std::printf("  masked update : %+.4f  (secure aggregation blocks the "
              "attack)\n",
              corr_masked);
  return 0;
}
