// The m-knob: how the number of groups trades privacy for contribution
// resolution (Sect. IV-B, "Group SV is configurable...").
//
// m = 1: one group — every owner's update hides inside an average of n
//        models (maximum privacy), but everyone receives the same SV
//        (no resolution).
// m = n: every owner is its own group — per-user SVs (full resolution),
//        but each "group model" IS the individual's model (no privacy).
//
// This example runs one off-chain federation and sweeps m, reporting the
// anonymity-set size next to how faithfully each setting recovers the
// per-user contribution ranking.

#include <cstdio>

#include "data/digits.h"
#include "data/noise.h"
#include "data/partition.h"
#include "fl/trainer.h"
#include "shapley/group_sv.h"
#include "shapley/similarity.h"
#include "shapley/utility.h"

using namespace bcfl;

int main() {
  const size_t kOwners = 8;
  const uint64_t kSeedE = 9;

  // Federation with a pronounced quality gradient.
  data::DigitsConfig digits;
  digits.num_instances = 2000;
  digits.seed = 12;
  ml::Dataset full = data::DigitsGenerator(digits).Generate();
  Xoshiro256 rng(12);
  auto split = full.TrainTestSplit(0.8, &rng).value();
  auto parts = data::PartitionUniform(split.first, kOwners, &rng).value();
  if (!data::ApplyQualityGradient(&parts, 1.0, 13).ok()) return 1;

  ml::LogisticRegressionConfig lr;
  lr.learning_rate = 0.05;
  lr.epochs = 4;
  std::vector<fl::FlClient> clients;
  for (size_t i = 0; i < kOwners; ++i) {
    clients.emplace_back(static_cast<fl::OwnerId>(i), std::move(parts[i]),
                         lr);
  }
  fl::FlConfig fl_config;
  fl_config.rounds = 10;
  fl_config.local = lr;
  fl::FederatedTrainer trainer(std::move(clients), fl_config);
  auto run = trainer.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  // Reference ranking: GroupSV at m = n (per-user evaluation).
  shapley::TestAccuracyUtility ref_utility(split.second);
  shapley::GroupShapley reference(kOwners, {kOwners, kSeedE},
                                  &ref_utility);
  auto per_user =
      reference.AccumulateOverRounds(run->per_round_locals).value();

  std::printf("Privacy vs resolution for n = %zu owners\n\n", kOwners);
  std::printf("%-5s %-22s %-22s %-14s\n", "m", "anonymity set (n/m)",
              "distinct SV levels", "rank fidelity");
  for (size_t m = 1; m <= kOwners; ++m) {
    shapley::TestAccuracyUtility utility(split.second);
    shapley::GroupShapley evaluator(kOwners, {m, kSeedE}, &utility);
    auto totals =
        evaluator.AccumulateOverRounds(run->per_round_locals).value();

    // Distinct per-round levels ~ the resolution of a single round; over
    // multiple rounds values mix, so report Spearman vs per-user too.
    auto rho = shapley::SpearmanCorrelation(totals, per_user);
    std::printf("%-5zu %-22.2f %-22zu %-14s\n", m,
                static_cast<double>(kOwners) / static_cast<double>(m), m,
                rho.ok() ? std::to_string(*rho).c_str()
                         : "(uniform)");
  }

  std::printf(
      "\nReading the table: small m -> each on-chain group model averages\n"
      "many owners (large anonymity set) but a single round can only\n"
      "distinguish m contribution levels; large m -> sharp per-user\n"
      "scores, at the price of revealing nearly-individual models.\n"
      "Multi-round accumulation (here, 10 rounds of re-randomised\n"
      "groupings) partially recovers the ranking even for moderate m.\n");
  return 0;
}
