// Cross-silo scenario from the paper's introduction: mutually untrusted
// organizations (think banks building a shared fraud/character-
// recognition model) that will only collaborate for a fair,
// *verifiable* reward. No semi-trusted server exists; the blockchain
// replaces it.
//
// This example runs the full pipeline for 9 institutions with
// heterogeneous data quality, then turns the on-chain Shapley values
// into a reward allocation from a fixed budget, and prints the Merkle
// proof that one institution's masked update really is on chain (an
// audit a regulator could replay).

#include <algorithm>
#include <cstdio>

#include "chain/merkle.h"
#include "core/coordinator.h"

using namespace bcfl;

int main() {
  const double kRewardBudget = 1'000'000.0;  // Total payout to split.

  core::BcflConfig config;
  config.num_owners = 9;
  config.num_miners = 5;
  config.rounds = 6;
  config.num_groups = 3;
  config.sigma = 1.0;
  config.seed = 2021;
  config.digits.num_instances = 3000;
  config.local.epochs = 3;
  config.local.learning_rate = 0.05;

  std::printf("Cross-silo federation: 9 institutions, 5 miners, m=%u "
              "groups, %u rounds\n\n",
              config.num_groups, config.rounds);

  auto coordinator = core::BcflCoordinator::Create(config);
  if (!coordinator.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  auto result = (*coordinator)->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Model quality over rounds (shared test set):");
  for (double acc : result->round_accuracies) std::printf(" %.3f", acc);
  std::printf("\n\n");

  // Reward allocation: clamp negative contributions to zero, split the
  // budget proportionally — the incentive mechanism the paper motivates.
  std::vector<double> clamped(result->total_sv.size());
  double total_positive = 0;
  for (size_t i = 0; i < clamped.size(); ++i) {
    clamped[i] = std::max(0.0, result->total_sv[i]);
    total_positive += clamped[i];
  }
  std::printf("%-8s %-14s %-14s %-14s\n", "bank", "data quality",
              "on-chain SV", "reward");
  for (size_t i = 0; i < clamped.size(); ++i) {
    double reward = total_positive > 0
                        ? kRewardBudget * clamped[i] / total_positive
                        : kRewardBudget / static_cast<double>(clamped.size());
    std::printf("%-8zu sigma=%-7.1f %+13.4f  $%-13.2f\n", i,
                config.sigma * static_cast<double>(i),
                result->total_sv[i], reward);
  }

  // Auditability: prove that block 2's first transaction is committed
  // under its Merkle root — verifiable with only the block header.
  const auto& chain = (*coordinator)->engine().CanonicalChain();
  for (uint64_t h = 1; h <= chain.Height(); ++h) {
    auto block = chain.GetBlock(h);
    if (!block.ok() || block->txs.size() < 2) continue;
    std::vector<crypto::Digest> leaves;
    for (const auto& tx : block->txs) leaves.push_back(tx.Hash());
    chain::MerkleTree tree(leaves);
    auto proof = tree.Proof(0);
    bool valid = proof.ok() &&
                 chain::MerkleTree::VerifyProof(leaves[0], *proof,
                                                block->header.merkle_root);
    std::printf("\nAudit: block %llu, tx 0 inclusion proof (%zu hashes): "
                "%s\n",
                static_cast<unsigned long long>(h),
                proof.ok() ? proof->size() : 0,
                valid ? "VALID" : "INVALID");
    break;
  }

  std::printf("\nEvery SV above was computed by a smart contract that all "
              "5 miners re-executed\nand agreed on — no institution had to "
              "trust a central evaluator.\n");
  return 0;
}
