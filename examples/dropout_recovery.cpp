// Dropout tolerance on chain (extension beyond the paper's
// all-owners-online assumption, following Bonawitz et al. [7]).
//
// Owner 2 goes offline after everyone derived pairwise masks against
// it; the survivors' masked submissions cannot be unmasked on their
// own. The remaining owners reconstruct the dropped owner's DH private
// key from its Shamir shares (distributed at setup) and post a
// `recover` transaction; the smart contract *verifies the revealed key
// against the dropped owner's public key*, removes the residual masks,
// and completes the round over the survivors.

#include <algorithm>
#include <cstdio>

#include "chain/contract_host.h"
#include "core/fl_contract.h"
#include "crypto/shamir.h"
#include "data/digits.h"
#include "secureagg/fixed_point.h"
#include "secureagg/participant.h"
#include "shapley/group_sv.h"

using namespace bcfl;

int main() {
  constexpr uint32_t kOwners = 4;
  constexpr uint32_t kGroups = 2;
  constexpr uint32_t kDropped = 2;
  constexpr size_t kThreshold = 3;

  Xoshiro256 rng(99);
  crypto::Schnorr schnorr;
  crypto::DiffieHellman dh;

  // Setup: keys, pairwise agreement, Shamir shares of each DH private.
  std::vector<crypto::SchnorrKeyPair> sign_keys;
  std::vector<std::unique_ptr<secureagg::SecureAggParticipant>> owners;
  for (uint32_t i = 0; i < kOwners; ++i) {
    sign_keys.push_back(schnorr.GenerateKeyPair(&rng));
    owners.push_back(std::make_unique<secureagg::SecureAggParticipant>(
        i, dh, &rng, /*use_self_mask=*/false));
  }
  for (auto& p : owners) {
    for (auto& q : owners) {
      if (p->id() != q->id()) {
        (void)p->RegisterPeer(q->id(), q->public_key());
      }
    }
  }
  auto scheme = crypto::ShamirSecretSharing::Create(kThreshold, kOwners)
                    .value();
  // Owner 2's recovery shares, one per roster member.
  auto dropped_shares =
      scheme.Split(owners[kDropped]->private_key().ToBytes(), &rng);

  // On-chain side.
  data::DigitsConfig digits;
  digits.num_instances = 500;
  ml::Dataset validation = data::DigitsGenerator(digits).Generate();
  core::SetupParams params;
  params.num_owners = kOwners;
  params.rounds = 1;
  params.num_groups = kGroups;
  params.seed_e = 5;
  params.weight_rows = 65;
  params.weight_cols = 10;
  for (uint32_t i = 0; i < kOwners; ++i) {
    params.schnorr_public_keys.push_back(sign_keys[i].public_key);
    params.dh_public_keys.push_back(owners[i]->public_key());
  }
  chain::ContractHost host(schnorr);
  (void)host.Register(std::make_shared<core::FlContract>(validation));
  chain::ContractState state;

  chain::Transaction setup;
  setup.contract = "bcfl";
  setup.method = "setup";
  setup.payload = params.Serialize();
  setup.Sign(schnorr, sign_keys[0], &rng);
  std::printf("setup committed: %s\n",
              host.ExecuteTransaction(setup, &state)->success ? "yes"
                                                              : "no");

  // Round 0: everyone masks; owner 2 crashes before submitting.
  auto perm = shapley::PermutationFromSeed(params.seed_e, 0, kOwners);
  auto groups = shapley::GroupUsers(perm, kGroups).value();
  secureagg::FixedPointCodec codec(24);
  for (uint32_t i = 0; i < kOwners; ++i) {
    if (i == kDropped) continue;
    std::vector<secureagg::OwnerId> members;
    for (const auto& group : groups) {
      if (std::find(group.begin(), group.end(), static_cast<size_t>(i)) != group.end()) {
        for (size_t m : group) {
          members.push_back(static_cast<secureagg::OwnerId>(m));
        }
      }
    }
    ml::Matrix local = ml::Matrix::Gaussian(65, 10, 0.3, &rng);
    auto masked =
        owners[i]->MaskUpdate(0, members, codec.EncodeMatrix(local)).value();
    chain::Transaction tx;
    tx.contract = "bcfl";
    tx.method = "submit_update";
    tx.payload = core::FlContract::EncodeSubmitUpdate(0, i, masked);
    tx.nonce = i + 1;
    tx.Sign(schnorr, sign_keys[i], &rng);
    std::printf("owner %u submitted: %s\n", i,
                host.ExecuteTransaction(tx, &state)->success ? "yes" : "no");
  }
  std::printf("round complete without owner %u? %s\n", kDropped,
              state.Has(core::keys::RoundComplete(0)) ? "yes" : "no");

  // Recovery: three survivors pool their shares of owner 2's key.
  std::vector<crypto::ShamirShare> revealed = {
      dropped_shares[0], dropped_shares[1], dropped_shares[3]};
  Bytes key_bytes = scheme.Reconstruct(revealed, 32).value();
  crypto::UInt256 recovered_key =
      crypto::UInt256::FromBytes(key_bytes).value();
  std::printf("\nsurvivors reconstructed owner %u's key from %zu of %u "
              "shares\n",
              kDropped, revealed.size(), kOwners);

  // A forged key is rejected by the contract's g^x check.
  chain::Transaction forged;
  forged.contract = "bcfl";
  forged.method = "recover";
  forged.payload =
      core::FlContract::EncodeRecover(0, kDropped, crypto::UInt256(777));
  forged.nonce = 50;
  forged.Sign(schnorr, sign_keys[0], &rng);
  auto forged_receipt = host.ExecuteTransaction(forged, &state);
  std::printf("forged recovery accepted? %s (%s)\n",
              forged_receipt->success ? "YES (BUG)" : "no",
              forged_receipt->error.c_str());

  // The genuine recovery completes the round.
  chain::Transaction recover;
  recover.contract = "bcfl";
  recover.method = "recover";
  recover.payload =
      core::FlContract::EncodeRecover(0, kDropped, recovered_key);
  recover.nonce = 51;
  recover.Sign(schnorr, sign_keys[0], &rng);
  auto receipt = host.ExecuteTransaction(recover, &state);
  std::printf("genuine recovery accepted? %s\n",
              receipt->success ? "yes" : receipt->error.c_str());
  std::printf("round complete after recovery? %s\n",
              state.Has(core::keys::RoundComplete(0)) ? "yes" : "no");

  for (uint32_t i = 0; i < kOwners; ++i) {
    auto sv = core::GetDouble(state, core::keys::RoundSv(0, i));
    std::printf("  owner %u round SV: %+.4f%s\n", i, sv.ValueOr(0.0),
                i == kDropped ? "  (dropped: scores zero)" : "");
  }
  return 0;
}
