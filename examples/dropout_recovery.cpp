// Dropout tolerance on chain (extension beyond the paper's
// all-owners-online assumption, following Bonawitz et al. [7]).
//
// Owner 2 crashes in round 1 after everyone derived pairwise masks
// against it. The coordinator's deadline detection flags the dropout,
// the survivors pool a threshold of owner 2's Shamir shares, and a
// `recover` transaction reveals its DH private key on chain — where the
// smart contract verifies g^x against the published public key before
// cancelling the residual masks. The round completes over the
// survivors; owner 2 is retired and its contribution score frozen.
//
// The detailed mechanics (forged-key rejection, fail-closed reveals,
// double-recovery idempotence) are exercised in
// tests/test_dropout_recovery.cc; this example shows the one-line API:
// a fault plan on the coordinator config.

#include <cstdio>

#include "core/coordinator.h"

using namespace bcfl;

int main() {
  core::BcflConfig config;
  config.num_owners = 4;
  config.num_miners = 3;
  config.rounds = 3;
  config.num_groups = 2;
  config.digits.num_instances = 500;
  config.local.epochs = 2;

  // The chaos DSL: owner 2 goes offline at the start of round 1.
  auto plan = fault::FaultPlan::Parse("crash owner 2 @1");
  if (!plan.ok()) {
    std::printf("bad plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  config.fault_plan = *plan;

  auto coordinator = core::BcflCoordinator::Create(config);
  if (!coordinator.ok()) {
    std::printf("setup failed: %s\n",
                coordinator.status().ToString().c_str());
    return 1;
  }
  std::printf("running %u rounds with fault plan:\n  %s\n", config.rounds,
              config.fault_plan.ToString().c_str());

  auto result = (*coordinator)->Run();
  if (!result.ok()) {
    std::printf("run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nrecover transactions committed: %zu\n",
              result->recover_transactions);
  for (const auto& [owner, round] : result->retired_at) {
    std::printf("owner %u retired in round %llu (key revealed on chain)\n",
                owner, static_cast<unsigned long long>(round));
  }
  std::printf("\nper-owner contribution (SV frozen after retirement):\n");
  for (uint32_t i = 0; i < config.num_owners; ++i) {
    std::printf("  owner %u:", i);
    for (uint32_t r = 0; r < config.rounds; ++r) {
      std::printf(" %+.4f", result->per_round_sv[r][i]);
    }
    std::printf("  total %+.4f%s\n", result->total_sv[i],
                result->retired_at.count(i) > 0 ? "  (retired)" : "");
  }
  std::printf("\nfinal accuracy: %.3f\n", result->round_accuracies.back());
  return 0;
}
