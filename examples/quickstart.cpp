// Quickstart: run a full blockchain-FL session with transparent
// contribution evaluation in ~30 lines of client code.
//
//   $ ./examples/quickstart
//
// Five data owners with increasingly noisy data train a digit classifier
// through the on-chain protocol; the smart contract aggregates their
// masked updates, evaluates GroupSV every round, and the final
// contribution scores come straight from the canonical chain state.

#include <cstdio>

#include "core/coordinator.h"

int main() {
  bcfl::core::BcflConfig config;
  config.num_owners = 5;
  config.num_miners = 4;
  config.rounds = 10;
  config.num_groups = 5;     // GroupSV resolution (m = n: per-user).
  config.sigma = 4.0;        // Owner i's features get N(0, sigma*i) noise.
  config.digits.num_instances = 2000;
  config.local.epochs = 3;
  config.local.learning_rate = 0.05;

  auto coordinator = bcfl::core::BcflCoordinator::Create(config);
  if (!coordinator.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  auto result = (*coordinator)->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Training on chain: %zu blocks, %zu transactions\n",
              result->blocks_committed, result->total_transactions);
  std::printf("Global model accuracy per round:");
  for (double acc : result->round_accuracies) std::printf(" %.3f", acc);
  std::printf("\n\nOn-chain contribution (total Shapley value per owner):\n");
  for (size_t i = 0; i < result->total_sv.size(); ++i) {
    std::printf("  owner %zu (noise sigma %.1f): %+.4f\n", i,
                config.sigma * static_cast<double>(i),
                result->total_sv[i]);
  }
  std::printf("\nOwner 0 holds the cleanest data and should score "
              "highest.\n");
  return 0;
}
