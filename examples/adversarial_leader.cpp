// Threat-model demo (Sect. III-A): a fraudulent leader proposes
// incorrect evaluation results to inflate its favoured owner's
// contribution. With an honest majority of miners the tampered proposals
// are rejected by re-execution, the leader rotation moves past the
// attacker, and the chain ends up with exactly the truthful values.
//
// Run with verbose logging to watch the rejections happen:
//   $ ./examples/adversarial_leader

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "core/adversary.h"
#include "core/coordinator.h"

using namespace bcfl;

namespace {

core::BcflConfig Config() {
  core::BcflConfig config;
  config.num_owners = 4;
  config.num_miners = 5;
  config.rounds = 2;
  config.num_groups = 2;
  config.sigma = 0.5;
  config.digits.num_instances = 1000;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  return config;
}

}  // namespace

int main() {
  // INFO logging surfaces each rejected proposal.
  Logger::Global().set_min_level(LogLevel::kInfo);

  std::printf("=== Honest baseline ===\n");
  auto honest = core::BcflCoordinator::Create(Config());
  if (!honest.ok()) {
    std::fprintf(stderr, "%s\n", honest.status().ToString().c_str());
    return 1;
  }
  auto honest_result = (*honest)->Run();
  if (!honest_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 honest_result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== Attack: miners 0 and 1 inflate owner 3's SV by +50 "
              "whenever they lead ===\n");
  auto attacked = core::BcflCoordinator::Create(Config());
  if (!attacked.ok()) {
    std::fprintf(stderr, "%s\n", attacked.status().ToString().c_str());
    return 1;
  }
  (void)(*attacked)->InstallMinerBehavior(
      0, core::MakeSvInflationBehavior(3, 50.0));
  (void)(*attacked)->InstallMinerBehavior(
      1, core::MakeSvInflationBehavior(3, 50.0));
  auto attacked_result = (*attacked)->Run();
  if (!attacked_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 attacked_result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-8s %-18s %-18s\n", "owner", "honest-run SV",
              "attacked-run SV");
  bool truthful = true;
  for (size_t i = 0; i < honest_result->total_sv.size(); ++i) {
    std::printf("%-8zu %-18.6f %-18.6f\n", i, honest_result->total_sv[i],
                attacked_result->total_sv[i]);
    if (std::abs(honest_result->total_sv[i] -
                 attacked_result->total_sv[i]) > 1e-9) {
      truthful = false;
    }
  }
  std::printf("\nOn-chain results identical despite the fraudulent "
              "leaders: %s\n",
              truthful ? "YES — the attack was neutralised by "
                         "honest-majority re-execution"
                       : "NO — THIS SHOULD NOT HAPPEN");
  return truthful ? 0 : 1;
}
