#include "ml/dataset.h"

#include <algorithm>
#include <cstring>

namespace bcfl::ml {

Dataset::Dataset(Matrix features, std::vector<int> labels, int num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {}

Status Dataset::Validate() const {
  if (features_.rows() != labels_.size()) {
    return Status::InvalidArgument("feature rows != label count");
  }
  if (num_classes_ <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  for (int label : labels_) {
    if (label < 0 || label >= num_classes_) {
      return Status::InvalidArgument("label out of range");
    }
  }
  return Status::OK();
}

Result<Dataset> Dataset::Subset(const std::vector<size_t>& indices) const {
  Matrix sub_features(indices.size(), features_.cols());
  std::vector<int> sub_labels(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    size_t src = indices[i];
    if (src >= num_examples()) {
      return Status::OutOfRange("subset index out of range");
    }
    std::memcpy(sub_features.Row(i), features_.Row(src),
                features_.cols() * sizeof(double));
    sub_labels[i] = labels_[src];
  }
  return Dataset(std::move(sub_features), std::move(sub_labels),
                 num_classes_);
}

Result<std::pair<Dataset, Dataset>> Dataset::TrainTestSplit(
    double train_fraction, Xoshiro256* rng) const {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  std::vector<size_t> perm = rng->Permutation(num_examples());
  size_t train_count =
      static_cast<size_t>(train_fraction * static_cast<double>(perm.size()));
  train_count = std::clamp<size_t>(train_count, 1, perm.size() - 1);
  std::vector<size_t> train_idx(perm.begin(), perm.begin() + train_count);
  std::vector<size_t> test_idx(perm.begin() + train_count, perm.end());
  BCFL_ASSIGN_OR_RETURN(Dataset train, Subset(train_idx));
  BCFL_ASSIGN_OR_RETURN(Dataset test, Subset(test_idx));
  return std::make_pair(std::move(train), std::move(test));
}

Matrix Dataset::OneHotLabels() const {
  Matrix out(num_examples(), static_cast<size_t>(num_classes_));
  for (size_t i = 0; i < labels_.size(); ++i) {
    out.At(i, static_cast<size_t>(labels_[i])) = 1.0;
  }
  return out;
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(static_cast<size_t>(num_classes_), 0);
  for (int label : labels_) counts[static_cast<size_t>(label)]++;
  return counts;
}

Result<Dataset> Dataset::Concatenate(const std::vector<Dataset>& parts) {
  std::vector<const Dataset*> ptrs;
  ptrs.reserve(parts.size());
  for (const auto& part : parts) ptrs.push_back(&part);
  return Concatenate(ptrs);
}

Result<Dataset> Dataset::Concatenate(const std::vector<const Dataset*>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("concatenate of zero datasets");
  }
  size_t total = 0;
  for (const Dataset* part : parts) {
    if (part->num_features() != parts[0]->num_features() ||
        part->num_classes() != parts[0]->num_classes()) {
      return Status::InvalidArgument("dataset schemas differ");
    }
    total += part->num_examples();
  }
  Matrix features(total, parts[0]->num_features());
  std::vector<int> labels;
  labels.reserve(total);
  size_t row = 0;
  for (const Dataset* part : parts) {
    // Rows are contiguous within a part, so the whole part copies as one
    // block.
    if (part->num_examples() > 0) {
      std::memcpy(features.Row(row), part->features().Row(0),
                  part->num_examples() * features.cols() * sizeof(double));
      row += part->num_examples();
    }
    labels.insert(labels.end(), part->labels().begin(), part->labels().end());
  }
  return Dataset(std::move(features), std::move(labels),
                 parts[0]->num_classes());
}

}  // namespace bcfl::ml
