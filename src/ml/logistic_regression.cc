#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace bcfl::ml {

void SoftmaxRowsInPlace(Matrix* logits) {
  for (size_t i = 0; i < logits->rows(); ++i) {
    double* row = logits->Row(i);
    double max_logit = row[0];
    for (size_t j = 1; j < logits->cols(); ++j) {
      max_logit = std::max(max_logit, row[j]);
    }
    double sum = 0.0;
    for (size_t j = 0; j < logits->cols(); ++j) {
      row[j] = std::exp(row[j] - max_logit);
      sum += row[j];
    }
    for (size_t j = 0; j < logits->cols(); ++j) row[j] /= sum;
  }
}

LogisticRegression::LogisticRegression(size_t num_features, int num_classes,
                                       LogisticRegressionConfig config)
    : weights_(num_features + 1, static_cast<size_t>(num_classes)),
      config_(config) {}

Result<LogisticRegression> LogisticRegression::FromWeights(
    Matrix weights, LogisticRegressionConfig config) {
  if (weights.rows() < 2 || weights.cols() < 2) {
    return Status::InvalidArgument(
        "weights must be (features+1) x classes with classes >= 2");
  }
  LogisticRegression model(weights.rows() - 1,
                           static_cast<int>(weights.cols()), config);
  model.weights_ = std::move(weights);
  return model;
}

Status LogisticRegression::SetWeights(const Matrix& weights) {
  if (weights.rows() != weights_.rows() || weights.cols() != weights_.cols()) {
    return Status::InvalidArgument("SetWeights: shape mismatch");
  }
  weights_ = weights;
  return Status::OK();
}

Matrix LogisticRegression::Augment(const Matrix& features) {
  Matrix aug(features.rows(), features.cols() + 1);
  for (size_t i = 0; i < features.rows(); ++i) {
    double* dst = aug.Row(i);
    dst[0] = 1.0;
    std::memcpy(dst + 1, features.Row(i), features.cols() * sizeof(double));
  }
  return aug;
}

Result<double> LogisticRegression::Step(const Matrix& aug_features,
                                        const Matrix& one_hot) {
  const double n = static_cast<double>(aug_features.rows());
  BCFL_ASSIGN_OR_RETURN(Matrix probs, aug_features.MatMul(weights_));
  SoftmaxRowsInPlace(&probs);

  // Loss before the step (for monitoring / tests of monotone descent).
  double loss = 0.0;
  for (size_t i = 0; i < probs.rows(); ++i) {
    for (size_t j = 0; j < probs.cols(); ++j) {
      if (one_hot.At(i, j) != 0.0) {
        loss -= std::log(std::max(probs.At(i, j), 1e-12));
      }
    }
  }
  loss /= n;

  // grad = X^T (P - Y) / n + l2 * W.
  BCFL_RETURN_IF_ERROR(probs.SubInPlace(one_hot));
  BCFL_ASSIGN_OR_RETURN(Matrix grad, aug_features.TransposedMatMul(probs));
  grad.Scale(1.0 / n);
  BCFL_RETURN_IF_ERROR(grad.Axpy(config_.l2_penalty, weights_));
  BCFL_RETURN_IF_ERROR(weights_.Axpy(-config_.learning_rate, grad));
  return loss;
}

Status LogisticRegression::Train(const Dataset& data) {
  return TrainEpochs(data, config_.epochs);
}

Status LogisticRegression::TrainEpochs(const Dataset& data, size_t epochs) {
  BCFL_RETURN_IF_ERROR(data.Validate());
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("dataset feature count != model");
  }
  if (data.num_classes() != num_classes()) {
    return Status::InvalidArgument("dataset class count != model");
  }
  if (data.num_examples() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  Matrix aug = Augment(data.features());
  Matrix one_hot = data.OneHotLabels();
  for (size_t e = 0; e < epochs; ++e) {
    auto loss = Step(aug, one_hot);
    if (!loss.ok()) return loss.status();
  }
  return Status::OK();
}

Result<Matrix> LogisticRegression::PredictProba(const Matrix& features) const {
  if (features.cols() != num_features()) {
    return Status::InvalidArgument("PredictProba: feature count mismatch");
  }
  Matrix aug = Augment(features);
  BCFL_ASSIGN_OR_RETURN(Matrix probs, aug.MatMul(weights_));
  SoftmaxRowsInPlace(&probs);
  return probs;
}

Result<std::vector<int>> LogisticRegression::Predict(
    const Matrix& features) const {
  BCFL_ASSIGN_OR_RETURN(Matrix probs, PredictProba(features));
  std::vector<int> out(probs.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    const double* row = probs.Row(i);
    out[i] = static_cast<int>(
        std::max_element(row, row + probs.cols()) - row);
  }
  return out;
}

Result<double> LogisticRegression::Accuracy(const Dataset& data) const {
  BCFL_ASSIGN_OR_RETURN(std::vector<int> preds, Predict(data.features()));
  if (preds.empty()) return Status::InvalidArgument("empty dataset");
  size_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == data.labels()[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

Result<double> LogisticRegression::LogLoss(const Dataset& data) const {
  BCFL_ASSIGN_OR_RETURN(Matrix probs, PredictProba(data.features()));
  if (probs.rows() == 0) return Status::InvalidArgument("empty dataset");
  double loss = 0.0;
  for (size_t i = 0; i < probs.rows(); ++i) {
    double p = probs.At(i, static_cast<size_t>(data.labels()[i]));
    loss -= std::log(std::max(p, 1e-12));
  }
  return loss / static_cast<double>(probs.rows());
}

}  // namespace bcfl::ml
