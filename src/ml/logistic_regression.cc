#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/sim_clock.h"
#include "ml/kernels.h"
#include "obs/metrics.h"

namespace bcfl::ml {

void SoftmaxRowsInPlace(Matrix* logits) {
  kernels::SoftmaxRows(logits->mutable_data().data(), logits->rows(),
                       logits->cols());
}

LogisticRegression::LogisticRegression(size_t num_features, int num_classes,
                                       LogisticRegressionConfig config)
    : weights_(num_features + 1, static_cast<size_t>(num_classes)),
      config_(config) {}

Result<LogisticRegression> LogisticRegression::FromWeights(
    Matrix weights, LogisticRegressionConfig config) {
  if (weights.rows() < 2 || weights.cols() < 2) {
    return Status::InvalidArgument(
        "weights must be (features+1) x classes with classes >= 2");
  }
  LogisticRegression model(weights.rows() - 1,
                           static_cast<int>(weights.cols()), config);
  model.weights_ = std::move(weights);
  return model;
}

Status LogisticRegression::SetWeights(const Matrix& weights) {
  if (weights.rows() != weights_.rows() || weights.cols() != weights_.cols()) {
    return Status::InvalidArgument("SetWeights: shape mismatch");
  }
  weights_ = weights;
  return Status::OK();
}

Matrix LogisticRegression::Augment(const Matrix& features) {
  Matrix aug(features.rows(), features.cols() + 1);
  for (size_t i = 0; i < features.rows(); ++i) {
    double* dst = aug.Row(i);
    dst[0] = 1.0;
    std::memcpy(dst + 1, features.Row(i), features.cols() * sizeof(double));
  }
  return aug;
}

Status LogisticRegression::Train(const Dataset& data) {
  return TrainEpochs(data, config_.epochs);
}

Status LogisticRegression::TrainEpochs(const Dataset& data, size_t epochs) {
  BCFL_RETURN_IF_ERROR(data.Validate());
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("dataset feature count != model");
  }
  if (data.num_classes() != num_classes()) {
    return Status::InvalidArgument("dataset class count != model");
  }
  if (data.num_examples() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  Matrix aug = Augment(data.features());
  static auto& epochs_counter =
      obs::MetricsRegistry::Global().GetCounter("ml.train.epochs");
  static auto& gflops_gauge =
      obs::MetricsRegistry::Global().GetGauge("ml.kernels.fused_step_gflops");
  Stopwatch timer;
  // Fused epoch kernel: logits, stable softmax, loss and the gradient
  // are produced in one pass over `aug` per epoch — no per-epoch probs /
  // one-hot materialisation. Bit-identical to the unfused step sequence
  // (see kernels.h for the contract).
  kernels::FusedStepScratch scratch;
  for (size_t e = 0; e < epochs; ++e) {
    kernels::FusedSoftmaxCeStep(
        aug.data().data(), aug.rows(), aug.cols(), data.labels().data(),
        weights_.cols(), config_.learning_rate, config_.l2_penalty,
        weights_.mutable_data().data(), &scratch);
  }
  epochs_counter.Add(epochs);
  if (epochs > 0) {
    // Forward + gradient GEMMs dominate: ~4*rows*cols*classes flops/epoch.
    const double flops = 4.0 * static_cast<double>(aug.rows()) *
                         static_cast<double>(aug.cols()) *
                         static_cast<double>(weights_.cols()) *
                         static_cast<double>(epochs);
    const double s = timer.ElapsedSeconds();
    if (s > 0) gflops_gauge.Set(flops / s * 1e-9);
  }
  return Status::OK();
}

Result<Matrix> LogisticRegression::PredictProba(const Matrix& features) const {
  if (features.cols() != num_features()) {
    return Status::InvalidArgument("PredictProba: feature count mismatch");
  }
  Matrix aug = Augment(features);
  BCFL_ASSIGN_OR_RETURN(Matrix probs, aug.MatMul(weights_));
  SoftmaxRowsInPlace(&probs);
  return probs;
}

Result<std::vector<int>> LogisticRegression::Predict(
    const Matrix& features) const {
  BCFL_ASSIGN_OR_RETURN(Matrix probs, PredictProba(features));
  std::vector<int> out(probs.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    const double* row = probs.Row(i);
    out[i] = static_cast<int>(
        std::max_element(row, row + probs.cols()) - row);
  }
  return out;
}

Result<double> LogisticRegression::Accuracy(const Dataset& data) const {
  BCFL_ASSIGN_OR_RETURN(std::vector<int> preds, Predict(data.features()));
  if (preds.empty()) return Status::InvalidArgument("empty dataset");
  size_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == data.labels()[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

Result<double> LogisticRegression::LogLoss(const Dataset& data) const {
  BCFL_ASSIGN_OR_RETURN(Matrix probs, PredictProba(data.features()));
  if (probs.rows() == 0) return Status::InvalidArgument("empty dataset");
  double loss = 0.0;
  for (size_t i = 0; i < probs.rows(); ++i) {
    double p = probs.At(i, static_cast<size_t>(data.labels()[i]));
    loss -= std::log(std::max(p, 1e-12));
  }
  return loss / static_cast<double>(probs.rows());
}

namespace {

/// Rows per logits block in the fused evaluation kernels: big enough
/// that the blocked GEMM reaches full throughput, small enough that the
/// block (256 x classes doubles) stays cache-resident.
constexpr size_t kEvalRowBlock = 256;

/// Index of the first maximum, matching std::max_element tie-breaking.
inline size_t ArgmaxRow(const double* row, size_t n) {
  size_t best = 0;
  for (size_t c = 1; c < n; ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

/// -log p(label) for one score row under a softmax, with the same
/// exp/sum/divide operation order as SoftmaxRowsInPlace + LogLoss.
inline double RowNegLogProb(const double* row, size_t n, int label) {
  double max_score = row[0];
  for (size_t c = 1; c < n; ++c) max_score = std::max(max_score, row[c]);
  double sum = 0.0;
  double e_label = 0.0;
  for (size_t c = 0; c < n; ++c) {
    const double e = std::exp(row[c] - max_score);
    sum += e;
    if (static_cast<size_t>(label) == c) e_label = e;
  }
  return -std::log(std::max(e_label / sum, 1e-12));
}

Status CheckEvalShapes(size_t rows, size_t labels, size_t classes) {
  if (rows == 0) return Status::InvalidArgument("empty dataset");
  if (labels != rows) {
    return Status::InvalidArgument("label count != example count");
  }
  if (classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  return Status::OK();
}

}  // namespace

Result<double> AccuracyFromAugmented(const Matrix& aug_features,
                                     const std::vector<int>& labels,
                                     const Matrix& weights) {
  if (aug_features.cols() != weights.rows()) {
    return Status::InvalidArgument(
        "AccuracyFromAugmented: feature count mismatch");
  }
  BCFL_RETURN_IF_ERROR(
      CheckEvalShapes(aug_features.rows(), labels.size(), weights.cols()));
  const size_t classes = weights.cols();
  const size_t rows = aug_features.rows();
  const size_t cols = aug_features.cols();
  std::vector<double> logits(kEvalRowBlock * classes);
  size_t correct = 0;
  for (size_t r0 = 0; r0 < rows; r0 += kEvalRowBlock) {
    const size_t block = std::min(kEvalRowBlock, rows - r0);
    kernels::Gemm(aug_features.Row(r0), block, cols, weights.data().data(),
                  classes, logits.data());
    for (size_t i = 0; i < block; ++i) {
      if (static_cast<int>(ArgmaxRow(logits.data() + i * classes, classes)) ==
          labels[r0 + i]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(rows);
}

Result<double> LogLossFromAugmented(const Matrix& aug_features,
                                    const std::vector<int>& labels,
                                    const Matrix& weights) {
  if (aug_features.cols() != weights.rows()) {
    return Status::InvalidArgument(
        "LogLossFromAugmented: feature count mismatch");
  }
  BCFL_RETURN_IF_ERROR(
      CheckEvalShapes(aug_features.rows(), labels.size(), weights.cols()));
  const size_t classes = weights.cols();
  const size_t rows = aug_features.rows();
  const size_t cols = aug_features.cols();
  std::vector<double> logits(kEvalRowBlock * classes);
  double loss = 0.0;
  for (size_t r0 = 0; r0 < rows; r0 += kEvalRowBlock) {
    const size_t block = std::min(kEvalRowBlock, rows - r0);
    kernels::Gemm(aug_features.Row(r0), block, cols, weights.data().data(),
                  classes, logits.data());
    for (size_t i = 0; i < block; ++i) {
      loss += RowNegLogProb(logits.data() + i * classes, classes,
                            labels[r0 + i]);
    }
  }
  return loss / static_cast<double>(rows);
}

Result<double> AccuracyFromScores(const Matrix& scores,
                                  const std::vector<int>& labels) {
  BCFL_RETURN_IF_ERROR(
      CheckEvalShapes(scores.rows(), labels.size(), scores.cols()));
  size_t correct = 0;
  for (size_t i = 0; i < scores.rows(); ++i) {
    if (static_cast<int>(ArgmaxRow(scores.Row(i), scores.cols())) ==
        labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(scores.rows());
}

Result<double> LogLossFromScores(const Matrix& scores,
                                 const std::vector<int>& labels) {
  BCFL_RETURN_IF_ERROR(
      CheckEvalShapes(scores.rows(), labels.size(), scores.cols()));
  double loss = 0.0;
  for (size_t i = 0; i < scores.rows(); ++i) {
    loss += RowNegLogProb(scores.Row(i), scores.cols(), labels[i]);
  }
  return loss / static_cast<double>(scores.rows());
}

}  // namespace bcfl::ml
