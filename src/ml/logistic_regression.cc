#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace bcfl::ml {

void SoftmaxRowsInPlace(Matrix* logits) {
  for (size_t i = 0; i < logits->rows(); ++i) {
    double* row = logits->Row(i);
    double max_logit = row[0];
    for (size_t j = 1; j < logits->cols(); ++j) {
      max_logit = std::max(max_logit, row[j]);
    }
    double sum = 0.0;
    for (size_t j = 0; j < logits->cols(); ++j) {
      row[j] = std::exp(row[j] - max_logit);
      sum += row[j];
    }
    for (size_t j = 0; j < logits->cols(); ++j) row[j] /= sum;
  }
}

LogisticRegression::LogisticRegression(size_t num_features, int num_classes,
                                       LogisticRegressionConfig config)
    : weights_(num_features + 1, static_cast<size_t>(num_classes)),
      config_(config) {}

Result<LogisticRegression> LogisticRegression::FromWeights(
    Matrix weights, LogisticRegressionConfig config) {
  if (weights.rows() < 2 || weights.cols() < 2) {
    return Status::InvalidArgument(
        "weights must be (features+1) x classes with classes >= 2");
  }
  LogisticRegression model(weights.rows() - 1,
                           static_cast<int>(weights.cols()), config);
  model.weights_ = std::move(weights);
  return model;
}

Status LogisticRegression::SetWeights(const Matrix& weights) {
  if (weights.rows() != weights_.rows() || weights.cols() != weights_.cols()) {
    return Status::InvalidArgument("SetWeights: shape mismatch");
  }
  weights_ = weights;
  return Status::OK();
}

Matrix LogisticRegression::Augment(const Matrix& features) {
  Matrix aug(features.rows(), features.cols() + 1);
  for (size_t i = 0; i < features.rows(); ++i) {
    double* dst = aug.Row(i);
    dst[0] = 1.0;
    std::memcpy(dst + 1, features.Row(i), features.cols() * sizeof(double));
  }
  return aug;
}

Result<double> LogisticRegression::Step(const Matrix& aug_features,
                                        const Matrix& one_hot) {
  const double n = static_cast<double>(aug_features.rows());
  BCFL_ASSIGN_OR_RETURN(Matrix probs, aug_features.MatMul(weights_));
  SoftmaxRowsInPlace(&probs);

  // Loss before the step (for monitoring / tests of monotone descent).
  double loss = 0.0;
  for (size_t i = 0; i < probs.rows(); ++i) {
    for (size_t j = 0; j < probs.cols(); ++j) {
      if (one_hot.At(i, j) != 0.0) {
        loss -= std::log(std::max(probs.At(i, j), 1e-12));
      }
    }
  }
  loss /= n;

  // grad = X^T (P - Y) / n + l2 * W.
  BCFL_RETURN_IF_ERROR(probs.SubInPlace(one_hot));
  BCFL_ASSIGN_OR_RETURN(Matrix grad, aug_features.TransposedMatMul(probs));
  grad.Scale(1.0 / n);
  BCFL_RETURN_IF_ERROR(grad.Axpy(config_.l2_penalty, weights_));
  BCFL_RETURN_IF_ERROR(weights_.Axpy(-config_.learning_rate, grad));
  return loss;
}

Status LogisticRegression::Train(const Dataset& data) {
  return TrainEpochs(data, config_.epochs);
}

Status LogisticRegression::TrainEpochs(const Dataset& data, size_t epochs) {
  BCFL_RETURN_IF_ERROR(data.Validate());
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("dataset feature count != model");
  }
  if (data.num_classes() != num_classes()) {
    return Status::InvalidArgument("dataset class count != model");
  }
  if (data.num_examples() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  Matrix aug = Augment(data.features());
  Matrix one_hot = data.OneHotLabels();
  for (size_t e = 0; e < epochs; ++e) {
    auto loss = Step(aug, one_hot);
    if (!loss.ok()) return loss.status();
  }
  return Status::OK();
}

Result<Matrix> LogisticRegression::PredictProba(const Matrix& features) const {
  if (features.cols() != num_features()) {
    return Status::InvalidArgument("PredictProba: feature count mismatch");
  }
  Matrix aug = Augment(features);
  BCFL_ASSIGN_OR_RETURN(Matrix probs, aug.MatMul(weights_));
  SoftmaxRowsInPlace(&probs);
  return probs;
}

Result<std::vector<int>> LogisticRegression::Predict(
    const Matrix& features) const {
  BCFL_ASSIGN_OR_RETURN(Matrix probs, PredictProba(features));
  std::vector<int> out(probs.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    const double* row = probs.Row(i);
    out[i] = static_cast<int>(
        std::max_element(row, row + probs.cols()) - row);
  }
  return out;
}

Result<double> LogisticRegression::Accuracy(const Dataset& data) const {
  BCFL_ASSIGN_OR_RETURN(std::vector<int> preds, Predict(data.features()));
  if (preds.empty()) return Status::InvalidArgument("empty dataset");
  size_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == data.labels()[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

Result<double> LogisticRegression::LogLoss(const Dataset& data) const {
  BCFL_ASSIGN_OR_RETURN(Matrix probs, PredictProba(data.features()));
  if (probs.rows() == 0) return Status::InvalidArgument("empty dataset");
  double loss = 0.0;
  for (size_t i = 0; i < probs.rows(); ++i) {
    double p = probs.At(i, static_cast<size_t>(data.labels()[i]));
    loss -= std::log(std::max(p, 1e-12));
  }
  return loss / static_cast<double>(probs.rows());
}

namespace {

/// Row logits for example `i`: scratch[c] = sum_k aug(i,k) * weights(k,c).
/// Same k-ascending accumulation order (and zero-skip) as Matrix::MatMul,
/// so the fused kernels reproduce the unfused results bit for bit.
inline void RowLogits(const Matrix& aug_features, size_t i,
                      const Matrix& weights, double* scratch) {
  const size_t classes = weights.cols();
  std::fill(scratch, scratch + classes, 0.0);
  const double* a_row = aug_features.Row(i);
  for (size_t k = 0; k < aug_features.cols(); ++k) {
    const double a = a_row[k];
    if (a == 0.0) continue;
    const double* w_row = weights.Row(k);
    for (size_t c = 0; c < classes; ++c) scratch[c] += a * w_row[c];
  }
}

/// Index of the first maximum, matching std::max_element tie-breaking.
inline size_t ArgmaxRow(const double* row, size_t n) {
  size_t best = 0;
  for (size_t c = 1; c < n; ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

/// -log p(label) for one score row under a softmax, with the same
/// exp/sum/divide operation order as SoftmaxRowsInPlace + LogLoss.
inline double RowNegLogProb(const double* row, size_t n, int label) {
  double max_score = row[0];
  for (size_t c = 1; c < n; ++c) max_score = std::max(max_score, row[c]);
  double sum = 0.0;
  double e_label = 0.0;
  for (size_t c = 0; c < n; ++c) {
    const double e = std::exp(row[c] - max_score);
    sum += e;
    if (static_cast<size_t>(label) == c) e_label = e;
  }
  return -std::log(std::max(e_label / sum, 1e-12));
}

Status CheckEvalShapes(size_t rows, size_t labels, size_t classes) {
  if (rows == 0) return Status::InvalidArgument("empty dataset");
  if (labels != rows) {
    return Status::InvalidArgument("label count != example count");
  }
  if (classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  return Status::OK();
}

}  // namespace

Result<double> AccuracyFromAugmented(const Matrix& aug_features,
                                     const std::vector<int>& labels,
                                     const Matrix& weights) {
  if (aug_features.cols() != weights.rows()) {
    return Status::InvalidArgument(
        "AccuracyFromAugmented: feature count mismatch");
  }
  BCFL_RETURN_IF_ERROR(
      CheckEvalShapes(aug_features.rows(), labels.size(), weights.cols()));
  const size_t classes = weights.cols();
  std::vector<double> logits(classes);
  size_t correct = 0;
  for (size_t i = 0; i < aug_features.rows(); ++i) {
    RowLogits(aug_features, i, weights, logits.data());
    if (static_cast<int>(ArgmaxRow(logits.data(), classes)) == labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(aug_features.rows());
}

Result<double> LogLossFromAugmented(const Matrix& aug_features,
                                    const std::vector<int>& labels,
                                    const Matrix& weights) {
  if (aug_features.cols() != weights.rows()) {
    return Status::InvalidArgument(
        "LogLossFromAugmented: feature count mismatch");
  }
  BCFL_RETURN_IF_ERROR(
      CheckEvalShapes(aug_features.rows(), labels.size(), weights.cols()));
  const size_t classes = weights.cols();
  std::vector<double> logits(classes);
  double loss = 0.0;
  for (size_t i = 0; i < aug_features.rows(); ++i) {
    RowLogits(aug_features, i, weights, logits.data());
    loss += RowNegLogProb(logits.data(), classes, labels[i]);
  }
  return loss / static_cast<double>(aug_features.rows());
}

Result<double> AccuracyFromScores(const Matrix& scores,
                                  const std::vector<int>& labels) {
  BCFL_RETURN_IF_ERROR(
      CheckEvalShapes(scores.rows(), labels.size(), scores.cols()));
  size_t correct = 0;
  for (size_t i = 0; i < scores.rows(); ++i) {
    if (static_cast<int>(ArgmaxRow(scores.Row(i), scores.cols())) ==
        labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(scores.rows());
}

Result<double> LogLossFromScores(const Matrix& scores,
                                 const std::vector<int>& labels) {
  BCFL_RETURN_IF_ERROR(
      CheckEvalShapes(scores.rows(), labels.size(), scores.cols()));
  double loss = 0.0;
  for (size_t i = 0; i < scores.rows(); ++i) {
    loss += RowNegLogProb(scores.Row(i), scores.cols(), labels[i]);
  }
  return loss / static_cast<double>(scores.rows());
}

}  // namespace bcfl::ml
