#include "ml/metrics.h"

namespace bcfl::ml {

Result<double> AccuracyScore(const std::vector<int>& predictions,
                             const std::vector<int>& labels) {
  if (predictions.size() != labels.size() || predictions.empty()) {
    return Status::InvalidArgument(
        "accuracy needs equal, non-empty prediction/label vectors");
  }
  size_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

Result<Matrix> ConfusionMatrix(const std::vector<int>& predictions,
                               const std::vector<int>& labels,
                               int num_classes) {
  if (predictions.size() != labels.size()) {
    return Status::InvalidArgument("prediction/label size mismatch");
  }
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  Matrix cm(static_cast<size_t>(num_classes), static_cast<size_t>(num_classes));
  for (size_t i = 0; i < labels.size(); ++i) {
    int t = labels[i], p = predictions[i];
    if (t < 0 || t >= num_classes || p < 0 || p >= num_classes) {
      return Status::OutOfRange("class index out of range");
    }
    cm.At(static_cast<size_t>(t), static_cast<size_t>(p)) += 1.0;
  }
  return cm;
}

Result<double> MacroF1(const std::vector<int>& predictions,
                       const std::vector<int>& labels, int num_classes) {
  BCFL_ASSIGN_OR_RETURN(Matrix cm,
                        ConfusionMatrix(predictions, labels, num_classes));
  double f1_sum = 0.0;
  for (int c = 0; c < num_classes; ++c) {
    size_t cu = static_cast<size_t>(c);
    double tp = cm.At(cu, cu);
    double fp = 0.0, fn = 0.0;
    for (int o = 0; o < num_classes; ++o) {
      if (o == c) continue;
      size_t ou = static_cast<size_t>(o);
      fp += cm.At(ou, cu);
      fn += cm.At(cu, ou);
    }
    double denom = 2.0 * tp + fp + fn;
    f1_sum += denom > 0.0 ? 2.0 * tp / denom : 0.0;
  }
  return f1_sum / static_cast<double>(num_classes);
}

}  // namespace bcfl::ml
