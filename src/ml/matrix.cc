#include "ml/matrix.h"

#include <cmath>

#include "ml/kernels.h"

namespace bcfl::ml {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(size_t rows, size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix Matrix::Gaussian(size_t rows, size_t cols, double stddev,
                        Xoshiro256* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->NextGaussian(0.0, stddev);
  return m;
}

Status Matrix::AddInPlace(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("AddInPlace: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return Status::OK();
}

Status Matrix::SubInPlace(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("SubInPlace: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return Status::OK();
}

void Matrix::Scale(double scalar) {
  for (double& v : data_) v *= scalar;
}

Matrix Matrix::Scaled(double scalar) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
  return out;
}

Status Matrix::Axpy(double scalar, const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("Axpy: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scalar * other.data_[i];
  }
  return Status::OK();
}

void Matrix::SetZero() {
  std::fill(data_.begin(), data_.end(), 0.0);
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

Result<Matrix> Matrix::MatMul(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("MatMul: inner dimensions differ");
  }
  Matrix out(rows_, other.cols_);
  kernels::Gemm(data_.data(), rows_, cols_, other.data_.data(), other.cols_,
                out.data_.data());
  return out;
}

Result<Matrix> Matrix::TransposedMatMul(const Matrix& other) const {
  if (rows_ != other.rows_) {
    return Status::InvalidArgument("TransposedMatMul: row counts differ");
  }
  Matrix out(cols_, other.cols_);
  kernels::GemmTransA(data_.data(), rows_, cols_, other.data_.data(),
                      other.cols_, out.data_.data());
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  kernels::Transpose(data_.data(), rows_, cols_, out.data_.data());
  return out;
}

bool Matrix::operator==(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

void Matrix::Serialize(ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(rows_));
  writer->WriteU32(static_cast<uint32_t>(cols_));
  for (double v : data_) writer->WriteDouble(v);
}

Result<Matrix> Matrix::Deserialize(ByteReader* reader) {
  BCFL_ASSIGN_OR_RETURN(uint32_t rows, reader->ReadU32());
  BCFL_ASSIGN_OR_RETURN(uint32_t cols, reader->ReadU32());
  uint64_t count = static_cast<uint64_t>(rows) * cols;
  // Each element occupies 8 bytes in the stream; a shape that claims
  // more elements than the remaining payload is corrupt — reject before
  // allocating for it. Compare count against remaining/8 rather than
  // count*8 against remaining: rows x cols up to (2^32-1)^2 makes
  // count*8 wrap around uint64, which would let an adversarial header
  // slip past the guard and drive a multi-exabyte allocation.
  if (count > reader->remaining() / 8) {
    return Status::Corruption("matrix shape exceeds payload");
  }
  Matrix m(rows, cols);
  for (uint64_t i = 0; i < count; ++i) {
    BCFL_ASSIGN_OR_RETURN(double v, reader->ReadDouble());
    m.mutable_data()[i] = v;
  }
  return m;
}

Result<Matrix> MeanOfMatrices(const std::vector<Matrix>& matrices) {
  if (matrices.empty()) {
    return Status::InvalidArgument("mean of zero matrices");
  }
  Matrix acc = matrices[0];
  for (size_t i = 1; i < matrices.size(); ++i) {
    BCFL_RETURN_IF_ERROR(acc.AddInPlace(matrices[i]));
  }
  acc.Scale(1.0 / static_cast<double>(matrices.size()));
  return acc;
}

Result<Matrix> WeightedMeanOfMatrices(const std::vector<Matrix>& matrices,
                                      const std::vector<double>& weights) {
  if (matrices.empty() || matrices.size() != weights.size()) {
    return Status::InvalidArgument(
        "weighted mean needs equal, non-zero counts of matrices and weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative weight");
    total += w;
  }
  if (total == 0.0) return Status::InvalidArgument("weights sum to zero");
  Matrix acc(matrices[0].rows(), matrices[0].cols());
  for (size_t i = 0; i < matrices.size(); ++i) {
    BCFL_RETURN_IF_ERROR(acc.Axpy(weights[i] / total, matrices[i]));
  }
  return acc;
}

}  // namespace bcfl::ml
