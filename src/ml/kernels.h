#pragma once

#include <cstddef>
#include <vector>

namespace bcfl {
class ThreadPool;
}

namespace bcfl::ml::kernels {

// Compute kernels behind Matrix::MatMul / TransposedMatMul / Transpose
// and the fused logistic-regression training step. All buffers are dense
// row-major doubles; output buffers must not alias inputs.
//
// Determinism contract
// --------------------
// Every kernel accumulates each output element in strictly ascending
// k-order — the same per-element operation sequence as the seed's scalar
// triple loops — so the optimized kernels, the reference kernels, and
// any thread count all produce bit-identical results on finite inputs.
// Concretely:
//   * the optimized GEMMs vectorize across *output columns* and unroll
//     across *output rows*; neither axis carries an accumulation, so no
//     floating-point operation is reordered;
//   * the row-parallel path partitions *output rows* into fixed-size
//     chunks (independent of the pool size), and rows are independent;
//   * the AVX2 variants are compiled without FMA, so no multiply-add is
//     contracted (the build also pins -ffp-contract=off for this file);
//   * the only arithmetic difference from the seed loops is dropping the
//     `if (a == 0.0) continue;` branch, which is bit-neutral: the
//     accumulator starts at +0.0 and adding a ±0.0 product leaves every
//     finite accumulator value unchanged.
//
// Define BCFL_KERNEL_REFERENCE (cmake -DBCFL_KERNEL_REFERENCE=ON) to
// route the public entry points through the reference kernels below —
// the escape hatch for auditing and for odd platforms.

/// Seed-faithful scalar kernels, always compiled (the equivalence tests
/// and the BCFL_KERNEL_REFERENCE build both use them).
namespace reference {

/// out[i,j] = sum_k a[i,k]*b[k,j]; a is ar x ac, b is ac x bc.
void Gemm(const double* a, size_t ar, size_t ac, const double* b, size_t bc,
          double* out);

/// out[i,j] = sum_k a[k,i]*b[k,j] (i.e. a^T * b); a is ar x ac, b is
/// ar x bc, out is ac x bc.
void GemmTransA(const double* a, size_t ar, size_t ac, const double* b,
                size_t bc, double* out);

/// out (ac x ar) = a^T; a is ar x ac.
void Transpose(const double* a, size_t ar, size_t ac, double* out);

/// y[i] += alpha * x[i].
void Axpy(double alpha, const double* x, size_t n, double* y);

/// Numerically stable in-place row softmax (subtracts the row max).
void SoftmaxRows(double* m, size_t rows, size_t cols);

/// One full-batch softmax-regression step, as the literal seed sequence
/// (probs = softmax(aug*W); loss; grad = aug^T(P-Y)/n + l2*W;
/// W -= lr*grad). `weights` is cols x classes. Returns the pre-step
/// loss. Preconditions (checked by the caller): rows > 0, labels in
/// [0, classes).
double FusedSoftmaxCeStep(const double* aug, size_t rows, size_t cols,
                          const int* labels, size_t classes,
                          double learning_rate, double l2, double* weights);

}  // namespace reference

/// Reusable buffers for the fused step: one row-block of logits plus the
/// gradient accumulator. Training loops hold one of these across epochs
/// so the hot path does no per-epoch allocation.
struct FusedStepScratch {
  std::vector<double> logits;
  std::vector<double> grad;
};

void Gemm(const double* a, size_t ar, size_t ac, const double* b, size_t bc,
          double* out);
void GemmTransA(const double* a, size_t ar, size_t ac, const double* b,
                size_t bc, double* out);
void Transpose(const double* a, size_t ar, size_t ac, double* out);
void Axpy(double alpha, const double* x, size_t n, double* y);
void SoftmaxRows(double* m, size_t rows, size_t cols);

/// Fused softmax–cross-entropy–gradient step: streams `aug` once per
/// epoch in L1-sized row blocks — logits, stable softmax, loss and the
/// gradient contribution of the block are produced in one pass, and the
/// per-element accumulation order (k strictly ascending) is exactly the
/// reference sequence, so the result is bit-identical to
/// reference::FusedSoftmaxCeStep. `scratch` may be reused across calls.
double FusedSoftmaxCeStep(const double* aug, size_t rows, size_t cols,
                          const int* labels, size_t classes,
                          double learning_rate, double l2, double* weights,
                          FusedStepScratch* scratch);

/// Pool used by Gemm/GemmTransA for row-partitioned parallelism above a
/// size threshold (nullptr = always serial). Partitioning is by output
/// rows in fixed-size chunks, so results are bit-identical for every
/// pool size; calls issued from inside a pool worker stay serial (see
/// ThreadPool::InWorkerThread).
void SetParallelPool(ThreadPool* pool);
ThreadPool* ParallelPool();

/// "reference", "scalar", or "avx2" — the dispatch the optimized entry
/// points select on this machine/build. Exported to metrics as
/// ml.kernels.path.<name>. (An AVX-512 tier was measured and rejected:
/// the 512-bit frequency license slows the scalar exp/softmax epilogue
/// interleaved with the GEMM blocks, so the fused step ran ~40% slower
/// than AVX2; ChaCha20 keeps its AVX-512 path because it is pure
/// integer SIMD with no scalar phases.)
const char* ActivePath();

}  // namespace bcfl::ml::kernels
