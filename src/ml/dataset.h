#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/matrix.h"

namespace bcfl::ml {

/// A supervised classification dataset: `features` is num_examples x
/// num_features, `labels[i]` in [0, num_classes).
class Dataset {
 public:
  Dataset() = default;
  Dataset(Matrix features, std::vector<int> labels, int num_classes);

  /// Validates internal consistency (label range, row counts).
  Status Validate() const;

  size_t num_examples() const { return labels_.size(); }
  size_t num_features() const { return features_.cols(); }
  int num_classes() const { return num_classes_; }

  const Matrix& features() const { return features_; }
  Matrix& mutable_features() { return features_; }
  const std::vector<int>& labels() const { return labels_; }
  std::vector<int>& mutable_labels() { return labels_; }

  /// Returns the subset selected by `indices` (copying rows).
  Result<Dataset> Subset(const std::vector<size_t>& indices) const;

  /// Randomly splits into (train, test) with `train_fraction` of examples
  /// in the first part, shuffled by `rng`.
  Result<std::pair<Dataset, Dataset>> TrainTestSplit(double train_fraction,
                                                     Xoshiro256* rng) const;

  /// One-hot encodes the labels as a num_examples x num_classes matrix.
  Matrix OneHotLabels() const;

  /// Counts of each class label.
  std::vector<size_t> ClassCounts() const;

  /// Concatenates datasets with identical schemas.
  static Result<Dataset> Concatenate(const std::vector<Dataset>& parts);

  /// Concatenation over non-owning pointers: coalition retraining merges
  /// subsets of the per-owner datasets hundreds of times, so the hot
  /// path must not copy each part into a temporary vector first.
  /// Pointers must be non-null.
  static Result<Dataset> Concatenate(const std::vector<const Dataset*>& parts);

 private:
  Matrix features_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

}  // namespace bcfl::ml
