#include "ml/kernels.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

// The optimized kernels must stay bit-identical to the reference loops,
// which forbids contracting a*b+c into fused multiply-add. Baseline
// x86-64 and the target("avx2") clones below cannot emit FMA anyway
// (AVX2 does not imply it), and the build additionally compiles this
// file with -ffp-contract=off (see src/ml/CMakeLists.txt) so a future
// -march=native build cannot re-introduce contraction.

#if defined(__x86_64__) || defined(__i386__)
#define BCFL_KERNELS_X86 1
#else
#define BCFL_KERNELS_X86 0
#endif

#if BCFL_KERNELS_X86 && defined(__GNUC__)
#define BCFL_KERNELS_HAVE_AVX2_CLONES 1
#define BCFL_TARGET_AVX2 __attribute__((target("avx2")))
#include <immintrin.h>
#else
#define BCFL_KERNELS_HAVE_AVX2_CLONES 0
#define BCFL_TARGET_AVX2
#endif

#define BCFL_ALWAYS_INLINE inline __attribute__((always_inline))

namespace bcfl::ml::kernels {

namespace reference {

void Gemm(const double* a, size_t ar, size_t ac, const double* b, size_t bc,
          double* out) {
  // The seed's i-k-j loop, zero-skip branch included.
  std::memset(out, 0, ar * bc * sizeof(double));
  for (size_t i = 0; i < ar; ++i) {
    const double* a_row = a + i * ac;
    double* out_row = out + i * bc;
    for (size_t k = 0; k < ac; ++k) {
      const double v = a_row[k];
      if (v == 0.0) continue;
      const double* b_row = b + k * bc;
      for (size_t j = 0; j < bc; ++j) out_row[j] += v * b_row[j];
    }
  }
}

void GemmTransA(const double* a, size_t ar, size_t ac, const double* b,
                size_t bc, double* out) {
  // The seed's k-i-j loop, zero-skip branch included.
  std::memset(out, 0, ac * bc * sizeof(double));
  for (size_t k = 0; k < ar; ++k) {
    const double* a_row = a + k * ac;
    const double* b_row = b + k * bc;
    for (size_t i = 0; i < ac; ++i) {
      const double v = a_row[i];
      if (v == 0.0) continue;
      double* out_row = out + i * bc;
      for (size_t j = 0; j < bc; ++j) out_row[j] += v * b_row[j];
    }
  }
}

void Transpose(const double* a, size_t ar, size_t ac, double* out) {
  for (size_t i = 0; i < ar; ++i) {
    for (size_t j = 0; j < ac; ++j) out[j * ar + i] = a[i * ac + j];
  }
}

void Axpy(double alpha, const double* x, size_t n, double* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void SoftmaxRows(double* m, size_t rows, size_t cols) {
  for (size_t i = 0; i < rows; ++i) {
    double* row = m + i * cols;
    double max_logit = row[0];
    for (size_t j = 1; j < cols; ++j) {
      max_logit = std::max(max_logit, row[j]);
    }
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - max_logit);
      sum += row[j];
    }
    for (size_t j = 0; j < cols; ++j) row[j] /= sum;
  }
}

double FusedSoftmaxCeStep(const double* aug, size_t rows, size_t cols,
                          const int* labels, size_t classes,
                          double learning_rate, double l2, double* weights) {
  if (rows == 0) return 0.0;
  const double n = static_cast<double>(rows);

  // probs = softmax(aug * W), as two unfused passes.
  std::vector<double> probs(rows * classes, 0.0);
  Gemm(aug, rows, cols, weights, classes, probs.data());
  SoftmaxRows(probs.data(), rows, classes);

  // Pre-step loss: only the label column of each row contributes (the
  // seed scanned the full one-hot matrix; the other entries were zero).
  double loss = 0.0;
  for (size_t i = 0; i < rows; ++i) {
    loss -= std::log(
        std::max(probs[i * classes + static_cast<size_t>(labels[i])], 1e-12));
  }
  loss /= n;

  // dy = P - Y. Subtracting the zero entries of Y is bit-neutral, so
  // only the label column actually changes.
  for (size_t i = 0; i < rows; ++i) {
    probs[i * classes + static_cast<size_t>(labels[i])] -= 1.0;
  }

  // grad = aug^T * dy / n + l2 * W;  W += -lr * grad.
  std::vector<double> grad(cols * classes, 0.0);
  GemmTransA(aug, rows, cols, probs.data(), classes, grad.data());
  const double scale = 1.0 / n;
  for (double& g : grad) g *= scale;
  Axpy(l2, weights, cols * classes, grad.data());
  Axpy(-learning_rate, grad.data(), cols * classes, weights);
  return loss;
}

}  // namespace reference

namespace {

/// Row block of the fused step. The block's logits (256 x classes) stay
/// L1-resident while the feature block (~130 KB at 65 features) streams
/// from L2; 256 measured fastest end-to-end — smaller blocks pay more
/// per-block fixed cost in the gradient stage, larger ones evict the
/// logits.
constexpr size_t kRowBlock = 256;
/// Output-row count before Gemm considers the parallel path.
constexpr size_t kParallelRowThreshold = 512;
/// Fixed parallel chunk: independent of the pool size, so the work (and
/// the per-element arithmetic) decomposes identically for any thread
/// count.
constexpr size_t kParallelRowChunk = 128;
/// Column (i) count before GemmTransA considers the parallel path.
constexpr size_t kParallelColThreshold = 256;
constexpr size_t kParallelColChunk = 64;
/// GEMMs at least this many flops get timed for the GFLOP/s gauge.
constexpr double kTimedFlops = 2e6;
/// Widest output handled by the fixed-width register-accumulator cores.
constexpr size_t kMaxFixedBc = 16;

std::atomic<ThreadPool*> g_pool{nullptr};

bool HasAvx2() {
#if BCFL_KERNELS_HAVE_AVX2_CLONES
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

void RecordPathOnce() {
  static const bool once = [] {
    obs::MetricsRegistry::Global()
        .GetCounter(std::string("ml.kernels.path.") + ActivePath())
        .Add();
    return true;
  }();
  (void)once;
}

// ---------------------------------------------------------------------------
// Cores. Each is an always_inline template instantiated twice — once with
// baseline codegen and once inside a target("avx2") wrapper — and keeps
// every accumulation in strictly ascending k-order: vectorization is
// across output columns (j) and unrolling across output rows, neither of
// which carries an accumulation.
// ---------------------------------------------------------------------------

/// out rows (i - r0) for i in [r0, r1): out_row = sum_k a[i,k] * b[k,:].
/// One output row at a time with register accumulators — the whole acc
/// array lives in vector registers, so the k-loop is a pure
/// broadcast-mul-add stream over the two row-major operands. (A 2-row
/// unroll was measured slower here: the doubled accumulator set spills.)
template <size_t BC>
BCFL_ALWAYS_INLINE void GemmRowsCore(const double* __restrict a, size_t r0,
                                     size_t r1, size_t ac,
                                     const double* __restrict b,
                                     double* __restrict out) {
  double acc[BC];
  for (size_t i = r0; i < r1; ++i) {
    const double* a_row = a + i * ac;
    for (size_t j = 0; j < BC; ++j) acc[j] = 0.0;
    for (size_t k = 0; k < ac; ++k) {
      const double v = a_row[k];
      const double* b_row = b + k * BC;
      for (size_t j = 0; j < BC; ++j) acc[j] += v * b_row[j];
    }
    double* o = out + (i - r0) * BC;
    for (size_t j = 0; j < BC; ++j) o[j] = acc[j];
  }
}

/// out[i,:] += sum_{k in [r0,r1)} a[k,i] * d[k - r0,:] for i in [i0, i1).
/// Column-dot with the i-axis unrolled by four; `out` carries the prefix
/// accumulated over k < r0, so chaining calls over ascending k-blocks
/// reproduces the flat k-ascending order exactly.
template <size_t BC>
BCFL_ALWAYS_INLINE void GemmTransAAccumCore(const double* __restrict a,
                                            size_t r0, size_t r1, size_t ac,
                                            const double* __restrict d,
                                            double* __restrict out, size_t i0,
                                            size_t i1) {
  size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    double acc[4][BC];
    for (size_t r = 0; r < 4; ++r) {
      for (size_t j = 0; j < BC; ++j) acc[r][j] = out[(i + r) * BC + j];
    }
    const double* ap = a + r0 * ac + i;
    const double* dp = d;
    for (size_t k = r0; k < r1; ++k, ap += ac, dp += BC) {
      for (size_t r = 0; r < 4; ++r) {
        const double v = ap[r];
        for (size_t j = 0; j < BC; ++j) acc[r][j] += v * dp[j];
      }
    }
    for (size_t r = 0; r < 4; ++r) {
      for (size_t j = 0; j < BC; ++j) out[(i + r) * BC + j] = acc[r][j];
    }
  }
  for (; i < i1; ++i) {
    double acc[BC];
    for (size_t j = 0; j < BC; ++j) acc[j] = out[i * BC + j];
    const double* ap = a + r0 * ac + i;
    const double* dp = d;
    for (size_t k = r0; k < r1; ++k, ap += ac, dp += BC) {
      const double v = ap[0];
      for (size_t j = 0; j < BC; ++j) acc[j] += v * dp[j];
    }
    for (size_t j = 0; j < BC; ++j) out[i * BC + j] = acc[j];
  }
}

/// Runtime-width fallback for bc > kMaxFixedBc: fixed 8-wide j-tiles with
/// register accumulators, k ascending per element.
BCFL_ALWAYS_INLINE void GemmRowsGenericCore(const double* __restrict a,
                                            size_t r0, size_t r1, size_t ac,
                                            const double* __restrict b,
                                            size_t bc, double* __restrict out) {
  constexpr size_t kTile = 8;
  for (size_t i = r0; i < r1; ++i) {
    const double* a_row = a + i * ac;
    double* o = out + (i - r0) * bc;
    size_t j0 = 0;
    for (; j0 + kTile <= bc; j0 += kTile) {
      double acc[kTile];
      for (size_t j = 0; j < kTile; ++j) acc[j] = 0.0;
      for (size_t k = 0; k < ac; ++k) {
        const double v = a_row[k];
        const double* b_row = b + k * bc + j0;
        for (size_t j = 0; j < kTile; ++j) acc[j] += v * b_row[j];
      }
      for (size_t j = 0; j < kTile; ++j) o[j0 + j] = acc[j];
    }
    if (j0 < bc) {
      const size_t rem = bc - j0;
      double acc[kTile];
      for (size_t j = 0; j < rem; ++j) acc[j] = 0.0;
      for (size_t k = 0; k < ac; ++k) {
        const double v = a_row[k];
        const double* b_row = b + k * bc + j0;
        for (size_t j = 0; j < rem; ++j) acc[j] += v * b_row[j];
      }
      for (size_t j = 0; j < rem; ++j) o[j0 + j] = acc[j];
    }
  }
}

BCFL_ALWAYS_INLINE void GemmTransAAccumGenericCore(
    const double* __restrict a, size_t r0, size_t r1, size_t ac,
    const double* __restrict d, size_t bc, double* __restrict out, size_t i0,
    size_t i1) {
  constexpr size_t kTile = 8;
  for (size_t i = i0; i < i1; ++i) {
    size_t j0 = 0;
    for (; j0 < bc; j0 += kTile) {
      const size_t width = std::min(kTile, bc - j0);
      double acc[kTile];
      for (size_t j = 0; j < width; ++j) acc[j] = out[i * bc + j0 + j];
      const double* ap = a + r0 * ac + i;
      const double* dp = d + j0;
      for (size_t k = r0; k < r1; ++k, ap += ac, dp += bc) {
        const double v = ap[0];
        for (size_t j = 0; j < width; ++j) acc[j] += v * dp[j];
      }
      for (size_t j = 0; j < width; ++j) out[i * bc + j0 + j] = acc[j];
    }
  }
}

#if BCFL_KERNELS_HAVE_AVX2_CLONES

// Hand-scheduled AVX2 variants of the two GEMM cores. GCC's
// autovectorized single-row core is good, but sharing each streamed
// b/d row across two (forward) or four (transposed) output rows needs
// more live vector registers than GCC will keep — the intrinsic forms
// hold them explicitly. Per accumulator lane the operation stream is
// unchanged: broadcast a, multiply by the row, add — k strictly
// ascending, no horizontal ops, no FMA.

/// Forward rows, two output rows per b-row load. Columns decompose into
/// BC/4 ymm chunks plus an xmm pair and/or a scalar tail.
template <size_t BC>
BCFL_TARGET_AVX2 BCFL_ALWAYS_INLINE void GemmRowsIntr(
    const double* __restrict a, size_t r0, size_t r1, size_t ac,
    const double* __restrict b, double* __restrict out) {
  static_assert(BC >= 4, "scalar core covers narrow outputs");
  constexpr size_t F = BC / 4;
  constexpr size_t R = BC % 4;
  size_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* a0 = a + i * ac;
    const double* a1 = a0 + ac;
    __m256d acc_a[F], acc_b[F];
    for (size_t f = 0; f < F; ++f) acc_a[f] = _mm256_setzero_pd();
    for (size_t f = 0; f < F; ++f) acc_b[f] = _mm256_setzero_pd();
    [[maybe_unused]] __m128d pair_a = _mm_setzero_pd();
    [[maybe_unused]] __m128d pair_b = _mm_setzero_pd();
    [[maybe_unused]] double last_a = 0.0, last_b = 0.0;
    for (size_t k = 0; k < ac; ++k) {
      const double* br = b + k * BC;
      const double v0s = a0[k];
      const double v1s = a1[k];
      const __m256d v0 = _mm256_set1_pd(v0s);
      const __m256d v1 = _mm256_set1_pd(v1s);
      for (size_t f = 0; f < F; ++f) {
        const __m256d bv = _mm256_loadu_pd(br + 4 * f);
        acc_a[f] = _mm256_add_pd(acc_a[f], _mm256_mul_pd(v0, bv));
        acc_b[f] = _mm256_add_pd(acc_b[f], _mm256_mul_pd(v1, bv));
      }
      if constexpr (R >= 2) {
        const __m128d bv = _mm_loadu_pd(br + 4 * F);
        pair_a = _mm_add_pd(pair_a, _mm_mul_pd(_mm256_castpd256_pd128(v0), bv));
        pair_b = _mm_add_pd(pair_b, _mm_mul_pd(_mm256_castpd256_pd128(v1), bv));
      }
      if constexpr (R % 2 == 1) {
        const double bs = br[BC - 1];
        last_a += v0s * bs;
        last_b += v1s * bs;
      }
    }
    double* o = out + (i - r0) * BC;
    for (size_t f = 0; f < F; ++f) _mm256_storeu_pd(o + 4 * f, acc_a[f]);
    for (size_t f = 0; f < F; ++f) _mm256_storeu_pd(o + BC + 4 * f, acc_b[f]);
    if constexpr (R >= 2) {
      _mm_storeu_pd(o + 4 * F, pair_a);
      _mm_storeu_pd(o + BC + 4 * F, pair_b);
    }
    if constexpr (R % 2 == 1) {
      o[BC - 1] = last_a;
      o[2 * BC - 1] = last_b;
    }
  }
  for (; i < r1; ++i) {
    const double* a0 = a + i * ac;
    __m256d acc_a[F];
    for (size_t f = 0; f < F; ++f) acc_a[f] = _mm256_setzero_pd();
    [[maybe_unused]] __m128d pair_a = _mm_setzero_pd();
    [[maybe_unused]] double last_a = 0.0;
    for (size_t k = 0; k < ac; ++k) {
      const double* br = b + k * BC;
      const double v0s = a0[k];
      const __m256d v0 = _mm256_set1_pd(v0s);
      for (size_t f = 0; f < F; ++f) {
        acc_a[f] = _mm256_add_pd(
            acc_a[f], _mm256_mul_pd(v0, _mm256_loadu_pd(br + 4 * f)));
      }
      if constexpr (R >= 2) {
        pair_a = _mm_add_pd(pair_a, _mm_mul_pd(_mm256_castpd256_pd128(v0),
                                               _mm_loadu_pd(br + 4 * F)));
      }
      if constexpr (R % 2 == 1) last_a += v0s * br[BC - 1];
    }
    double* o = out + (i - r0) * BC;
    for (size_t f = 0; f < F; ++f) _mm256_storeu_pd(o + 4 * f, acc_a[f]);
    if constexpr (R >= 2) _mm_storeu_pd(o + 4 * F, pair_a);
    if constexpr (R % 2 == 1) o[BC - 1] = last_a;
  }
}

/// Transposed-accumulate, IU output rows per d-row load (4 while the
/// accumulator set fits the 16 ymm registers, else 2).
template <size_t BC>
BCFL_TARGET_AVX2 BCFL_ALWAYS_INLINE void GemmTransAAccumIntr(
    const double* __restrict a, size_t r0, size_t r1, size_t ac,
    const double* __restrict d, double* __restrict out, size_t i0,
    size_t i1) {
  static_assert(BC >= 4, "scalar core covers narrow outputs");
  constexpr size_t F = BC / 4;
  constexpr size_t R = BC % 4;
  constexpr size_t IU = BC <= 12 ? 4 : 2;
  size_t i = i0;
  for (; i + IU <= i1; i += IU) {
    __m256d acc[IU][F];
    [[maybe_unused]] __m128d pair[IU];
    [[maybe_unused]] double last[IU];
    for (size_t r = 0; r < IU; ++r) {
      double* orow = out + (i + r) * BC;
      for (size_t f = 0; f < F; ++f) acc[r][f] = _mm256_loadu_pd(orow + 4 * f);
      if constexpr (R >= 2) pair[r] = _mm_loadu_pd(orow + 4 * F);
      if constexpr (R % 2 == 1) last[r] = orow[BC - 1];
    }
    const double* ap = a + r0 * ac + i;
    const double* dp = d;
    for (size_t k = r0; k < r1; ++k, ap += ac, dp += BC) {
      __m256d dv[F];
      for (size_t f = 0; f < F; ++f) dv[f] = _mm256_loadu_pd(dp + 4 * f);
      [[maybe_unused]] __m128d dx;
      [[maybe_unused]] double ds;
      if constexpr (R >= 2) dx = _mm_loadu_pd(dp + 4 * F);
      if constexpr (R % 2 == 1) ds = dp[BC - 1];
      for (size_t r = 0; r < IU; ++r) {
        const double vs = ap[r];
        const __m256d v = _mm256_set1_pd(vs);
        for (size_t f = 0; f < F; ++f) {
          acc[r][f] = _mm256_add_pd(acc[r][f], _mm256_mul_pd(v, dv[f]));
        }
        if constexpr (R >= 2) {
          pair[r] = _mm_add_pd(pair[r],
                               _mm_mul_pd(_mm256_castpd256_pd128(v), dx));
        }
        if constexpr (R % 2 == 1) last[r] += vs * ds;
      }
    }
    for (size_t r = 0; r < IU; ++r) {
      double* orow = out + (i + r) * BC;
      for (size_t f = 0; f < F; ++f) _mm256_storeu_pd(orow + 4 * f, acc[r][f]);
      if constexpr (R >= 2) _mm_storeu_pd(orow + 4 * F, pair[r]);
      if constexpr (R % 2 == 1) orow[BC - 1] = last[r];
    }
  }
  for (; i < i1; ++i) {
    double* orow = out + i * BC;
    __m256d acc[F];
    for (size_t f = 0; f < F; ++f) acc[f] = _mm256_loadu_pd(orow + 4 * f);
    [[maybe_unused]] __m128d pair = _mm_setzero_pd();
    [[maybe_unused]] double last = 0.0;
    if constexpr (R >= 2) pair = _mm_loadu_pd(orow + 4 * F);
    if constexpr (R % 2 == 1) last = orow[BC - 1];
    const double* ap = a + r0 * ac + i;
    const double* dp = d;
    for (size_t k = r0; k < r1; ++k, ap += ac, dp += BC) {
      const double vs = ap[0];
      const __m256d v = _mm256_set1_pd(vs);
      for (size_t f = 0; f < F; ++f) {
        acc[f] = _mm256_add_pd(acc[f],
                               _mm256_mul_pd(v, _mm256_loadu_pd(dp + 4 * f)));
      }
      if constexpr (R >= 2) {
        pair = _mm_add_pd(pair, _mm_mul_pd(_mm256_castpd256_pd128(v),
                                           _mm_loadu_pd(dp + 4 * F)));
      }
      if constexpr (R % 2 == 1) last += vs * dp[BC - 1];
    }
    for (size_t f = 0; f < F; ++f) _mm256_storeu_pd(orow + 4 * f, acc[f]);
    if constexpr (R >= 2) _mm_storeu_pd(orow + 4 * F, pair);
    if constexpr (R % 2 == 1) orow[BC - 1] = last;
  }
}

#endif  // BCFL_KERNELS_HAVE_AVX2_CLONES

/// Staged stable-softmax epilogue over one logits block: row max
/// subtraction, one tight exp pass, then per row the sum, divide, loss
/// contribution and dy = P - Y (label column only; the zero entries of Y
/// are bit-neutral). Adds each row's loss term in row-ascending order.
template <size_t BC>
BCFL_ALWAYS_INLINE void FusedSoftmaxEpilogue(double* __restrict logits,
                                             size_t block,
                                             const int* __restrict labels,
                                             double* loss) {
  for (size_t i = 0; i < block; ++i) {
    double* row = logits + i * BC;
    double max_logit = row[0];
    for (size_t j = 1; j < BC; ++j) max_logit = std::max(max_logit, row[j]);
    for (size_t j = 0; j < BC; ++j) row[j] -= max_logit;
  }
  for (size_t t = 0; t < block * BC; ++t) logits[t] = std::exp(logits[t]);
  for (size_t i = 0; i < block; ++i) {
    double* row = logits + i * BC;
    double sum = 0.0;
    for (size_t j = 0; j < BC; ++j) sum += row[j];
    for (size_t j = 0; j < BC; ++j) row[j] /= sum;
    const size_t label = static_cast<size_t>(labels[i]);
    *loss -= std::log(std::max(row[label], 1e-12));
    row[label] -= 1.0;
  }
}

/// Final fused-step stage: W += -lr * (grad/n + l2*W), element-wise in
/// the reference order (scale by 1/n, add l2 term, axpy into weights).
template <size_t BC>
BCFL_ALWAYS_INLINE void FusedWeightUpdate(const double* __restrict grad,
                                          size_t cols, double n,
                                          double learning_rate, double l2,
                                          double* __restrict weights) {
  const double scale = 1.0 / n;
  const double neg_lr = -learning_rate;
  for (size_t t = 0; t < cols * BC; ++t) {
    double g = grad[t] * scale;
    g += l2 * weights[t];
    weights[t] += neg_lr * g;
  }
}

/// One fused training step over `aug` in kRowBlock-row blocks. Per block:
/// logits (register-accumulator GEMM), the softmax epilogue, then the
/// block's gradient contribution via the column-dot core. The gradient
/// accumulator is a single buffer updated block-sequentially in
/// ascending k, so every element sees the flat k-ascending order of the
/// reference GemmTransA.
template <size_t BC>
BCFL_ALWAYS_INLINE double FusedStepCore(const double* __restrict aug,
                                        size_t rows, size_t cols,
                                        const int* __restrict labels,
                                        double learning_rate, double l2,
                                        double* __restrict weights,
                                        double* __restrict logits,
                                        double* __restrict grad) {
  std::memset(grad, 0, cols * BC * sizeof(double));
  double loss = 0.0;
  for (size_t r0 = 0; r0 < rows; r0 += kRowBlock) {
    const size_t r1 = std::min(rows, r0 + kRowBlock);
    GemmRowsCore<BC>(aug, r0, r1, cols, weights, logits);
    FusedSoftmaxEpilogue<BC>(logits, r1 - r0, labels + r0, &loss);
    GemmTransAAccumCore<BC>(aug, r0, r1, cols, logits, grad, 0, cols);
  }
  const double n = static_cast<double>(rows);
  loss /= n;
  FusedWeightUpdate<BC>(grad, cols, n, learning_rate, l2, weights);
  return loss;
}

#if BCFL_KERNELS_HAVE_AVX2_CLONES
/// FusedStepCore with the intrinsic GEMM cores; same block structure and
/// per-element operation order.
template <size_t BC>
BCFL_TARGET_AVX2 BCFL_ALWAYS_INLINE double FusedStepCoreIntr(
    const double* __restrict aug, size_t rows, size_t cols,
    const int* __restrict labels, double learning_rate, double l2,
    double* __restrict weights, double* __restrict logits,
    double* __restrict grad) {
  std::memset(grad, 0, cols * BC * sizeof(double));
  double loss = 0.0;
  for (size_t r0 = 0; r0 < rows; r0 += kRowBlock) {
    const size_t r1 = std::min(rows, r0 + kRowBlock);
    GemmRowsIntr<BC>(aug, r0, r1, cols, weights, logits);
    FusedSoftmaxEpilogue<BC>(logits, r1 - r0, labels + r0, &loss);
    GemmTransAAccumIntr<BC>(aug, r0, r1, cols, logits, grad, 0, cols);
  }
  const double n = static_cast<double>(rows);
  loss /= n;
  FusedWeightUpdate<BC>(grad, cols, n, learning_rate, l2, weights);
  return loss;
}
#endif  // BCFL_KERNELS_HAVE_AVX2_CLONES

// ---------------------------------------------------------------------------
// Instantiation + dispatch. One baseline, one AVX2 and one AVX-512 clone
// per core; the AVX2 clones rely on target("avx2") NOT enabling FMA, and
// the AVX-512 clones use explicit mul/add intrinsics (with the file-level
// -ffp-contract=off forbidding contraction), so lane arithmetic is
// identical to the baseline everywhere.
// ---------------------------------------------------------------------------

using RowsFn = void (*)(const double*, size_t, size_t, size_t, const double*,
                        double*);
using AccumFn = void (*)(const double*, size_t, size_t, size_t, const double*,
                         double*, size_t, size_t);
using FusedFn = double (*)(const double*, size_t, size_t, const int*, double,
                           double, double*, double*, double*);
using RowsGenericFn = void (*)(const double*, size_t, size_t, size_t,
                               const double*, size_t, double*);
using AccumGenericFn = void (*)(const double*, size_t, size_t, size_t,
                                const double*, size_t, double*, size_t,
                                size_t);

template <size_t BC>
void GemmRowsBase(const double* a, size_t r0, size_t r1, size_t ac,
                  const double* b, double* out) {
  GemmRowsCore<BC>(a, r0, r1, ac, b, out);
}
template <size_t BC>
void GemmTransAAccumBase(const double* a, size_t r0, size_t r1, size_t ac,
                         const double* d, double* out, size_t i0, size_t i1) {
  GemmTransAAccumCore<BC>(a, r0, r1, ac, d, out, i0, i1);
}
template <size_t BC>
double FusedStepBase(const double* aug, size_t rows, size_t cols,
                     const int* labels, double lr, double l2, double* weights,
                     double* logits, double* grad) {
  return FusedStepCore<BC>(aug, rows, cols, labels, lr, l2, weights, logits,
                           grad);
}
void GemmRowsGenericBase(const double* a, size_t r0, size_t r1, size_t ac,
                         const double* b, size_t bc, double* out) {
  GemmRowsGenericCore(a, r0, r1, ac, b, bc, out);
}
void GemmTransAAccumGenericBase(const double* a, size_t r0, size_t r1,
                                size_t ac, const double* d, size_t bc,
                                double* out, size_t i0, size_t i1) {
  GemmTransAAccumGenericCore(a, r0, r1, ac, d, bc, out, i0, i1);
}

#if BCFL_KERNELS_HAVE_AVX2_CLONES
template <size_t BC>
BCFL_TARGET_AVX2 void GemmRowsAvx2(const double* a, size_t r0, size_t r1,
                                   size_t ac, const double* b, double* out) {
  if constexpr (BC >= 4) {
    GemmRowsIntr<BC>(a, r0, r1, ac, b, out);
  } else {
    GemmRowsCore<BC>(a, r0, r1, ac, b, out);
  }
}
template <size_t BC>
BCFL_TARGET_AVX2 void GemmTransAAccumAvx2(const double* a, size_t r0,
                                          size_t r1, size_t ac,
                                          const double* d, double* out,
                                          size_t i0, size_t i1) {
  if constexpr (BC >= 4) {
    GemmTransAAccumIntr<BC>(a, r0, r1, ac, d, out, i0, i1);
  } else {
    GemmTransAAccumCore<BC>(a, r0, r1, ac, d, out, i0, i1);
  }
}
template <size_t BC>
BCFL_TARGET_AVX2 double FusedStepAvx2(const double* aug, size_t rows,
                                      size_t cols, const int* labels,
                                      double lr, double l2, double* weights,
                                      double* logits, double* grad) {
  if constexpr (BC >= 4) {
    return FusedStepCoreIntr<BC>(aug, rows, cols, labels, lr, l2, weights,
                                 logits, grad);
  } else {
    return FusedStepCore<BC>(aug, rows, cols, labels, lr, l2, weights, logits,
                             grad);
  }
}
BCFL_TARGET_AVX2 void GemmRowsGenericAvx2(const double* a, size_t r0,
                                          size_t r1, size_t ac,
                                          const double* b, size_t bc,
                                          double* out) {
  GemmRowsGenericCore(a, r0, r1, ac, b, bc, out);
}
BCFL_TARGET_AVX2 void GemmTransAAccumGenericAvx2(const double* a, size_t r0,
                                                 size_t r1, size_t ac,
                                                 const double* d, size_t bc,
                                                 double* out, size_t i0,
                                                 size_t i1) {
  GemmTransAAccumGenericCore(a, r0, r1, ac, d, bc, out, i0, i1);
}
#endif  // BCFL_KERNELS_HAVE_AVX2_CLONES

template <template <size_t> class Fn, typename Ptr, size_t... I>
constexpr std::array<Ptr, sizeof...(I)> MakeTable(std::index_sequence<I...>) {
  return {Fn<I + 1>::value...};
}

// Wrap the function templates so they can be passed as template template
// arguments with a uniform `value` member.
template <size_t BC>
struct RowsBaseHolder {
  static constexpr RowsFn value = &GemmRowsBase<BC>;
};
template <size_t BC>
struct AccumBaseHolder {
  static constexpr AccumFn value = &GemmTransAAccumBase<BC>;
};
template <size_t BC>
struct FusedBaseHolder {
  static constexpr FusedFn value = &FusedStepBase<BC>;
};
#if BCFL_KERNELS_HAVE_AVX2_CLONES
template <size_t BC>
struct RowsAvx2Holder {
  static constexpr RowsFn value = &GemmRowsAvx2<BC>;
};
template <size_t BC>
struct AccumAvx2Holder {
  static constexpr AccumFn value = &GemmTransAAccumAvx2<BC>;
};
template <size_t BC>
struct FusedAvx2Holder {
  static constexpr FusedFn value = &FusedStepAvx2<BC>;
};
#endif

constexpr auto kRowsBase = MakeTable<RowsBaseHolder, RowsFn>(
    std::make_index_sequence<kMaxFixedBc>{});
constexpr auto kAccumBase = MakeTable<AccumBaseHolder, AccumFn>(
    std::make_index_sequence<kMaxFixedBc>{});
constexpr auto kFusedBase = MakeTable<FusedBaseHolder, FusedFn>(
    std::make_index_sequence<kMaxFixedBc>{});
#if BCFL_KERNELS_HAVE_AVX2_CLONES
constexpr auto kRowsAvx2 = MakeTable<RowsAvx2Holder, RowsFn>(
    std::make_index_sequence<kMaxFixedBc>{});
constexpr auto kAccumAvx2 = MakeTable<AccumAvx2Holder, AccumFn>(
    std::make_index_sequence<kMaxFixedBc>{});
constexpr auto kFusedAvx2 = MakeTable<FusedAvx2Holder, FusedFn>(
    std::make_index_sequence<kMaxFixedBc>{});
#endif

RowsFn PickRows(size_t bc) {
#if BCFL_KERNELS_HAVE_AVX2_CLONES
  if (HasAvx2()) return kRowsAvx2[bc - 1];
#endif
  return kRowsBase[bc - 1];
}
AccumFn PickAccum(size_t bc) {
#if BCFL_KERNELS_HAVE_AVX2_CLONES
  if (HasAvx2()) return kAccumAvx2[bc - 1];
#endif
  return kAccumBase[bc - 1];
}
FusedFn PickFused(size_t classes) {
#if BCFL_KERNELS_HAVE_AVX2_CLONES
  if (HasAvx2()) return kFusedAvx2[classes - 1];
#endif
  return kFusedBase[classes - 1];
}
RowsGenericFn PickRowsGeneric() {
#if BCFL_KERNELS_HAVE_AVX2_CLONES
  if (HasAvx2()) return &GemmRowsGenericAvx2;
#endif
  return &GemmRowsGenericBase;
}
AccumGenericFn PickAccumGeneric() {
#if BCFL_KERNELS_HAVE_AVX2_CLONES
  if (HasAvx2()) return &GemmTransAAccumGenericAvx2;
#endif
  return &GemmTransAAccumGenericBase;
}

/// True when the caller may fan work out to `pool`: a pool is set, the
/// current thread is not itself a pool worker (re-entering ParallelFor
/// from a worker runs inline anyway), and the pool has real parallelism.
bool MayParallelize(ThreadPool* pool) {
  return pool != nullptr && pool->num_threads() > 1 &&
         !ThreadPool::InWorkerThread();
}

}  // namespace

void SetParallelPool(ThreadPool* pool) {
  g_pool.store(pool, std::memory_order_relaxed);
}

ThreadPool* ParallelPool() { return g_pool.load(std::memory_order_relaxed); }

const char* ActivePath() {
#ifdef BCFL_KERNEL_REFERENCE
  return "reference";
#else
  return HasAvx2() ? "avx2" : "scalar";
#endif
}

void Gemm(const double* a, size_t ar, size_t ac, const double* b, size_t bc,
          double* out) {
#ifdef BCFL_KERNEL_REFERENCE
  reference::Gemm(a, ar, ac, b, bc, out);
#else
  if (ar == 0 || bc == 0) return;
  RecordPathOnce();
  static auto& calls =
      obs::MetricsRegistry::Global().GetCounter("ml.kernels.gemm_calls");
  static auto& parallel_calls = obs::MetricsRegistry::Global().GetCounter(
      "ml.kernels.gemm_parallel_calls");
  static auto& gflops_gauge =
      obs::MetricsRegistry::Global().GetGauge("ml.kernels.gemm_gflops");
  calls.Add();

  const double flops = 2.0 * static_cast<double>(ar) *
                       static_cast<double>(ac) * static_cast<double>(bc);
  Stopwatch timer;

  auto run_rows = [&](size_t r0, size_t r1) {
    if (bc <= kMaxFixedBc) {
      PickRows(bc)(a, r0, r1, ac, b, out + r0 * bc);
    } else {
      PickRowsGeneric()(a, r0, r1, ac, b, bc, out + r0 * bc);
    }
  };

  ThreadPool* pool = ParallelPool();
  if (ar >= kParallelRowThreshold && MayParallelize(pool)) {
    const size_t chunks = (ar + kParallelRowChunk - 1) / kParallelRowChunk;
    pool->ParallelFor(
        chunks,
        [&](size_t c) {
          const size_t r0 = c * kParallelRowChunk;
          run_rows(r0, std::min(ar, r0 + kParallelRowChunk));
        },
        /*grain=*/1);
    parallel_calls.Add();
  } else {
    run_rows(0, ar);
  }

  if (flops >= kTimedFlops) {
    const double s = timer.ElapsedSeconds();
    if (s > 0) gflops_gauge.Set(flops / s * 1e-9);
  }
#endif
}

void GemmTransA(const double* a, size_t ar, size_t ac, const double* b,
                size_t bc, double* out) {
#ifdef BCFL_KERNEL_REFERENCE
  reference::GemmTransA(a, ar, ac, b, bc, out);
#else
  if (ac == 0 || bc == 0) return;
  RecordPathOnce();
  std::memset(out, 0, ac * bc * sizeof(double));
  if (ar == 0) return;

  auto run_cols = [&](size_t i0, size_t i1) {
    if (bc <= kMaxFixedBc) {
      PickAccum(bc)(a, 0, ar, ac, b, out, i0, i1);
    } else {
      PickAccumGeneric()(a, 0, ar, ac, b, bc, out, i0, i1);
    }
  };

  ThreadPool* pool = ParallelPool();
  if (ac >= kParallelColThreshold && MayParallelize(pool)) {
    const size_t chunks = (ac + kParallelColChunk - 1) / kParallelColChunk;
    pool->ParallelFor(
        chunks,
        [&](size_t c) {
          const size_t i0 = c * kParallelColChunk;
          run_cols(i0, std::min(ac, i0 + kParallelColChunk));
        },
        /*grain=*/1);
  } else {
    run_cols(0, ac);
  }
#endif
}

void Transpose(const double* a, size_t ar, size_t ac, double* out) {
#ifdef BCFL_KERNEL_REFERENCE
  reference::Transpose(a, ar, ac, out);
#else
  // Cache-blocked: both the row-major reads and the column-major writes
  // stay within a 32x32 tile (8 KB), so each cache line is touched once.
  constexpr size_t kTile = 32;
  for (size_t i0 = 0; i0 < ar; i0 += kTile) {
    const size_t i1 = std::min(ar, i0 + kTile);
    for (size_t j0 = 0; j0 < ac; j0 += kTile) {
      const size_t j1 = std::min(ac, j0 + kTile);
      for (size_t i = i0; i < i1; ++i) {
        const double* src = a + i * ac;
        for (size_t j = j0; j < j1; ++j) out[j * ar + i] = src[j];
      }
    }
  }
#endif
}

void Axpy(double alpha, const double* x, size_t n, double* y) {
  // Element-wise: no accumulation to reorder, so one implementation
  // serves both paths (with -ffp-contract=off keeping mul+add exact).
  reference::Axpy(alpha, x, n, y);
}

void SoftmaxRows(double* m, size_t rows, size_t cols) {
#ifdef BCFL_KERNEL_REFERENCE
  reference::SoftmaxRows(m, rows, cols);
#else
  if (rows == 0 || cols == 0) return;
  // Same per-element operations as the reference, staged into three
  // passes so the max/subtract and sum/divide loops vectorize and the
  // exp calls run back to back.
  for (size_t i = 0; i < rows; ++i) {
    double* row = m + i * cols;
    double max_logit = row[0];
    for (size_t j = 1; j < cols; ++j) max_logit = std::max(max_logit, row[j]);
    for (size_t j = 0; j < cols; ++j) row[j] -= max_logit;
  }
  for (size_t t = 0; t < rows * cols; ++t) m[t] = std::exp(m[t]);
  for (size_t i = 0; i < rows; ++i) {
    double* row = m + i * cols;
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) sum += row[j];
    for (size_t j = 0; j < cols; ++j) row[j] /= sum;
  }
#endif
}

double FusedSoftmaxCeStep(const double* aug, size_t rows, size_t cols,
                          const int* labels, size_t classes,
                          double learning_rate, double l2, double* weights,
                          FusedStepScratch* scratch) {
#ifdef BCFL_KERNEL_REFERENCE
  (void)scratch;
  return reference::FusedSoftmaxCeStep(aug, rows, cols, labels, classes,
                                       learning_rate, l2, weights);
#else
  if (rows == 0) return 0.0;
  if (classes == 0 || classes > kMaxFixedBc || scratch == nullptr) {
    return reference::FusedSoftmaxCeStep(aug, rows, cols, labels, classes,
                                         learning_rate, l2, weights);
  }
  RecordPathOnce();
  scratch->logits.resize(kRowBlock * classes);
  scratch->grad.resize(cols * classes);
  return PickFused(classes)(aug, rows, cols, labels, learning_rate, l2,
                            weights, scratch->logits.data(),
                            scratch->grad.data());
#endif
}

}  // namespace bcfl::ml::kernels
