#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"

namespace bcfl::ml {

/// Dense row-major matrix of doubles.
///
/// Deliberately small: the paper's workload is logistic regression on
/// 64-feature data, so a cache-friendly row-major layout with a few fused
/// kernels (GEMM, AXPY) is all the linear algebra the library needs.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;
  /// Zero-initialised rows x cols matrix.
  Matrix(size_t rows, size_t cols);
  /// Matrix filled with `value`.
  Matrix(size_t rows, size_t cols, double value);

  /// Matrix with entries drawn i.i.d. from N(0, stddev^2).
  static Matrix Gaussian(size_t rows, size_t cols, double stddev,
                         Xoshiro256* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row `r`.
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  // -- element-wise -------------------------------------------------------
  /// this += other. Shapes must match.
  Status AddInPlace(const Matrix& other);
  /// this -= other. Shapes must match.
  Status SubInPlace(const Matrix& other);
  /// this *= scalar.
  void Scale(double scalar);
  /// Returns scalar * this without mutating (fused copy + scale).
  Matrix Scaled(double scalar) const;
  /// this += scalar * other (AXPY). Shapes must match.
  Status Axpy(double scalar, const Matrix& other);
  /// Sets every entry to zero.
  void SetZero();

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Returns this * other (GEMM). Fails on shape mismatch.
  Result<Matrix> MatMul(const Matrix& other) const;
  /// Returns transpose(this) * other, avoiding an explicit transpose.
  Result<Matrix> TransposedMatMul(const Matrix& other) const;
  /// Returns the transpose.
  Matrix Transpose() const;

  bool operator==(const Matrix& other) const;

  // -- serialization ------------------------------------------------------
  /// Appends rows, cols, then the payload to `writer`.
  void Serialize(ByteWriter* writer) const;
  static Result<Matrix> Deserialize(ByteReader* reader);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise mean of equally-shaped matrices; fails on empty input or
/// shape mismatch. This is FedAvg's aggregation kernel.
Result<Matrix> MeanOfMatrices(const std::vector<Matrix>& matrices);

/// Element-wise weighted mean with the given nonnegative weights
/// (normalised internally); fails when weights sum to zero.
Result<Matrix> WeightedMeanOfMatrices(const std::vector<Matrix>& matrices,
                                      const std::vector<double>& weights);

}  // namespace bcfl::ml
