#pragma once

#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/matrix.h"

namespace bcfl::ml {

/// Hyper-parameters for multinomial logistic regression trained by
/// full-batch gradient descent — the paper's local training algorithm
/// ("logistic regression with gradient descent in local train epoch").
struct LogisticRegressionConfig {
  double learning_rate = 0.5;
  size_t epochs = 5;       ///< Local epochs per FL round.
  double l2_penalty = 1e-4;
};

/// Multinomial (softmax) logistic regression.
///
/// The parameter matrix has shape (num_features + 1) x num_classes; the
/// extra leading row is the bias. Model parameters are plain `Matrix`
/// values so FedAvg, secure aggregation and the on-chain contracts can
/// treat them as opaque flat vectors.
class LogisticRegression {
 public:
  /// Zero-initialised model. Zero initialisation keeps FL runs
  /// deterministic and is standard for convex softmax regression.
  LogisticRegression(size_t num_features, int num_classes,
                     LogisticRegressionConfig config = {});

  /// Wraps existing weights (e.g. a global model downloaded from chain).
  static Result<LogisticRegression> FromWeights(
      Matrix weights, LogisticRegressionConfig config = {});

  size_t num_features() const { return weights_.rows() - 1; }
  int num_classes() const { return static_cast<int>(weights_.cols()); }
  const Matrix& weights() const { return weights_; }
  const LogisticRegressionConfig& config() const { return config_; }

  /// Replaces the parameters; shape must match.
  Status SetWeights(const Matrix& weights);

  /// Runs `config().epochs` full-batch gradient-descent epochs on `data`.
  Status Train(const Dataset& data);
  /// Runs exactly `epochs` epochs.
  Status TrainEpochs(const Dataset& data, size_t epochs);

  /// Prepends a column of ones (bias input) to `features`. Exposed so
  /// evaluation layers can augment a test set once and reuse it across
  /// many models instead of re-copying it per evaluation.
  static Matrix Augment(const Matrix& features);

  /// Class-probability matrix (rows sum to 1) for the given features.
  Result<Matrix> PredictProba(const Matrix& features) const;
  /// Argmax class predictions.
  Result<std::vector<int>> Predict(const Matrix& features) const;
  /// Fraction of correctly classified examples.
  Result<double> Accuracy(const Dataset& data) const;
  /// Mean cross-entropy loss (with numerical clamping).
  Result<double> LogLoss(const Dataset& data) const;

 private:
  Matrix weights_;
  LogisticRegressionConfig config_;
};

/// Numerically stable row-wise softmax (in place).
void SoftmaxRowsInPlace(Matrix* logits);

// -- fused evaluation kernels ----------------------------------------------
// Hot-path variants used by contribution evaluation, which scores 2^m
// coalition models against the *same* test set: the caller augments the
// features once (`LogisticRegression::Augment`) and these kernels stream
// row logits through a small scratch buffer instead of materialising the
// (examples x classes) probability matrix per model. Results are exactly
// those of the Predict/Accuracy/LogLoss member functions.

/// Classification accuracy of `weights` over pre-augmented features.
/// Softmax is monotone per row, so the argmax is taken on raw logits.
Result<double> AccuracyFromAugmented(const Matrix& aug_features,
                                     const std::vector<int>& labels,
                                     const Matrix& weights);

/// Mean cross-entropy loss of `weights` over pre-augmented features.
Result<double> LogLossFromAugmented(const Matrix& aug_features,
                                    const std::vector<int>& labels,
                                    const Matrix& weights);

/// Accuracy decided directly from a per-example score ("logit") matrix —
/// the last stage of AccuracyFromAugmented, split out for engines that
/// reconstruct coalition logits incrementally. Scale-invariant: any
/// positive rescaling of a row leaves its argmax unchanged.
Result<double> AccuracyFromScores(const Matrix& scores,
                                  const std::vector<int>& labels);

/// Mean cross-entropy loss from a score matrix (softmax over each row).
Result<double> LogLossFromScores(const Matrix& scores,
                                 const std::vector<int>& labels);

}  // namespace bcfl::ml
