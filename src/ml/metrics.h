#pragma once

#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace bcfl::ml {

/// Fraction of positions where `predictions[i] == labels[i]`.
Result<double> AccuracyScore(const std::vector<int>& predictions,
                             const std::vector<int>& labels);

/// num_classes x num_classes confusion matrix; entry (t, p) counts
/// examples of true class t predicted as p.
Result<Matrix> ConfusionMatrix(const std::vector<int>& predictions,
                               const std::vector<int>& labels,
                               int num_classes);

/// Macro-averaged F1 score over all classes (classes absent from both
/// predictions and labels contribute 0).
Result<double> MacroF1(const std::vector<int>& predictions,
                       const std::vector<int>& labels, int num_classes);

}  // namespace bcfl::ml
