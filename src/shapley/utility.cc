#include "shapley/utility.h"

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace bcfl::shapley {

TestAccuracyUtility::TestAccuracyUtility(ml::Dataset test_set)
    : test_set_(std::move(test_set)) {}

Result<double> TestAccuracyUtility::Evaluate(const ml::Matrix& weights) {
  BCFL_ASSIGN_OR_RETURN(ml::LogisticRegression model,
                        ml::LogisticRegression::FromWeights(weights));
  return model.Accuracy(test_set_);
}

NegLogLossUtility::NegLogLossUtility(ml::Dataset test_set)
    : test_set_(std::move(test_set)) {}

Result<double> NegLogLossUtility::Evaluate(const ml::Matrix& weights) {
  BCFL_ASSIGN_OR_RETURN(ml::LogisticRegression model,
                        ml::LogisticRegression::FromWeights(weights));
  BCFL_ASSIGN_OR_RETURN(double loss, model.LogLoss(test_set_));
  return -loss;
}

CachingUtility::CachingUtility(std::unique_ptr<UtilityFunction> inner)
    : inner_(std::move(inner)) {}

Result<double> CachingUtility::Evaluate(const ml::Matrix& weights) {
  ByteWriter writer;
  weights.Serialize(&writer);
  crypto::Digest digest = crypto::Sha256::Hash(writer.buffer());
  std::string key(digest.begin(), digest.end());
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  BCFL_ASSIGN_OR_RETURN(double value, inner_->Evaluate(weights));
  cache_.emplace(std::move(key), value);
  return value;
}

}  // namespace bcfl::shapley
