#include "shapley/utility.h"

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace bcfl::shapley {

namespace {

/// Shape check equivalent to LogisticRegression::FromWeights +
/// Accuracy/LogLoss: (features + 1) x classes with classes >= 2.
Status CheckWeightShape(const ml::Matrix& weights, size_t num_features) {
  if (weights.rows() < 2 || weights.cols() < 2) {
    return Status::InvalidArgument(
        "weights must be (features+1) x classes with classes >= 2");
  }
  if (weights.rows() != num_features + 1) {
    return Status::InvalidArgument("weight rows != features + 1");
  }
  return Status::OK();
}

}  // namespace

TestAccuracyUtility::TestAccuracyUtility(ml::Dataset test_set)
    : test_set_(std::move(test_set)),
      augmented_(ml::LogisticRegression::Augment(test_set_.features())) {}

Status TestAccuracyUtility::CheckWeights(const ml::Matrix& weights) const {
  return CheckWeightShape(weights, test_set_.num_features());
}

Result<double> TestAccuracyUtility::Evaluate(const ml::Matrix& weights) {
  BCFL_RETURN_IF_ERROR(CheckWeights(weights));
  return ml::AccuracyFromAugmented(augmented_, test_set_.labels(), weights);
}

Result<ml::Matrix> TestAccuracyUtility::PlayerScores(
    const ml::Matrix& weights) const {
  BCFL_RETURN_IF_ERROR(CheckWeights(weights));
  return augmented_.MatMul(weights);
}

Result<double> TestAccuracyUtility::EvaluateScoreSum(
    const ml::Matrix& score_sum, size_t /*coalition_size*/) const {
  return ml::AccuracyFromScores(score_sum, test_set_.labels());
}

NegLogLossUtility::NegLogLossUtility(ml::Dataset test_set)
    : test_set_(std::move(test_set)),
      augmented_(ml::LogisticRegression::Augment(test_set_.features())) {}

Status NegLogLossUtility::CheckWeights(const ml::Matrix& weights) const {
  return CheckWeightShape(weights, test_set_.num_features());
}

Result<double> NegLogLossUtility::Evaluate(const ml::Matrix& weights) {
  BCFL_RETURN_IF_ERROR(CheckWeights(weights));
  BCFL_ASSIGN_OR_RETURN(
      double loss,
      ml::LogLossFromAugmented(augmented_, test_set_.labels(), weights));
  return -loss;
}

Result<ml::Matrix> NegLogLossUtility::PlayerScores(
    const ml::Matrix& weights) const {
  BCFL_RETURN_IF_ERROR(CheckWeights(weights));
  return augmented_.MatMul(weights);
}

Result<double> NegLogLossUtility::EvaluateScoreSum(
    const ml::Matrix& score_sum, size_t coalition_size) const {
  // Log-loss is not scale-invariant: rebuild the mean model's scores.
  ml::Matrix mean_scores =
      coalition_size > 1
          ? score_sum.Scaled(1.0 / static_cast<double>(coalition_size))
          : score_sum;
  BCFL_ASSIGN_OR_RETURN(
      double loss, ml::LogLossFromScores(mean_scores, test_set_.labels()));
  return -loss;
}

CachingUtility::CachingUtility(std::unique_ptr<UtilityFunction> inner)
    : inner_(std::move(inner)) {}

Result<double> CachingUtility::Evaluate(const ml::Matrix& weights) {
  // Registry handles resolved once; the per-evaluation cost is one
  // sharded relaxed add, dwarfed by the SHA-256 keying below.
  static auto& hit_counter =
      obs::MetricsRegistry::Global().GetCounter("shapley.cache.hits");
  static auto& miss_counter =
      obs::MetricsRegistry::Global().GetCounter("shapley.cache.misses");
  ByteWriter writer;
  weights.Serialize(&writer);
  crypto::Digest digest = crypto::Sha256::Hash(writer.buffer());
  std::string key(digest.begin(), digest.end());
  // The digest is uniformly distributed; its first byte picks the shard.
  Shard& shard = shards_[static_cast<uint8_t>(key[0]) % kNumShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.Add();
      return it->second;
    }
  }
  // Evaluate outside the lock so concurrent misses on *different* keys
  // don't serialise; a duplicate racing insert on the same key is benign
  // (emplace keeps the first, values are identical).
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter.Add();
  BCFL_ASSIGN_OR_RETURN(double value, inner_->Evaluate(weights));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(std::move(key), value);
  }
  return value;
}

size_t CachingUtility::cache_size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace bcfl::shapley
