#include "shapley/group_sv.h"

#include <bit>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "shapley/shapley_math.h"

namespace bcfl::shapley {

std::vector<size_t> PermutationFromSeed(uint64_t seed_e, uint64_t round,
                                        size_t n) {
  // Bind seed and round through SHA-256 so rounds are independent even
  // for adversarially chosen seeds, then drive a Fisher–Yates shuffle.
  ByteWriter writer;
  writer.WriteString("bcfl-group-permutation");
  writer.WriteU64(seed_e);
  writer.WriteU64(round);
  crypto::Digest digest = crypto::Sha256::Hash(writer.buffer());
  uint64_t derived = 0;
  for (int i = 0; i < 8; ++i) {
    derived |= static_cast<uint64_t>(digest[static_cast<size_t>(i)])
               << (8 * i);
  }
  Xoshiro256 rng(derived);
  return rng.Permutation(n);
}

Result<std::vector<std::vector<size_t>>> GroupUsers(
    const std::vector<size_t>& permutation, size_t num_groups) {
  const size_t n = permutation.size();
  if (num_groups == 0) {
    return Status::InvalidArgument("num_groups must be >= 1");
  }
  if (num_groups > n) {
    return Status::InvalidArgument("more groups than users");
  }
  std::vector<std::vector<size_t>> groups(num_groups);
  size_t base = n / num_groups;
  size_t remainder = n % num_groups;
  size_t cursor = 0;
  for (size_t j = 0; j < num_groups; ++j) {
    size_t size = base + (j < remainder ? 1 : 0);
    groups[j].assign(permutation.begin() + static_cast<long>(cursor),
                     permutation.begin() + static_cast<long>(cursor + size));
    cursor += size;
  }
  return groups;
}

GroupShapley::GroupShapley(size_t num_users, GroupShapleyConfig config,
                           UtilityFunction* utility)
    : num_users_(num_users), config_(config), utility_(utility) {}

Result<GroupShapleyRound> GroupShapley::EvaluateRound(
    uint64_t round, const std::vector<ml::Matrix>& user_locals) const {
  if (user_locals.size() != num_users_) {
    return Status::InvalidArgument("expected one local update per user");
  }
  std::vector<size_t> perm =
      PermutationFromSeed(config_.seed_e, round, num_users_);
  BCFL_ASSIGN_OR_RETURN(std::vector<std::vector<size_t>> groups,
                        GroupUsers(perm, config_.num_groups));

  // Line 3: W_j = mean of member local weights (what secure aggregation
  // yields on chain).
  std::vector<ml::Matrix> group_models;
  group_models.reserve(groups.size());
  for (const auto& members : groups) {
    std::vector<ml::Matrix> locals;
    locals.reserve(members.size());
    for (size_t i : members) locals.push_back(user_locals[i]);
    BCFL_ASSIGN_OR_RETURN(ml::Matrix mean, ml::MeanOfMatrices(locals));
    group_models.push_back(std::move(mean));
  }
  return EvaluateRoundFromGroupModels(groups, std::move(group_models));
}

Result<GroupShapleyRound> GroupShapley::EvaluateRoundFromGroupModels(
    const std::vector<std::vector<size_t>>& groups,
    std::vector<ml::Matrix> group_models) const {
  const size_t m = groups.size();
  if (m == 0 || m > 20) {
    return Status::InvalidArgument("group count must be in [1, 20]");
  }
  if (group_models.size() != m) {
    return Status::InvalidArgument("one model required per group");
  }

  GroupShapleyRound out;
  out.groups = groups;
  out.group_models = std::move(group_models);

  // Line 4: coalition models W_S = (1/|S|) sum_{j in S} W_j for every
  // S in the powerset of groups; utility of each. The empty coalition is
  // the untrained (zero) model. The engine builds the 2^m coalition
  // models with 2^m - 1 subset-sum additions and scores them on the
  // configured pool.
  CoalitionEngineConfig engine_config;
  engine_config.pool = config_.pool;
  CoalitionEngine engine(utility_, engine_config);
  BCFL_ASSIGN_OR_RETURN(std::vector<double> utilities,
                        engine.EvaluateMeanCoalitions(out.group_models));
  out.engine_stats = engine.stats();

  // Lines 5-6: group Shapley values from the utility table (Eq. 1 over m
  // players).
  BCFL_ASSIGN_OR_RETURN(out.group_values,
                        ExactShapleyFromTable(m, utilities));

  // Line 7: each member receives its group's value split evenly.
  out.user_values.assign(num_users_, 0.0);
  for (size_t j = 0; j < m; ++j) {
    double share =
        out.group_values[j] / static_cast<double>(groups[j].size());
    for (size_t i : groups[j]) {
      if (i >= num_users_) {
        return Status::OutOfRange("group member id out of range");
      }
      out.user_values[i] = share;
    }
  }

  // Global model: size-weighted mean of group models == mean over users.
  std::vector<double> sizes;
  sizes.reserve(m);
  for (const auto& g : groups) {
    sizes.push_back(static_cast<double>(g.size()));
  }
  BCFL_ASSIGN_OR_RETURN(out.global_model,
                        ml::WeightedMeanOfMatrices(out.group_models, sizes));
  return out;
}

Result<std::vector<double>> GroupShapley::AccumulateOverRounds(
    const std::vector<std::vector<ml::Matrix>>& per_round_locals) const {
  if (per_round_locals.empty()) {
    return Status::InvalidArgument("no rounds to evaluate");
  }
  std::vector<double> totals(num_users_, 0.0);
  for (size_t r = 0; r < per_round_locals.size(); ++r) {
    BCFL_ASSIGN_OR_RETURN(GroupShapleyRound round,
                          EvaluateRound(r, per_round_locals[r]));
    for (size_t i = 0; i < num_users_; ++i) {
      totals[i] += round.user_values[i];
    }
  }
  return totals;
}

}  // namespace bcfl::shapley
