#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "ml/matrix.h"
#include "shapley/utility.h"

namespace bcfl::shapley {

/// Knobs for the coalition-evaluation engine.
struct CoalitionEngineConfig {
  /// Worker pool for the utility-evaluation stage (null = serial). The
  /// result is bit-identical for every pool size, including none.
  ThreadPool* pool = nullptr;
  /// Chunk size handed to ThreadPool::ParallelFor (0 = automatic).
  size_t grain = 0;
  /// Upper bound on the memory the subset-sum table may occupy. Above it
  /// the engine falls back to Gray-code running sums: O(1) model-sized
  /// state, still one add/sub per coalition, but inherently serial.
  /// 2^m tables for the paper's m <= 9 are well below the default.
  size_t max_table_bytes = size_t{1} << 28;  // 256 MiB
};

/// Counters exposed for benchmarking and for asserting the engine's
/// complexity contract (exactly 2^m - 1 matrix additions to build all
/// coalition models).
struct CoalitionEngineStats {
  size_t matrix_additions = 0;     ///< Adds in the subset-sum / Gray build.
  size_t matrix_subtractions = 0;  ///< Gray-code path only.
  size_t utility_evaluations = 0;  ///< One per coalition mask.
  bool used_linear_scores = false; ///< LinearScoreUtility fast path taken.
  bool used_gray_code = false;     ///< Memory-constrained fallback taken.
};

/// Shared coalition-evaluation engine behind NativeShapley, GroupShapley
/// and the Monte-Carlo estimator: given one model per player, it computes
/// the utility u(S) of the *mean-aggregated* model of every coalition
/// S ⊆ {players}, i.e. the full 2^m utility table that Eq. 1 consumes.
///
/// Four coordinated optimisations over the naive powerset walk:
///  1. Subset-sum DP construction — sum[mask] = sum[mask \ highbit] +
///     W_highbit — builds all 2^m coalition sums with exactly 2^m - 1
///     matrix additions instead of O(2^m * m) rebuild-from-scratch.
///     Removing the *highest* bit reproduces the ascending-index
///     accumulation order of the naive loop, so results match it bit
///     for bit.
///  2. Linear-score fast path — when the utility implements
///     LinearScoreUtility, the DP runs over per-player score matrices
///     (X_aug * W_j, computed once per player) and each coalition is
///     scored straight from its score sum, skipping the per-coalition
///     X * W product entirely.
///  3. Parallel utility evaluation — coalition scores are independent, so
///     they run on the pool with results written to index-addressed
///     slots; output is deterministic regardless of thread count.
///  4. Chunked dispatch — the 2^m-sized loop reaches the pool through
///     grain-size chunks (ThreadPool::ParallelFor), not one closure per
///     mask.
class CoalitionEngine {
 public:
  explicit CoalitionEngine(UtilityFunction* utility,
                           CoalitionEngineConfig config = {});

  /// Utility table over all 2^m coalitions of `player_models`, where the
  /// coalition model is the element-wise mean of the members' models and
  /// the empty coalition is the zero (untrained) model. Entry `mask` of
  /// the result scores coalition {i : bit i of mask set}. m must be in
  /// [1, 20].
  Result<std::vector<double>> EvaluateMeanCoalitions(
      const std::vector<ml::Matrix>& player_models);

  /// Utility of every entry of a precomputed model table (e.g. the 2^n
  /// retrained coalition models of the native SV), evaluated in parallel
  /// into index-addressed slots.
  Result<std::vector<double>> EvaluateModelTable(
      const std::vector<ml::Matrix>& models);

  /// Counters from the most recent Evaluate* call.
  const CoalitionEngineStats& stats() const { return stats_; }

 private:
  Result<std::vector<double>> MeanCoalitionsSubsetSum(
      const std::vector<ml::Matrix>& basis, bool linear,
      LinearScoreUtility* linear_utility);
  Result<std::vector<double>> MeanCoalitionsGrayCode(
      const std::vector<ml::Matrix>& basis, bool linear,
      LinearScoreUtility* linear_utility);
  Result<double> ScoreCoalition(const ml::Matrix& sum, size_t coalition_size,
                                bool linear,
                                LinearScoreUtility* linear_utility);

  UtilityFunction* utility_;
  CoalitionEngineConfig config_;
  CoalitionEngineStats stats_;
};

/// Incremental coalition builder for permutation scans (Monte-Carlo SV):
/// maintains the running sum of the included players' models — or score
/// matrices, when the utility supports the linear fast path — so that
/// extending a coalition by one player costs a single matrix add instead
/// of a rebuild of the whole mean.
class CoalitionAccumulator {
 public:
  /// Prepares an accumulator over `player_models` (not owned; must
  /// outlive the accumulator). Precomputes per-player score matrices
  /// when `utility` implements LinearScoreUtility.
  static Result<CoalitionAccumulator> Make(
      const std::vector<ml::Matrix>* player_models, UtilityFunction* utility);

  /// Back to the empty coalition.
  void Reset();
  /// Adds one player (one matrix add). Fails on duplicates/out-of-range.
  Status Include(size_t player);
  /// Utility of the current coalition's mean-aggregated model.
  Result<double> Evaluate();

  uint64_t mask() const { return mask_; }
  size_t count() const { return count_; }

 private:
  CoalitionAccumulator() = default;

  const std::vector<ml::Matrix>* players_ = nullptr;
  UtilityFunction* utility_ = nullptr;
  LinearScoreUtility* linear_ = nullptr;  ///< Non-null: score-space mode.
  std::vector<ml::Matrix> scores_;        ///< Per-player scores (linear).
  ml::Matrix running_;                    ///< Sum of included models/scores.
  uint64_t mask_ = 0;
  size_t count_ = 0;
};

}  // namespace bcfl::shapley
