#include "shapley/monte_carlo.h"

#include <cmath>
#include <unordered_map>

#include "shapley/coalition_engine.h"

namespace bcfl::shapley {

Result<MonteCarloResult> MonteCarloShapley(
    size_t n, const std::function<Result<double>(uint64_t)>& utility,
    MonteCarloConfig config) {
  if (n == 0 || n >= 64) {
    return Status::InvalidArgument("n must be in [1, 63]");
  }
  if (config.num_permutations == 0) {
    return Status::InvalidArgument("need at least one permutation");
  }

  MonteCarloResult out;
  out.values.assign(n, 0.0);
  Xoshiro256 rng(config.seed);

  // Memoize utilities: permutation prefixes repeat often for small n.
  std::unordered_map<uint64_t, double> cache;
  auto eval = [&](uint64_t mask) -> Result<double> {
    auto it = cache.find(mask);
    if (it != cache.end()) return it->second;
    BCFL_ASSIGN_OR_RETURN(double u, utility(mask));
    cache.emplace(mask, u);
    ++out.utility_evaluations;
    return u;
  };

  BCFL_ASSIGN_OR_RETURN(double empty_u, eval(0));
  const uint64_t grand = (n == 63) ? ~0ULL >> 1 : (1ULL << n) - 1;
  BCFL_ASSIGN_OR_RETURN(double grand_u, eval(grand));

  for (size_t p = 0; p < config.num_permutations; ++p) {
    std::vector<size_t> perm = rng.Permutation(n);
    uint64_t mask = 0;
    double prev_u = empty_u;
    for (size_t pos = 0; pos < n; ++pos) {
      // Truncation: if the running utility is already within tolerance
      // of the grand coalition, remaining marginals are ~0.
      if (config.truncation_tolerance > 0.0 &&
          std::abs(grand_u - prev_u) < config.truncation_tolerance) {
        ++out.truncated_scans;
        break;
      }
      size_t player = perm[pos];
      mask |= 1ULL << player;
      BCFL_ASSIGN_OR_RETURN(double cur_u, eval(mask));
      out.values[player] += cur_u - prev_u;
      prev_u = cur_u;
    }
  }

  for (double& v : out.values) {
    v /= static_cast<double>(config.num_permutations);
  }
  return out;
}

Result<MonteCarloResult> MonteCarloShapleyFromModels(
    const std::vector<ml::Matrix>& player_models, UtilityFunction* utility,
    MonteCarloConfig config) {
  const size_t n = player_models.size();
  if (n == 0 || n >= 64) {
    return Status::InvalidArgument("n must be in [1, 63]");
  }
  if (config.num_permutations == 0) {
    return Status::InvalidArgument("need at least one permutation");
  }
  BCFL_ASSIGN_OR_RETURN(
      CoalitionAccumulator acc,
      CoalitionAccumulator::Make(&player_models, utility));

  MonteCarloResult out;
  out.values.assign(n, 0.0);
  Xoshiro256 rng(config.seed);

  // Same memoisation as the closure-based estimator; the accumulator only
  // saves the coalition-construction work, not repeated evaluations.
  std::unordered_map<uint64_t, double> cache;
  auto eval_current = [&]() -> Result<double> {
    auto it = cache.find(acc.mask());
    if (it != cache.end()) return it->second;
    BCFL_ASSIGN_OR_RETURN(double u, acc.Evaluate());
    cache.emplace(acc.mask(), u);
    ++out.utility_evaluations;
    return u;
  };

  BCFL_ASSIGN_OR_RETURN(double empty_u, eval_current());
  for (size_t i = 0; i < n; ++i) {
    BCFL_RETURN_IF_ERROR(acc.Include(i));
  }
  BCFL_ASSIGN_OR_RETURN(double grand_u, eval_current());

  for (size_t p = 0; p < config.num_permutations; ++p) {
    std::vector<size_t> perm = rng.Permutation(n);
    acc.Reset();
    double prev_u = empty_u;
    for (size_t pos = 0; pos < n; ++pos) {
      if (config.truncation_tolerance > 0.0 &&
          std::abs(grand_u - prev_u) < config.truncation_tolerance) {
        ++out.truncated_scans;
        break;
      }
      const size_t player = perm[pos];
      BCFL_RETURN_IF_ERROR(acc.Include(player));
      BCFL_ASSIGN_OR_RETURN(double cur_u, eval_current());
      out.values[player] += cur_u - prev_u;
      prev_u = cur_u;
    }
  }

  for (double& v : out.values) {
    v /= static_cast<double>(config.num_permutations);
  }
  return out;
}

}  // namespace bcfl::shapley
