#include "shapley/native_sv.h"

#include "shapley/coalition_engine.h"
#include "shapley/shapley_math.h"

namespace bcfl::shapley {

NativeShapley::NativeShapley(const fl::FederatedTrainer* trainer,
                             UtilityFunction* utility,
                             NativeShapleyConfig config)
    : trainer_(trainer), utility_(utility), config_(config) {}

Result<NativeShapleyResult> NativeShapley::Compute(
    const std::vector<ml::Matrix>* final_locals) const {
  const size_t n = trainer_->num_clients();
  if (n == 0 || n > 20) {
    return Status::InvalidArgument("owner count must be in [1, 20]");
  }
  if (config_.source == CoalitionModelSource::kAggregateFromLocals) {
    if (final_locals == nullptr || final_locals->size() != n) {
      return Status::InvalidArgument(
          "kAggregateFromLocals requires one final local weight per owner");
    }
  }
  const uint64_t full = 1ULL << n;

  CoalitionEngineConfig engine_config;
  engine_config.pool = config_.pool;
  CoalitionEngine engine(utility_, engine_config);
  NativeShapleyResult result;

  if (config_.source == CoalitionModelSource::kAggregateFromLocals) {
    // Coalition models are means of the members' final local weights —
    // exactly the engine's subset-sum construction (the empty coalition
    // is the zero, i.e. untrained, model for zero-initialised training).
    BCFL_ASSIGN_OR_RETURN(result.utility_table,
                          engine.EvaluateMeanCoalitions(*final_locals));
  } else {
    // Stage 1: retrain one coalition model per mask. Training dominates,
    // so dispatch with grain 1 for the best load balance; slots are
    // index-addressed, keeping the output order-independent.
    std::vector<ml::Matrix> models(full);
    std::vector<Status> statuses(full, Status::OK());
    auto build_model = [&](size_t mask) {
      std::vector<size_t> members;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) members.push_back(i);
      }
      auto model = trainer_->TrainCentralized(members, config_.epochs);
      if (model.ok()) {
        models[mask] = std::move(model).value();
      } else {
        statuses[mask] = model.status();
      }
    };
    if (config_.pool != nullptr) {
      config_.pool->ParallelFor(full, build_model, /*grain=*/1);
    } else {
      for (uint64_t mask = 0; mask < full; ++mask) {
        build_model(static_cast<size_t>(mask));
      }
    }
    for (const Status& s : statuses) {
      BCFL_RETURN_IF_ERROR(s);
    }

    // Stage 2: utility of every coalition model, in parallel. Utilities
    // are required to be thread-safe (see UtilityFunction); results land
    // in index-addressed slots, so the table is deterministic.
    BCFL_ASSIGN_OR_RETURN(result.utility_table,
                          engine.EvaluateModelTable(models));
  }

  // Stage 3: Eq. 1.
  BCFL_ASSIGN_OR_RETURN(result.values,
                        ExactShapleyFromTable(n, result.utility_table));
  return result;
}

}  // namespace bcfl::shapley
