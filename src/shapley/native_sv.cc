#include "shapley/native_sv.h"

#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "shapley/coalition_engine.h"
#include "shapley/shapley_math.h"

namespace bcfl::shapley {

namespace {

/// Non-owning view of a utility, so CachingUtility (which wants
/// ownership) can memoize a caller-owned utility without taking it over.
class BorrowedUtility : public UtilityFunction {
 public:
  explicit BorrowedUtility(UtilityFunction* inner) : inner_(inner) {}
  Result<double> Evaluate(const ml::Matrix& weights) override {
    return inner_->Evaluate(weights);
  }

 private:
  UtilityFunction* inner_;
};

}  // namespace

NativeShapley::NativeShapley(const fl::FederatedTrainer* trainer,
                             UtilityFunction* utility,
                             NativeShapleyConfig config)
    : trainer_(trainer), utility_(utility), config_(config) {
  if (config_.cache_utilities) {
    cached_ = std::make_unique<CachingUtility>(
        std::make_unique<BorrowedUtility>(utility_));
  }
}

Result<NativeShapleyResult> NativeShapley::Compute(
    const std::vector<ml::Matrix>* final_locals) const {
  const size_t n = trainer_->num_clients();
  if (n == 0 || n > 20) {
    return Status::InvalidArgument("owner count must be in [1, 20]");
  }
  if (config_.source == CoalitionModelSource::kAggregateFromLocals) {
    if (final_locals == nullptr || final_locals->size() != n) {
      return Status::InvalidArgument(
          "kAggregateFromLocals requires one final local weight per owner");
    }
  }
  const uint64_t full = 1ULL << n;

  CoalitionEngineConfig engine_config;
  engine_config.pool = config_.pool;
  CoalitionEngine engine(cached_ != nullptr ? cached_.get() : utility_,
                         engine_config);
  NativeShapleyResult result;

  if (config_.source == CoalitionModelSource::kAggregateFromLocals) {
    // Coalition models are means of the members' final local weights —
    // exactly the engine's subset-sum construction (the empty coalition
    // is the zero, i.e. untrained, model for zero-initialised training).
    BCFL_ASSIGN_OR_RETURN(result.utility_table,
                          engine.EvaluateMeanCoalitions(*final_locals));
  } else {
    // Stage 1: retrain one coalition model per mask. Training dominates,
    // so dispatch with grain 1 for the best load balance; slots are
    // index-addressed and training is RNG-free, keeping the output
    // bit-identical for any pool size.
    static auto& retrain_us = obs::MetricsRegistry::Global().GetHistogram(
        "shapley.native.retrain_stage_us");
    static auto& retrains = obs::MetricsRegistry::Global().GetCounter(
        "shapley.native.coalition_retrains");
    retrains.Add(full);
    std::vector<ml::Matrix> models(full);
    std::vector<Status> statuses(full, Status::OK());
    {
      obs::ScopedSpan retrain_span(obs::Tracer::Global(), "coalition_retrain",
                                   "shapley");
      obs::ScopedLatency retrain_latency(retrain_us);
      auto build_model = [&](size_t mask) {
        std::vector<size_t> members;
        for (size_t i = 0; i < n; ++i) {
          if (mask & (1ULL << i)) members.push_back(i);
        }
        auto model = trainer_->TrainCentralized(members, config_.epochs);
        if (model.ok()) {
          models[mask] = std::move(model).value();
        } else {
          statuses[mask] = model.status();
        }
      };
      if (config_.pool != nullptr) {
        config_.pool->ParallelFor(full, build_model, /*grain=*/1);
      } else {
        for (uint64_t mask = 0; mask < full; ++mask) {
          build_model(static_cast<size_t>(mask));
        }
      }
    }
    for (const Status& s : statuses) {
      BCFL_RETURN_IF_ERROR(s);
    }

    // Stage 2: utility of every coalition model, in parallel. Utilities
    // are required to be thread-safe (see UtilityFunction); results land
    // in index-addressed slots, so the table is deterministic.
    BCFL_ASSIGN_OR_RETURN(result.utility_table,
                          engine.EvaluateModelTable(models));
  }

  // Stage 3: Eq. 1.
  BCFL_ASSIGN_OR_RETURN(result.values,
                        ExactShapleyFromTable(n, result.utility_table));
  return result;
}

}  // namespace bcfl::shapley
