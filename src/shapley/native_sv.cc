#include "shapley/native_sv.h"

#include <bit>
#include <mutex>

#include "shapley/shapley_math.h"

namespace bcfl::shapley {

NativeShapley::NativeShapley(const fl::FederatedTrainer* trainer,
                             UtilityFunction* utility,
                             NativeShapleyConfig config)
    : trainer_(trainer), utility_(utility), config_(config) {}

Result<NativeShapleyResult> NativeShapley::Compute(
    const std::vector<ml::Matrix>* final_locals) const {
  const size_t n = trainer_->num_clients();
  if (n == 0 || n > 20) {
    return Status::InvalidArgument("owner count must be in [1, 20]");
  }
  if (config_.source == CoalitionModelSource::kAggregateFromLocals) {
    if (final_locals == nullptr || final_locals->size() != n) {
      return Status::InvalidArgument(
          "kAggregateFromLocals requires one final local weight per owner");
    }
  }
  const uint64_t full = 1ULL << n;

  // Stage 1: one coalition model per mask.
  std::vector<ml::Matrix> models(full);
  std::vector<Status> statuses(full, Status::OK());
  auto build_model = [&](uint64_t mask) {
    std::vector<size_t> members;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) members.push_back(i);
    }
    if (config_.source == CoalitionModelSource::kRetrainCentralized) {
      auto model = trainer_->TrainCentralized(members, config_.epochs);
      if (model.ok()) {
        models[mask] = std::move(model).value();
      } else {
        statuses[mask] = model.status();
      }
    } else {
      if (members.empty()) {
        // Empty coalition: untrained model.
        auto model = trainer_->TrainCentralized({}, 1);
        if (model.ok()) {
          models[mask] = std::move(model).value();
        } else {
          statuses[mask] = model.status();
        }
        return;
      }
      std::vector<ml::Matrix> parts;
      parts.reserve(members.size());
      for (size_t i : members) parts.push_back((*final_locals)[i]);
      auto mean = ml::MeanOfMatrices(parts);
      if (mean.ok()) {
        models[mask] = std::move(mean).value();
      } else {
        statuses[mask] = mean.status();
      }
    }
  };

  if (config_.pool != nullptr &&
      config_.source == CoalitionModelSource::kRetrainCentralized) {
    config_.pool->ParallelFor(full, [&](size_t mask) {
      build_model(static_cast<uint64_t>(mask));
    });
  } else {
    for (uint64_t mask = 0; mask < full; ++mask) build_model(mask);
  }
  for (const Status& s : statuses) {
    BCFL_RETURN_IF_ERROR(s);
  }

  // Stage 2: utility of every coalition model. The utility object may
  // cache internally; evaluate serially for determinism.
  NativeShapleyResult result;
  result.utility_table.resize(full);
  for (uint64_t mask = 0; mask < full; ++mask) {
    BCFL_ASSIGN_OR_RETURN(result.utility_table[mask],
                          utility_->Evaluate(models[mask]));
  }

  // Stage 3: Eq. 1.
  BCFL_ASSIGN_OR_RETURN(result.values,
                        ExactShapleyFromTable(n, result.utility_table));
  return result;
}

}  // namespace bcfl::shapley
