#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "fl/trainer.h"
#include "shapley/utility.h"

namespace bcfl::shapley {

/// How coalition models are obtained for the native (Eq. 1) SV.
enum class CoalitionModelSource {
  /// Retrain a centralized model on the union of the coalition's data —
  /// the paper's ground truth ("we build 2^n models based on the data
  /// coalitions"). Expensive: 2^n trainings.
  kRetrainCentralized,
  /// Aggregate the coalition model from the members' final-round local
  /// weights (Song et al. [4] style) — cheap but approximate.
  kAggregateFromLocals,
};

struct NativeShapleyConfig {
  CoalitionModelSource source = CoalitionModelSource::kRetrainCentralized;
  /// Training epochs per coalition model (0 = trainer default).
  size_t epochs = 0;
  /// Optional worker pool parallelising coalition training and utility
  /// evaluation. SV outputs are bit-identical for every pool size:
  /// coalition training is RNG-free (zero-initialised full-batch descent
  /// for a fixed epoch count), so each coalition model depends only on
  /// its member set, and every parallel stage writes to index-addressed
  /// slots — scheduling order never reaches the arithmetic.
  ThreadPool* pool = nullptr;
  /// Wrap the utility in a CachingUtility owned by this object, so
  /// repeated Compute calls (and duplicate coalition models within one)
  /// skip re-evaluation. Purely a cache: values are unchanged.
  bool cache_utilities = false;
};

/// Result of a native SV computation.
struct NativeShapleyResult {
  std::vector<double> values;          ///< One SV per owner.
  std::vector<double> utility_table;   ///< u(S) for every mask, 2^n entries.
};

/// Native Shapley value over data owners (Eq. 1 of the paper).
///
/// This is the transparency *baseline*: it needs every coalition's model,
/// which is impossible on masked updates — exactly the incompatibility
/// GroupSV resolves. The library keeps it for ground truth (Fig. 1), for
/// the accuracy comparison (Fig. 2) and the runtime comparison (Table I).
class NativeShapley {
 public:
  NativeShapley(const fl::FederatedTrainer* trainer, UtilityFunction* utility,
                NativeShapleyConfig config = {});

  /// Computes SVs for all owners. With `kAggregateFromLocals`,
  /// `final_locals` must hold each owner's final local weights.
  Result<NativeShapleyResult> Compute(
      const std::vector<ml::Matrix>* final_locals = nullptr) const;

 private:
  const fl::FederatedTrainer* trainer_;
  UtilityFunction* utility_;
  NativeShapleyConfig config_;
  /// Set when config_.cache_utilities: memoizes `utility_` (via a
  /// non-owning adapter) across coalitions and Compute calls.
  std::unique_ptr<CachingUtility> cached_;
};

}  // namespace bcfl::shapley
