#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"

namespace bcfl::shapley {

/// Binomial coefficient C(n, k) as a double (exact for the small n used
/// in coalition games; n <= 20 enforced by callers).
double Binomial(size_t n, size_t k);

/// Exact Shapley values from a complete table of coalition utilities.
///
/// `utilities[mask]` is u(S) for the coalition whose members are the set
/// bits of `mask`; the table has 2^n entries. Implements Eq. 1 of the
/// paper directly:
///   v_i = 1/n * sum_{S subseteq I\{i}} 1/C(n-1, |S|) * [u(S+i) - u(S)].
/// Cost O(n * 2^n).
Result<std::vector<double>> ExactShapleyFromTable(
    size_t n, const std::vector<double>& utilities);

/// Exact Shapley values with utilities computed on demand.
/// `utility(mask)` must be deterministic. Evaluates each of the 2^n
/// coalitions exactly once.
Result<std::vector<double>> ExactShapley(
    size_t n, const std::function<Result<double>(uint64_t mask)>& utility);

/// Verifies the efficiency axiom: sum of SVs == u(grand) - u(empty),
/// within `tolerance`. Exposed for tests and on-chain verification.
Result<bool> CheckEfficiency(const std::vector<double>& shapley_values,
                             double grand_utility, double empty_utility,
                             double tolerance = 1e-9);

}  // namespace bcfl::shapley
