#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"

namespace bcfl::shapley {

/// The utility function u(.) of cooperative game theory, evaluated on
/// model parameters. Contribution evaluation scores coalition models;
/// higher is better.
///
/// Thread-safety contract: the coalition-evaluation engine calls
/// `Evaluate` concurrently from a thread pool, so implementations MUST
/// be safe for concurrent `Evaluate` calls on one object. Implementations
/// that are immutable after construction (every utility in this file
/// builds its derived state in the constructor) satisfy this for free;
/// stateful implementations must synchronise internally, as
/// `CachingUtility` does.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;
  /// Scores the model given by `weights`. Must be deterministic and
  /// callable concurrently (see the class comment).
  virtual Result<double> Evaluate(const ml::Matrix& weights) = 0;
};

/// Optional fast-path capability for utilities whose score depends on the
/// weights only through the per-example score matrix X_aug * W. Because
/// that map is linear in W, the score matrix of a mean-aggregated
/// coalition model is the (scaled) *sum* of the members' score matrices —
/// so an engine can precompute one score matrix per player and rebuild
/// every coalition's scores with a single matrix add each, instead of a
/// full X * W product per coalition. Same concurrency contract as
/// `UtilityFunction::Evaluate` for both methods.
class LinearScoreUtility {
 public:
  virtual ~LinearScoreUtility() = default;
  /// The per-example score ("logit") matrix X_aug * W for one player.
  virtual Result<ml::Matrix> PlayerScores(const ml::Matrix& weights) const = 0;
  /// Utility of the coalition whose member score matrices sum to
  /// `score_sum`. `coalition_size` = |S| (0 for the empty coalition, in
  /// which case `score_sum` is all zeros — the untrained model).
  virtual Result<double> EvaluateScoreSum(const ml::Matrix& score_sum,
                                          size_t coalition_size) const = 0;
};

/// The paper's utility: accuracy of the coalition model on a held-out
/// test set (agreed upon at the off-chain setup stage and therefore
/// evaluable deterministically by every miner).
///
/// The bias-augmented test matrix is built once in the constructor and
/// shared (read-only) by every evaluation, and the accuracy is computed
/// by the fused kernel — no per-evaluation copy of the test set and no
/// intermediate probability matrix. Immutable after construction.
class TestAccuracyUtility : public UtilityFunction,
                            public LinearScoreUtility {
 public:
  explicit TestAccuracyUtility(ml::Dataset test_set);

  Result<double> Evaluate(const ml::Matrix& weights) override;

  Result<ml::Matrix> PlayerScores(const ml::Matrix& weights) const override;
  /// Accuracy only needs the row argmax, which is invariant to the
  /// positive 1/|S| rescaling — the raw sum is scored directly.
  Result<double> EvaluateScoreSum(const ml::Matrix& score_sum,
                                  size_t coalition_size) const override;

  const ml::Dataset& test_set() const { return test_set_; }

 private:
  Status CheckWeights(const ml::Matrix& weights) const;

  ml::Dataset test_set_;
  ml::Matrix augmented_;  ///< Bias-augmented features, built once.
};

/// Negative log-loss utility — smoother than accuracy, used in ablations.
/// Same construction-time augmentation and fused path; immutable after
/// construction.
class NegLogLossUtility : public UtilityFunction, public LinearScoreUtility {
 public:
  explicit NegLogLossUtility(ml::Dataset test_set);

  Result<double> Evaluate(const ml::Matrix& weights) override;

  Result<ml::Matrix> PlayerScores(const ml::Matrix& weights) const override;
  Result<double> EvaluateScoreSum(const ml::Matrix& score_sum,
                                  size_t coalition_size) const override;

 private:
  Status CheckWeights(const ml::Matrix& weights) const;

  ml::Dataset test_set_;
  ml::Matrix augmented_;  ///< Bias-augmented features, built once.
};

/// Memoizing decorator: caches utility values keyed by a SHA-256 of the
/// weight bytes. Coalition enumeration evaluates many duplicate models
/// (e.g. W_S for S and for S in another round with identical weights);
/// the cache makes repeated sweeps cheap and is itself benchmarked.
///
/// Thread-safe: the map is sharded by key hash with one mutex per shard,
/// and hit/miss counters are atomic, so pool workers evaluating disjoint
/// coalitions rarely contend. The shard lock is NOT held across the
/// inner evaluation; two threads racing on the same uncached key may
/// both evaluate (both counted as misses) and the duplicate insert is
/// dropped — values are deterministic either way. Thread-safe only if
/// the wrapped utility is.
class CachingUtility : public UtilityFunction {
 public:
  explicit CachingUtility(std::unique_ptr<UtilityFunction> inner);

  Result<double> Evaluate(const ml::Matrix& weights) override;

  size_t cache_size() const;
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, double> map;
  };

  std::unique_ptr<UtilityFunction> inner_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace bcfl::shapley
