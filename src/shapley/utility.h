#pragma once

#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"

namespace bcfl::shapley {

/// The utility function u(.) of cooperative game theory, evaluated on
/// model parameters. Contribution evaluation scores coalition models;
/// higher is better.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;
  /// Scores the model given by `weights`.
  virtual Result<double> Evaluate(const ml::Matrix& weights) = 0;
};

/// The paper's utility: accuracy of the coalition model on a held-out
/// test set (agreed upon at the off-chain setup stage and therefore
/// evaluable deterministically by every miner).
class TestAccuracyUtility : public UtilityFunction {
 public:
  explicit TestAccuracyUtility(ml::Dataset test_set);

  Result<double> Evaluate(const ml::Matrix& weights) override;

  const ml::Dataset& test_set() const { return test_set_; }

 private:
  ml::Dataset test_set_;
};

/// Negative log-loss utility — smoother than accuracy, used in ablations.
class NegLogLossUtility : public UtilityFunction {
 public:
  explicit NegLogLossUtility(ml::Dataset test_set);

  Result<double> Evaluate(const ml::Matrix& weights) override;

 private:
  ml::Dataset test_set_;
};

/// Memoizing decorator: caches utility values keyed by a SHA-256 of the
/// weight bytes. Coalition enumeration evaluates many duplicate models
/// (e.g. W_S for S and for S in another round with identical weights);
/// the cache makes repeated sweeps cheap and is itself benchmarked.
class CachingUtility : public UtilityFunction {
 public:
  explicit CachingUtility(std::unique_ptr<UtilityFunction> inner);

  Result<double> Evaluate(const ml::Matrix& weights) override;

  size_t cache_size() const { return cache_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  std::unique_ptr<UtilityFunction> inner_;
  std::unordered_map<std::string, double> cache_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace bcfl::shapley
