#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "ml/matrix.h"
#include "shapley/coalition_engine.h"
#include "shapley/utility.h"

namespace bcfl::shapley {

/// Deterministic permutation of {0..n-1} from the agreed random seed `e`
/// and the round number — Algorithm 1, line 1. Every miner derives the
/// identical permutation, which is what makes the grouping verifiable.
std::vector<size_t> PermutationFromSeed(uint64_t seed_e, uint64_t round,
                                        size_t n);

/// Splits the permuted users into `m` contiguous groups of near-equal
/// size (Algorithm 1, line 2; the remainder is spread over the leading
/// groups). Fails when m is 0 or exceeds n.
Result<std::vector<std::vector<size_t>>> GroupUsers(
    const std::vector<size_t>& permutation, size_t num_groups);

/// Per-round output of the GroupSV evaluation.
struct GroupShapleyRound {
  std::vector<std::vector<size_t>> groups;  ///< Member user ids per group.
  std::vector<ml::Matrix> group_models;     ///< W_j, line 3.
  std::vector<double> group_values;         ///< V_j, line 6.
  std::vector<double> user_values;          ///< v_i^r, line 7.
  ml::Matrix global_model;                  ///< W_G (size-weighted mean).
  /// Engine counters for this round (2^m - 1 coalition-model additions,
  /// 2^m utility evaluations); lets callers assert the cost contract.
  CoalitionEngineStats engine_stats;
};

/// Configuration of the group-based Shapley evaluation.
struct GroupShapleyConfig {
  size_t num_groups = 3;  ///< m; trade-off between privacy and resolution.
  uint64_t seed_e = 7;    ///< Permutation seed agreed at setup.
  /// Worker pool for coalition utility evaluation (null = serial).
  /// Results are bit-identical for every pool size.
  ThreadPool* pool = nullptr;
};

/// The paper's contribution: Group Shapley (Algorithm 1).
///
/// Because secure aggregation reveals only per-group aggregate models,
/// the native SV (which needs every individual's marginal) cannot be
/// computed. GroupSV evaluates the Shapley value of each *group* from
/// coalition models built by plain aggregation of group models, then
/// assigns each member V_j / |G_j|. With m = n it degenerates to
/// per-user SV on local models (max resolution, no privacy); with m = 1
/// everyone gets the same value (max privacy, no resolution).
class GroupShapley {
 public:
  GroupShapley(size_t num_users, GroupShapleyConfig config,
               UtilityFunction* utility);

  size_t num_users() const { return num_users_; }
  const GroupShapleyConfig& config() const { return config_; }

  /// Reference (unmasked) path: computes group models directly from the
  /// users' per-round local weights, then evaluates the round.
  Result<GroupShapleyRound> EvaluateRound(
      uint64_t round, const std::vector<ml::Matrix>& user_locals) const;

  /// Masked path: group models were already produced by secure
  /// aggregation; evaluates lines 4-7 only. `groups` must match the
  /// deterministic grouping for (seed_e, round).
  Result<GroupShapleyRound> EvaluateRoundFromGroupModels(
      const std::vector<std::vector<size_t>>& groups,
      std::vector<ml::Matrix> group_models) const;

  /// Full multi-round evaluation: v_i = sum_r v_i^r (Sect. IV-B).
  /// `per_round_locals[r][i]` = user i's local weights at round r.
  Result<std::vector<double>> AccumulateOverRounds(
      const std::vector<std::vector<ml::Matrix>>& per_round_locals) const;

 private:
  size_t num_users_;
  GroupShapleyConfig config_;
  UtilityFunction* utility_;
};

}  // namespace bcfl::shapley
