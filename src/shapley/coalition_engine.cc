#include "shapley/coalition_engine.h"

#include <bit>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::shapley {

namespace {

/// Folds one Evaluate* call's stats into the global registry — one batch
/// of counter adds per call, nothing per coalition, so the engine's hot
/// loop carries no instrumentation cost.
void RecordEngineStats(const CoalitionEngineStats& stats) {
  auto& registry = obs::MetricsRegistry::Global();
  static auto& coalitions =
      registry.GetCounter("shapley.coalitions_scored");
  static auto& additions = registry.GetCounter("shapley.matrix_additions");
  static auto& subtractions =
      registry.GetCounter("shapley.matrix_subtractions");
  static auto& dp_path = registry.GetCounter("shapley.path.subset_sum");
  static auto& gray_path = registry.GetCounter("shapley.path.gray_code");
  static auto& linear_path =
      registry.GetCounter("shapley.path.linear_score");
  coalitions.Add(stats.utility_evaluations);
  additions.Add(stats.matrix_additions);
  subtractions.Add(stats.matrix_subtractions);
  (stats.used_gray_code ? gray_path : dp_path).Add();
  if (stats.used_linear_scores) linear_path.Add();
}

Status CheckPlayerModels(const std::vector<ml::Matrix>& models) {
  if (models.empty()) {
    return Status::InvalidArgument("no player models");
  }
  if (models[0].empty()) {
    return Status::InvalidArgument("player models must be non-empty");
  }
  for (const ml::Matrix& m : models) {
    if (m.rows() != models[0].rows() || m.cols() != models[0].cols()) {
      return Status::InvalidArgument("player model shapes differ");
    }
  }
  return Status::OK();
}

}  // namespace

CoalitionEngine::CoalitionEngine(UtilityFunction* utility,
                                 CoalitionEngineConfig config)
    : utility_(utility), config_(config) {}

Result<std::vector<double>> CoalitionEngine::EvaluateMeanCoalitions(
    const std::vector<ml::Matrix>& player_models) {
  static auto& eval_us = obs::MetricsRegistry::Global().GetHistogram(
      "shapley.coalition_eval_us");
  obs::ScopedSpan span(obs::Tracer::Global(), "coalition_eval", "shapley");
  obs::ScopedLatency latency(eval_us);
  stats_ = CoalitionEngineStats{};
  const size_t m = player_models.size();
  if (m == 0 || m > 20) {
    return Status::InvalidArgument("player count must be in [1, 20]");
  }
  BCFL_RETURN_IF_ERROR(CheckPlayerModels(player_models));

  auto* linear_utility = dynamic_cast<LinearScoreUtility*>(utility_);
  const bool linear = linear_utility != nullptr;

  // Basis of the subset sums: per-player score matrices on the linear
  // fast path (one X * W product per *player*, not per coalition), the
  // raw weight matrices otherwise.
  std::vector<ml::Matrix> score_basis;
  if (linear) {
    stats_.used_linear_scores = true;
    score_basis.resize(m);
    std::vector<Status> statuses(m, Status::OK());
    auto project = [&](size_t j) {
      auto scores = linear_utility->PlayerScores(player_models[j]);
      if (scores.ok()) {
        score_basis[j] = std::move(scores).value();
      } else {
        statuses[j] = scores.status();
      }
    };
    if (config_.pool != nullptr) {
      config_.pool->ParallelFor(m, project, /*grain=*/1);
    } else {
      for (size_t j = 0; j < m; ++j) project(j);
    }
    for (const Status& s : statuses) {
      BCFL_RETURN_IF_ERROR(s);
    }
  }
  const std::vector<ml::Matrix>& basis = linear ? score_basis : player_models;

  const uint64_t full = 1ULL << m;
  const size_t table_bytes = static_cast<size_t>(full) * basis[0].size() *
                             sizeof(double);
  Result<std::vector<double>> result =
      table_bytes > config_.max_table_bytes
          ? MeanCoalitionsGrayCode(basis, linear, linear_utility)
          : MeanCoalitionsSubsetSum(basis, linear, linear_utility);
  if (result.ok()) RecordEngineStats(stats_);
  return result;
}

Result<double> CoalitionEngine::ScoreCoalition(
    const ml::Matrix& sum, size_t coalition_size, bool linear,
    LinearScoreUtility* linear_utility) {
  if (linear) {
    return linear_utility->EvaluateScoreSum(sum, coalition_size);
  }
  if (coalition_size == 0) {
    return utility_->Evaluate(sum);  // All-zero: the untrained model.
  }
  return utility_->Evaluate(
      sum.Scaled(1.0 / static_cast<double>(coalition_size)));
}

Result<std::vector<double>> CoalitionEngine::MeanCoalitionsSubsetSum(
    const std::vector<ml::Matrix>& basis, bool linear,
    LinearScoreUtility* linear_utility) {
  const size_t m = basis.size();
  const uint64_t full = 1ULL << m;

  // Subset-sum DP: every coalition sum is its predecessor without the
  // highest member, plus that member — exactly 2^m - 1 additions, and
  // the same ascending-index accumulation order (hence the same floating
  // point result) as summing each coalition from scratch.
  std::vector<ml::Matrix> sums(full);
  sums[0] = ml::Matrix(basis[0].rows(), basis[0].cols());
  for (uint64_t mask = 1; mask < full; ++mask) {
    const uint64_t high = 1ULL << (std::bit_width(mask) - 1);
    sums[mask] = sums[mask ^ high];
    BCFL_RETURN_IF_ERROR(
        sums[mask].AddInPlace(basis[std::bit_width(mask) - 1]));
    ++stats_.matrix_additions;
  }

  // Independent per-mask scoring into index-addressed slots: the result
  // does not depend on scheduling, so any pool size is bit-identical.
  std::vector<double> utilities(full);
  std::vector<Status> statuses(full, Status::OK());
  auto score_one = [&](size_t mask) {
    auto u = ScoreCoalition(sums[mask],
                            static_cast<size_t>(std::popcount(
                                static_cast<uint64_t>(mask))),
                            linear, linear_utility);
    if (u.ok()) {
      utilities[mask] = *u;
    } else {
      statuses[mask] = u.status();
    }
  };
  if (config_.pool != nullptr) {
    config_.pool->ParallelFor(static_cast<size_t>(full), score_one,
                              config_.grain);
  } else {
    for (uint64_t mask = 0; mask < full; ++mask) {
      score_one(static_cast<size_t>(mask));
    }
  }
  stats_.utility_evaluations += static_cast<size_t>(full);
  for (const Status& s : statuses) {
    BCFL_RETURN_IF_ERROR(s);
  }
  return utilities;
}

Result<std::vector<double>> CoalitionEngine::MeanCoalitionsGrayCode(
    const std::vector<ml::Matrix>& basis, bool linear,
    LinearScoreUtility* linear_utility) {
  const size_t m = basis.size();
  const uint64_t full = 1ULL << m;
  stats_.used_gray_code = true;

  // Memory-constrained path: walk masks in Gray-code order, keeping one
  // model-sized running sum; each step toggles a single member (one add
  // or one subtract). Inherently serial — the running sum is shared
  // state — so it trades the pool for O(1) memory.
  ml::Matrix running(basis[0].rows(), basis[0].cols());
  std::vector<double> utilities(full);
  BCFL_ASSIGN_OR_RETURN(utilities[0],
                        ScoreCoalition(running, 0, linear, linear_utility));
  stats_.utility_evaluations += 1;
  uint64_t prev_gray = 0;
  for (uint64_t k = 1; k < full; ++k) {
    const uint64_t gray = k ^ (k >> 1);
    const uint64_t toggled = gray ^ prev_gray;  // Exactly one bit.
    const size_t j = static_cast<size_t>(std::countr_zero(toggled));
    if (gray & toggled) {
      BCFL_RETURN_IF_ERROR(running.AddInPlace(basis[j]));
      ++stats_.matrix_additions;
    } else {
      BCFL_RETURN_IF_ERROR(running.SubInPlace(basis[j]));
      ++stats_.matrix_subtractions;
    }
    BCFL_ASSIGN_OR_RETURN(
        utilities[gray],
        ScoreCoalition(running,
                       static_cast<size_t>(std::popcount(gray)), linear,
                       linear_utility));
    stats_.utility_evaluations += 1;
    prev_gray = gray;
  }
  return utilities;
}

Result<std::vector<double>> CoalitionEngine::EvaluateModelTable(
    const std::vector<ml::Matrix>& models) {
  static auto& eval_us = obs::MetricsRegistry::Global().GetHistogram(
      "shapley.model_table_eval_us");
  obs::ScopedSpan span(obs::Tracer::Global(), "model_table_eval", "shapley");
  obs::ScopedLatency latency(eval_us);
  stats_ = CoalitionEngineStats{};
  if (models.empty()) {
    return Status::InvalidArgument("empty model table");
  }
  std::vector<double> utilities(models.size());
  std::vector<Status> statuses(models.size(), Status::OK());
  auto score_one = [&](size_t i) {
    auto u = utility_->Evaluate(models[i]);
    if (u.ok()) {
      utilities[i] = *u;
    } else {
      statuses[i] = u.status();
    }
  };
  if (config_.pool != nullptr) {
    config_.pool->ParallelFor(models.size(), score_one, config_.grain);
  } else {
    for (size_t i = 0; i < models.size(); ++i) score_one(i);
  }
  stats_.utility_evaluations += models.size();
  for (const Status& s : statuses) {
    BCFL_RETURN_IF_ERROR(s);
  }
  static auto& coalitions = obs::MetricsRegistry::Global().GetCounter(
      "shapley.coalitions_scored");
  coalitions.Add(models.size());
  return utilities;
}

Result<CoalitionAccumulator> CoalitionAccumulator::Make(
    const std::vector<ml::Matrix>* player_models, UtilityFunction* utility) {
  if (player_models == nullptr || player_models->empty()) {
    return Status::InvalidArgument("no player models");
  }
  if (player_models->size() > 63) {
    return Status::InvalidArgument("player count must be <= 63");
  }
  BCFL_RETURN_IF_ERROR(CheckPlayerModels(*player_models));

  CoalitionAccumulator acc;
  acc.players_ = player_models;
  acc.utility_ = utility;
  acc.linear_ = dynamic_cast<LinearScoreUtility*>(utility);
  if (acc.linear_ != nullptr) {
    acc.scores_.reserve(player_models->size());
    for (const ml::Matrix& model : *player_models) {
      BCFL_ASSIGN_OR_RETURN(ml::Matrix scores,
                            acc.linear_->PlayerScores(model));
      acc.scores_.push_back(std::move(scores));
    }
    acc.running_ =
        ml::Matrix(acc.scores_[0].rows(), acc.scores_[0].cols());
  } else {
    acc.running_ = ml::Matrix((*player_models)[0].rows(),
                              (*player_models)[0].cols());
  }
  return acc;
}

void CoalitionAccumulator::Reset() {
  running_.SetZero();
  mask_ = 0;
  count_ = 0;
}

Status CoalitionAccumulator::Include(size_t player) {
  if (player >= players_->size()) {
    return Status::OutOfRange("player index out of range");
  }
  const uint64_t bit = 1ULL << player;
  if (mask_ & bit) {
    return Status::InvalidArgument("player already in coalition");
  }
  BCFL_RETURN_IF_ERROR(running_.AddInPlace(
      linear_ != nullptr ? scores_[player] : (*players_)[player]));
  mask_ |= bit;
  ++count_;
  return Status::OK();
}

Result<double> CoalitionAccumulator::Evaluate() {
  if (linear_ != nullptr) {
    return linear_->EvaluateScoreSum(running_, count_);
  }
  if (count_ == 0) {
    return utility_->Evaluate(running_);
  }
  return utility_->Evaluate(
      running_.Scaled(1.0 / static_cast<double>(count_)));
}

}  // namespace bcfl::shapley
