#include "shapley/similarity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bcfl::shapley {

namespace {

Status CheckPair(const std::vector<double>& u, const std::vector<double>& v) {
  if (u.empty() || u.size() != v.size()) {
    return Status::InvalidArgument(
        "vectors must be non-empty and equally sized");
  }
  return Status::OK();
}

}  // namespace

Result<double> CosineSimilarity(const std::vector<double>& u,
                                const std::vector<double>& v) {
  BCFL_RETURN_IF_ERROR(CheckPair(u, v));
  double dot = 0.0, nu = 0.0, nv = 0.0;
  for (size_t i = 0; i < u.size(); ++i) {
    dot += u[i] * v[i];
    nu += u[i] * u[i];
    nv += v[i] * v[i];
  }
  if (nu == 0.0 || nv == 0.0) {
    return Status::FailedPrecondition("cosine undefined for zero vector");
  }
  return dot / (std::sqrt(nu) * std::sqrt(nv));
}

Result<double> L2Distance(const std::vector<double>& u,
                          const std::vector<double>& v) {
  BCFL_RETURN_IF_ERROR(CheckPair(u, v));
  double sum = 0.0;
  for (size_t i = 0; i < u.size(); ++i) {
    double d = u[i] - v[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tied block [i, j]: average rank (1-based).
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

Result<double> SpearmanCorrelation(const std::vector<double>& u,
                                   const std::vector<double>& v) {
  BCFL_RETURN_IF_ERROR(CheckPair(u, v));
  if (u.size() < 2) {
    return Status::InvalidArgument("need >= 2 points for correlation");
  }
  std::vector<double> ru = AverageRanks(u);
  std::vector<double> rv = AverageRanks(v);
  double mean = (static_cast<double>(u.size()) + 1.0) / 2.0;
  double num = 0.0, du = 0.0, dv = 0.0;
  for (size_t i = 0; i < u.size(); ++i) {
    double a = ru[i] - mean;
    double b = rv[i] - mean;
    num += a * b;
    du += a * a;
    dv += b * b;
  }
  if (du == 0.0 || dv == 0.0) {
    return Status::FailedPrecondition(
        "Spearman undefined when one ranking is constant");
  }
  return num / std::sqrt(du * dv);
}

}  // namespace bcfl::shapley
