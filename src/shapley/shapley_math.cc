#include "shapley/shapley_math.h"

#include <bit>
#include <cmath>

namespace bcfl::shapley {

double Binomial(size_t n, size_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (size_t i = 0; i < k; ++i) {
    result = result * static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

Result<std::vector<double>> ExactShapleyFromTable(
    size_t n, const std::vector<double>& utilities) {
  if (n == 0 || n > 20) {
    return Status::InvalidArgument("n must be in [1, 20] for exact SV");
  }
  const uint64_t full = 1ULL << n;
  if (utilities.size() != full) {
    return Status::InvalidArgument("utility table must have 2^n entries");
  }

  // Precompute the per-coalition-size weights 1/(n * C(n-1, s)).
  std::vector<double> weight(n);
  for (size_t s = 0; s < n; ++s) {
    weight[s] = 1.0 / (static_cast<double>(n) * Binomial(n - 1, s));
  }

  std::vector<double> values(n, 0.0);
  for (uint64_t mask = 0; mask < full; ++mask) {
    size_t size = static_cast<size_t>(std::popcount(mask));
    for (size_t i = 0; i < n; ++i) {
      uint64_t bit = 1ULL << i;
      if (mask & bit) continue;  // S must exclude i.
      double marginal = utilities[mask | bit] - utilities[mask];
      values[i] += weight[size] * marginal;
    }
  }
  return values;
}

Result<std::vector<double>> ExactShapley(
    size_t n, const std::function<Result<double>(uint64_t mask)>& utility) {
  if (n == 0 || n > 20) {
    return Status::InvalidArgument("n must be in [1, 20] for exact SV");
  }
  const uint64_t full = 1ULL << n;
  std::vector<double> table(full);
  for (uint64_t mask = 0; mask < full; ++mask) {
    BCFL_ASSIGN_OR_RETURN(table[mask], utility(mask));
  }
  return ExactShapleyFromTable(n, table);
}

Result<bool> CheckEfficiency(const std::vector<double>& shapley_values,
                             double grand_utility, double empty_utility,
                             double tolerance) {
  if (shapley_values.empty()) {
    return Status::InvalidArgument("no Shapley values");
  }
  double sum = 0.0;
  for (double v : shapley_values) sum += v;
  return std::abs(sum - (grand_utility - empty_utility)) <= tolerance;
}

}  // namespace bcfl::shapley
