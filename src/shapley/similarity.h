#pragma once

#include <vector>

#include "common/result.h"

namespace bcfl::shapley {

/// Cosine similarity between two equal-length vectors — the paper's
/// Fig. 2 metric for comparing GroupSV against the native SV.
/// Fails on empty or zero-norm inputs.
Result<double> CosineSimilarity(const std::vector<double>& u,
                                const std::vector<double>& v);

/// Euclidean (L2) distance.
Result<double> L2Distance(const std::vector<double>& u,
                          const std::vector<double>& v);

/// Spearman rank correlation (average ranks for ties) — measures whether
/// two contribution vectors order the owners the same way, which is what
/// a reward allocation actually consumes.
Result<double> SpearmanCorrelation(const std::vector<double>& u,
                                   const std::vector<double>& v);

/// Ranks with ties averaged (helper, exposed for tests).
std::vector<double> AverageRanks(const std::vector<double>& values);

}  // namespace bcfl::shapley
