#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/matrix.h"
#include "shapley/utility.h"

namespace bcfl::shapley {

/// Configuration of the Monte-Carlo permutation-sampling SV estimator.
struct MonteCarloConfig {
  size_t num_permutations = 200;
  uint64_t seed = 13;
  /// Truncated-MC (Ghorbani & Zou): stop scanning a permutation once the
  /// running coalition utility is within `truncation_tolerance` of the
  /// grand-coalition utility (0 disables truncation).
  double truncation_tolerance = 0.0;
};

/// Result of a Monte-Carlo SV estimation.
struct MonteCarloResult {
  std::vector<double> values;
  size_t utility_evaluations = 0;  ///< Work actually performed.
  size_t truncated_scans = 0;      ///< Permutation suffixes skipped.
};

/// Monte-Carlo (and truncated Monte-Carlo) Shapley estimation.
///
/// Samples random permutations of the n players and averages marginal
/// contributions u(prefix + i) - u(prefix). The estimator is unbiased;
/// its variance shrinks as 1/num_permutations. Included as the standard
/// scalable baseline from the data-valuation literature ([2], [3]) that
/// the paper's related-work section builds on.
///
/// `utility(mask)` must be deterministic; mask bit i = player i present.
Result<MonteCarloResult> MonteCarloShapley(
    size_t n, const std::function<Result<double>(uint64_t)>& utility,
    MonteCarloConfig config = {});

/// Monte-Carlo SV over mean-aggregated coalition models, built on the
/// coalition engine's incremental accumulator: each permutation step
/// extends the running coalition with one matrix add (in score space
/// when `utility` supports the linear fast path) instead of rebuilding
/// the mean from scratch — the engine-backed counterpart of passing a
/// "gather members + MeanOfMatrices + Evaluate" closure above.
Result<MonteCarloResult> MonteCarloShapleyFromModels(
    const std::vector<ml::Matrix>& player_models, UtilityFunction* utility,
    MonteCarloConfig config = {});

}  // namespace bcfl::shapley
