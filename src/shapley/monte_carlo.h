#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace bcfl::shapley {

/// Configuration of the Monte-Carlo permutation-sampling SV estimator.
struct MonteCarloConfig {
  size_t num_permutations = 200;
  uint64_t seed = 13;
  /// Truncated-MC (Ghorbani & Zou): stop scanning a permutation once the
  /// running coalition utility is within `truncation_tolerance` of the
  /// grand-coalition utility (0 disables truncation).
  double truncation_tolerance = 0.0;
};

/// Result of a Monte-Carlo SV estimation.
struct MonteCarloResult {
  std::vector<double> values;
  size_t utility_evaluations = 0;  ///< Work actually performed.
  size_t truncated_scans = 0;      ///< Permutation suffixes skipped.
};

/// Monte-Carlo (and truncated Monte-Carlo) Shapley estimation.
///
/// Samples random permutations of the n players and averages marginal
/// contributions u(prefix + i) - u(prefix). The estimator is unbiased;
/// its variance shrinks as 1/num_permutations. Included as the standard
/// scalable baseline from the data-valuation literature ([2], [3]) that
/// the paper's related-work section builds on.
///
/// `utility(mask)` must be deterministic; mask bit i = player i present.
Result<MonteCarloResult> MonteCarloShapley(
    size_t n, const std::function<Result<double>(uint64_t)>& utility,
    MonteCarloConfig config = {});

}  // namespace bcfl::shapley
