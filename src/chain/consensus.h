#pragma once

#include <memory>
#include <vector>

#include "chain/leader.h"
#include "chain/miner.h"
#include "common/result.h"
#include "net/network.h"

namespace bcfl::chain {

/// Parameters of the consensus engine.
struct ConsensusConfig {
  uint64_t leader_seed = 2021;
  size_t max_txs_per_block = 0;   ///< 0 = no cap.
  uint32_t max_retries = 8;       ///< Leader rotations before giving up.
  net::NetworkConfig network;
};

/// Outcome of one consensus round.
struct CommitResult {
  bool committed = false;
  uint32_t leader = 0;          ///< The leader whose proposal decided it.
  uint32_t retries_used = 0;    ///< Rejected proposals before success.
  size_t accept_votes = 0;
  size_t reject_votes = 0;
  uint64_t height = 0;
  crypto::Digest block_hash{};
  size_t num_txs = 0;
};

/// Honest-majority propose/verify/vote consensus over the simulated P2P
/// network — the blockchain protocol of Sect. III.
///
/// One `RunRound` call:
///  1. The schedule picks a leader for the next height; the leader
///     executes its mempool on a scratch state and broadcasts the block.
///  2. Every other miner re-executes the proposal against its own state
///     replica and unicasts an accept/reject vote back.
///  3. With strict-majority accepts (> n/2, the proposer counting as an
///     implicit accept), every miner commits; otherwise the proposal is
///     discarded and the next leader in the fallback rotation proposes
///     ("they wait for another leader to propose").
///
/// All proposal/vote traffic crosses `SimulatedNetwork`, so the same
/// engine measures throughput and latency for the Ablation-B benchmark.
class ConsensusEngine {
 public:
  ConsensusEngine(size_t num_miners, std::shared_ptr<const ContractHost> host,
                  ConsensusConfig config = {});

  size_t num_miners() const { return miners_.size(); }
  Miner& miner(size_t i) { return *miners_[i]; }
  const Miner& miner(size_t i) const { return *miners_[i]; }
  const net::SimulatedNetwork& network() const { return network_; }
  net::SimulatedNetwork& mutable_network() { return network_; }

  /// Gossips `tx` to every miner's mempool.
  Status SubmitTransaction(const Transaction& tx);

  /// Runs consensus for the next height. Retries with fallback leaders
  /// until a proposal commits or `max_retries` is exhausted.
  Result<CommitResult> RunRound();

  /// Runs rounds until every mempool is drained (or no progress is
  /// possible). Returns one result per committed block.
  Result<std::vector<CommitResult>> RunUntilDrained(size_t max_rounds = 1000);

  /// The canonical committed state (all honest replicas agree; miner 0's
  /// replica is returned).
  const ContractState& CanonicalState() const { return miners_[0]->state(); }
  const Blockchain& CanonicalChain() const { return miners_[0]->chain(); }

 private:
  /// One proposal attempt at the given retry depth.
  Result<CommitResult> TryPropose(uint64_t height, uint32_t retries);

  std::shared_ptr<const ContractHost> host_;
  ConsensusConfig config_;
  net::SimulatedNetwork network_;
  std::vector<std::unique_ptr<Miner>> miners_;
  std::unique_ptr<LeaderSchedule> schedule_;

  // Per-attempt vote collection (filled by network handlers).
  struct VoteBox {
    size_t accepts = 0;
    size_t rejects = 0;
  };
  VoteBox votes_;
  Block pending_proposal_;
  bool proposal_valid_ = false;
};

}  // namespace bcfl::chain
