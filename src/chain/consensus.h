#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chain/leader.h"
#include "chain/miner.h"
#include "common/result.h"
#include "fault/injector.h"
#include "net/network.h"

namespace bcfl::chain {

/// Parameters of the consensus engine.
struct ConsensusConfig {
  uint64_t leader_seed = 2021;
  size_t max_txs_per_block = 0;   ///< 0 = no cap.
  uint32_t max_retries = 8;       ///< Leader rotations before giving up.
  /// Simulated time burned waiting for a crashed or unreachable leader
  /// before rotating to the next one in the schedule.
  uint64_t view_change_timeout_us = 50'000;
  net::NetworkConfig network;
};

/// Outcome of one consensus round.
struct CommitResult {
  bool committed = false;
  uint32_t leader = 0;          ///< The leader whose proposal decided it.
  uint32_t retries_used = 0;    ///< Rejected proposals before success.
  size_t accept_votes = 0;
  size_t reject_votes = 0;
  uint64_t height = 0;
  crypto::Digest block_hash{};
  size_t num_txs = 0;
};

/// Honest-majority propose/verify/vote consensus over the simulated P2P
/// network — the blockchain protocol of Sect. III.
///
/// One `RunRound` call:
///  1. The schedule picks a leader for the next height; the leader
///     executes its mempool on a scratch state and broadcasts the block.
///  2. Every other miner re-executes the proposal against its own state
///     replica and unicasts an accept/reject vote back.
///  3. With strict-majority accepts (> n/2, the proposer counting as an
///     implicit accept), every miner commits; otherwise the proposal is
///     discarded and the next leader in the fallback rotation proposes
///     ("they wait for another leader to propose").
///
/// All proposal/vote traffic crosses `SimulatedNetwork`, so the same
/// engine measures throughput and latency for the Ablation-B benchmark.
///
/// With a fault injector attached (`set_fault_injector`), the engine
/// tolerates crashed and partitioned miners up to a minority of the
/// roster: an offline, partitioned-away or stale-chained leader times out
/// (simulated clock) and the view changes to the next leader in the
/// rotation; commits only apply to reachable replicas; miners that come
/// back online are re-admitted by replaying the canonical chain through
/// their own `CommitBlock` before the next proposal. The strict-majority
/// vote threshold always counts the FULL roster, so a minority partition
/// can never commit a conflicting block.
class ConsensusEngine {
 public:
  ConsensusEngine(size_t num_miners, std::shared_ptr<const ContractHost> host,
                  ConsensusConfig config = {});

  size_t num_miners() const { return miners_.size(); }
  Miner& miner(size_t i) { return *miners_[i]; }
  const Miner& miner(size_t i) const { return *miners_[i]; }
  const net::SimulatedNetwork& network() const { return network_; }
  net::SimulatedNetwork& mutable_network() { return network_; }

  /// Gossips `tx` to every miner's mempool.
  Status SubmitTransaction(const Transaction& tx);

  /// Runs consensus for the next height. Retries with fallback leaders
  /// until a proposal commits or `max_retries` is exhausted.
  Result<CommitResult> RunRound();

  /// Runs rounds until every mempool is drained (or no progress is
  /// possible). Returns one result per committed block.
  Result<std::vector<CommitResult>> RunUntilDrained(size_t max_rounds = 1000);

  /// The canonical committed state: the longest chain among online,
  /// majority-side replicas (miner 0 when no faults are injected).
  const ContractState& CanonicalState() const {
    return miners_[CanonicalMinerIndex()]->state();
  }
  const Blockchain& CanonicalChain() const {
    return miners_[CanonicalMinerIndex()]->chain();
  }

  /// Attaches the chaos injector (not owned; may be nullptr to detach)
  /// and installs its message filter on the miners' network.
  void set_fault_injector(fault::FaultInjector* injector);
  fault::FaultInjector* fault_injector() const { return injector_; }

  /// Sink invoked with every block the engine commits, after all
  /// reachable replicas applied it. This is the durability hook: the
  /// append-only block log fsyncs each committed block here, so a sink
  /// error fails the commit closed instead of acknowledging a block that
  /// never reached disk.
  using CommitSink = std::function<Status(const Block&)>;
  void set_commit_sink(CommitSink sink) { commit_sink_ = std::move(sink); }

  /// Restart path: applies one settled block from the durable log.
  /// `miner_heights` (by miner id) are the per-replica committed heights
  /// captured in the checkpoint — a replica that was lagging then (crashed
  /// or partitioned while the block committed) skips it here and catches
  /// up in-session exactly as it would have without the restart. Bypasses
  /// the vote path: the block carried a majority when first committed, and
  /// every replica still re-executes it against its own state root. The
  /// commit sink is NOT invoked (the block is already on disk).
  Status ReplayCommittedBlock(const Block& block,
                              const std::map<uint32_t, uint64_t>& miner_heights);

  /// Committed chain height of every replica, for session checkpoints.
  std::map<uint32_t, uint64_t> MinerHeights() const;

  /// True when `id` is online and reachable from the canonical replica
  /// this round. Always true without an injector.
  bool MinerParticipating(uint32_t id) const;

 private:
  /// One proposal attempt at the given retry depth.
  Result<CommitResult> TryPropose(uint64_t height, uint32_t retries);

  /// Index of the replica whose chain is canonical: greatest committed
  /// height among online majority-side miners, lowest id breaking ties.
  size_t CanonicalMinerIndex() const;

  /// Replays canonical blocks into every participating replica that fell
  /// behind (crashed or partitioned while blocks committed), re-admitting
  /// it to consensus. Returns the number of blocks replayed.
  size_t CatchUpLaggards();

  std::shared_ptr<const ContractHost> host_;
  ConsensusConfig config_;
  net::SimulatedNetwork network_;
  std::vector<std::unique_ptr<Miner>> miners_;
  std::unique_ptr<LeaderSchedule> schedule_;
  fault::FaultInjector* injector_ = nullptr;
  CommitSink commit_sink_;

  // Per-attempt vote collection (filled by network handlers). Votes are
  // keyed by the voter id carried in the payload so each roster member
  // counts at most once — a duplicated vote message (duplicate-miner
  // fault) cannot manufacture a strict majority.
  struct VoteBox {
    std::set<uint32_t> accept_voters;
    std::set<uint32_t> reject_voters;
  };
  VoteBox votes_;
  Block pending_proposal_;
  bool proposal_valid_ = false;
};

}  // namespace bcfl::chain
