#include "chain/mempool.h"

#include "obs/metrics.h"

namespace bcfl::chain {

namespace {

std::pair<std::string, uint64_t> SenderNonceOf(const Transaction& tx) {
  Bytes sender = tx.sender.ToBytes();
  return {std::string(sender.begin(), sender.end()), tx.nonce};
}

}  // namespace

std::string Mempool::KeyOf(const Transaction& tx) {
  crypto::Digest digest = tx.Hash();
  return std::string(digest.begin(), digest.end());
}

Status Mempool::Add(Transaction tx) {
  static auto& admitted =
      obs::MetricsRegistry::Global().GetCounter("chain.mempool.admitted");
  static auto& duplicates = obs::MetricsRegistry::Global().GetCounter(
      "chain.mempool.rejected_duplicate");
  static auto& nonce_replays = obs::MetricsRegistry::Global().GetCounter(
      "chain.mempool.rejected_nonce");
  crypto::Digest digest = tx.Hash();
  std::string key(digest.begin(), digest.end());
  if (seen_.count(key) > 0) {
    duplicates.Add();
    return Status::AlreadyExists("transaction already in mempool");
  }
  // A different signature over the same (sender, nonce) is a replay
  // with a fresh Schnorr nonce: same hash-set miss, same block slot.
  // Reject it at admission rather than letting it ride to the contract.
  if (!seen_sender_nonce_.insert(SenderNonceOf(tx)).second) {
    nonce_replays.Add();
    return Status::AlreadyExists("sender nonce already admitted");
  }
  seen_.insert(std::move(key));
  admitted.Add();
  pending_tree_.Append(digest);
  pending_digests_.push_back(digest);
  pending_.push_back(std::move(tx));
  return Status::OK();
}

void Mempool::NoteCommitted(const Transaction& tx) {
  seen_.insert(KeyOf(tx));
  seen_sender_nonce_.insert(SenderNonceOf(tx));
}

std::vector<Transaction> Mempool::Take(size_t max_count) {
  size_t count = max_count == 0 ? pending_.size()
                                : std::min(max_count, pending_.size());
  std::vector<Transaction> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
    pending_digests_.pop_front();
  }
  if (count > 0) RebuildPendingTree();
  return out;
}

std::vector<Transaction> Mempool::Peek(size_t max_count) const {
  size_t count = max_count == 0 ? pending_.size()
                                : std::min(max_count, pending_.size());
  return std::vector<Transaction>(pending_.begin(),
                                  pending_.begin() + static_cast<long>(count));
}

void Mempool::RemoveCommitted(const std::vector<Transaction>& txs) {
  std::set<crypto::Digest> committed;
  std::vector<crypto::Digest> hashes = HashTransactions(txs);
  for (const auto& digest : hashes) committed.insert(digest);
  std::deque<Transaction> kept;
  std::deque<crypto::Digest> kept_digests;
  bool changed = false;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (committed.count(pending_digests_[i]) == 0) {
      kept.push_back(std::move(pending_[i]));
      kept_digests.push_back(pending_digests_[i]);
    } else {
      changed = true;
    }
  }
  pending_ = std::move(kept);
  pending_digests_ = std::move(kept_digests);
  if (changed) RebuildPendingTree();
}

void Mempool::RebuildPendingTree() {
  pending_tree_ = MerkleTree(std::vector<crypto::Digest>(
      pending_digests_.begin(), pending_digests_.end()));
}

}  // namespace bcfl::chain
