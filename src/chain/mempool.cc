#include "chain/mempool.h"

#include "obs/metrics.h"

namespace bcfl::chain {

std::string Mempool::KeyOf(const Transaction& tx) {
  crypto::Digest digest = tx.Hash();
  return std::string(digest.begin(), digest.end());
}

Status Mempool::Add(Transaction tx) {
  static auto& admitted =
      obs::MetricsRegistry::Global().GetCounter("chain.mempool.admitted");
  static auto& duplicates = obs::MetricsRegistry::Global().GetCounter(
      "chain.mempool.rejected_duplicate");
  std::string key = KeyOf(tx);
  if (!seen_.insert(key).second) {
    duplicates.Add();
    return Status::AlreadyExists("transaction already in mempool");
  }
  admitted.Add();
  pending_.push_back(std::move(tx));
  return Status::OK();
}

std::vector<Transaction> Mempool::Take(size_t max_count) {
  size_t count = max_count == 0 ? pending_.size()
                                : std::min(max_count, pending_.size());
  std::vector<Transaction> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return out;
}

std::vector<Transaction> Mempool::Peek(size_t max_count) const {
  size_t count = max_count == 0 ? pending_.size()
                                : std::min(max_count, pending_.size());
  return std::vector<Transaction>(pending_.begin(),
                                  pending_.begin() + static_cast<long>(count));
}

void Mempool::RemoveCommitted(const std::vector<Transaction>& txs) {
  std::set<std::string> committed;
  for (const auto& tx : txs) committed.insert(KeyOf(tx));
  std::deque<Transaction> kept;
  for (auto& tx : pending_) {
    if (committed.count(KeyOf(tx)) == 0) kept.push_back(std::move(tx));
  }
  pending_ = std::move(kept);
}

}  // namespace bcfl::chain
