#pragma once

#include <functional>
#include <memory>

#include "chain/blockchain.h"
#include "chain/contract_host.h"
#include "chain/mempool.h"
#include "common/result.h"

namespace bcfl::chain {

/// Hook applied by a *Byzantine* leader between executing a proposal and
/// publishing it: it may mutate the post-execution state (e.g. inflate
/// its own contribution record) and/or the block. Honest miners have no
/// behaviour installed.
struct MinerBehavior {
  /// Tampers with the leader's post-execution state before the state
  /// root is computed. Null = honest.
  std::function<void(ContractState*)> tamper_state;
  /// When true the miner votes reject regardless of validity (griefing).
  bool always_reject = false;
};

/// One blockchain miner: a chain replica, a contract-state replica and a
/// mempool, with the two consensus roles from Sect. III — proposing as
/// leader and re-executing/verifying as validator.
class Miner {
 public:
  Miner(uint32_t id, std::shared_ptr<const ContractHost> host);

  uint32_t id() const { return id_; }
  const Blockchain& chain() const { return chain_; }
  const ContractState& state() const { return state_; }
  Mempool& mempool() { return mempool_; }

  void set_behavior(MinerBehavior behavior) { behavior_ = std::move(behavior); }
  const MinerBehavior& behavior() const { return behavior_; }

  /// Leader role: executes pending transactions on a scratch state and
  /// assembles the next block (committing nothing). A Byzantine
  /// `tamper_state` hook corrupts the proposal here.
  Result<Block> ProposeBlock(uint64_t timestamp_us, size_t max_txs = 0);

  /// Validator role: structural checks plus full re-execution; true iff
  /// the proposer's state root matches this miner's own re-execution
  /// (the verification protocol of Sect. III).
  Result<bool> ValidateProposal(const Block& block);

  /// Applies a block agreed by consensus: re-executes against the live
  /// state, appends to the chain and evicts its transactions from the
  /// mempool. Fails (leaving the replica untouched) if the block does
  /// not re-execute to its claimed state root.
  Status CommitBlock(const Block& block);

 private:
  uint32_t id_;
  std::shared_ptr<const ContractHost> host_;
  Blockchain chain_;
  ContractState state_;
  Mempool mempool_;
  MinerBehavior behavior_;
};

}  // namespace bcfl::chain
