#include "chain/state.h"

namespace bcfl::chain {

void ContractState::Put(const std::string& key, Bytes value) {
  entries_[key] = std::move(value);
}

Result<Bytes> ContractState::Get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no such state key: " + key);
  }
  return it->second;
}

bool ContractState::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

void ContractState::Delete(const std::string& key) { entries_.erase(key); }

std::vector<std::string> ContractState::KeysWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

crypto::Digest ContractState::StateRoot() const {
  crypto::Sha256 hasher;
  for (const auto& [key, value] : entries_) {
    ByteWriter writer;
    writer.WriteString(key);
    writer.WriteBytes(value);
    hasher.Update(writer.buffer());
  }
  return hasher.Finish();
}

}  // namespace bcfl::chain
