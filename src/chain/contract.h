#pragma once

#include <string>

#include "chain/state.h"
#include "chain/transaction.h"
#include "common/status.h"

namespace bcfl::chain {

/// Smart-contract interface.
///
/// A contract is pure protocol logic: `Execute` reads the transaction and
/// mutates only `state`. It MUST be deterministic — no wall clock, no
/// unseeded randomness, no out-of-state I/O — because every miner
/// re-executes proposed transactions and consensus accepts a block only
/// when the resulting state roots agree (Sect. III of the paper).
/// Contract objects themselves are immutable after construction and can
/// be shared across miners; per-chain data lives exclusively in
/// `ContractState`.
class SmartContract {
 public:
  virtual ~SmartContract() = default;

  /// Routing name; transactions with `tx.contract == name()` dispatch
  /// here.
  virtual std::string name() const = 0;

  /// Applies `tx` to `state`. Errors abort the transaction (the host
  /// discards any partial writes by executing against a scratch copy).
  virtual Status Execute(const Transaction& tx, ContractState* state) = 0;
};

}  // namespace bcfl::chain
