#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "chain/block.h"
#include "common/result.h"

namespace bcfl::chain {

/// Append-only durable block log — the steady-state persistence path of
/// the chain (the compat whole-file snapshot lives in storage.h).
///
/// File layout:
///   magic "BCLG" (4 bytes) | format version (u32)
///   then one record per committed block, heights 1, 2, 3, ... :
///     payload length (u32) | CRC32C(payload) (u32) | payload
///   where payload is `Block::Serialize()`. Genesis (height 0) is
///   deterministic and never logged.
///
/// `Append` writes one record and fsyncs before returning, so a commit
/// acknowledged to the caller survives `kill -9` and power loss — and it
/// is O(1 block), never a rewrite of the chain. `Open` scans the file and
/// *truncates to the last valid record*: a torn tail (partial record from
/// a crash mid-write) is recovered by dropping the tail, while corruption
/// before the tail (bit flips in settled records, bad header magic) fails
/// closed with Corruption — the log never half-loads a record.
class BlockLog {
 public:
  /// What the open-time scan found.
  struct OpenStats {
    uint64_t records_recovered = 0;  ///< Valid records kept.
    uint64_t bytes_truncated = 0;    ///< Torn-tail bytes dropped.
    bool tail_truncated = false;
  };

  /// Opens (creating if absent) the log at `path`, scanning and
  /// validating every record. After Open, `TakeRecoveredBlocks` yields
  /// the settled blocks once and `Append` continues from the tail.
  static Result<BlockLog> Open(const std::string& path);

  BlockLog() = default;
  ~BlockLog();
  BlockLog(BlockLog&& other) noexcept;
  BlockLog& operator=(BlockLog&& other) noexcept;
  BlockLog(const BlockLog&) = delete;
  BlockLog& operator=(const BlockLog&) = delete;

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  const OpenStats& open_stats() const { return open_stats_; }

  /// The blocks recovered by Open (heights 1..tip), moved out — the log
  /// does not hold an O(chain) copy past this call.
  std::vector<Block> TakeRecoveredBlocks();

  /// Height of the last logged record (0 = only genesis exists).
  uint64_t tip_height() const { return tip_height_; }

  /// Appends one committed block (must be height tip_height()+1) and
  /// fsyncs. O(1 block).
  Status Append(const Block& block);

  /// Drops every record above `height` (used on resume: blocks past the
  /// checkpoint are regenerated bit-identically by the replayed run).
  Status TruncateToHeight(uint64_t height);

  void Close();

 private:
  Status ScanExisting();
  Status WriteHeader();

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t tip_height_ = 0;
  /// End-of-file byte offset after each valid record, indexed by
  /// height-1; record_ends_[i] is where a truncate-to-height(i+1) cuts.
  std::vector<uint64_t> record_ends_;
  std::vector<Block> recovered_;
  OpenStats open_stats_;
};

}  // namespace bcfl::chain
