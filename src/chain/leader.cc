#include "chain/leader.h"

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace bcfl::chain {

LeaderSchedule::LeaderSchedule(std::vector<uint32_t> miner_ids, uint64_t seed)
    : miner_ids_(std::move(miner_ids)), seed_(seed) {}

Result<uint32_t> LeaderSchedule::LeaderFor(uint64_t height) const {
  return LeaderFor(height, 0);
}

Result<uint32_t> LeaderSchedule::LeaderFor(uint64_t height,
                                           uint32_t retries) const {
  if (miner_ids_.empty()) {
    return Status::FailedPrecondition("no miners registered");
  }
  if (height == 0) {
    return Status::InvalidArgument("genesis has no leader");
  }
  ByteWriter writer;
  writer.WriteString("bcfl-leader-schedule");
  writer.WriteU64(seed_);
  writer.WriteU64(height);
  writer.WriteU32(retries);
  crypto::Digest digest = crypto::Sha256::Hash(writer.buffer());
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(digest[static_cast<size_t>(i)]) << (8 * i);
  }
  return miner_ids_[value % miner_ids_.size()];
}

}  // namespace bcfl::chain
