#pragma once

#include <string>

#include "chain/blockchain.h"
#include "common/result.h"

namespace bcfl::chain {

/// On-disk persistence for a chain replica.
///
/// File layout: magic "BCFL" (4 bytes), format version (u32), block
/// count (u32), then each block as a length-prefixed serialized blob.
/// `LoadChain` re-validates every link (heights, parent hashes, Merkle
/// roots) while reading, so a corrupted or truncated file is rejected —
/// never half-loaded.
///
/// Writes go to `<path>.tmp`, which is fsynced (file and containing
/// directory) before the rename, so a crash or power loss mid-save
/// leaves the previous file intact — never an empty or torn one.
///
/// This is the *compat snapshot* path: it serializes the whole chain
/// (O(chain) memory and I/O) on every call. Steady-state persistence
/// runs through the append-only `BlockLog` (block_log.h), which writes
/// O(1 block) per commit; SaveChain remains for one-shot exports and
/// older tooling.
Status SaveChain(const Blockchain& chain, const std::string& path);

Result<Blockchain> LoadChain(const std::string& path);

}  // namespace bcfl::chain
