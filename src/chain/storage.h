#pragma once

#include <string>

#include "chain/blockchain.h"
#include "common/result.h"

namespace bcfl::chain {

/// On-disk persistence for a chain replica.
///
/// File layout: magic "BCFL" (4 bytes), format version (u32), block
/// count (u32), then each block as a length-prefixed serialized blob.
/// `LoadChain` re-validates every link (heights, parent hashes, Merkle
/// roots) while reading, so a corrupted or truncated file is rejected —
/// never half-loaded.
///
/// Writes go to `<path>.tmp` and are renamed into place, so a crash
/// mid-save leaves the previous file intact.
Status SaveChain(const Blockchain& chain, const std::string& path);

Result<Blockchain> LoadChain(const std::string& path);

}  // namespace bcfl::chain
