#pragma once

#include <vector>

#include "common/result.h"
#include "crypto/sha256.h"

namespace bcfl::chain {

/// One step of a Merkle inclusion proof.
struct MerkleProofStep {
  crypto::Digest sibling;
  bool sibling_is_right = false;  ///< Sibling concatenates on the right.
};

/// Binary Merkle tree over transaction hashes.
///
/// Block headers commit to their transaction list through the Merkle
/// root; light verification of "this masked update is in block h" is an
/// O(log n) proof. Odd levels duplicate the last node (Bitcoin-style).
/// Leaf and interior hashes are domain-separated to prevent second-
/// preimage splicing between levels.
class MerkleTree {
 public:
  /// Builds the tree; an empty leaf set yields the all-zero root.
  ///
  /// Level hashing goes through the batched SHA-256 path and, when a
  /// chain pool is installed (SetChainPool) and the level is large
  /// enough, is chunked across it. Chunk boundaries never influence any
  /// digest, so the tree is bit-identical for every pool size.
  explicit MerkleTree(const std::vector<crypto::Digest>& leaves);

  /// Appends one leaf, recomputing only the right edge: O(log n) hashes
  /// instead of a full rebuild. The resulting tree (levels, proofs and
  /// root) is bit-identical to constructing from the extended leaf
  /// vector — the mempool grows its pending tree this way on admission
  /// and promotes the root straight into a block header.
  void Append(const crypto::Digest& leaf);

  const crypto::Digest& root() const { return root_; }
  size_t num_leaves() const { return num_leaves_; }

  /// Inclusion proof for the leaf at `index`.
  Result<std::vector<MerkleProofStep>> Proof(size_t index) const;

  /// Verifies an inclusion proof against a root.
  static bool VerifyProof(const crypto::Digest& leaf,
                          const std::vector<MerkleProofStep>& proof,
                          const crypto::Digest& root);

  /// Hash of a leaf (domain-separated).
  static crypto::Digest LeafHash(const crypto::Digest& data);
  /// Hash of an interior node from its two children.
  static crypto::Digest NodeHash(const crypto::Digest& left,
                                 const crypto::Digest& right);

 private:
  /// levels_[0] = hashed leaves, levels_.back() = {root}.
  std::vector<std::vector<crypto::Digest>> levels_;
  crypto::Digest root_;
  size_t num_leaves_;
};

}  // namespace bcfl::chain
