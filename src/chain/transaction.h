#pragma once

#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"

namespace bcfl::chain {

/// A signed smart-contract invocation.
///
/// `contract` and `method` route the call inside the ContractHost;
/// `payload` is the method's serialized argument blob (e.g. a masked
/// model update). The signature covers everything but itself, so miners
/// can verify that a submission really originates from the claimed data
/// owner before executing it.
struct Transaction {
  std::string contract;
  std::string method;
  Bytes payload;
  crypto::UInt256 sender;  ///< Signer's public key.
  uint64_t nonce = 0;      ///< Sender-chosen replay protection.

  crypto::SchnorrSignature signature;

  /// Canonical bytes covered by the signature (everything above).
  Bytes SigningBytes() const;

  /// SHA-256 over the signing bytes plus the signature: the tx id.
  crypto::Digest Hash() const;

  /// Signs in place with `key` (whose public part becomes `sender`).
  void Sign(const crypto::Schnorr& scheme, const crypto::SchnorrKeyPair& key,
            Xoshiro256* rng);

  /// Verifies the signature against `sender`.
  bool VerifySignature(const crypto::Schnorr& scheme) const;

  /// Full wire encoding (including the signature).
  Bytes Serialize() const;
  static Result<Transaction> Deserialize(const Bytes& bytes);

  bool operator==(const Transaction& other) const;
};

/// Hashes of a whole transaction list. Equal-length preimages (the
/// common case: one workload's submissions share a payload shape) are
/// grouped through the multi-lane Sha256Batch; per-element results are
/// bit-identical to calling tx.Hash() in a loop.
std::vector<crypto::Digest> HashTransactions(
    const std::vector<Transaction>& txs);

}  // namespace bcfl::chain
