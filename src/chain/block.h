#pragma once

#include <vector>

#include "chain/merkle.h"
#include "chain/transaction.h"
#include "common/result.h"
#include "crypto/sha256.h"

namespace bcfl::chain {

/// Header of a block; everything consensus votes on.
struct BlockHeader {
  uint64_t height = 0;
  crypto::Digest prev_hash{};
  crypto::Digest merkle_root{};
  crypto::Digest state_root{};  ///< Contract state after executing the body.
  uint64_t timestamp_us = 0;    ///< Simulated time of proposal.
  uint32_t proposer = 0;        ///< Miner id of the round leader.

  Bytes Serialize() const;
  static Result<BlockHeader> Deserialize(ByteReader* reader);

  /// SHA-256 of the serialized header — the block id.
  crypto::Digest Hash() const;
};

/// A block: header plus the ordered transaction body.
struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  /// Merkle root over the body's transaction hashes.
  crypto::Digest ComputeMerkleRoot() const;

  /// Checks header.merkle_root against the body.
  bool MerkleRootMatchesBody() const;

  Bytes Serialize() const;
  static Result<Block> Deserialize(const Bytes& bytes);
};

/// The deterministic genesis block (height 0, no transactions,
/// `state_root` of the empty state).
Block MakeGenesisBlock();

}  // namespace bcfl::chain
