#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace bcfl::chain {

/// Deterministic leader selection ("the leader selection protocol
/// periodically selects a leader to propose a set of transactions",
/// Sect. III).
///
/// Proof-of-authority style: the proposer for height h is drawn from the
/// registered miner set by hashing (seed, h), so every miner computes the
/// same schedule with no communication, and a rejected proposal simply
/// falls through to the next height's leader.
class LeaderSchedule {
 public:
  LeaderSchedule(std::vector<uint32_t> miner_ids, uint64_t seed);

  /// Leader for block height `height` (>= 1; genesis has no leader).
  Result<uint32_t> LeaderFor(uint64_t height) const;

  /// Leader for `height` after `retries` rejected proposals: deterministic
  /// fallback rotation so consensus always makes progress.
  Result<uint32_t> LeaderFor(uint64_t height, uint32_t retries) const;

  size_t num_miners() const { return miner_ids_.size(); }

 private:
  std::vector<uint32_t> miner_ids_;
  uint64_t seed_;
};

}  // namespace bcfl::chain
