#include "chain/consensus.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::chain {

namespace {

constexpr uint8_t kMsgProposal = 0;
constexpr uint8_t kMsgVote = 1;

Bytes EncodeProposal(const Block& block) {
  ByteWriter writer;
  writer.WriteU8(kMsgProposal);
  writer.WriteBytes(block.Serialize());
  return writer.Take();
}

Bytes EncodeVote(uint64_t height, const crypto::Digest& hash, bool accept,
                 uint32_t voter) {
  ByteWriter writer;
  writer.WriteU8(kMsgVote);
  writer.WriteU64(height);
  writer.WriteRaw(hash.data(), hash.size());
  writer.WriteU8(accept ? 1 : 0);
  writer.WriteU32(voter);
  return writer.Take();
}

}  // namespace

ConsensusEngine::ConsensusEngine(size_t num_miners,
                                 std::shared_ptr<const ContractHost> host,
                                 ConsensusConfig config)
    : host_(std::move(host)), config_(config), network_(config.network) {
  std::vector<uint32_t> ids;
  ids.reserve(num_miners);
  miners_.reserve(num_miners);
  for (size_t i = 0; i < num_miners; ++i) {
    uint32_t id = static_cast<uint32_t>(i);
    ids.push_back(id);
    miners_.push_back(std::make_unique<Miner>(id, host_));
    // Handler: validators answer proposals with votes; the leader's
    // handler tallies the votes of the in-flight attempt.
    Status st = network_.RegisterNode(id, [this, id](const net::Message& msg) {
      ByteReader reader(msg.payload);
      auto type = reader.ReadU8();
      if (!type.ok()) return;
      if (*type == kMsgProposal) {
        auto block_bytes = reader.ReadBytes();
        if (!block_bytes.ok()) return;
        auto block = Block::Deserialize(*block_bytes);
        if (!block.ok()) return;
        // Warm the shared verification cache before re-execution —
        // chunked across the chain pool when one is installed. The
        // first validator pays each modexp once; every later replica
        // (and the commit path) hits the cache.
        host_->PreVerifySignatures(block->txs);
        auto verdict = miners_[id]->ValidateProposal(*block);
        bool accept = verdict.ok() && *verdict;
        Bytes vote = EncodeVote(block->header.height, block->header.Hash(),
                                accept, id);
        (void)network_.Send(id, msg.from, std::move(vote));
      } else if (*type == kMsgVote) {
        auto height = reader.ReadU64();
        auto hash_raw = reader.ReadRaw(32);
        auto accept = reader.ReadU8();
        auto voter = reader.ReadU32();
        if (!height.ok() || !hash_raw.ok() || !accept.ok() || !voter.ok()) {
          return;
        }
        if (!proposal_valid_) return;
        crypto::Digest hash;
        std::copy(hash_raw->begin(), hash_raw->end(), hash.begin());
        if (*height != pending_proposal_.header.height ||
            hash != pending_proposal_.header.Hash()) {
          return;  // Stale vote from an earlier attempt.
        }
        // Deduplicate by voter: a duplicated message must not count a
        // miner twice. Votes claiming this node's own id are dropped too
        // — the proposer's accept is added implicitly at tally time.
        if (*voter >= miners_.size() || *voter == id) return;
        if (votes_.accept_voters.count(*voter) > 0 ||
            votes_.reject_voters.count(*voter) > 0) {
          return;
        }
        (*accept != 0 ? votes_.accept_voters : votes_.reject_voters)
            .insert(*voter);
      }
    });
    (void)st;
  }
  schedule_ = std::make_unique<LeaderSchedule>(ids, config_.leader_seed);
}

Status ConsensusEngine::SubmitTransaction(const Transaction& tx) {
  for (auto& miner : miners_) {
    // Offline miners never hear the gossip; they pick the tx's block up
    // later through catch-up instead of the mempool.
    if (injector_ != nullptr && injector_->MinerOffline(miner->id())) continue;
    Status st = miner->mempool().Add(tx);
    if (!st.ok() && !st.IsAlreadyExists()) return st;
  }
  return Status::OK();
}

void ConsensusEngine::set_fault_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ != nullptr) {
    injector_->InstallOn(&network_);
  } else {
    network_.set_fault_filter(nullptr);
  }
}

size_t ConsensusEngine::CanonicalMinerIndex() const {
  if (injector_ == nullptr) return 0;
  size_t best = 0;
  uint64_t best_height = 0;
  bool found = false;
  for (size_t i = 0; i < miners_.size(); ++i) {
    uint32_t id = miners_[i]->id();
    if (injector_->MinerOffline(id)) continue;
    // Count the online miners this one can reach (itself included); only
    // a strict-majority component can have committed the newest block.
    size_t reachable = 0;
    for (size_t j = 0; j < miners_.size(); ++j) {
      uint32_t other = miners_[j]->id();
      if (injector_->MinerOffline(other)) continue;
      if (injector_->MinersReachable(id, other)) ++reachable;
    }
    if (reachable * 2 <= miners_.size()) continue;
    uint64_t height = miners_[i]->chain().Height();
    if (!found || height > best_height) {
      best = i;
      best_height = height;
      found = true;
    }
  }
  // Validated plans always keep a majority component online; fall back to
  // miner 0 defensively if a hand-written plan does not.
  return found ? best : 0;
}

bool ConsensusEngine::MinerParticipating(uint32_t id) const {
  if (injector_ == nullptr) return true;
  if (injector_->MinerOffline(id)) return false;
  uint32_t canonical = miners_[CanonicalMinerIndex()]->id();
  return injector_->MinersReachable(canonical, id);
}

size_t ConsensusEngine::CatchUpLaggards() {
  if (injector_ == nullptr) return 0;
  static auto& catchups =
      obs::MetricsRegistry::Global().GetCounter("chain.consensus.catchups");
  const Miner& canonical = *miners_[CanonicalMinerIndex()];
  uint64_t tip = canonical.chain().Height();
  size_t replayed = 0;
  for (auto& miner : miners_) {
    if (miner.get() == &canonical) continue;
    if (!MinerParticipating(miner->id())) continue;
    uint64_t behind = miner->chain().Height();
    if (behind >= tip) continue;
    for (uint64_t h = behind + 1; h <= tip; ++h) {
      auto block = canonical.chain().GetBlock(h);
      if (!block.ok()) break;
      Status st = miner->CommitBlock(*block);
      if (!st.ok()) {
        BCFL_LOG_WARN() << "catch-up of miner " << miner->id() << " at height "
                        << h << " failed: " << st.ToString();
        break;
      }
      ++replayed;
    }
    catchups.Add();
    injector_->RecordExecuted(
        injector_->current_round(),
        "miner " + std::to_string(miner->id()) + " caught up from height " +
            std::to_string(behind) + " to " + std::to_string(tip));
  }
  return replayed;
}

Result<CommitResult> ConsensusEngine::TryPropose(uint64_t height,
                                                 uint32_t retries) {
  BCFL_ASSIGN_OR_RETURN(uint32_t leader_id,
                        schedule_->LeaderFor(height, retries));
  Miner& leader = *miners_[leader_id];

  // A crashed, partitioned-away or stale-chained leader cannot land a
  // majority proposal: time out on the simulated clock and hand the view
  // to the next leader in the rotation.
  if (injector_ != nullptr &&
      (!MinerParticipating(leader_id) ||
       leader.chain().Height() + 1 != height)) {
    static auto& view_changes = obs::MetricsRegistry::Global().GetCounter(
        "chain.consensus.view_changes");
    view_changes.Add();
    network_.AdvanceClock(config_.view_change_timeout_us);
    injector_->RecordExecuted(
        injector_->current_round(),
        "view change past leader " + std::to_string(leader_id) +
            " at height " + std::to_string(height));
    CommitResult timed_out;
    timed_out.leader = leader_id;
    timed_out.retries_used = retries;
    timed_out.height = height;
    return timed_out;
  }

  BCFL_ASSIGN_OR_RETURN(
      Block proposal,
      leader.ProposeBlock(network_.clock().NowMicros() + 1,
                          config_.max_txs_per_block));

  // Arm the vote box, broadcast, and drain the network: validators
  // validate and vote inside the drain.
  votes_ = VoteBox{};
  pending_proposal_ = proposal;
  proposal_valid_ = true;
  BCFL_RETURN_IF_ERROR(network_.Broadcast(leader_id, EncodeProposal(proposal)));
  network_.DeliverAll();
  proposal_valid_ = false;

  CommitResult result;
  result.leader = leader_id;
  result.retries_used = retries;
  result.height = height;
  result.block_hash = proposal.header.Hash();
  result.num_txs = proposal.txs.size();
  // Distinct voters only; the proposer counts as an implicit accept.
  result.accept_votes = votes_.accept_voters.size() + 1;
  result.reject_votes = votes_.reject_voters.size();

  // Strict majority of all miners must accept.
  result.committed = result.accept_votes * 2 > miners_.size();
  if (result.committed) {
    static auto& committed_blocks =
        obs::MetricsRegistry::Global().GetCounter("chain.block.committed");
    static auto& committed_txs =
        obs::MetricsRegistry::Global().GetCounter("chain.tx.committed");
    committed_blocks.Add();
    committed_txs.Add(result.num_txs);
    for (auto& miner : miners_) {
      // Offline or partitioned-away replicas missed the proposal; they
      // re-join through catch-up once reachable again.
      if (injector_ != nullptr &&
          injector_->MinerUnavailable(leader_id, miner->id())) {
        continue;
      }
      Status st = miner->CommitBlock(proposal);
      if (!st.ok()) {
        // A replica refusing a majority-accepted block means the leader
        // published an unexecutable proposal — surface loudly.
        return st.WithContext("replica " + std::to_string(miner->id()) +
                              " failed to commit");
      }
    }
    if (commit_sink_) {
      // Durability before acknowledgement: if the block cannot be made
      // durable (log append/fsync failed) the commit fails closed.
      BCFL_RETURN_IF_ERROR(
          commit_sink_(proposal)
              .WithContext("commit sink at height " +
                           std::to_string(proposal.header.height)));
    }
  }
  return result;
}

Status ConsensusEngine::ReplayCommittedBlock(
    const Block& block, const std::map<uint32_t, uint64_t>& miner_heights) {
  for (auto& miner : miners_) {
    auto it = miner_heights.find(miner->id());
    const uint64_t target =
        it == miner_heights.end() ? UINT64_MAX : it->second;
    if (block.header.height > target) continue;  // Was lagging at checkpoint.
    if (miner->chain().Height() >= block.header.height) continue;
    BCFL_RETURN_IF_ERROR(
        miner->CommitBlock(block).WithContext(
            "replaying height " + std::to_string(block.header.height) +
            " into miner " + std::to_string(miner->id())));
    for (const Transaction& tx : block.txs) {
      miner->mempool().NoteCommitted(tx);
    }
  }
  return Status::OK();
}

std::map<uint32_t, uint64_t> ConsensusEngine::MinerHeights() const {
  std::map<uint32_t, uint64_t> heights;
  for (const auto& miner : miners_) {
    heights[miner->id()] = miner->chain().Height();
  }
  return heights;
}

Result<CommitResult> ConsensusEngine::RunRound() {
  static auto& rounds =
      obs::MetricsRegistry::Global().GetCounter("chain.consensus.rounds");
  static auto& retries_total =
      obs::MetricsRegistry::Global().GetCounter("chain.consensus.retries");
  static auto& round_us = obs::MetricsRegistry::Global().GetHistogram(
      "chain.consensus.round_us");
  obs::ScopedSpan span(obs::Tracer::Global(), "block_commit", "chain");
  obs::ScopedLatency latency(round_us);
  rounds.Add();
  CatchUpLaggards();
  uint64_t height = CanonicalChain().Height() + 1;
  CommitResult last;
  for (uint32_t retry = 0; retry <= config_.max_retries; ++retry) {
    BCFL_ASSIGN_OR_RETURN(last, TryPropose(height, retry));
    if (last.committed) return last;
    retries_total.Add();
    BCFL_LOG_INFO() << "proposal at height " << height << " by miner "
                    << last.leader << " rejected (" << last.reject_votes
                    << " reject votes); rotating leader";
  }
  return last;  // committed == false after exhausting retries.
}

Result<std::vector<CommitResult>> ConsensusEngine::RunUntilDrained(
    size_t max_rounds) {
  std::vector<CommitResult> results;
  for (size_t i = 0; i < max_rounds; ++i) {
    bool any_pending = false;
    for (auto& miner : miners_) {
      // Stale txs stranded in an unreachable replica's mempool cannot be
      // proposed and must not keep the drain spinning.
      if (!MinerParticipating(miner->id())) continue;
      if (!miner->mempool().empty()) {
        any_pending = true;
        break;
      }
    }
    if (!any_pending) break;
    BCFL_ASSIGN_OR_RETURN(CommitResult result, RunRound());
    results.push_back(result);
    if (!result.committed) break;  // No progress possible.
  }
  return results;
}

}  // namespace bcfl::chain
