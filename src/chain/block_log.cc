#include "chain/block_log.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/fsync_util.h"
#include "obs/metrics.h"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace bcfl::chain {

namespace {

constexpr char kLogMagic[4] = {'B', 'C', 'L', 'G'};
constexpr uint32_t kLogVersion = 1;
constexpr size_t kHeaderSize = 8;   // magic + version.
constexpr size_t kRecordHeader = 8; // length + crc32c.
/// A length field beyond this is treated as torn garbage, not a record.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

Status TruncateFile(std::FILE* file, uint64_t offset) {
  if (std::fflush(file) != 0) return Status::Internal("fflush failed");
#if defined(_WIN32)
  return Status::Unimplemented("truncate unsupported on this platform");
#else
  if (::ftruncate(fileno(file), static_cast<off_t>(offset)) != 0) {
    return Status::Internal("ftruncate failed");
  }
  if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::Internal("seek after truncate failed");
  }
  return Status::OK();
#endif
}

}  // namespace

Result<BlockLog> BlockLog::Open(const std::string& path) {
  BlockLog log;
  log.path_ = path;

  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    // Fresh log: create, write the header, make the creation durable.
    file = std::fopen(path.c_str(), "w+b");
    if (file == nullptr) {
      return Status::Internal("cannot create block log at " + path);
    }
    log.file_ = file;
    BCFL_RETURN_IF_ERROR(log.WriteHeader());
    BCFL_RETURN_IF_ERROR(SyncParentDir(path));
    return log;
  }

  log.file_ = file;
  BCFL_RETURN_IF_ERROR(log.ScanExisting());
  return log;
}

Status BlockLog::WriteHeader() {
  ByteWriter writer;
  writer.WriteRaw(reinterpret_cast<const uint8_t*>(kLogMagic),
                  sizeof(kLogMagic));
  writer.WriteU32(kLogVersion);
  const Bytes& buf = writer.buffer();
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::Internal("short write of block log header");
  }
  return FlushAndSync(file_);
}

Status BlockLog::ScanExisting() {
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::Internal("cannot seek block log");
  }
  long raw_size = std::ftell(file_);
  if (raw_size < 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::Internal("cannot stat block log");
  }
  const uint64_t size = static_cast<uint64_t>(raw_size);
  if (size == 0) {
    // Created but crashed before the header landed: rewrite it.
    return WriteHeader();
  }
  if (size < kHeaderSize) {
    return Status::Corruption("block log shorter than its header");
  }

  Bytes buffer(size);
  BCFL_RETURN_IF_ERROR(ReadExact(file_, buffer.data(), buffer.size()));

  // Header fails closed: a log with the wrong magic or version is not a
  // torn tail, it is the wrong file.
  ByteReader header(buffer);
  BCFL_ASSIGN_OR_RETURN(Bytes magic, header.ReadRaw(sizeof(kLogMagic)));
  if (!std::equal(magic.begin(), magic.end(),
                  reinterpret_cast<const uint8_t*>(kLogMagic))) {
    return Status::Corruption("bad magic: not a BCFL block log");
  }
  BCFL_ASSIGN_OR_RETURN(uint32_t version, header.ReadU32());
  if (version != kLogVersion) {
    return Status::Unimplemented("unsupported block log version " +
                                 std::to_string(version));
  }

  // Record scan: keep the longest valid prefix, drop everything after
  // the first record that fails length/CRC/decode/height checks.
  uint64_t good_end = kHeaderSize;
  uint64_t offset = kHeaderSize;
  uint64_t expected_height = 1;
  auto read_u32 = [&buffer](uint64_t at) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(buffer[at + i]) << (8 * i);
    }
    return v;
  };
  while (offset + kRecordHeader <= size) {
    const uint32_t length = read_u32(offset);
    const uint32_t crc = read_u32(offset + 4);
    if (length > kMaxRecordBytes ||
        offset + kRecordHeader + length > size) {
      break;  // Torn length or payload cut off by the crash.
    }
    const uint8_t* payload = buffer.data() + offset + kRecordHeader;
    if (Crc32c(payload, length) != crc) break;
    Bytes payload_bytes(payload, payload + length);
    auto block = Block::Deserialize(payload_bytes);
    if (!block.ok()) break;
    if (block->header.height != expected_height) break;
    recovered_.push_back(std::move(*block));
    offset += kRecordHeader + length;
    good_end = offset;
    record_ends_.push_back(good_end);
    ++expected_height;
  }

  tip_height_ = expected_height - 1;
  open_stats_.records_recovered = recovered_.size();
  if (good_end < size) {
    open_stats_.tail_truncated = true;
    open_stats_.bytes_truncated = size - good_end;
    BCFL_RETURN_IF_ERROR(TruncateFile(file_, good_end));
    BCFL_RETURN_IF_ERROR(FlushAndSync(file_));
    obs::MetricsRegistry::Global()
        .GetCounter("chain.blocklog.torn_tails_recovered")
        .Add();
  } else if (std::fseek(file_, static_cast<long>(good_end), SEEK_SET) != 0) {
    return Status::Internal("cannot seek to block log tail");
  }
  return Status::OK();
}

std::vector<Block> BlockLog::TakeRecoveredBlocks() {
  return std::exchange(recovered_, {});
}

Status BlockLog::Append(const Block& block) {
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");
  if (block.header.height != tip_height_ + 1) {
    return Status::InvalidArgument(
        "block log append out of order: got height " +
        std::to_string(block.header.height) + ", expected " +
        std::to_string(tip_height_ + 1));
  }
  Bytes payload = block.Serialize();
  ByteWriter writer;
  writer.WriteU32(static_cast<uint32_t>(payload.size()));
  writer.WriteU32(Crc32c(payload.data(), payload.size()));
  writer.WriteRaw(payload.data(), payload.size());
  const Bytes& record = writer.buffer();
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::Internal("short write appending block " +
                            std::to_string(block.header.height));
  }
  BCFL_RETURN_IF_ERROR(FlushAndSync(file_));
  uint64_t end = (record_ends_.empty() ? kHeaderSize : record_ends_.back()) +
                 record.size();
  record_ends_.push_back(end);
  ++tip_height_;
  obs::MetricsRegistry::Global().GetCounter("chain.blocklog.appends").Add();
  return Status::OK();
}

Status BlockLog::TruncateToHeight(uint64_t height) {
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");
  if (height > tip_height_) {
    return Status::InvalidArgument(
        "cannot truncate block log to height " + std::to_string(height) +
        ": tip is " + std::to_string(tip_height_));
  }
  if (height == tip_height_) return Status::OK();
  uint64_t offset = (height == 0) ? kHeaderSize : record_ends_[height - 1];
  BCFL_RETURN_IF_ERROR(TruncateFile(file_, offset));
  BCFL_RETURN_IF_ERROR(FlushAndSync(file_));
  record_ends_.resize(height);
  if (recovered_.size() > height) recovered_.resize(height);
  tip_height_ = height;
  return Status::OK();
}

void BlockLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

BlockLog::~BlockLog() { Close(); }

BlockLog::BlockLog(BlockLog&& other) noexcept
    : path_(std::move(other.path_)),
      file_(std::exchange(other.file_, nullptr)),
      tip_height_(other.tip_height_),
      record_ends_(std::move(other.record_ends_)),
      recovered_(std::move(other.recovered_)),
      open_stats_(other.open_stats_) {}

BlockLog& BlockLog::operator=(BlockLog&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    file_ = std::exchange(other.file_, nullptr);
    tip_height_ = other.tip_height_;
    record_ends_ = std::move(other.record_ends_);
    recovered_ = std::move(other.recovered_);
    open_stats_ = other.open_stats_;
  }
  return *this;
}

}  // namespace bcfl::chain
