#pragma once

#include <deque>
#include <set>
#include <string>
#include <utility>

#include "chain/merkle.h"
#include "chain/transaction.h"
#include "common/result.h"

namespace bcfl::chain {

/// FIFO pool of pending transactions with duplicate suppression.
///
/// Leaders draw block bodies from here. The pool remembers every hash it
/// has ever admitted so a re-gossiped transaction is not proposed twice,
/// and every (sender, nonce) pair so a re-signed replay cannot occupy a
/// second block slot before contract-level replay checks fire.
///
/// It also maintains an incremental Merkle tree over the pending
/// transactions in arrival order: admission appends a leaf in O(log n),
/// and a leader that proposes the full pool promotes PendingRoot()
/// straight into the block header instead of rebuilding the tree.
class Mempool {
 public:
  Mempool() = default;

  /// Admits `tx`; AlreadyExists for duplicates (by hash, or by an
  /// already-admitted (sender, nonce) pair).
  Status Add(Transaction tx);

  /// Removes and returns up to `max_count` transactions in arrival order
  /// (0 = all pending).
  std::vector<Transaction> Take(size_t max_count = 0);

  /// Copies up to `max_count` pending transactions without removing them
  /// (0 = all). Leaders peek so that a rejected proposal leaves the pool
  /// intact for the next leader.
  std::vector<Transaction> Peek(size_t max_count = 0) const;

  /// Drops any pending transactions that appear in `txs` — called when a
  /// block commits so replicas shed already-included entries.
  void RemoveCommitted(const std::vector<Transaction>& txs);

  /// Records an already-committed transaction in the duplicate-suppression
  /// sets without admitting it. Used when a replica replays settled blocks
  /// from the durable log on restart, so a post-restart re-gossip of a
  /// historical transaction (or a re-signed replay of its nonce) is
  /// rejected exactly as it was before the crash.
  void NoteCommitted(const Transaction& tx);

  size_t size() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }

  /// Merkle root over all pending transactions in arrival order —
  /// bit-identical to Block::ComputeMerkleRoot() of a block carrying
  /// exactly the pending list.
  const crypto::Digest& PendingRoot() const { return pending_tree_.root(); }

 private:
  static std::string KeyOf(const Transaction& tx);

  /// Batch-rebuilds the pending tree after eviction, from the cached
  /// digests — pending payloads are never re-hashed.
  void RebuildPendingTree();

  std::deque<Transaction> pending_;
  /// Hash of pending_[i], computed once at admission.
  std::deque<crypto::Digest> pending_digests_;
  std::set<std::string> seen_;
  std::set<std::pair<std::string, uint64_t>> seen_sender_nonce_;
  MerkleTree pending_tree_{{}};
};

}  // namespace bcfl::chain
