#pragma once

#include <deque>
#include <set>
#include <string>

#include "chain/transaction.h"
#include "common/result.h"

namespace bcfl::chain {

/// FIFO pool of pending transactions with duplicate suppression.
///
/// Leaders draw block bodies from here. The pool remembers every hash it
/// has ever admitted so a re-gossiped transaction is not proposed twice.
class Mempool {
 public:
  Mempool() = default;

  /// Admits `tx`; AlreadyExists for duplicates (by hash).
  Status Add(Transaction tx);

  /// Removes and returns up to `max_count` transactions in arrival order
  /// (0 = all pending).
  std::vector<Transaction> Take(size_t max_count = 0);

  /// Copies up to `max_count` pending transactions without removing them
  /// (0 = all). Leaders peek so that a rejected proposal leaves the pool
  /// intact for the next leader.
  std::vector<Transaction> Peek(size_t max_count = 0) const;

  /// Drops any pending transactions that appear in `txs` — called when a
  /// block commits so replicas shed already-included entries.
  void RemoveCommitted(const std::vector<Transaction>& txs);

  size_t size() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }

 private:
  static std::string KeyOf(const Transaction& tx);

  std::deque<Transaction> pending_;
  std::set<std::string> seen_;
};

}  // namespace bcfl::chain
