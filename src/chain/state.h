#pragma once

#include <map>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/sha256.h"

namespace bcfl::chain {

/// Deterministic key-value store backing smart-contract execution.
///
/// Keys are strings, values opaque bytes. The store is an ordered map so
/// `StateRoot()` — a SHA-256 over the sorted entries — is identical on
/// every miner that executed the same transactions in the same order.
/// Consensus compares state roots to verify the leader's execution.
class ContractState {
 public:
  ContractState() = default;

  /// Stores `value` under `key` (overwrites).
  void Put(const std::string& key, Bytes value);
  /// Retrieves a value; NotFound if absent.
  Result<Bytes> Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  /// Removes a key (no-op when absent).
  void Delete(const std::string& key);

  /// Number of live keys.
  size_t size() const { return entries_.size(); }

  /// Keys beginning with `prefix`, in sorted order — contracts use
  /// prefix scans to enumerate e.g. all submissions of a round.
  std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  /// Commitment to the full store contents.
  crypto::Digest StateRoot() const;

  /// Deep copy, used by validators to re-execute proposals without
  /// touching their committed state.
  ContractState Snapshot() const { return *this; }

 private:
  std::map<std::string, Bytes> entries_;
};

}  // namespace bcfl::chain
