#include "chain/miner.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::chain {

Miner::Miner(uint32_t id, std::shared_ptr<const ContractHost> host)
    : id_(id), host_(std::move(host)) {}

Result<Block> Miner::ProposeBlock(uint64_t timestamp_us, size_t max_txs) {
  static auto& proposed =
      obs::MetricsRegistry::Global().GetCounter("chain.block.proposed");
  static auto& propose_us =
      obs::MetricsRegistry::Global().GetHistogram("chain.propose_us");
  obs::ScopedSpan span(obs::Tracer::Global(), "block_build", "chain");
  obs::ScopedLatency latency(propose_us);
  proposed.Add();
  Block block;
  block.txs = mempool_.Peek(max_txs);
  block.header.height = chain_.Height() + 1;
  block.header.prev_hash = chain_.Tip().header.Hash();
  block.header.timestamp_us = timestamp_us;
  block.header.proposer = id_;
  // Proposing the whole pool promotes the mempool's incrementally
  // maintained root (bit-identical to a rebuild); a partial block still
  // hashes its own prefix.
  block.header.merkle_root = block.txs.size() == mempool_.size()
                                 ? mempool_.PendingRoot()
                                 : block.ComputeMerkleRoot();

  ContractState scratch = state_.Snapshot();
  BCFL_ASSIGN_OR_RETURN(std::vector<TxReceipt> receipts,
                        host_->ExecuteBlock(block.txs, &scratch));
  (void)receipts;
  if (behavior_.tamper_state) {
    behavior_.tamper_state(&scratch);
  }
  block.header.state_root = scratch.StateRoot();
  return block;
}

Result<bool> Miner::ValidateProposal(const Block& block) {
  static auto& accepted =
      obs::MetricsRegistry::Global().GetCounter("chain.proposal.accepted");
  static auto& rejected =
      obs::MetricsRegistry::Global().GetCounter("chain.proposal.rejected");
  static auto& validate_us =
      obs::MetricsRegistry::Global().GetHistogram("chain.validate_us");
  obs::ScopedSpan span(obs::Tracer::Global(), "proposal_reexec", "chain");
  obs::ScopedLatency latency(validate_us);
  if (behavior_.always_reject) {
    rejected.Add();
    return false;
  }
  Status structural = Blockchain::Validate(block, chain_.Tip());
  if (!structural.ok()) {
    rejected.Add();
    return false;
  }

  // Re-execute the body on a snapshot of this miner's own state — the
  // "verification protocol" of Sect. III.
  ContractState scratch = state_.Snapshot();
  auto receipts = host_->ExecuteBlock(block.txs, &scratch);
  if (!receipts.ok()) {
    rejected.Add();
    return false;
  }
  const bool match = scratch.StateRoot() == block.header.state_root;
  (match ? accepted : rejected).Add();
  return match;
}

Status Miner::CommitBlock(const Block& block) {
  static auto& commit_us =
      obs::MetricsRegistry::Global().GetHistogram("chain.commit_us");
  obs::ScopedLatency latency(commit_us);
  ContractState scratch = state_.Snapshot();
  BCFL_ASSIGN_OR_RETURN(std::vector<TxReceipt> receipts,
                        host_->ExecuteBlock(block.txs, &scratch));
  (void)receipts;
  if (scratch.StateRoot() != block.header.state_root) {
    return Status::Corruption(
        "committed block does not re-execute to its state root");
  }
  BCFL_RETURN_IF_ERROR(chain_.Append(block));
  state_ = std::move(scratch);
  mempool_.RemoveCommitted(block.txs);
  return Status::OK();
}

}  // namespace bcfl::chain
