#include "chain/transaction.h"

#include <map>

namespace bcfl::chain {

Bytes Transaction::SigningBytes() const {
  ByteWriter writer;
  writer.WriteString(contract);
  writer.WriteString(method);
  writer.WriteBytes(payload);
  writer.WriteBytes(sender.ToBytes());
  writer.WriteU64(nonce);
  return writer.Take();
}

crypto::Digest Transaction::Hash() const {
  crypto::Sha256 hasher;
  hasher.Update(SigningBytes());
  hasher.Update(signature.ToBytes());
  return hasher.Finish();
}

void Transaction::Sign(const crypto::Schnorr& scheme,
                       const crypto::SchnorrKeyPair& key, Xoshiro256* rng) {
  sender = key.public_key;
  signature = scheme.Sign(key, SigningBytes(), rng);
}

bool Transaction::VerifySignature(const crypto::Schnorr& scheme) const {
  return scheme.Verify(sender, SigningBytes(), signature);
}

Bytes Transaction::Serialize() const {
  ByteWriter writer;
  writer.WriteString(contract);
  writer.WriteString(method);
  writer.WriteBytes(payload);
  writer.WriteBytes(sender.ToBytes());
  writer.WriteU64(nonce);
  writer.WriteBytes(signature.ToBytes());
  return writer.Take();
}

Result<Transaction> Transaction::Deserialize(const Bytes& bytes) {
  ByteReader reader(bytes);
  Transaction tx;
  BCFL_ASSIGN_OR_RETURN(tx.contract, reader.ReadString());
  BCFL_ASSIGN_OR_RETURN(tx.method, reader.ReadString());
  BCFL_ASSIGN_OR_RETURN(tx.payload, reader.ReadBytes());
  BCFL_ASSIGN_OR_RETURN(Bytes sender_bytes, reader.ReadBytes());
  BCFL_ASSIGN_OR_RETURN(tx.sender, crypto::UInt256::FromBytes(sender_bytes));
  BCFL_ASSIGN_OR_RETURN(tx.nonce, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(Bytes sig_bytes, reader.ReadBytes());
  BCFL_ASSIGN_OR_RETURN(tx.signature,
                        crypto::SchnorrSignature::FromBytes(sig_bytes));
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes after transaction");
  }
  return tx;
}

bool Transaction::operator==(const Transaction& other) const {
  return Hash() == other.Hash();
}

std::vector<crypto::Digest> HashTransactions(
    const std::vector<Transaction>& txs) {
  std::vector<crypto::Digest> out(txs.size());
  // Materialise each preimage (signing bytes || signature), then group
  // equal lengths so the 8-lane SHA path gets full batches.
  std::vector<Bytes> preimages(txs.size());
  std::map<size_t, std::vector<size_t>> by_len;
  for (size_t i = 0; i < txs.size(); ++i) {
    preimages[i] = txs[i].SigningBytes();
    Bytes sig = txs[i].signature.ToBytes();
    preimages[i].insert(preimages[i].end(), sig.begin(), sig.end());
    by_len[preimages[i].size()].push_back(i);
  }
  std::vector<const uint8_t*> ptrs;
  std::vector<crypto::Digest> group_out;
  for (const auto& [len, indices] : by_len) {
    ptrs.clear();
    for (size_t i : indices) ptrs.push_back(preimages[i].data());
    group_out.resize(indices.size());
    crypto::Sha256Batch(ptrs.data(), len, indices.size(), group_out.data());
    for (size_t j = 0; j < indices.size(); ++j) out[indices[j]] = group_out[j];
  }
  return out;
}

}  // namespace bcfl::chain
