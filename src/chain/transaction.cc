#include "chain/transaction.h"

namespace bcfl::chain {

Bytes Transaction::SigningBytes() const {
  ByteWriter writer;
  writer.WriteString(contract);
  writer.WriteString(method);
  writer.WriteBytes(payload);
  writer.WriteBytes(sender.ToBytes());
  writer.WriteU64(nonce);
  return writer.Take();
}

crypto::Digest Transaction::Hash() const {
  crypto::Sha256 hasher;
  hasher.Update(SigningBytes());
  hasher.Update(signature.ToBytes());
  return hasher.Finish();
}

void Transaction::Sign(const crypto::Schnorr& scheme,
                       const crypto::SchnorrKeyPair& key, Xoshiro256* rng) {
  sender = key.public_key;
  signature = scheme.Sign(key, SigningBytes(), rng);
}

bool Transaction::VerifySignature(const crypto::Schnorr& scheme) const {
  return scheme.Verify(sender, SigningBytes(), signature);
}

Bytes Transaction::Serialize() const {
  ByteWriter writer;
  writer.WriteString(contract);
  writer.WriteString(method);
  writer.WriteBytes(payload);
  writer.WriteBytes(sender.ToBytes());
  writer.WriteU64(nonce);
  writer.WriteBytes(signature.ToBytes());
  return writer.Take();
}

Result<Transaction> Transaction::Deserialize(const Bytes& bytes) {
  ByteReader reader(bytes);
  Transaction tx;
  BCFL_ASSIGN_OR_RETURN(tx.contract, reader.ReadString());
  BCFL_ASSIGN_OR_RETURN(tx.method, reader.ReadString());
  BCFL_ASSIGN_OR_RETURN(tx.payload, reader.ReadBytes());
  BCFL_ASSIGN_OR_RETURN(Bytes sender_bytes, reader.ReadBytes());
  BCFL_ASSIGN_OR_RETURN(tx.sender, crypto::UInt256::FromBytes(sender_bytes));
  BCFL_ASSIGN_OR_RETURN(tx.nonce, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(Bytes sig_bytes, reader.ReadBytes());
  BCFL_ASSIGN_OR_RETURN(tx.signature,
                        crypto::SchnorrSignature::FromBytes(sig_bytes));
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes after transaction");
  }
  return tx;
}

bool Transaction::operator==(const Transaction& other) const {
  return Hash() == other.Hash();
}

}  // namespace bcfl::chain
