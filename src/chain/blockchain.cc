#include "chain/blockchain.h"

namespace bcfl::chain {

Blockchain::Blockchain() { blocks_.push_back(MakeGenesisBlock()); }

Result<Block> Blockchain::GetBlock(uint64_t height) const {
  if (height >= blocks_.size()) {
    return Status::OutOfRange("no block at height " + std::to_string(height));
  }
  return blocks_[height];
}

Status Blockchain::Validate(const Block& block, const Block& parent) {
  if (block.header.height != parent.header.height + 1) {
    return Status::InvalidArgument("non-consecutive block height");
  }
  if (block.header.prev_hash != parent.header.Hash()) {
    return Status::InvalidArgument("prev_hash does not match parent");
  }
  if (!block.MerkleRootMatchesBody()) {
    return Status::Corruption("merkle root does not match body");
  }
  if (block.header.timestamp_us < parent.header.timestamp_us) {
    return Status::InvalidArgument("timestamp moved backwards");
  }
  return Status::OK();
}

Status Blockchain::Append(Block block) {
  BCFL_RETURN_IF_ERROR(Validate(block, blocks_.back()));
  blocks_.push_back(std::move(block));
  return Status::OK();
}

Result<std::pair<uint64_t, size_t>> Blockchain::FindTransaction(
    const crypto::Digest& tx_hash) const {
  for (const auto& block : blocks_) {
    for (size_t i = 0; i < block.txs.size(); ++i) {
      if (block.txs[i].Hash() == tx_hash) {
        return std::make_pair(block.header.height, i);
      }
    }
  }
  return Status::NotFound("transaction not on chain");
}

size_t Blockchain::TotalTransactions() const {
  size_t total = 0;
  for (const auto& block : blocks_) total += block.txs.size();
  return total;
}

}  // namespace bcfl::chain
