#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_set>

#include "common/thread_pool.h"
#include "crypto/sha256.h"

namespace bcfl::chain {

/// Thread-safe sharded cache of *successful* signature verifications,
/// keyed by transaction hash (SHA-256 over the canonical signing bytes
/// plus the signature, so the key commits to contract, method, payload,
/// sender, nonce AND the signature itself).
///
/// Honest-majority consensus re-executes every block on every miner; the
/// miners share one ContractHost, so one cache turns N identical modexp
/// verifications per transaction into one.
///
/// Fail-closed semantics: only positive verdicts are stored. A failed
/// verification is never cached (each replica re-runs the full check),
/// and an overflowing shard is simply cleared — a lost entry can only
/// cause re-verification, never a forged accept. A hash hit implies the
/// exact same (signing bytes, signature) pair previously passed the full
/// Schnorr equation under this host's scheme.
class SigVerifyCache {
 public:
  /// True when `tx_hash` was previously recorded as verified.
  /// Bumps the chain.sigcache.hits / chain.sigcache.misses counters.
  bool Contains(const crypto::Digest& tx_hash) const;

  /// Records a successful verification of `tx_hash`.
  void Insert(const crypto::Digest& tx_hash);

  /// Entry count across shards (approximate under concurrent writers).
  size_t Size() const;

  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<std::string> entries;
  };
  static constexpr size_t kShards = 16;
  /// Per-shard cap (~1M entries total). On overflow the shard is
  /// cleared rather than evicted LRU-style: correctness never depends
  /// on an entry being present.
  static constexpr size_t kMaxPerShard = 1 << 16;

  Shard& ShardFor(const crypto::Digest& tx_hash) const {
    return shards_[tx_hash[0] % kShards];
  }

  mutable std::array<Shard, kShards> shards_;
};

/// Thread pool consulted by the chain layer's parallel paths (signature
/// pre-verification, level-parallel Merkle builds). Null — the default —
/// means every path runs inline on the caller, bit-identical by
/// construction. Mirrors ml::kernels::SetParallelPool.
void SetChainPool(ThreadPool* pool);
ThreadPool* ChainPool();

}  // namespace bcfl::chain
