#include "chain/merkle.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "chain/sig_cache.h"

namespace bcfl::chain {

namespace {

/// Minimum hashes per chunk before the pool is worth waking.
constexpr size_t kMerkleGrain = 128;

/// Runs fn(begin, end) over [0, count) — in one inline call, or chunked
/// across the chain pool for large counts. The chunk partition only
/// decides which thread computes which output slot, never a digest.
void ForEachChunk(size_t count,
                  const std::function<void(size_t, size_t)>& fn) {
  ThreadPool* pool = ChainPool();
  if (pool == nullptr || count < 2 * kMerkleGrain ||
      ThreadPool::InWorkerThread()) {
    fn(0, count);
    return;
  }
  size_t nchunks = (count + kMerkleGrain - 1) / kMerkleGrain;
  pool->ParallelFor(
      nchunks,
      [&](size_t c) {
        size_t begin = c * kMerkleGrain;
        size_t end = std::min(count, begin + kMerkleGrain);
        fn(begin, end);
      },
      1);
}

/// out[i] = LeafHash(leaves[i]) via the batched SHA-256 path.
void HashLeafLevel(const std::vector<crypto::Digest>& leaves,
                   std::vector<crypto::Digest>* out) {
  size_t n = leaves.size();
  out->resize(n);
  ForEachChunk(n, [&](size_t begin, size_t end) {
    size_t cnt = end - begin;
    std::vector<uint8_t> pre(cnt * 33);
    std::vector<const uint8_t*> ptrs(cnt);
    for (size_t i = 0; i < cnt; ++i) {
      uint8_t* p = pre.data() + i * 33;
      p[0] = 0x00;
      std::memcpy(p + 1, leaves[begin + i].data(), 32);
      ptrs[i] = p;
    }
    crypto::Sha256Batch(ptrs.data(), 33, cnt, out->data() + begin);
  });
}

/// next[i] = NodeHash(prev[2i], prev[2i+1] or duplicated last node).
void HashNodeLevel(const std::vector<crypto::Digest>& prev,
                   std::vector<crypto::Digest>* next) {
  size_t n = (prev.size() + 1) / 2;
  next->resize(n);
  ForEachChunk(n, [&](size_t begin, size_t end) {
    size_t cnt = end - begin;
    std::vector<uint8_t> pre(cnt * 65);
    std::vector<const uint8_t*> ptrs(cnt);
    for (size_t i = 0; i < cnt; ++i) {
      size_t left = 2 * (begin + i);
      size_t right = left + 1 < prev.size() ? left + 1 : left;
      uint8_t* p = pre.data() + i * 65;
      p[0] = 0x01;
      std::memcpy(p + 1, prev[left].data(), 32);
      std::memcpy(p + 33, prev[right].data(), 32);
      ptrs[i] = p;
    }
    crypto::Sha256Batch(ptrs.data(), 65, cnt, next->data() + begin);
  });
}

}  // namespace

crypto::Digest MerkleTree::LeafHash(const crypto::Digest& data) {
  crypto::Sha256 hasher;
  uint8_t tag = 0x00;
  hasher.Update(&tag, 1);
  hasher.Update(data.data(), data.size());
  return hasher.Finish();
}

crypto::Digest MerkleTree::NodeHash(const crypto::Digest& left,
                                    const crypto::Digest& right) {
  crypto::Sha256 hasher;
  uint8_t tag = 0x01;
  hasher.Update(&tag, 1);
  hasher.Update(left.data(), left.size());
  hasher.Update(right.data(), right.size());
  return hasher.Finish();
}

MerkleTree::MerkleTree(const std::vector<crypto::Digest>& leaves)
    : num_leaves_(leaves.size()) {
  root_.fill(0);
  if (leaves.empty()) return;

  std::vector<crypto::Digest> level;
  HashLeafLevel(leaves, &level);
  levels_.push_back(std::move(level));

  while (levels_.back().size() > 1) {
    std::vector<crypto::Digest> next;
    HashNodeLevel(levels_.back(), &next);
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

void MerkleTree::Append(const crypto::Digest& leaf) {
  if (num_leaves_ == 0) {
    levels_.assign(1, {LeafHash(leaf)});
    num_leaves_ = 1;
    root_ = levels_[0][0];
    return;
  }
  ++num_leaves_;
  levels_[0].push_back(LeafHash(leaf));
  // Only the last node of each level depends on the appended leaf (the
  // previous last parent either gains a real right child where it used
  // to duplicate, or a new parent appears). Walk the right edge up.
  size_t depth = 0;
  while (levels_[depth].size() > 1) {
    size_t prev_size = levels_[depth].size();
    size_t parent_count = (prev_size + 1) / 2;
    // May reallocate levels_ itself: take references only afterwards.
    if (depth + 1 == levels_.size()) levels_.emplace_back();
    const auto& prev = levels_[depth];
    auto& parents = levels_[depth + 1];
    parents.resize(parent_count);
    size_t last = parent_count - 1;
    size_t left = 2 * last;
    size_t right = left + 1 < prev_size ? left + 1 : left;
    parents[last] = NodeHash(prev[left], prev[right]);
    ++depth;
  }
  root_ = levels_.back()[0];
}

Result<std::vector<MerkleProofStep>> MerkleTree::Proof(size_t index) const {
  if (index >= num_leaves_) {
    return Status::OutOfRange("leaf index out of range");
  }
  std::vector<MerkleProofStep> proof;
  size_t pos = index;
  for (size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const auto& level = levels_[depth];
    MerkleProofStep step;
    if (pos % 2 == 0) {
      // Sibling is on the right (or the duplicated self at the edge).
      step.sibling = (pos + 1 < level.size()) ? level[pos + 1] : level[pos];
      step.sibling_is_right = true;
    } else {
      step.sibling = level[pos - 1];
      step.sibling_is_right = false;
    }
    proof.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const crypto::Digest& leaf,
                             const std::vector<MerkleProofStep>& proof,
                             const crypto::Digest& root) {
  crypto::Digest current = LeafHash(leaf);
  for (const auto& step : proof) {
    current = step.sibling_is_right ? NodeHash(current, step.sibling)
                                    : NodeHash(step.sibling, current);
  }
  return current == root;
}

}  // namespace bcfl::chain
