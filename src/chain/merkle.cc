#include "chain/merkle.h"

namespace bcfl::chain {

crypto::Digest MerkleTree::LeafHash(const crypto::Digest& data) {
  crypto::Sha256 hasher;
  uint8_t tag = 0x00;
  hasher.Update(&tag, 1);
  hasher.Update(data.data(), data.size());
  return hasher.Finish();
}

crypto::Digest MerkleTree::NodeHash(const crypto::Digest& left,
                                    const crypto::Digest& right) {
  crypto::Sha256 hasher;
  uint8_t tag = 0x01;
  hasher.Update(&tag, 1);
  hasher.Update(left.data(), left.size());
  hasher.Update(right.data(), right.size());
  return hasher.Finish();
}

MerkleTree::MerkleTree(const std::vector<crypto::Digest>& leaves)
    : num_leaves_(leaves.size()) {
  root_.fill(0);
  if (leaves.empty()) return;

  std::vector<crypto::Digest> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(LeafHash(leaf));
  levels_.push_back(level);

  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<crypto::Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      const crypto::Digest& left = prev[i];
      const crypto::Digest& right =
          (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(NodeHash(left, right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

Result<std::vector<MerkleProofStep>> MerkleTree::Proof(size_t index) const {
  if (index >= num_leaves_) {
    return Status::OutOfRange("leaf index out of range");
  }
  std::vector<MerkleProofStep> proof;
  size_t pos = index;
  for (size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const auto& level = levels_[depth];
    MerkleProofStep step;
    if (pos % 2 == 0) {
      // Sibling is on the right (or the duplicated self at the edge).
      step.sibling = (pos + 1 < level.size()) ? level[pos + 1] : level[pos];
      step.sibling_is_right = true;
    } else {
      step.sibling = level[pos - 1];
      step.sibling_is_right = false;
    }
    proof.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const crypto::Digest& leaf,
                             const std::vector<MerkleProofStep>& proof,
                             const crypto::Digest& root) {
  crypto::Digest current = LeafHash(leaf);
  for (const auto& step : proof) {
    current = step.sibling_is_right ? NodeHash(current, step.sibling)
                                    : NodeHash(step.sibling, current);
  }
  return current == root;
}

}  // namespace bcfl::chain
