#include "chain/sig_cache.h"

#include <atomic>

#include "obs/metrics.h"

namespace bcfl::chain {

namespace {

std::string DigestKey(const crypto::Digest& d) {
  return std::string(d.begin(), d.end());
}

std::atomic<ThreadPool*> g_chain_pool{nullptr};

}  // namespace

bool SigVerifyCache::Contains(const crypto::Digest& tx_hash) const {
  static auto& hits =
      obs::MetricsRegistry::Global().GetCounter("chain.sigcache.hits");
  static auto& misses =
      obs::MetricsRegistry::Global().GetCounter("chain.sigcache.misses");
  Shard& shard = ShardFor(tx_hash);
  bool found;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    found = shard.entries.count(DigestKey(tx_hash)) > 0;
  }
  (found ? hits : misses).Add();
  return found;
}

void SigVerifyCache::Insert(const crypto::Digest& tx_hash) {
  Shard& shard = ShardFor(tx_hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.size() >= kMaxPerShard) {
    // Fail-closed overflow policy: dropping entries only costs a
    // re-verification on the next sighting.
    shard.entries.clear();
  }
  shard.entries.insert(DigestKey(tx_hash));
}

size_t SigVerifyCache::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

void SigVerifyCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
}

void SetChainPool(ThreadPool* pool) {
  g_chain_pool.store(pool, std::memory_order_relaxed);
}

ThreadPool* ChainPool() {
  return g_chain_pool.load(std::memory_order_relaxed);
}

}  // namespace bcfl::chain
