#include "chain/block.h"

#include "chain/state.h"

namespace bcfl::chain {

Bytes BlockHeader::Serialize() const {
  ByteWriter writer;
  writer.WriteU64(height);
  writer.WriteRaw(prev_hash.data(), prev_hash.size());
  writer.WriteRaw(merkle_root.data(), merkle_root.size());
  writer.WriteRaw(state_root.data(), state_root.size());
  writer.WriteU64(timestamp_us);
  writer.WriteU32(proposer);
  return writer.Take();
}

Result<BlockHeader> BlockHeader::Deserialize(ByteReader* reader) {
  BlockHeader header;
  BCFL_ASSIGN_OR_RETURN(header.height, reader->ReadU64());
  BCFL_ASSIGN_OR_RETURN(Bytes prev, reader->ReadRaw(32));
  std::copy(prev.begin(), prev.end(), header.prev_hash.begin());
  BCFL_ASSIGN_OR_RETURN(Bytes merkle, reader->ReadRaw(32));
  std::copy(merkle.begin(), merkle.end(), header.merkle_root.begin());
  BCFL_ASSIGN_OR_RETURN(Bytes state, reader->ReadRaw(32));
  std::copy(state.begin(), state.end(), header.state_root.begin());
  BCFL_ASSIGN_OR_RETURN(header.timestamp_us, reader->ReadU64());
  BCFL_ASSIGN_OR_RETURN(header.proposer, reader->ReadU32());
  return header;
}

crypto::Digest BlockHeader::Hash() const {
  return crypto::Sha256::Hash(Serialize());
}

crypto::Digest Block::ComputeMerkleRoot() const {
  return MerkleTree(HashTransactions(txs)).root();
}

bool Block::MerkleRootMatchesBody() const {
  return header.merkle_root == ComputeMerkleRoot();
}

Bytes Block::Serialize() const {
  ByteWriter writer;
  Bytes header_bytes = header.Serialize();
  writer.WriteBytes(header_bytes);
  writer.WriteU32(static_cast<uint32_t>(txs.size()));
  for (const auto& tx : txs) writer.WriteBytes(tx.Serialize());
  return writer.Take();
}

Result<Block> Block::Deserialize(const Bytes& bytes) {
  ByteReader reader(bytes);
  Block block;
  BCFL_ASSIGN_OR_RETURN(Bytes header_bytes, reader.ReadBytes());
  ByteReader header_reader(header_bytes);
  BCFL_ASSIGN_OR_RETURN(block.header,
                        BlockHeader::Deserialize(&header_reader));
  BCFL_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  // Each transaction needs at least its 4-byte length prefix; a count
  // beyond that is a corrupt (or hostile) length field — reject before
  // reserving memory for it.
  if (static_cast<uint64_t>(count) * 4 > reader.remaining()) {
    return Status::Corruption("transaction count exceeds payload");
  }
  block.txs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BCFL_ASSIGN_OR_RETURN(Bytes tx_bytes, reader.ReadBytes());
    BCFL_ASSIGN_OR_RETURN(Transaction tx, Transaction::Deserialize(tx_bytes));
    block.txs.push_back(std::move(tx));
  }
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes after block");
  }
  return block;
}

Block MakeGenesisBlock() {
  Block genesis;
  genesis.header.height = 0;
  genesis.header.prev_hash.fill(0);
  genesis.header.merkle_root = genesis.ComputeMerkleRoot();
  genesis.header.state_root = ContractState().StateRoot();
  genesis.header.timestamp_us = 0;
  genesis.header.proposer = 0;
  return genesis;
}

}  // namespace bcfl::chain
