#pragma once

#include <vector>

#include "chain/block.h"
#include "common/result.h"

namespace bcfl::chain {

/// An append-only validated chain of blocks.
///
/// Every miner holds one replica. `Append` enforces the structural
/// invariants (monotone height, parent-hash linkage, Merkle consistency);
/// semantic validity (state-root correctness) is consensus's job because
/// it requires re-execution.
class Blockchain {
 public:
  /// Starts with the deterministic genesis block.
  Blockchain();

  /// Height of the tip (genesis = 0).
  uint64_t Height() const { return blocks_.back().header.height; }
  size_t NumBlocks() const { return blocks_.size(); }
  const Block& Tip() const { return blocks_.back(); }

  /// Block at `height`; OutOfRange when above the tip.
  Result<Block> GetBlock(uint64_t height) const;

  /// Validates `block` against the tip and appends it.
  Status Append(Block block);

  /// Structural validation of `block` as a successor of `parent`.
  static Status Validate(const Block& block, const Block& parent);

  /// Locates a transaction by hash; returns (height, index).
  Result<std::pair<uint64_t, size_t>> FindTransaction(
      const crypto::Digest& tx_hash) const;

  /// Total transactions across all blocks (excluding genesis).
  size_t TotalTransactions() const;

 private:
  std::vector<Block> blocks_;
};

}  // namespace bcfl::chain
