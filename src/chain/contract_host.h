#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/contract.h"
#include "chain/state.h"
#include "chain/transaction.h"
#include "common/result.h"
#include "crypto/schnorr.h"

namespace bcfl::chain {

/// Outcome of executing one transaction.
struct TxReceipt {
  crypto::Digest tx_hash;
  bool success = false;
  std::string error;  ///< Status string when failed.
};

/// Deterministic smart-contract execution environment.
///
/// Dispatches transactions to registered contracts, enforcing signature
/// validity first. Failed transactions are recorded in receipts but do
/// not mutate state (execution runs on a scratch snapshot that is only
/// merged on success), so a block containing a bad transaction still
/// yields the same post-state on every honest miner.
class ContractHost {
 public:
  explicit ContractHost(crypto::Schnorr scheme = crypto::Schnorr());

  /// Registers a contract; names must be unique.
  Status Register(std::shared_ptr<SmartContract> contract);

  bool HasContract(const std::string& name) const;

  /// Verifies + executes one transaction against `state`.
  Result<TxReceipt> ExecuteTransaction(const Transaction& tx,
                                       ContractState* state) const;

  /// Executes a full block body in order; returns one receipt per tx.
  Result<std::vector<TxReceipt>> ExecuteBlock(
      const std::vector<Transaction>& txs, ContractState* state) const;

  const crypto::Schnorr& scheme() const { return scheme_; }

 private:
  crypto::Schnorr scheme_;
  std::map<std::string, std::shared_ptr<SmartContract>> contracts_;
};

}  // namespace bcfl::chain
