#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/contract.h"
#include "chain/sig_cache.h"
#include "chain/state.h"
#include "chain/transaction.h"
#include "common/result.h"
#include "crypto/schnorr.h"

namespace bcfl::chain {

/// Outcome of executing one transaction.
struct TxReceipt {
  crypto::Digest tx_hash;
  bool success = false;
  std::string error;  ///< Status string when failed.
};

/// Deterministic smart-contract execution environment.
///
/// Dispatches transactions to registered contracts, enforcing signature
/// validity first. Failed transactions are recorded in receipts but do
/// not mutate state (execution runs on a scratch snapshot that is only
/// merged on success), so a block containing a bad transaction still
/// yields the same post-state on every honest miner.
class ContractHost {
 public:
  explicit ContractHost(crypto::Schnorr scheme = crypto::Schnorr());

  /// Registers a contract; names must be unique.
  Status Register(std::shared_ptr<SmartContract> contract);

  bool HasContract(const std::string& name) const;

  /// Verifies + executes one transaction against `state`.
  Result<TxReceipt> ExecuteTransaction(const Transaction& tx,
                                       ContractState* state) const;

  /// Same, with the transaction hash already computed — block execution
  /// hashes the whole body once through the batched SHA path instead of
  /// re-hashing large payloads per transaction.
  Result<TxReceipt> ExecuteTransaction(const Transaction& tx,
                                       const crypto::Digest& tx_hash,
                                       ContractState* state) const;

  /// Executes a full block body in order; returns one receipt per tx.
  Result<std::vector<TxReceipt>> ExecuteBlock(
      const std::vector<Transaction>& txs, ContractState* state) const;

  /// Verifies the signatures of `txs` up front — chunked across the
  /// chain pool when one is installed, inline otherwise — and warms the
  /// shared verification cache so the serial re-execution loop never
  /// pays a modexp for a signature any replica already checked.
  /// Verdicts are not returned: execution re-asks the cache per tx, so
  /// outcomes are bit-identical for any pool size (including none).
  void PreVerifySignatures(const std::vector<Transaction>& txs) const;

  const crypto::Schnorr& scheme() const { return scheme_; }

  const SigVerifyCache& sig_cache() const { return sig_cache_; }

 private:
  /// Cache-first signature check; inserts on success (fail-closed).
  bool VerifyCached(const Transaction& tx, const crypto::Digest& hash) const;

  /// PreVerifySignatures with the body's hashes already computed.
  void PreVerifySignatures(const std::vector<Transaction>& txs,
                           const std::vector<crypto::Digest>& hashes) const;

  crypto::Schnorr scheme_;
  std::map<std::string, std::shared_ptr<SmartContract>> contracts_;
  /// Mutable: the host is shared across miners as a const pointer, and
  /// the cache is internally synchronised.
  mutable SigVerifyCache sig_cache_;
};

}  // namespace bcfl::chain
