#include "chain/contract_host.h"

namespace bcfl::chain {

ContractHost::ContractHost(crypto::Schnorr scheme)
    : scheme_(std::move(scheme)) {}

Status ContractHost::Register(std::shared_ptr<SmartContract> contract) {
  if (!contract) {
    return Status::InvalidArgument("null contract");
  }
  auto [it, inserted] = contracts_.emplace(contract->name(), contract);
  if (!inserted) {
    return Status::AlreadyExists("contract already registered: " +
                                 contract->name());
  }
  return Status::OK();
}

bool ContractHost::HasContract(const std::string& name) const {
  return contracts_.count(name) > 0;
}

Result<TxReceipt> ContractHost::ExecuteTransaction(const Transaction& tx,
                                                   ContractState* state) const {
  TxReceipt receipt;
  receipt.tx_hash = tx.Hash();

  if (!tx.VerifySignature(scheme_)) {
    receipt.success = false;
    receipt.error = "invalid signature";
    return receipt;
  }
  auto it = contracts_.find(tx.contract);
  if (it == contracts_.end()) {
    receipt.success = false;
    receipt.error = "unknown contract: " + tx.contract;
    return receipt;
  }

  // Execute on a scratch copy; merge only on success so a failed tx
  // cannot leave partial writes behind.
  ContractState scratch = state->Snapshot();
  Status status = it->second->Execute(tx, &scratch);
  if (status.ok()) {
    *state = std::move(scratch);
    receipt.success = true;
  } else {
    receipt.success = false;
    receipt.error = status.ToString();
  }
  return receipt;
}

Result<std::vector<TxReceipt>> ContractHost::ExecuteBlock(
    const std::vector<Transaction>& txs, ContractState* state) const {
  std::vector<TxReceipt> receipts;
  receipts.reserve(txs.size());
  for (const Transaction& tx : txs) {
    BCFL_ASSIGN_OR_RETURN(TxReceipt receipt, ExecuteTransaction(tx, state));
    receipts.push_back(std::move(receipt));
  }
  return receipts;
}

}  // namespace bcfl::chain
