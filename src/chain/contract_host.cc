#include "chain/contract_host.h"

namespace bcfl::chain {

ContractHost::ContractHost(crypto::Schnorr scheme)
    : scheme_(std::move(scheme)) {}

Status ContractHost::Register(std::shared_ptr<SmartContract> contract) {
  if (!contract) {
    return Status::InvalidArgument("null contract");
  }
  auto [it, inserted] = contracts_.emplace(contract->name(), contract);
  if (!inserted) {
    return Status::AlreadyExists("contract already registered: " +
                                 contract->name());
  }
  return Status::OK();
}

bool ContractHost::HasContract(const std::string& name) const {
  return contracts_.count(name) > 0;
}

bool ContractHost::VerifyCached(const Transaction& tx,
                                const crypto::Digest& hash) const {
  if (sig_cache_.Contains(hash)) return true;
  if (!tx.VerifySignature(scheme_)) return false;
  sig_cache_.Insert(hash);
  return true;
}

void ContractHost::PreVerifySignatures(
    const std::vector<Transaction>& txs) const {
  PreVerifySignatures(txs, HashTransactions(txs));
}

void ContractHost::PreVerifySignatures(
    const std::vector<Transaction>& txs,
    const std::vector<crypto::Digest>& hashes) const {
  // VerifyCached both skips known-good signatures and records fresh
  // successes; failures are left uncached for the execution loop to
  // re-establish (fail-closed).
  ThreadPool* pool = ChainPool();
  if (pool == nullptr || txs.size() < 2) {
    for (size_t i = 0; i < txs.size(); ++i) {
      (void)VerifyCached(txs[i], hashes[i]);
    }
    return;
  }
  pool->ParallelFor(txs.size(),
                    [&](size_t i) { (void)VerifyCached(txs[i], hashes[i]); });
}

Result<TxReceipt> ContractHost::ExecuteTransaction(const Transaction& tx,
                                                   ContractState* state) const {
  return ExecuteTransaction(tx, tx.Hash(), state);
}

Result<TxReceipt> ContractHost::ExecuteTransaction(const Transaction& tx,
                                                   const crypto::Digest& tx_hash,
                                                   ContractState* state) const {
  TxReceipt receipt;
  receipt.tx_hash = tx_hash;

  if (!VerifyCached(tx, receipt.tx_hash)) {
    receipt.success = false;
    receipt.error = "invalid signature";
    return receipt;
  }
  auto it = contracts_.find(tx.contract);
  if (it == contracts_.end()) {
    receipt.success = false;
    receipt.error = "unknown contract: " + tx.contract;
    return receipt;
  }

  // Execute on a scratch copy; merge only on success so a failed tx
  // cannot leave partial writes behind.
  ContractState scratch = state->Snapshot();
  Status status = it->second->Execute(tx, &scratch);
  if (status.ok()) {
    *state = std::move(scratch);
    receipt.success = true;
  } else {
    receipt.success = false;
    receipt.error = status.ToString();
  }
  return receipt;
}

Result<std::vector<TxReceipt>> ContractHost::ExecuteBlock(
    const std::vector<Transaction>& txs, ContractState* state) const {
  // One batched hash pass covers both the pre-verification cache lookups
  // and the receipts — large payloads are hashed once per execution, not
  // once per stage.
  std::vector<crypto::Digest> hashes = HashTransactions(txs);
  PreVerifySignatures(txs, hashes);
  std::vector<TxReceipt> receipts;
  receipts.reserve(txs.size());
  for (size_t i = 0; i < txs.size(); ++i) {
    BCFL_ASSIGN_OR_RETURN(TxReceipt receipt,
                          ExecuteTransaction(txs[i], hashes[i], state));
    receipts.push_back(std::move(receipt));
  }
  return receipts;
}

}  // namespace bcfl::chain
