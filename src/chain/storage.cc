#include "chain/storage.h"

#include <cstdio>
#include <filesystem>

#include "common/fsync_util.h"
#include "obs/metrics.h"

namespace bcfl::chain {

namespace {

constexpr char kMagic[4] = {'B', 'C', 'F', 'L'};
constexpr uint32_t kFormatVersion = 1;

}  // namespace

Status SaveChain(const Blockchain& chain, const std::string& path) {
  ByteWriter writer;
  writer.WriteRaw(reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic));
  writer.WriteU32(kFormatVersion);
  writer.WriteU32(static_cast<uint32_t>(chain.NumBlocks()));
  for (uint64_t h = 0; h < chain.NumBlocks(); ++h) {
    auto block = chain.GetBlock(h);
    if (!block.ok()) return block.status();
    writer.WriteBytes(block->Serialize());
  }

  std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + tmp_path);
  }
  const Bytes& buffer = writer.buffer();
  size_t written = std::fwrite(buffer.data(), 1, buffer.size(), file);
  // The rename is only atomic-durable if the tmp file's *contents* hit
  // the disk first; otherwise a power loss can promote an empty or torn
  // file to `path`.
  Status sync = (written == buffer.size()) ? FlushAndSync(file)
                                           : Status::Internal("short write");
  int close_rc = std::fclose(file);
  if (written != buffer.size() || !sync.ok() || close_rc != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("short write while saving chain");
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::Internal("rename failed: " + ec.message());
  }
  // And the rename itself is only durable once the directory entry is.
  BCFL_RETURN_IF_ERROR(SyncParentDir(path));
  obs::MetricsRegistry::Global().GetCounter("chain.storage.full_saves").Add();
  return Status::OK();
}

Result<Blockchain> LoadChain(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no chain file at " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::Internal("cannot seek chain file");
  }
  long size = std::ftell(file);
  if (size < 0 || std::fseek(file, 0, SEEK_SET) != 0) {
    std::fclose(file);
    return Status::Internal("cannot stat chain file");
  }
  Bytes buffer(static_cast<size_t>(size));
  // Bounded loop instead of one fread trusting `size`: handles EINTR
  // short reads and files larger than one stdio transfer.
  Status read = buffer.empty()
                    ? Status::OK()
                    : ReadExact(file, buffer.data(), buffer.size());
  std::fclose(file);
  if (!read.ok()) {
    return Status::Corruption("short read while loading chain: " +
                              std::string(read.message()));
  }
  if (buffer.empty()) {
    return Status::Corruption("chain file is empty");
  }

  ByteReader reader(buffer);
  BCFL_ASSIGN_OR_RETURN(Bytes magic, reader.ReadRaw(sizeof(kMagic)));
  if (!std::equal(magic.begin(), magic.end(),
                  reinterpret_cast<const uint8_t*>(kMagic))) {
    return Status::Corruption("bad magic: not a BCFL chain file");
  }
  BCFL_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kFormatVersion) {
    return Status::Unimplemented("unsupported chain format version " +
                                 std::to_string(version));
  }
  BCFL_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count == 0) {
    return Status::Corruption("chain file has no blocks");
  }

  Blockchain chain;
  for (uint32_t i = 0; i < count; ++i) {
    BCFL_ASSIGN_OR_RETURN(Bytes block_bytes, reader.ReadBytes());
    BCFL_ASSIGN_OR_RETURN(Block block, Block::Deserialize(block_bytes));
    if (i == 0) {
      // The stored genesis must match ours exactly.
      if (block.header.Hash() != MakeGenesisBlock().header.Hash()) {
        return Status::Corruption("genesis block mismatch");
      }
      continue;
    }
    BCFL_RETURN_IF_ERROR(chain.Append(std::move(block))
                             .WithContext("block " + std::to_string(i)));
  }
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes after chain data");
  }
  return chain;
}

}  // namespace bcfl::chain
