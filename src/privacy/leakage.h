#pragma once

#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace bcfl::privacy {

/// Gradient-leakage attack on unprotected FL updates (the motivation the
/// paper cites from Zhu et al., "Deep Leakage from Gradients" [6]).
///
/// For multinomial logistic regression trained by one full-batch
/// gradient-descent step from a *public* starting point W0 (the global
/// model every participant downloads), the shared update satisfies
///
///   W1 - W0 = -lr * ( X^T (P - Y) / n + l2 * W0 ),
///
/// so a curious observer who knows lr, l2 and W0 recovers
///
///   G = X^T (Y - P) / n = (W1 - W0) / lr + l2 * W0,
///
/// whose column c is a scaled, mean-subtracted image of the *average
/// class-c training example* — for a victim holding a single example,
/// the example itself. Secure aggregation defeats the attack because the
/// observer only sees masked ring elements.
///
/// Recovers G from an observed (unmasked) update.
Result<ml::Matrix> RecoverClassGradient(const ml::Matrix& w_before,
                                        const ml::Matrix& w_after,
                                        double learning_rate,
                                        double l2_penalty);

/// Strips the bias row of G and returns one reconstructed feature image
/// per class (column c of G, length = num_features). These are the
/// attacker's best estimates of per-class mean inputs (up to the shared
/// dataset mean and a positive scale).
std::vector<std::vector<double>> ExtractClassImages(
    const ml::Matrix& class_gradient);

/// Attack-quality metric: Pearson correlation between a reconstruction
/// and a reference image. > ~0.5 means the private data visibly leaked.
Result<double> ImageCorrelation(const std::vector<double>& reconstruction,
                                const std::vector<double>& reference);

}  // namespace bcfl::privacy
