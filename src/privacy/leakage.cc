#include "privacy/leakage.h"

#include <cmath>

namespace bcfl::privacy {

Result<ml::Matrix> RecoverClassGradient(const ml::Matrix& w_before,
                                        const ml::Matrix& w_after,
                                        double learning_rate,
                                        double l2_penalty) {
  if (learning_rate <= 0.0) {
    return Status::InvalidArgument("learning rate must be positive");
  }
  if (w_before.rows() != w_after.rows() ||
      w_before.cols() != w_after.cols()) {
    return Status::InvalidArgument("weight shapes differ");
  }
  // G = (W1 - W0) / lr + l2 * W0.
  ml::Matrix g = w_after;
  BCFL_RETURN_IF_ERROR(g.SubInPlace(w_before));
  g.Scale(1.0 / learning_rate);
  BCFL_RETURN_IF_ERROR(g.Axpy(l2_penalty, w_before));
  return g;
}

std::vector<std::vector<double>> ExtractClassImages(
    const ml::Matrix& class_gradient) {
  std::vector<std::vector<double>> images;
  if (class_gradient.rows() < 2) return images;
  const size_t features = class_gradient.rows() - 1;  // Row 0 is the bias.
  images.resize(class_gradient.cols());
  for (size_t c = 0; c < class_gradient.cols(); ++c) {
    images[c].resize(features);
    for (size_t f = 0; f < features; ++f) {
      images[c][f] = class_gradient.At(f + 1, c);
    }
  }
  return images;
}

Result<double> ImageCorrelation(const std::vector<double>& reconstruction,
                                const std::vector<double>& reference) {
  if (reconstruction.empty() || reconstruction.size() != reference.size()) {
    return Status::InvalidArgument(
        "images must be non-empty and equally sized");
  }
  const double n = static_cast<double>(reconstruction.size());
  double mean_a = 0, mean_b = 0;
  for (size_t i = 0; i < reconstruction.size(); ++i) {
    mean_a += reconstruction[i];
    mean_b += reference[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0, var_a = 0, var_b = 0;
  for (size_t i = 0; i < reconstruction.size(); ++i) {
    double da = reconstruction[i] - mean_a;
    double db = reference[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return Status::FailedPrecondition("correlation undefined: flat image");
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace bcfl::privacy
