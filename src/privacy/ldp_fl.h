#pragma once

#include <vector>

#include "common/result.h"
#include "fl/client.h"
#include "fl/trainer.h"
#include "privacy/mechanisms.h"

namespace bcfl::privacy {

/// Configuration of LDP-based federated learning — the alternative
/// privacy approach the paper's related work (Sect. II-B) surveys and
/// rejects: "the accumulated noises make the model not very useful".
struct LdpFlConfig {
  fl::FlConfig fl;
  /// Per-round, per-client privacy budget.
  DpParams per_round;
  /// L2 clipping bound applied to the *update delta* before noising.
  double clip_norm = 1.0;
  uint64_t noise_seed = 17;
};

/// Result of an LDP-FL run, including the accumulated privacy cost.
struct LdpFlRunResult {
  ml::Matrix global_weights;
  std::vector<ml::Matrix> per_round_globals;
  DpParams total_basic;       ///< Basic composition over all rounds.
  DpParams total_advanced;    ///< Advanced composition.
};

/// Local-differential-privacy FL driver: every client clips its update
/// delta (w_local - w_global) to `clip_norm` and adds Gaussian noise
/// calibrated to `per_round` *before* sharing, so the server (or anyone
/// on the blockchain) never sees a raw update. Implemented to reproduce
/// the utility/privacy trade-off that motivates the paper's choice of
/// secure aggregation instead.
class LdpFederatedTrainer {
 public:
  LdpFederatedTrainer(std::vector<fl::FlClient> clients, LdpFlConfig config);

  /// Runs the configured number of rounds from a zero model.
  Result<LdpFlRunResult> Run() const;

 private:
  std::vector<fl::FlClient> clients_;
  LdpFlConfig config_;
};

}  // namespace bcfl::privacy
