#pragma once

#include <cstddef>

#include "common/result.h"
#include "common/rng.h"
#include "ml/matrix.h"

namespace bcfl::privacy {

/// Differential-privacy parameters of a single release.
struct DpParams {
  double epsilon = 1.0;
  double delta = 1e-5;
};

/// Clips `m` to L2 norm at most `clip_norm` (in place); returns the
/// original norm. This bounds the sensitivity of a model update before
/// noising — the standard first step of DP-SGD-style mechanisms.
double ClipL2(ml::Matrix* m, double clip_norm);

/// The Gaussian mechanism: returns the noise standard deviation that
/// makes an L2-sensitivity-`sensitivity` release (eps, delta)-DP,
/// sigma = sqrt(2 ln(1.25/delta)) * sensitivity / eps (classic analytic
/// bound, valid for eps <= 1; conservative above).
Result<double> GaussianSigma(DpParams params, double sensitivity);

/// Adds i.i.d. N(0, sigma^2) noise to every entry.
void AddGaussianNoise(ml::Matrix* m, double sigma, Xoshiro256* rng);

/// The Laplace mechanism: b = sensitivity / eps for pure eps-DP over an
/// L1-sensitivity-`sensitivity` release.
Result<double> LaplaceScale(double epsilon, double sensitivity);

/// Adds i.i.d. Laplace(0, scale) noise to every entry.
void AddLaplaceNoise(ml::Matrix* m, double scale, Xoshiro256* rng);

/// Tracks cumulative privacy loss over repeated releases.
///
/// Supports the two classic composition bounds:
///  - basic: eps_total = sum eps_i, delta_total = sum delta_i.
///  - advanced (Dwork-Rothblum-Vadhan): for k releases of the same
///    (eps, delta): eps_total = eps * sqrt(2k ln(1/delta')) +
///    k*eps*(e^eps - 1), with an extra delta' slack.
class PrivacyAccountant {
 public:
  PrivacyAccountant() = default;

  /// Records one (eps, delta)-DP release.
  void Record(DpParams params);

  size_t num_releases() const { return releases_; }

  /// Basic composition over everything recorded.
  DpParams BasicComposition() const;

  /// Advanced composition assuming homogeneous releases (uses the max
  /// recorded eps); `delta_slack` is the additional delta' term.
  Result<DpParams> AdvancedComposition(double delta_slack = 1e-6) const;

 private:
  size_t releases_ = 0;
  double sum_epsilon_ = 0;
  double sum_delta_ = 0;
  double max_epsilon_ = 0;
};

/// Distributed-noise parameters (Goryczka & Xiong, ref [13] of the
/// paper): each of the n clients adds N(0, sigma^2 / n) so the *sum*
/// carries N(0, sigma^2) — central-DP noise magnitude with no trusted
/// aggregator, when combined with secure aggregation.
double DistributedNoiseShareSigma(double total_sigma, size_t num_clients);

}  // namespace bcfl::privacy
