#include "privacy/ldp_fl.h"

#include "fl/fedavg.h"

namespace bcfl::privacy {

LdpFederatedTrainer::LdpFederatedTrainer(std::vector<fl::FlClient> clients,
                                         LdpFlConfig config)
    : clients_(std::move(clients)), config_(config) {}

Result<LdpFlRunResult> LdpFederatedTrainer::Run() const {
  if (clients_.empty()) {
    return Status::FailedPrecondition("no clients registered");
  }
  BCFL_ASSIGN_OR_RETURN(
      double sigma, GaussianSigma(config_.per_round, config_.clip_norm));

  size_t features = clients_[0].data().num_features();
  int classes = clients_[0].data().num_classes();
  ml::Matrix global(features + 1, static_cast<size_t>(classes));

  Xoshiro256 noise_rng(config_.noise_seed);
  PrivacyAccountant accountant;
  LdpFlRunResult result;

  for (size_t round = 0; round < config_.fl.rounds; ++round) {
    std::vector<ml::Matrix> noisy_locals;
    noisy_locals.reserve(clients_.size());
    for (const auto& client : clients_) {
      BCFL_ASSIGN_OR_RETURN(ml::Matrix local, client.LocalUpdate(global));
      // Privatise the *delta*: clip, noise, re-add the public global.
      ml::Matrix delta = local;
      BCFL_RETURN_IF_ERROR(delta.SubInPlace(global));
      ClipL2(&delta, config_.clip_norm);
      AddGaussianNoise(&delta, sigma, &noise_rng);
      ml::Matrix noisy = global;
      BCFL_RETURN_IF_ERROR(noisy.AddInPlace(delta));
      noisy_locals.push_back(std::move(noisy));
      accountant.Record(config_.per_round);
    }
    BCFL_ASSIGN_OR_RETURN(global, fl::FedAvg(noisy_locals));
    result.per_round_globals.push_back(global);
  }

  result.global_weights = std::move(global);
  result.total_basic = accountant.BasicComposition();
  BCFL_ASSIGN_OR_RETURN(result.total_advanced,
                        accountant.AdvancedComposition());
  return result;
}

}  // namespace bcfl::privacy
