#include "privacy/mechanisms.h"

#include <cmath>

namespace bcfl::privacy {

double ClipL2(ml::Matrix* m, double clip_norm) {
  double norm = m->FrobeniusNorm();
  if (norm > clip_norm && norm > 0.0) {
    m->Scale(clip_norm / norm);
  }
  return norm;
}

Result<double> GaussianSigma(DpParams params, double sensitivity) {
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (params.delta <= 0.0 || params.delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  return std::sqrt(2.0 * std::log(1.25 / params.delta)) * sensitivity /
         params.epsilon;
}

void AddGaussianNoise(ml::Matrix* m, double sigma, Xoshiro256* rng) {
  if (sigma <= 0.0) return;
  for (double& v : m->mutable_data()) {
    v += rng->NextGaussian(0.0, sigma);
  }
}

Result<double> LaplaceScale(double epsilon, double sensitivity) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  return sensitivity / epsilon;
}

void AddLaplaceNoise(ml::Matrix* m, double scale, Xoshiro256* rng) {
  if (scale <= 0.0) return;
  for (double& v : m->mutable_data()) {
    // Inverse-CDF sampling: X = -b * sgn(u) * ln(1 - 2|u|), u ~ U(-1/2, 1/2).
    double u = rng->NextDouble() - 0.5;
    double sign = u < 0 ? -1.0 : 1.0;
    v += -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
  }
}

void PrivacyAccountant::Record(DpParams params) {
  releases_++;
  sum_epsilon_ += params.epsilon;
  sum_delta_ += params.delta;
  max_epsilon_ = std::max(max_epsilon_, params.epsilon);
}

DpParams PrivacyAccountant::BasicComposition() const {
  return DpParams{sum_epsilon_, sum_delta_};
}

Result<DpParams> PrivacyAccountant::AdvancedComposition(
    double delta_slack) const {
  if (delta_slack <= 0.0 || delta_slack >= 1.0) {
    return Status::InvalidArgument("delta_slack must be in (0, 1)");
  }
  if (releases_ == 0) {
    return DpParams{0.0, 0.0};
  }
  double k = static_cast<double>(releases_);
  double eps = max_epsilon_;
  double eps_total = eps * std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) +
                     k * eps * (std::exp(eps) - 1.0);
  return DpParams{eps_total, sum_delta_ + delta_slack};
}

double DistributedNoiseShareSigma(double total_sigma, size_t num_clients) {
  if (num_clients == 0) return total_sigma;
  // Sum of n independent N(0, s^2) is N(0, n s^2): per-client share is
  // total / sqrt(n).
  return total_sigma / std::sqrt(static_cast<double>(num_clients));
}

}  // namespace bcfl::privacy
