#pragma once

#include <cstdint>

#include "common/result.h"
#include "ml/dataset.h"

namespace bcfl::data {

/// Configuration for the synthetic handwritten-digits generator.
struct DigitsConfig {
  /// Total instances — matches the UCI Optical Recognition of Handwritten
  /// Digits dataset used in the paper (5620 instances).
  size_t num_instances = 5620;
  /// RNG seed; the whole dataset is a pure function of this seed.
  uint64_t seed = 42;
  /// Per-sample random translation in pixels ([-max_shift, max_shift]).
  int max_shift = 1;
  /// Std-dev of per-pixel intensity jitter (before clamping to [0, 16]).
  double pixel_jitter = 1.5;
  /// Probability of dropping a pen stroke pixel to half intensity,
  /// simulating handwriting variability.
  double stroke_dropout = 0.08;
};

/// Deterministic stand-in for the UCI digits dataset (substitution
/// documented in DESIGN.md).
///
/// Ten hand-authored 8x8 glyph templates (one per digit class) are
/// perturbed per sample with translation, stroke dropout and Gaussian
/// pixel jitter, then clamped to the UCI value range [0, 16]. The result
/// matches the original dataset's shape exactly: 64 attributes, 10
/// near-balanced classes, and a smooth accuracy-vs-noise profile, which
/// is all the paper's experiments rely on.
class DigitsGenerator {
 public:
  explicit DigitsGenerator(DigitsConfig config = {}) : config_(config) {}

  /// Generates the full dataset. Classes are assigned round-robin so
  /// counts differ by at most one.
  ml::Dataset Generate() const;

  /// The clean 8x8 template for `digit` (row-major, values 0..16).
  /// Exposed for tests and visualisation. `digit` must be in [0, 10).
  static Result<std::vector<double>> Template(int digit);

  static constexpr size_t kImageSize = 8;
  static constexpr size_t kNumFeatures = kImageSize * kImageSize;
  static constexpr int kNumClasses = 10;
  static constexpr double kMaxIntensity = 16.0;

 private:
  DigitsConfig config_;
};

/// Renders one 64-value sample as ASCII art (8 lines), for examples and
/// debugging.
std::string RenderDigit(const double* pixels);

}  // namespace bcfl::data
