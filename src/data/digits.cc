#include "data/digits.h"

#include <algorithm>
#include <array>
#include <string>

namespace bcfl::data {

namespace {

// Hand-authored 8x8 glyphs. Characters map to pen intensity:
// ' ' = 0, '.' = 4, '+' = 8, '*' = 12, '#' = 16.
// The glyphs are deliberately distinct in stroke topology so that a
// linear classifier separates clean samples well and degrades smoothly
// as Gaussian noise is added — mirroring the UCI digits behaviour.
constexpr std::array<std::array<const char*, 8>, 10> kGlyphs = {{
    // 0
    {{"  .##.  ",
      " #*..*# ",
      " #.  .# ",
      "#.    .#",
      "#.    .#",
      " #.  .# ",
      " #*..*# ",
      "  .##.  "}},
    // 1
    {{"   .#   ",
      "  .##   ",
      " #.##   ",
      "   ##   ",
      "   ##   ",
      "   ##   ",
      "   ##   ",
      " ###### "}},
    // 2
    {{"  .###. ",
      " #.  .# ",
      "     .# ",
      "    .#. ",
      "   .#.  ",
      "  .#.   ",
      " .#.    ",
      " ###### "}},
    // 3
    {{" .####. ",
      "     .# ",
      "     .# ",
      "  .###. ",
      "     .# ",
      "     .# ",
      " #.  .# ",
      " .####. "}},
    // 4
    {{"    .## ",
      "   .#.# ",
      "  .#. # ",
      " .#.  # ",
      " ###### ",
      "      # ",
      "      # ",
      "      # "}},
    // 5
    {{" ###### ",
      " #.     ",
      " #.     ",
      " #####. ",
      "     .# ",
      "     .# ",
      " #.  .# ",
      " .####. "}},
    // 6
    {{"  .###. ",
      " #.     ",
      "#.      ",
      "#.###.  ",
      "##.  .# ",
      "#.    # ",
      " #.  .# ",
      " .####. "}},
    // 7
    {{" ###### ",
      "     .# ",
      "     #. ",
      "    .#  ",
      "    #.  ",
      "   .#   ",
      "   #.   ",
      "   #    "}},
    // 8
    {{" .####. ",
      " #.  .# ",
      " #.  .# ",
      " .####. ",
      " #.  .# ",
      " #.  .# ",
      " #.  .# ",
      " .####. "}},
    // 9
    {{" .####. ",
      " #.  .# ",
      " #.   # ",
      " .#####.",
      "      .#",
      "      .#",
      "     .# ",
      " .###.  "}},
}};

double CharToIntensity(char c) {
  switch (c) {
    case ' ':
      return 0.0;
    case '.':
      return 4.0;
    case '+':
      return 8.0;
    case '*':
      return 12.0;
    case '#':
      return 16.0;
    default:
      return 0.0;
  }
}

}  // namespace

Result<std::vector<double>> DigitsGenerator::Template(int digit) {
  if (digit < 0 || digit >= kNumClasses) {
    return Status::InvalidArgument("digit must be in [0, 10)");
  }
  std::vector<double> out(kNumFeatures, 0.0);
  const auto& glyph = kGlyphs[static_cast<size_t>(digit)];
  for (size_t r = 0; r < kImageSize; ++r) {
    for (size_t c = 0; c < kImageSize; ++c) {
      out[r * kImageSize + c] = CharToIntensity(glyph[r][c]);
    }
  }
  return out;
}

ml::Dataset DigitsGenerator::Generate() const {
  Xoshiro256 rng(config_.seed);

  // Pre-render the clean templates.
  std::array<std::vector<double>, kNumClasses> templates;
  for (int d = 0; d < kNumClasses; ++d) {
    templates[static_cast<size_t>(d)] = Template(d).value();
  }

  ml::Matrix features(config_.num_instances, kNumFeatures);
  std::vector<int> labels(config_.num_instances);

  for (size_t i = 0; i < config_.num_instances; ++i) {
    int digit = static_cast<int>(i % kNumClasses);
    labels[i] = digit;
    const std::vector<double>& tpl = templates[static_cast<size_t>(digit)];

    // Random translation within [-max_shift, max_shift] per axis.
    int span = 2 * config_.max_shift + 1;
    int dr = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(span))) -
             config_.max_shift;
    int dc = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(span))) -
             config_.max_shift;

    double* row = features.Row(i);
    for (size_t r = 0; r < kImageSize; ++r) {
      for (size_t c = 0; c < kImageSize; ++c) {
        int src_r = static_cast<int>(r) - dr;
        int src_c = static_cast<int>(c) - dc;
        double v = 0.0;
        if (src_r >= 0 && src_r < static_cast<int>(kImageSize) &&
            src_c >= 0 && src_c < static_cast<int>(kImageSize)) {
          v = tpl[static_cast<size_t>(src_r) * kImageSize +
                  static_cast<size_t>(src_c)];
        }
        // Stroke dropout: weaken a pen pixel occasionally.
        if (v > 0.0 && rng.NextDouble() < config_.stroke_dropout) {
          v *= 0.5;
        }
        v += rng.NextGaussian(0.0, config_.pixel_jitter);
        row[r * kImageSize + c] = std::clamp(v, 0.0, kMaxIntensity);
      }
    }
  }

  return ml::Dataset(std::move(features), std::move(labels), kNumClasses);
}

std::string RenderDigit(const double* pixels) {
  static constexpr const char* kShades = " .:-=+*#%@";
  std::string out;
  out.reserve(DigitsGenerator::kImageSize *
              (DigitsGenerator::kImageSize + 1));
  for (size_t r = 0; r < DigitsGenerator::kImageSize; ++r) {
    for (size_t c = 0; c < DigitsGenerator::kImageSize; ++c) {
      double v = pixels[r * DigitsGenerator::kImageSize + c];
      int shade = static_cast<int>(
          std::clamp(v / DigitsGenerator::kMaxIntensity, 0.0, 1.0) * 9.0);
      out.push_back(kShades[shade]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace bcfl::data
