#pragma once

#include <vector>

#include "common/status.h"
#include "common/rng.h"
#include "ml/dataset.h"

namespace bcfl::data {

/// Adds i.i.d. Gaussian noise N(0, sigma^2) to every feature of `dataset`
/// in place. Used to model data quality.
void AddGaussianNoise(ml::Dataset* dataset, double sigma, Xoshiro256* rng);

/// Applies the paper's quality gradient across owners: owner i receives
/// noise N(0, (sigma * i)^2), so owner 0 keeps the best data and quality
/// degrades linearly with the index (Sect. V-A-1).
Status ApplyQualityGradient(std::vector<ml::Dataset>* owners, double sigma,
                            uint64_t seed);

/// Flips each label to a uniformly random different class with
/// probability `flip_prob` — an adversarial-participant model used by the
/// robustness extensions.
Status FlipLabels(ml::Dataset* dataset, double flip_prob, Xoshiro256* rng);

}  // namespace bcfl::data
