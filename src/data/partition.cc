#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bcfl::data {

namespace {

Result<std::vector<ml::Dataset>> SubsetsFromIndexGroups(
    const ml::Dataset& dataset,
    const std::vector<std::vector<size_t>>& groups) {
  std::vector<ml::Dataset> parts;
  parts.reserve(groups.size());
  for (const auto& indices : groups) {
    if (indices.empty()) {
      return Status::InvalidArgument(
          "partition produced an empty part; too many parts for dataset");
    }
    BCFL_ASSIGN_OR_RETURN(ml::Dataset part, dataset.Subset(indices));
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace

Result<std::vector<ml::Dataset>> PartitionUniform(const ml::Dataset& dataset,
                                                  size_t num_parts,
                                                  Xoshiro256* rng) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be >= 1");
  }
  if (num_parts > dataset.num_examples()) {
    return Status::InvalidArgument("more parts than examples");
  }
  std::vector<size_t> perm = rng->Permutation(dataset.num_examples());
  std::vector<std::vector<size_t>> groups(num_parts);
  for (size_t i = 0; i < perm.size(); ++i) {
    groups[i % num_parts].push_back(perm[i]);
  }
  return SubsetsFromIndexGroups(dataset, groups);
}

Result<std::vector<ml::Dataset>> PartitionWeighted(
    const ml::Dataset& dataset, const std::vector<double>& fractions,
    Xoshiro256* rng) {
  if (fractions.empty()) {
    return Status::InvalidArgument("no fractions given");
  }
  double total = std::accumulate(fractions.begin(), fractions.end(), 0.0);
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("fractions must sum to 1");
  }
  for (double f : fractions) {
    if (f <= 0.0) return Status::InvalidArgument("fractions must be positive");
  }
  std::vector<size_t> perm = rng->Permutation(dataset.num_examples());
  std::vector<std::vector<size_t>> groups(fractions.size());
  size_t cursor = 0;
  for (size_t p = 0; p < fractions.size(); ++p) {
    size_t count = (p + 1 == fractions.size())
                       ? perm.size() - cursor
                       : static_cast<size_t>(std::round(
                             fractions[p] * static_cast<double>(perm.size())));
    count = std::min(count, perm.size() - cursor);
    for (size_t i = 0; i < count; ++i) groups[p].push_back(perm[cursor++]);
  }
  return SubsetsFromIndexGroups(dataset, groups);
}

Result<std::vector<ml::Dataset>> PartitionLabelSkew(const ml::Dataset& dataset,
                                                    size_t num_parts,
                                                    double skew,
                                                    Xoshiro256* rng) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be >= 1");
  }
  if (skew < 0.0 || skew > 1.0) {
    return Status::InvalidArgument("skew must be in [0, 1]");
  }
  int num_classes = dataset.num_classes();

  // Bucket example indices by class, shuffled.
  std::vector<std::vector<size_t>> by_class(
      static_cast<size_t>(num_classes));
  for (size_t i = 0; i < dataset.num_examples(); ++i) {
    by_class[static_cast<size_t>(dataset.labels()[i])].push_back(i);
  }
  for (auto& bucket : by_class) rng->Shuffle(&bucket);

  // Each part prefers classes {p mod C}; with probability `skew` an
  // example goes to a part preferring its class, otherwise uniform.
  std::vector<std::vector<size_t>> groups(num_parts);
  for (int c = 0; c < num_classes; ++c) {
    // Parts preferring class c.
    std::vector<size_t> preferring;
    for (size_t p = 0; p < num_parts; ++p) {
      if (static_cast<int>(p % static_cast<size_t>(num_classes)) == c) {
        preferring.push_back(p);
      }
    }
    for (size_t idx : by_class[static_cast<size_t>(c)]) {
      size_t target;
      if (!preferring.empty() && rng->NextDouble() < skew) {
        target = preferring[rng->NextBounded(preferring.size())];
      } else {
        target = rng->NextBounded(num_parts);
      }
      groups[target].push_back(idx);
    }
  }
  return SubsetsFromIndexGroups(dataset, groups);
}

}  // namespace bcfl::data
