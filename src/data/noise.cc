#include "data/noise.h"

namespace bcfl::data {

void AddGaussianNoise(ml::Dataset* dataset, double sigma, Xoshiro256* rng) {
  if (sigma <= 0.0) return;
  for (double& v : dataset->mutable_features().mutable_data()) {
    v += rng->NextGaussian(0.0, sigma);
  }
}

Status ApplyQualityGradient(std::vector<ml::Dataset>* owners, double sigma,
                            uint64_t seed) {
  if (owners == nullptr || owners->empty()) {
    return Status::InvalidArgument("no owner datasets");
  }
  if (sigma < 0.0) {
    return Status::InvalidArgument("sigma must be non-negative");
  }
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < owners->size(); ++i) {
    // d_i += N(0, sigma * i): owner 0 stays clean.
    AddGaussianNoise(&(*owners)[i], sigma * static_cast<double>(i), &rng);
  }
  return Status::OK();
}

Status FlipLabels(ml::Dataset* dataset, double flip_prob, Xoshiro256* rng) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("null dataset");
  }
  if (flip_prob < 0.0 || flip_prob > 1.0) {
    return Status::InvalidArgument("flip_prob must be in [0, 1]");
  }
  int num_classes = dataset->num_classes();
  if (num_classes < 2) {
    return Status::FailedPrecondition("need >= 2 classes to flip labels");
  }
  for (int& label : dataset->mutable_labels()) {
    if (rng->NextDouble() < flip_prob) {
      // Pick a different class uniformly.
      int offset = 1 + static_cast<int>(rng->NextBounded(
                           static_cast<uint64_t>(num_classes - 1)));
      label = (label + offset) % num_classes;
    }
  }
  return Status::OK();
}

}  // namespace bcfl::data
