#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/dataset.h"

namespace bcfl::data {

/// Splits `dataset` uniformly at random into `num_parts` horizontal
/// partitions (the paper's "randomly split the training dataset into 9
/// subsets to simulate 9 data owners"). Part sizes differ by at most one.
Result<std::vector<ml::Dataset>> PartitionUniform(const ml::Dataset& dataset,
                                                  size_t num_parts,
                                                  Xoshiro256* rng);

/// Splits with explicit fractional sizes (must be positive and sum to ~1).
/// Useful for ablations with unequal owner sizes.
Result<std::vector<ml::Dataset>> PartitionWeighted(
    const ml::Dataset& dataset, const std::vector<double>& fractions,
    Xoshiro256* rng);

/// Label-skewed partition: each part draws `skew` of its examples from a
/// preferred subset of classes and the rest uniformly. `skew` in [0, 1];
/// 0 reduces to uniform. Models non-IID cross-silo data for extensions.
Result<std::vector<ml::Dataset>> PartitionLabelSkew(const ml::Dataset& dataset,
                                                    size_t num_parts,
                                                    double skew,
                                                    Xoshiro256* rng);

}  // namespace bcfl::data
