#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chain/block_log.h"
#include "chain/consensus.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/fl_contract.h"
#include "core/params.h"
#include "core/round_engine.h"
#include "data/digits.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fl/client.h"
#include "ml/dataset.h"
#include "obs/round_ledger.h"
#include "secureagg/participant.h"

namespace bcfl::core {

/// End-to-end configuration of a BCFL session.
struct BcflConfig {
  uint32_t num_owners = 9;
  size_t num_miners = 5;
  uint32_t rounds = 10;
  uint32_t num_groups = 3;
  uint64_t seed = 42;    ///< Master seed: data, keys, partitions.
  uint64_t seed_e = 7;   ///< Contribution-evaluation permutation seed.
  uint32_t fixed_point_bits = 24;
  /// Data-quality gradient: owner i gets N(0, sigma*i) feature noise.
  double sigma = 0.0;
  ml::LogisticRegressionConfig local;
  data::DigitsConfig digits;
  chain::ConsensusConfig consensus;
  /// When non-zero, owner 0 funds this reward pool at setup and the
  /// coordinator triggers on-chain distribution + claims after the
  /// final round (see RewardContract).
  uint64_t reward_pool = 0;
  /// Chaos schedule injected into the network, the consensus engine and
  /// the round driver. Empty = fault-free run (the default). Plans must
  /// pass `FaultPlan::Validate` for this roster and threshold.
  fault::FaultPlan fault_plan;
  /// Shamir threshold for the owners' recovery shares;
  /// 0 = floor(num_owners / 2) + 1.
  size_t secure_agg_threshold = 0;
  /// L2 norm bound on decoded group aggregates, agreed at setup (PR 9).
  /// When positive, the contract's norm gate holds a round open whenever
  /// a group's decoded model exceeds the bound, and the coordinator's
  /// audit slashes the violating owner. 0 disables the gate.
  double update_norm_bound = 0.0;
  /// Per-round submission deadline on the simulated clock; an owner whose
  /// update has not landed by then is declared dropped and recovered.
  uint64_t submit_deadline_us = 2'000'000;
  /// Base of the exponential backoff between submission attempts.
  uint64_t submit_backoff_us = 10'000;
  /// Submission attempts before the coordinator gives an owner up.
  uint32_t max_submit_attempts = 5;
  /// How the per-owner phase of each round executes. kParallel fans
  /// train/mask/payload work across a thread pool and replays submissions
  /// in canonical owner order — bit-identical to kSerial for any pool
  /// size. Overridable at runtime with BCFL_ROUND_REFERENCE=1 (forces
  /// serial, no rebuild).
  RoundEngineMode round_engine = RoundEngineMode::kParallel;
  /// Worker threads for the round engine's fan-out; 0 = one per hardware
  /// thread. Ignored in serial mode.
  size_t pool_threads = 0;
  /// Retain every owner's full local model per round in
  /// `BcflRunResult::per_round_locals`. Off by default: retention costs
  /// O(rounds * owners * model) memory and only experiments comparing
  /// against off-chain baselines need it.
  bool keep_local_models = false;
};

/// Durable-session persistence (PR 10): where the append-only block log,
/// the crash-consistent session checkpoint and the kill journal live, how
/// often checkpoints are taken, and whether this process resumes a killed
/// session instead of starting a fresh one.
struct PersistenceOptions {
  /// Directory holding blocks.log, checkpoint.bckp and kill_journal.
  /// Created if absent.
  std::string state_dir;
  /// A checkpoint is written after every K-th completed round (plus one
  /// at attach time, so a kill at round 0 is already resumable). 0 is
  /// normalised to 1.
  uint64_t checkpoint_every = 1;
  /// Restore the session from `state_dir`. Without this flag a state dir
  /// that already holds committed blocks is refused, never overwritten.
  bool resume = false;
};

/// Everything a full on-chain session produces.
struct BcflRunResult {
  ml::Matrix global_weights;                     ///< Final W_G.
  std::vector<double> total_sv;                  ///< On-chain sv_total per owner.
  std::vector<std::vector<double>> per_round_sv; ///< [round][owner].
  std::vector<double> round_accuracies;          ///< Global model test accuracy.
  /// Owner-side record of local weights (each owner knows its own) —
  /// used by experiments to compare against off-chain baselines. Only
  /// populated when `BcflConfig::keep_local_models` is set.
  std::vector<std::vector<ml::Matrix>> per_round_locals;
  size_t blocks_committed = 0;
  size_t total_transactions = 0;
  /// On-chain reward claimed by each owner (empty when no pool was
  /// configured).
  std::vector<uint64_t> rewards;
  /// Owners retired by on-chain recoveries: owner id -> round in which
  /// the dropout was recovered. Their total SV is frozen from that round
  /// on (every later round scores them 0).
  std::map<uint32_t, uint64_t> retired_at;
  /// Committed recover transactions across the run.
  size_t recover_transactions = 0;
  /// Submission attempts that were retried after a loss.
  size_t submission_retries = 0;
  /// Owners convicted by an on-chain slash: owner id -> conviction round.
  /// Slashed owners also appear in `retired_at` (a conviction retires).
  std::map<uint32_t, uint64_t> slashed_at;
  /// Committed slash transactions across the run.
  size_t slash_transactions = 0;
  /// Reward units burned at distribution because their owner was slashed
  /// (0 when no pool was configured or nobody was slashed).
  uint64_t reward_burned = 0;
};

/// Drives the full protocol of Sect. IV-B on the simulated blockchain:
/// off-chain setup (key generation, parameter agreement, setup tx),
/// R training rounds (local training -> masked submissions as signed
/// transactions -> consensus -> on-chain aggregation + GroupSV), and
/// final contribution totals read back from the canonical state.
class BcflCoordinator {
 public:
  /// Builds the session: synthesizes the digits dataset, splits 8:2,
  /// partitions the training set over the owners, applies the quality
  /// gradient, generates all key material and commits the setup
  /// transaction through consensus.
  static Result<std::unique_ptr<BcflCoordinator>> Create(BcflConfig config);

  /// Runs all `config.rounds` FL rounds through the chain.
  Result<BcflRunResult> Run();

  const BcflConfig& config() const { return config_; }
  const ml::Dataset& test_set() const { return test_set_; }
  /// The owners' private partitions (for off-chain baselines in
  /// experiments; the chain itself never sees them).
  std::vector<ml::Dataset> OwnerDatasets() const;
  chain::ConsensusEngine& engine() { return *engine_; }

  /// Installs a Byzantine behaviour on miner `miner_idx` (e.g. an
  /// SV-inflating leader for the adversarial experiments).
  Status InstallMinerBehavior(size_t miner_idx, chain::MinerBehavior behavior);

  /// The chaos injector driving this run (nullptr for fault-free runs).
  fault::FaultInjector* fault_injector() { return injector_.get(); }
  /// Shamir threshold of the distributed recovery shares.
  size_t recovery_threshold() const { return threshold_; }
  /// The round-engine mode actually in effect (config +
  /// BCFL_ROUND_REFERENCE override, resolved at Create).
  RoundEngineMode round_engine_mode() const { return engine_mode_; }
  /// Pool threads in use (1 in serial mode / no pool).
  size_t pool_threads_in_use() const {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

  /// Attaches an opened protocol ledger: Run() then appends one
  /// structured record per FL round (phase latencies, sig-cache hit
  /// rate, fault events, dropouts/recoveries, the round's SV vector with
  /// rolling volatility). Non-owning; the ledger must outlive Run().
  /// nullptr (the default) disables ledger emission.
  void set_round_ledger(obs::RoundLedger* ledger) { ledger_ = ledger; }

  // --- Durability & restart (PR 10). -----------------------------------

  /// Attaches durable persistence after Create(). Fresh mode seeds the
  /// state dir: the setup block goes into the append-only log, an initial
  /// checkpoint (next_round = 0) is written, and from then on every block
  /// the engine commits is fsynced to the log *before* the commit is
  /// acknowledged. Resume mode restores a killed session instead: the
  /// checkpoint is loaded fail-closed, its fingerprint checked against
  /// this configuration, the logged blocks past the checkpoint truncated,
  /// heights 2..tip replayed into the freshly re-created engine, and the
  /// session RNG / network / roster / counters restored — Run() then
  /// continues from `start_round()` bit-identically to a run that was
  /// never killed.
  Status AttachPersistence(const PersistenceOptions& options);

  /// First FL round Run() will execute (non-zero only after a resume).
  uint64_t start_round() const { return start_round_; }
  /// Full-precision per-round SV vectors restored from the checkpoint
  /// (one entry per completed round; empty unless resumed). Feed this to
  /// RoundLedger::OpenForResume so the rolling-volatility window holds
  /// the exact doubles, not the ledger's %.6f-rounded values.
  const std::vector<std::vector<double>>& restored_sv_history() const {
    return seeded_result_.per_round_sv;
  }
  /// True when Run() stopped because an armed `kill` fault fired (only
  /// observable in-process when the kill handler declines to exit).
  bool was_killed() const { return was_killed_; }
  uint64_t killed_round() const { return killed_round_; }
  /// Invoked when an armed `kill` fault fires, after the kill has been
  /// journaled to the state dir. bcfl_sim installs std::_Exit here to
  /// model a hard process death; if the handler returns (or none is set),
  /// Run() surfaces FailedPrecondition instead.
  void set_kill_handler(std::function<void(uint64_t)> handler) {
    kill_handler_ = std::move(handler);
  }

  /// Hash of every determinism-relevant config knob (seeds, roster,
  /// rounds, deadlines, fault plan, ...). A checkpoint records it and
  /// resume refuses a checkpoint taken under a different configuration.
  uint64_t ConfigFingerprint() const;

 private:
  BcflCoordinator() = default;

  /// Builds, signs and submits one owner's masked update for `round`.
  Status SubmitOwnerUpdate(uint32_t owner, uint64_t round,
                           const ml::Matrix& local_weights,
                           const std::vector<std::vector<size_t>>& groups);

  /// Submission with deadline/retry semantics: lost attempts back off
  /// exponentially on the simulated clock until the round deadline.
  /// Returns false when the owner missed the deadline (a dropout).
  Result<bool> SubmitWithRetries(uint32_t owner, uint64_t round,
                                 const ml::Matrix& local_weights,
                                 const std::vector<std::vector<size_t>>& groups,
                                 uint64_t deadline_us,
                                 BcflRunResult* result);

  /// Replay half of the parallel path: same deadline/retry/backoff state
  /// machine as SubmitWithRetries, but the masked payload was prebuilt by
  /// the round engine — only signing (which consumes the session RNG) and
  /// submission happen here, on the coordinator thread, so the clock and
  /// RNG sequences match the serial path exactly.
  Result<bool> SubmitPreparedWithRetries(uint32_t owner, uint64_t round,
                                         const Bytes& payload,
                                         uint64_t deadline_us,
                                         BcflRunResult* result);

  /// Drives the on-chain `recover` transaction for every owner in
  /// `missing`: collects Shamir shares from online survivors (fails
  /// closed below the threshold), reconstructs the DH private key and
  /// submits the recovery. Successfully recovered owners are retired.
  /// Every revealed share is Feldman-verified against the dealer's setup
  /// commitment first; a share that fails is skipped (the next holder
  /// serves) and its sender is slashed with the forged share + its reveal
  /// signature as on-chain evidence (PR 9).
  Status RecoverMissingOwners(uint64_t round,
                              const std::set<uint32_t>& missing,
                              BcflRunResult* result);

  /// Builds (but does not submit) one owner's masked submit_update
  /// payload, byzantine perturbations included — the serial twin of the
  /// round engine's per-slot preparation.
  Result<Bytes> BuildSubmitPayload(
      uint32_t owner, uint64_t round, const ml::Matrix& local_weights,
      const std::vector<std::vector<size_t>>& groups);

  /// Lowest online, un-retired owner other than `excluding` — the party
  /// that signs accusation transactions (any registered owner may; the
  /// evidence, not the sender, carries the conviction).
  Result<uint32_t> FindReporter(uint32_t excluding) const;

  /// Signs and submits one slash transaction, retires the offender
  /// locally and records the conviction in `result`.
  Status SubmitSlash(uint64_t round, uint32_t offender, uint32_t reporter,
                     const Bytes& payload, const char* what,
                     BcflRunResult* result);

  /// Equivocation handling at submission time: signs the two conflicting
  /// submit_update transactions the owner produced (the second a
  /// tampered twin of `payload`), submits *neither* as an update and
  /// accuses with both as evidence instead — so the offender never lands
  /// an update and the round degrades exactly as if it had crashed.
  Status SlashEquivocator(uint32_t owner, uint64_t round,
                          const Bytes& payload, BcflRunResult* result);

  /// Norm-gate audit: scans the round's `flagged/` markers, unmasks each
  /// flagged group's submitters off-chain (modelling the per-member
  /// mask-opening audit; the simulation reveals via the driver) and
  /// submits a norm-violation slash for every member over the bound.
  Status AuditFlaggedGroups(uint64_t round, BcflRunResult* result);

  /// Fresh-persistence half of AttachPersistence: refuses a used state
  /// dir, logs the setup block, writes the round-0 checkpoint.
  Status InitFreshState();
  /// Resume half: checkpoint load + log replay + dynamic-state restore.
  Status RestoreFromState();
  /// Captures the session at the boundary before `next_round` and writes
  /// it atomically to the checkpoint file.
  Status WriteCheckpoint(uint64_t next_round, const BcflRunResult& result,
                         const ml::Matrix& global);
  /// Durably records that the kill at `round` fired, so a resumed process
  /// disarms it instead of refiring forever.
  Status JournalKill(uint64_t round);
  Status DisarmJournaledKills();

  BcflConfig config_;
  ml::Dataset test_set_;
  std::vector<fl::FlClient> clients_;
  std::vector<std::unique_ptr<secureagg::SecureAggParticipant>> participants_;
  std::vector<crypto::SchnorrKeyPair> schnorr_keys_;
  crypto::Schnorr schnorr_;
  std::shared_ptr<chain::ContractHost> host_;
  std::unique_ptr<chain::ConsensusEngine> engine_;
  std::unique_ptr<Xoshiro256> rng_;
  SetupParams params_;
  std::unique_ptr<fault::FaultInjector> injector_;
  /// dh_shares_[owner][holder]: the Shamir share of `owner`'s DH private
  /// key held by `holder`, distributed at setup.
  std::vector<std::vector<crypto::ShamirShare>> dh_shares_;
  /// Feldman commitment to each owner's DH-key sharing polynomial,
  /// published in the setup params (PR 9). Recovery verifies every
  /// revealed share against these before combining it.
  std::vector<crypto::VssCommitment> dh_commitments_;
  size_t threshold_ = 0;
  /// Owners retired by a committed recovery, with the retirement round.
  std::map<uint32_t, uint64_t> retired_;
  obs::RoundLedger* ledger_ = nullptr;
  /// Round-engine state (parallel mode): the pool, the engine fanning
  /// owner work across it, and the reusable per-round scratch arena.
  RoundEngineMode engine_mode_ = RoundEngineMode::kParallel;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<RoundEngine> round_engine_;
  RoundScratch round_scratch_;
  /// Durability & restart state (PR 10).
  PersistenceOptions persist_;
  bool persistence_attached_ = false;
  std::unique_ptr<chain::BlockLog> block_log_;
  std::string checkpoint_path_;
  std::string kill_journal_path_;
  std::function<void(uint64_t)> kill_handler_;
  bool was_killed_ = false;
  uint64_t killed_round_ = 0;
  uint64_t start_round_ = 0;
  bool resumed_ = false;
  /// Accumulators restored from the checkpoint, consumed by Run().
  BcflRunResult seeded_result_;
  ml::Matrix seeded_global_;
};

}  // namespace bcfl::core
