#include "core/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/fsync_util.h"
#include "core/reward_contract.h"
#include "core/slash_contract.h"
#include "data/noise.h"
#include "data/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "secureagg/aggregator.h"
#include "secureagg/fixed_point.h"
#include "shapley/group_sv.h"

namespace bcfl::core {

namespace {

// Replay-nonce layout. Every transaction a sender signs must carry a
// distinct nonce at any roster size, so the space is partitioned by
// method instead of relying on small fixed offsets: block 0 (below the
// per-round stride) holds the administrative transactions, and round r
// owns [(r+1)*stride, (r+2)*stride) with one submit slot, one recover
// slot and one slash slot per owner.
constexpr uint64_t kSetupNonce = 0;
constexpr uint64_t kFundNonce = 1;
constexpr uint64_t kDistributeNonce = 2;
constexpr uint64_t kClaimNonceBase = 3;

uint64_t RoundNonceStride(uint64_t num_owners) {
  return 3 * num_owners + kClaimNonceBase;
}

uint64_t SubmitNonce(uint64_t round, uint32_t owner, uint64_t num_owners) {
  return (round + 1) * RoundNonceStride(num_owners) + owner;
}

uint64_t RecoverNonce(uint64_t round, uint32_t owner, uint64_t num_owners) {
  return (round + 1) * RoundNonceStride(num_owners) + num_owners + owner;
}

uint64_t SlashNonce(uint64_t round, uint32_t offender, uint64_t num_owners) {
  return (round + 1) * RoundNonceStride(num_owners) + 2 * num_owners +
         offender;
}

/// Wall-clock stopwatch for the ledger's phase attribution (the
/// simulated clock tracks protocol time; operators watch wall time).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Result<std::unique_ptr<BcflCoordinator>> BcflCoordinator::Create(
    BcflConfig config) {
  if (config.num_owners < 2) {
    return Status::InvalidArgument("need at least two data owners");
  }
  if (config.num_miners < 1) {
    return Status::InvalidArgument("need at least one miner");
  }
  auto coord = std::unique_ptr<BcflCoordinator>(new BcflCoordinator());
  coord->config_ = config;
  coord->rng_ = std::make_unique<Xoshiro256>(config.seed);
  Xoshiro256& rng = *coord->rng_;

  // --- Data: synthesize, split 8:2, partition, quality gradient. -------
  data::DigitsConfig digits_config = config.digits;
  digits_config.seed = config.seed;
  ml::Dataset full = data::DigitsGenerator(digits_config).Generate();
  BCFL_ASSIGN_OR_RETURN(auto split, full.TrainTestSplit(0.8, &rng));
  ml::Dataset train = std::move(split.first);
  coord->test_set_ = std::move(split.second);
  BCFL_ASSIGN_OR_RETURN(
      std::vector<ml::Dataset> parts,
      data::PartitionUniform(train, config.num_owners, &rng));
  BCFL_RETURN_IF_ERROR(
      data::ApplyQualityGradient(&parts, config.sigma, config.seed + 1));

  // --- Owner-side state: FL clients, DH participants, signing keys. ----
  crypto::DiffieHellman dh;
  coord->clients_.reserve(config.num_owners);
  for (uint32_t i = 0; i < config.num_owners; ++i) {
    coord->clients_.emplace_back(i, std::move(parts[i]), config.local);
    // Paper-faithful pairwise-only masking: all owners participate in
    // every round (Sect. III), so no self masks are needed on chain.
    coord->participants_.push_back(
        std::make_unique<secureagg::SecureAggParticipant>(
            i, dh, &rng, /*use_self_mask=*/false));
    coord->schnorr_keys_.push_back(coord->schnorr_.GenerateKeyPair(&rng));
  }
  // Pairwise key agreement from the broadcast public keys.
  for (auto& p : coord->participants_) {
    for (const auto& q : coord->participants_) {
      if (p->id() == q->id()) continue;
      BCFL_RETURN_IF_ERROR(p->RegisterPeer(q->id(), q->public_key()));
    }
  }

  // Recovery material: each owner Shamir-shares its DH private key over
  // the roster, so a threshold of survivors can reveal a dropped owner's
  // key to the on-chain `recover` method (Bonawitz et al.).
  coord->threshold_ = config.secure_agg_threshold != 0
                          ? config.secure_agg_threshold
                          : config.num_owners / 2 + 1;
  if (coord->threshold_ > config.num_owners) {
    return Status::InvalidArgument("recovery threshold exceeds owner count");
  }
  coord->dh_shares_.reserve(config.num_owners);
  coord->dh_commitments_.reserve(config.num_owners);
  for (auto& p : coord->participants_) {
    BCFL_ASSIGN_OR_RETURN(
        secureagg::RecoveryShares shares,
        p->ShareSecrets(coord->threshold_, config.num_owners, &rng));
    coord->dh_shares_.push_back(std::move(shares.dh_private_shares));
    coord->dh_commitments_.push_back(std::move(shares.dh_commitment));
  }

  // --- Agreed parameters. ----------------------------------------------
  SetupParams params;
  params.num_owners = config.num_owners;
  params.rounds = config.rounds;
  params.num_groups = config.num_groups;
  params.seed_e = config.seed_e;
  params.fixed_point_bits = config.fixed_point_bits;
  params.weight_rows =
      static_cast<uint32_t>(coord->clients_[0].data().num_features() + 1);
  params.weight_cols =
      static_cast<uint32_t>(coord->clients_[0].data().num_classes());
  for (uint32_t i = 0; i < config.num_owners; ++i) {
    params.schnorr_public_keys.push_back(
        coord->schnorr_keys_[i].public_key);
    params.dh_public_keys.push_back(coord->participants_[i]->public_key());
    params.vss_commitments.push_back(coord->dh_commitments_[i].Serialize());
  }
  // The agreed byzantine-hardening knobs ride in the setup transaction so
  // every miner verifies slash evidence against the same parameters.
  params.shamir_threshold = static_cast<uint32_t>(coord->threshold_);
  params.update_norm_bound = config.update_norm_bound;
  BCFL_RETURN_IF_ERROR(params.Validate());
  coord->params_ = params;

  // --- Chain: contract host, consensus engine, setup transaction. ------
  coord->host_ = std::make_shared<chain::ContractHost>(coord->schnorr_);
  auto fl_contract = std::make_shared<FlContract>(coord->test_set_);
  BCFL_RETURN_IF_ERROR(coord->host_->Register(fl_contract));
  BCFL_RETURN_IF_ERROR(
      coord->host_->Register(std::make_shared<RewardContract>()));
  BCFL_RETURN_IF_ERROR(
      coord->host_->Register(std::make_shared<SlashContract>(fl_contract)));
  coord->engine_ = std::make_unique<chain::ConsensusEngine>(
      config.num_miners, coord->host_, config.consensus);

  // Chaos wiring: a validated plan becomes the injector consulted by the
  // network filter, the consensus engine and the round driver below.
  if (!config.fault_plan.empty()) {
    BCFL_RETURN_IF_ERROR(config.fault_plan.Validate(
        config.num_owners, static_cast<uint32_t>(config.num_miners),
        coord->threshold_));
    coord->injector_ = std::make_unique<fault::FaultInjector>(
        config.fault_plan, config.num_owners,
        static_cast<uint32_t>(config.num_miners));
    coord->engine_->set_fault_injector(coord->injector_.get());
  }

  chain::Transaction setup_tx;
  setup_tx.contract = "bcfl";
  setup_tx.method = "setup";
  setup_tx.payload = params.Serialize();
  setup_tx.nonce = kSetupNonce;
  setup_tx.Sign(coord->schnorr_, coord->schnorr_keys_[0], &rng);
  BCFL_RETURN_IF_ERROR(coord->engine_->SubmitTransaction(setup_tx));
  BCFL_ASSIGN_OR_RETURN(auto commits, coord->engine_->RunUntilDrained());
  if (commits.empty() || !commits.back().committed) {
    return Status::Internal("setup transaction failed to commit");
  }

  // --- Round engine: pool + fan-out machinery (parallel mode only). ----
  coord->engine_mode_ = ResolveRoundEngineMode(config.round_engine);
  if (coord->engine_mode_ == RoundEngineMode::kParallel) {
    const size_t threads = config.pool_threads != 0
                               ? config.pool_threads
                               : ThreadPool::DefaultThreads();
    coord->pool_ = std::make_unique<ThreadPool>(threads);
    RoundEngine::Deps deps;
    deps.clients = &coord->clients_;
    deps.participants = &coord->participants_;
    deps.injector = coord->injector_.get();
    deps.retired = &coord->retired_;
    deps.fixed_point_bits = static_cast<int>(config.fixed_point_bits);
    deps.session_seed = config.seed;
    coord->round_engine_ =
        std::make_unique<RoundEngine>(deps, coord->pool_.get());
  }
  return coord;
}

std::vector<ml::Dataset> BcflCoordinator::OwnerDatasets() const {
  std::vector<ml::Dataset> out;
  out.reserve(clients_.size());
  for (const auto& client : clients_) out.push_back(client.data());
  return out;
}

Status BcflCoordinator::InstallMinerBehavior(size_t miner_idx,
                                             chain::MinerBehavior behavior) {
  if (miner_idx >= engine_->num_miners()) {
    return Status::OutOfRange("no such miner");
  }
  engine_->miner(miner_idx).set_behavior(std::move(behavior));
  return Status::OK();
}

uint64_t BcflCoordinator::ConfigFingerprint() const {
  ByteWriter writer;
  writer.WriteU32(config_.num_owners);
  writer.WriteU64(config_.num_miners);
  writer.WriteU32(config_.rounds);
  writer.WriteU32(config_.num_groups);
  writer.WriteU64(config_.seed);
  writer.WriteU64(config_.seed_e);
  writer.WriteU32(config_.fixed_point_bits);
  writer.WriteDouble(config_.sigma);
  writer.WriteDouble(config_.local.learning_rate);
  writer.WriteU64(config_.local.epochs);
  writer.WriteDouble(config_.local.l2_penalty);
  writer.WriteU64(config_.digits.num_instances);
  writer.WriteU64(config_.digits.seed);
  writer.WriteU32(static_cast<uint32_t>(config_.digits.max_shift));
  writer.WriteDouble(config_.digits.pixel_jitter);
  writer.WriteDouble(config_.digits.stroke_dropout);
  writer.WriteU64(config_.consensus.leader_seed);
  writer.WriteU64(config_.consensus.max_txs_per_block);
  writer.WriteU32(config_.consensus.max_retries);
  writer.WriteU64(config_.consensus.view_change_timeout_us);
  writer.WriteU64(config_.consensus.network.min_latency_us);
  writer.WriteU64(config_.consensus.network.max_latency_us);
  writer.WriteDouble(config_.consensus.network.drop_probability);
  writer.WriteU64(config_.consensus.network.seed);
  writer.WriteU64(config_.reward_pool);
  writer.WriteString(config_.fault_plan.ToString());
  writer.WriteU64(config_.secure_agg_threshold);
  writer.WriteDouble(config_.update_norm_bound);
  writer.WriteU64(config_.submit_deadline_us);
  writer.WriteU64(config_.submit_backoff_us);
  writer.WriteU32(config_.max_submit_attempts);
  const crypto::Digest digest = crypto::Sha256::Hash(writer.buffer());
  uint64_t fingerprint = 0;
  for (int i = 0; i < 8; ++i) {
    fingerprint |= static_cast<uint64_t>(digest[i]) << (8 * i);
  }
  return fingerprint;
}

Status BcflCoordinator::AttachPersistence(const PersistenceOptions& options) {
  if (persistence_attached_) {
    return Status::FailedPrecondition("persistence already attached");
  }
  if (options.state_dir.empty()) {
    return Status::InvalidArgument("persistence needs a state dir");
  }
  persist_ = options;
  if (persist_.checkpoint_every == 0) persist_.checkpoint_every = 1;
  std::error_code ec;
  std::filesystem::create_directories(persist_.state_dir, ec);
  if (ec) {
    return Status::Internal("cannot create state dir " + persist_.state_dir +
                            ": " + ec.message());
  }
  checkpoint_path_ = persist_.state_dir + "/checkpoint.bckp";
  kill_journal_path_ = persist_.state_dir + "/kill_journal";
  BCFL_ASSIGN_OR_RETURN(
      chain::BlockLog log,
      chain::BlockLog::Open(persist_.state_dir + "/blocks.log"));
  block_log_ = std::make_unique<chain::BlockLog>(std::move(log));

  Status st = persist_.resume ? RestoreFromState() : InitFreshState();
  if (!st.ok()) {
    block_log_.reset();
    return st;
  }
  // Durability before acknowledgement: from here on every committed block
  // is fsynced to the log inside the commit, or the commit fails closed.
  engine_->set_commit_sink([this](const chain::Block& block) {
    return block_log_->Append(block);
  });
  persistence_attached_ = true;
  return Status::OK();
}

Status BcflCoordinator::InitFreshState() {
  if (block_log_->tip_height() > 0) {
    return Status::FailedPrecondition(
        "state dir already holds a session (block log tip " +
        std::to_string(block_log_->tip_height()) +
        "); pass resume to continue it");
  }
  (void)block_log_->TakeRecoveredBlocks();
  // Create() already committed the setup block(s) through live consensus;
  // backfill them so the log holds every non-genesis block.
  const chain::Blockchain& chain = engine_->CanonicalChain();
  for (uint64_t h = 1; h <= chain.Height(); ++h) {
    BCFL_ASSIGN_OR_RETURN(chain::Block block, chain.GetBlock(h));
    BCFL_RETURN_IF_ERROR(block_log_->Append(block));
  }
  // Initial checkpoint: a kill at round 0 must already leave a resumable
  // state dir behind.
  BcflRunResult fresh;
  const ml::Matrix zero(params_.weight_rows, params_.weight_cols);
  return WriteCheckpoint(0, fresh, zero);
}

Status BcflCoordinator::RestoreFromState() {
  static auto& replays = obs::MetricsRegistry::Global().GetCounter(
      "core.resume.blocks_replayed");
  obs::ScopedSpan span(obs::Tracer::Global(), "resume_restore", "core");
  if (config_.keep_local_models) {
    return Status::InvalidArgument(
        "resume cannot rebuild per_round_locals; disable keep_local_models");
  }
  BCFL_ASSIGN_OR_RETURN(SessionCheckpoint cp, LoadCheckpoint(checkpoint_path_));
  if (cp.config_fingerprint != ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "checkpoint was taken under a different configuration — refusing "
        "to resume");
  }
  std::vector<chain::Block> logged = block_log_->TakeRecoveredBlocks();
  if (block_log_->tip_height() < cp.tip_height) {
    return Status::Corruption(
        "block log tip " + std::to_string(block_log_->tip_height()) +
        " is behind checkpoint tip " + std::to_string(cp.tip_height) +
        " — the log lost acknowledged blocks");
  }
  // Blocks past the checkpoint are re-created bit-identically by the
  // resumed rounds; drop them instead of replaying protocol state the
  // checkpoint knows nothing about.
  BCFL_RETURN_IF_ERROR(block_log_->TruncateToHeight(cp.tip_height));
  logged.resize(cp.tip_height);

  // Create() re-committed the setup block through live consensus. The
  // log's copy must match it byte for byte, or this state dir belongs to
  // a different session than the supplied configuration.
  const chain::Blockchain& live = engine_->CanonicalChain();
  if (live.Height() < 1 || logged.empty()) {
    return Status::Corruption("no setup block to verify the state dir by");
  }
  BCFL_ASSIGN_OR_RETURN(chain::Block setup_block, live.GetBlock(1));
  if (setup_block.Serialize() != logged[0].Serialize()) {
    return Status::Corruption(
        "logged setup block does not match this configuration's setup — "
        "wrong state dir?");
  }
  for (size_t i = 1; i < logged.size(); ++i) {
    BCFL_RETURN_IF_ERROR(
        engine_->ReplayCommittedBlock(logged[i], cp.miner_heights));
    replays.Add();
  }
  const chain::Blockchain& replayed = engine_->CanonicalChain();
  if (replayed.Height() != cp.tip_height ||
      replayed.Tip().header.Hash() != cp.tip_hash) {
    return Status::Corruption(
        "replayed chain tip diverges from the checkpoint tip");
  }

  rng_->RestoreState(cp.session_rng);
  BCFL_RETURN_IF_ERROR(
      engine_->mutable_network().RestoreResumeState(cp.network));
  retired_ = cp.retired_at;
  seeded_result_ = BcflRunResult{};
  seeded_result_.per_round_sv = cp.per_round_sv;
  seeded_result_.round_accuracies = cp.round_accuracies;
  seeded_result_.blocks_committed = static_cast<size_t>(cp.blocks_committed);
  seeded_result_.total_transactions =
      static_cast<size_t>(cp.total_transactions);
  seeded_result_.recover_transactions =
      static_cast<size_t>(cp.recover_transactions);
  seeded_result_.submission_retries =
      static_cast<size_t>(cp.submission_retries);
  seeded_result_.slash_transactions =
      static_cast<size_t>(cp.slash_transactions);
  seeded_result_.slashed_at = cp.slashed_at;
  seeded_global_ = cp.global_weights;
  start_round_ = cp.next_round;
  resumed_ = true;
  return DisarmJournaledKills();
}

Status BcflCoordinator::WriteCheckpoint(uint64_t next_round,
                                        const BcflRunResult& result,
                                        const ml::Matrix& global) {
  static auto& checkpoints = obs::MetricsRegistry::Global().GetCounter(
      "core.checkpoints_written");
  obs::ScopedSpan span(obs::Tracer::Global(), "checkpoint", "core");
  SessionCheckpoint cp;
  cp.config_fingerprint = ConfigFingerprint();
  cp.next_round = next_round;
  cp.session_rng = rng_->SaveState();
  cp.network = engine_->mutable_network().SaveResumeState();
  const chain::Blockchain& chain = engine_->CanonicalChain();
  cp.tip_height = chain.Height();
  cp.tip_hash = chain.Tip().header.Hash();
  cp.miner_heights = engine_->MinerHeights();
  cp.global_weights = global;
  cp.per_round_sv = result.per_round_sv;
  cp.round_accuracies = result.round_accuracies;
  cp.blocks_committed = result.blocks_committed;
  cp.total_transactions = result.total_transactions;
  cp.recover_transactions = result.recover_transactions;
  cp.submission_retries = result.submission_retries;
  cp.slash_transactions = result.slash_transactions;
  cp.retired_at = retired_;
  cp.slashed_at = result.slashed_at;
  cp.ledger_rounds =
      ledger_ != nullptr ? ledger_->rounds_written() : next_round;
  BCFL_RETURN_IF_ERROR(SaveCheckpoint(cp, checkpoint_path_));
  checkpoints.Add();
  return Status::OK();
}

Status BcflCoordinator::JournalKill(uint64_t round) {
  std::FILE* file = std::fopen(kill_journal_path_.c_str(), "a");
  if (file == nullptr) {
    return Status::Internal("cannot open kill journal " + kill_journal_path_);
  }
  std::fprintf(file, "%llu\n", static_cast<unsigned long long>(round));
  Status sync = FlushAndSync(file);
  std::fclose(file);
  BCFL_RETURN_IF_ERROR(sync.WithContext("journaling kill"));
  return SyncParentDir(kill_journal_path_);
}

Status BcflCoordinator::DisarmJournaledKills() {
  std::FILE* file = std::fopen(kill_journal_path_.c_str(), "r");
  if (file == nullptr) return Status::OK();  // No kill has fired yet.
  unsigned long long round = 0;
  while (std::fscanf(file, "%llu", &round) == 1) {
    if (injector_ != nullptr) {
      injector_->DisarmKill(static_cast<uint64_t>(round));
    }
  }
  std::fclose(file);
  return Status::OK();
}

Result<Bytes> BcflCoordinator::BuildSubmitPayload(
    uint32_t owner, uint64_t round, const ml::Matrix& local_weights,
    const std::vector<std::vector<size_t>>& groups) {
  // Locate the owner's group for this round.
  std::vector<secureagg::OwnerId> group_members;
  for (const auto& group : groups) {
    if (std::find(group.begin(), group.end(), owner) != group.end()) {
      for (size_t member : group) {
        group_members.push_back(static_cast<secureagg::OwnerId>(member));
      }
      break;
    }
  }
  if (group_members.empty()) {
    return Status::Internal("owner missing from grouping");
  }

  secureagg::FixedPointCodec codec(
      static_cast<int>(config_.fixed_point_bits));
  // Byzantine perturbations (PR 9) — the same pure helpers the parallel
  // fan-out applies, so both engines produce identical submissions.
  const double poison =
      injector_ != nullptr ? injector_->OwnerPoisonMagnitude(owner) : 0.0;
  std::vector<uint64_t> encoded =
      poison != 0.0
          ? codec.EncodeMatrix(byzantine::PoisonedWeights(local_weights,
                                                          poison))
          : codec.EncodeMatrix(local_weights);
  auto masked =
      participants_[owner]->MaskUpdate(round, group_members, encoded);
  if (!masked.ok()) return masked.status();
  if (injector_ != nullptr && injector_->OwnerInconsistentMask(owner)) {
    byzantine::CorruptMaskedUpdate(round, owner, &*masked);
  }
  return FlContract::EncodeSubmitUpdate(round, owner, *masked);
}

Status BcflCoordinator::SubmitOwnerUpdate(
    uint32_t owner, uint64_t round, const ml::Matrix& local_weights,
    const std::vector<std::vector<size_t>>& groups) {
  BCFL_ASSIGN_OR_RETURN(
      Bytes payload, BuildSubmitPayload(owner, round, local_weights, groups));
  chain::Transaction tx;
  tx.contract = "bcfl";
  tx.method = "submit_update";
  tx.payload = std::move(payload);
  tx.nonce = SubmitNonce(round, owner, config_.num_owners);
  tx.Sign(schnorr_, schnorr_keys_[owner], rng_.get());
  return engine_->SubmitTransaction(tx);
}

Result<uint32_t> BcflCoordinator::FindReporter(uint32_t excluding) const {
  for (uint32_t j = 0; j < config_.num_owners; ++j) {
    if (j == excluding || retired_.count(j) > 0) continue;
    if (injector_ != nullptr && injector_->OwnerOffline(j)) continue;
    return j;
  }
  return Status::FailedPrecondition("no online owner left to accuse");
}

Status BcflCoordinator::SubmitSlash(uint64_t round, uint32_t offender,
                                    uint32_t reporter, const Bytes& payload,
                                    const char* what, BcflRunResult* result) {
  static auto& slashes =
      obs::MetricsRegistry::Global().GetCounter("fl.slashes");
  chain::Transaction tx;
  tx.contract = "slash";
  tx.method = "slash";
  tx.payload = payload;
  tx.nonce = SlashNonce(round, offender, config_.num_owners);
  tx.Sign(schnorr_, schnorr_keys_[reporter], rng_.get());
  BCFL_RETURN_IF_ERROR(engine_->SubmitTransaction(tx));
  slashes.Add();
  result->slash_transactions++;
  result->slashed_at[offender] = round;
  // A conviction retires the offender exactly like a recovery: its key is
  // public now, so it can never safely mask again.
  retired_[offender] = round;
  if (injector_ != nullptr) {
    injector_->RecordExecuted(round, "slashed owner " +
                                         std::to_string(offender) + " (" +
                                         what + "); retired, reward burned");
  }
  return Status::OK();
}

Status BcflCoordinator::SlashEquivocator(uint32_t owner, uint64_t round,
                                         const Bytes& payload,
                                         BcflRunResult* result) {
  // The owner signed two well-formed submissions for the same round slot;
  // either alone would be valid, together they convict. The second is a
  // tampered twin of the first (one masked word flipped) — any two
  // differing payloads equivocate.
  chain::Transaction first;
  first.contract = "bcfl";
  first.method = "submit_update";
  first.payload = payload;
  first.nonce = SubmitNonce(round, owner, config_.num_owners);
  first.Sign(schnorr_, schnorr_keys_[owner], rng_.get());

  chain::Transaction second = first;
  second.payload.back() ^= 1;
  second.Sign(schnorr_, schnorr_keys_[owner], rng_.get());

  BCFL_ASSIGN_OR_RETURN(uint32_t reporter, FindReporter(owner));
  const Bytes evidence = SlashContract::EncodeEquivocation(
      round, owner, participants_[owner]->private_key(), first, second);
  return SubmitSlash(round, owner, reporter, evidence, "equivocation",
                     result);
}

Result<bool> BcflCoordinator::SubmitWithRetries(
    uint32_t owner, uint64_t round, const ml::Matrix& local_weights,
    const std::vector<std::vector<size_t>>& groups, uint64_t deadline_us,
    BcflRunResult* result) {
  static auto& retries_counter =
      obs::MetricsRegistry::Global().GetCounter("fl.submission_retries");
  net::SimulatedNetwork& network = engine_->mutable_network();
  uint64_t extra = injector_ != nullptr ? injector_->OwnerExtraDelayUs(owner)
                                        : 0;
  if (extra > 0) network.AdvanceClock(extra);
  uint64_t backoff = config_.submit_backoff_us;
  for (uint32_t attempt = 0; attempt < config_.max_submit_attempts;
       ++attempt) {
    if (network.clock().NowMicros() > deadline_us) break;
    if (injector_ != nullptr && injector_->DropSubmissionAttempt(owner)) {
      retries_counter.Add();
      result->submission_retries++;
      network.AdvanceClock(backoff);
      backoff *= 2;
      continue;
    }
    BCFL_RETURN_IF_ERROR(
        SubmitOwnerUpdate(owner, round, local_weights, groups));
    return true;
  }
  return false;  // Deadline missed: the owner counts as dropped.
}

Result<bool> BcflCoordinator::SubmitPreparedWithRetries(
    uint32_t owner, uint64_t round, const Bytes& payload, uint64_t deadline_us,
    BcflRunResult* result) {
  static auto& retries_counter =
      obs::MetricsRegistry::Global().GetCounter("fl.submission_retries");
  net::SimulatedNetwork& network = engine_->mutable_network();
  uint64_t extra = injector_ != nullptr ? injector_->OwnerExtraDelayUs(owner)
                                        : 0;
  if (extra > 0) network.AdvanceClock(extra);
  uint64_t backoff = config_.submit_backoff_us;
  for (uint32_t attempt = 0; attempt < config_.max_submit_attempts;
       ++attempt) {
    if (network.clock().NowMicros() > deadline_us) break;
    if (injector_ != nullptr && injector_->DropSubmissionAttempt(owner)) {
      retries_counter.Add();
      result->submission_retries++;
      network.AdvanceClock(backoff);
      backoff *= 2;
      continue;
    }
    chain::Transaction tx;
    tx.contract = "bcfl";
    tx.method = "submit_update";
    tx.payload = payload;
    tx.nonce = SubmitNonce(round, owner, config_.num_owners);
    tx.Sign(schnorr_, schnorr_keys_[owner], rng_.get());
    BCFL_RETURN_IF_ERROR(engine_->SubmitTransaction(tx));
    return true;
  }
  return false;  // Deadline missed: the owner counts as dropped.
}

Status BcflCoordinator::RecoverMissingOwners(uint64_t round,
                                             const std::set<uint32_t>& missing,
                                             BcflRunResult* result) {
  if (missing.empty()) return Status::OK();
  static auto& dropouts_detected =
      obs::MetricsRegistry::Global().GetCounter("fl.dropouts_detected");
  static auto& recoveries =
      obs::MetricsRegistry::Global().GetCounter("fl.recoveries");
  obs::ScopedSpan span(obs::Tracer::Global(), "recover_phase", "fl");

  // The lowest online survivor signs the recovery transactions (any
  // registered owner may; the reveal is collective, not one's secret).
  uint32_t reporter = config_.num_owners;
  for (uint32_t j = 0; j < config_.num_owners; ++j) {
    if (missing.count(j) > 0 || retired_.count(j) > 0) continue;
    if (injector_ != nullptr && injector_->OwnerOffline(j)) continue;
    reporter = j;
    break;
  }
  if (reporter == config_.num_owners) {
    return Status::FailedPrecondition("no online owner left to report drops");
  }

  // Collect every missing owner's shares first. The surviving holder set
  // — online, un-retired, not itself missing — is the same for all of
  // them, so the whole batch reconstructs off one Lagrange basis
  // (ShamirSecretSharing::ReconstructBatch), with per-owner share
  // verification fanned across the pool when one is attached.
  //
  // VSS (PR 9): every revealed share is Feldman-verified against the
  // dealer's setup commitment before it may enter the reconstruction. A
  // share that fails is skipped — the next surviving holder serves, so
  // the accepted holder sequence is exactly the one a run where the
  // forger had crashed would use — and the forger is accused below with
  // the signed forged share as on-chain evidence.
  BCFL_ASSIGN_OR_RETURN(
      const crypto::ShamirSecretSharing scheme,
      crypto::ShamirSecretSharing::Create(threshold_, config_.num_owners));
  struct BadShare {
    uint32_t dealer;
    crypto::ShamirShare share;
  };
  std::map<uint32_t, BadShare> forgers;  // First forged reveal per holder.
  std::vector<uint32_t> targets(missing.begin(), missing.end());
  std::vector<std::vector<crypto::ShamirShare>> share_sets;
  share_sets.reserve(targets.size());
  for (uint32_t u : targets) {
    dropouts_detected.Add();
    // Strictly fewer shares than the threshold means the recovery must
    // fail closed — a wrong key can never be reconstructed, only no key.
    std::vector<crypto::ShamirShare> shares;
    for (uint32_t holder = 0; holder < config_.num_owners; ++holder) {
      if (holder == u || missing.count(holder) > 0 ||
          retired_.count(holder) > 0) {
        continue;
      }
      if (injector_ != nullptr && injector_->OwnerOffline(holder)) continue;
      crypto::ShamirShare share = dh_shares_[u][holder];
      if (injector_ != nullptr && injector_->OwnerForgesShare(holder)) {
        // The byzantine holder reveals a perturbed share (still in-field,
        // still in its own slot — only verifiable against the dealer's
        // commitment, not by inspection).
        for (uint64_t& value : share.values) {
          value = crypto::ShamirSecretSharing::FieldAdd(value, 1);
        }
      }
      if (!dh_commitments_[u].empty() &&
          !scheme.VerifyShare(share, dh_commitments_[u])) {
        forgers.emplace(holder, BadShare{u, std::move(share)});
        continue;
      }
      shares.push_back(std::move(share));
      if (shares.size() == threshold_) break;
    }
    if (shares.size() < threshold_) {
      return Status::FailedPrecondition(
          "only " + std::to_string(shares.size()) + " verifiable shares of " +
          "owner " + std::to_string(u) + "'s key survive; threshold is " +
          std::to_string(threshold_) + " — failing closed");
    }
    share_sets.push_back(std::move(shares));
  }
  BCFL_ASSIGN_OR_RETURN(auto secrets,
                        secureagg::SecureAggregator::ReconstructSecrets32(
                            share_sets, threshold_, config_.num_owners,
                            pool_.get()));

  // Accusations first: each forger signed its reveal (a holder
  // authenticates the share it hands over), which is exactly what pins
  // the forgery on it — the slash contract re-verifies the signature and
  // re-runs the failing Feldman check on every miner. Slash transactions
  // go in ahead of the recoveries so the conviction (which strikes the
  // forger's submitted update) executes before the recovery that would
  // otherwise complete the round with the forger still counted.
  for (auto& [forger, bad] : forgers) {
    if (retired_.count(forger) > 0) continue;  // Already convicted.
    const crypto::SchnorrSignature reveal_sig = schnorr_.Sign(
        schnorr_keys_[forger],
        SlashContract::BadShareMessage(round, bad.dealer, bad.share),
        rng_.get());
    const Bytes evidence = SlashContract::EncodeBadShare(
        round, forger, participants_[forger]->private_key(), bad.dealer,
        bad.share, reveal_sig);
    BCFL_RETURN_IF_ERROR(
        SubmitSlash(round, forger, reporter, evidence, "bad share", result));
  }

  // Replay the recovery transactions in ascending owner order — the same
  // signing (RNG) and submission sequence as recovering one at a time.
  for (size_t k = 0; k < targets.size(); ++k) {
    const uint32_t u = targets[k];
    Bytes secret_bytes(secrets[k].begin(), secrets[k].end());
    BCFL_ASSIGN_OR_RETURN(crypto::UInt256 dh_key,
                          crypto::UInt256::FromBytes(secret_bytes));

    chain::Transaction tx;
    tx.contract = "bcfl";
    tx.method = "recover";
    tx.payload = FlContract::EncodeRecover(round, u, dh_key);
    tx.nonce = RecoverNonce(round, u, config_.num_owners);
    tx.Sign(schnorr_, schnorr_keys_[reporter], rng_.get());
    BCFL_RETURN_IF_ERROR(engine_->SubmitTransaction(tx));
    recoveries.Add();
    result->recover_transactions++;
    retired_[u] = round;
    if (injector_ != nullptr) {
      injector_->RecordExecuted(round, "recovered owner " + std::to_string(u) +
                                           "; retired from the session");
    }
  }
  return Status::OK();
}

Status BcflCoordinator::AuditFlaggedGroups(uint64_t round,
                                           BcflRunResult* result) {
  static auto& audits =
      obs::MetricsRegistry::Global().GetCounter("fl.norm_audits");
  const chain::ContractState& state = engine_->CanonicalState();
  const auto flagged = state.KeysWithPrefix(keys::FlaggedPrefix(round));
  if (flagged.empty()) return Status::OK();
  audits.Add();
  obs::ScopedSpan span(obs::Tracer::Global(), "norm_audit", "fl");

  std::vector<size_t> perm = shapley::PermutationFromSeed(
      config_.seed_e, round, config_.num_owners);
  BCFL_ASSIGN_OR_RETURN(std::vector<std::vector<size_t>> groups,
                        shapley::GroupUsers(perm, config_.num_groups));
  for (const auto& key : flagged) {
    // Key layout: "flagged/<round>/<group>".
    const uint32_t group_index = static_cast<uint32_t>(
        std::stoul(key.substr(key.rfind('/') + 1)));
    if (group_index >= groups.size()) {
      return Status::Internal("flag marker for unknown group");
    }
    // Audit each submitter of the flagged group: unmask its on-chain
    // submission and measure (the driver models the mask-opening audit —
    // an honest member proves innocence by opening its own masks, while
    // the offender's refusal triggers the threshold reveal of its key).
    for (size_t member : groups[group_index]) {
      const uint32_t suspect = static_cast<uint32_t>(member);
      if (retired_.count(suspect) > 0) continue;
      if (!state.Has(keys::Update(round, suspect))) continue;
      BCFL_ASSIGN_OR_RETURN(
          double norm,
          SlashContract::UnmaskedUpdateNorm(
              params_, round, suspect,
              participants_[suspect]->private_key(), state));
      if (norm <= config_.update_norm_bound) continue;
      BCFL_ASSIGN_OR_RETURN(uint32_t reporter, FindReporter(suspect));
      const Bytes evidence = SlashContract::EncodeNormViolation(
          round, suspect, participants_[suspect]->private_key());
      BCFL_RETURN_IF_ERROR(SubmitSlash(round, suspect, reporter, evidence,
                                       "norm violation", result));
    }
  }
  return Status::OK();
}

Result<BcflRunResult> BcflCoordinator::Run() {
  static auto& rounds_counter =
      obs::MetricsRegistry::Global().GetCounter("fl.rounds");
  static auto& round_us =
      obs::MetricsRegistry::Global().GetHistogram("fl.round_us");
  static auto& accuracy_gauge =
      obs::MetricsRegistry::Global().GetGauge("fl.round_accuracy");
  // A resumed session starts from the checkpointed accumulators and
  // global model instead of zero — everything else below is unchanged,
  // which is exactly why the continuation is bit-identical.
  BcflRunResult result =
      resumed_ ? std::move(seeded_result_) : BcflRunResult{};
  const size_t n = config_.num_owners;
  ml::Matrix global = resumed_
                          ? std::move(seeded_global_)
                          : ml::Matrix(params_.weight_rows, params_.weight_cols);

  // Ledger probes: the phase latencies a round ledgers are per-round
  // deltas of the same live instruments the exposition endpoint serves,
  // so a ledger line and a concurrent /metrics scrape tell one story.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram& mask_us_hist = registry.GetHistogram("secureagg.mask_us");
  obs::Histogram& sv_eval_us_hist =
      registry.GetHistogram("contract.round_eval_us");
  obs::Counter& sig_hits = registry.GetCounter("chain.sigcache.hits");
  obs::Counter& sig_misses = registry.GetCounter("chain.sigcache.misses");
  // Held back for the final round when a reward phase follows, so the
  // reward latency lands on that round's (still one-per-round) record.
  obs::RoundRecord pending_final_record;
  bool have_pending_final_record = false;

  for (uint64_t round = start_round_; round < config_.rounds; ++round) {
    obs::ScopedSpan round_span(obs::Tracer::Global(), "round", "fl");
    obs::ScopedLatency round_latency(round_us);
    rounds_counter.Add();
    if (injector_ != nullptr) injector_->BeginRound(round);
    // Process-kill fault (PR 10): fires at the start of its round, after
    // journaling itself so a resumed process disarms it instead of
    // refiring. bcfl_sim's handler hard-exits here; in-process callers
    // (tests) get FailedPrecondition and resume from the state dir.
    if (injector_ != nullptr && injector_->KillScheduled(round)) {
      was_killed_ = true;
      killed_round_ = round;
      if (persistence_attached_) {
        BCFL_RETURN_IF_ERROR(JournalKill(round));
      }
      injector_->RecordExecuted(
          round, "kill: coordinator process dies at round start");
      if (kill_handler_) kill_handler_(round);
      return Status::FailedPrecondition("killed by fault plan at round " +
                                        std::to_string(round));
    }
    const double mask_us0 = mask_us_hist.Sum();
    const double sv_eval_us0 = sv_eval_us_hist.Sum();
    const uint64_t sig_hits0 = sig_hits.Value();
    const uint64_t sig_misses0 = sig_misses.Value();
    const size_t fault_log0 =
        injector_ != nullptr ? injector_->executed_log().size() : 0;
    const size_t blocks0 = result.blocks_committed;
    const size_t txs0 = result.total_transactions;
    const size_t slash_txs0 = result.slash_transactions;
    double train_wall_us = 0.0;
    double submit_wall_us = 0.0;
    double consensus_wall_us = 0.0;
    double recover_wall_us = 0.0;
    // Owners derive the round's grouping locally from the agreed seed.
    // Retired owners stay in the grouping (survivors keep masking against
    // them; the contract cancels those masks from the on-chain keys).
    std::vector<size_t> perm =
        shapley::PermutationFromSeed(config_.seed_e, round, n);
    BCFL_ASSIGN_OR_RETURN(std::vector<std::vector<size_t>> groups,
                          shapley::GroupUsers(perm, config_.num_groups));

    // Local training + masked submissions with a per-round deadline.
    // Owners that are retired, offline, or miss the deadline after the
    // retry budget are collected for the recovery phase.
    const uint64_t deadline_us =
        engine_->mutable_network().clock().NowMicros() +
        config_.submit_deadline_us;
    std::set<uint32_t> missing;
    double fanout_wall_us = 0.0;
    if (engine_mode_ == RoundEngineMode::kParallel) {
      // Parallel path: fan the per-owner work (train, encode, mask,
      // payload) across the pool, then replay submissions in canonical
      // owner order on this thread. Training and masking touch neither
      // the simulated clock nor the session RNG, so the replayed
      // protocol-event sequence — clock advances, injector drop draws,
      // signing nonces, chain submissions — is exactly the serial one.
      obs::ScopedSpan span(obs::Tracer::Global(), "train", "fl");
      RoundEngineStats stats;
      BCFL_RETURN_IF_ERROR(round_engine_->PrepareOwners(
          round, global, groups, &round_scratch_, &stats));
      fanout_wall_us = stats.fanout_wall_us;
      train_wall_us = stats.train_us_total;
      for (uint32_t i = 0; i < n; ++i) {
        if (retired_.count(i) > 0) continue;
        if (injector_ != nullptr && injector_->OwnerOffline(i)) {
          missing.insert(i);
          continue;
        }
        // Equivocation is caught at admission (PR 9): the owner produced
        // two conflicting signed submissions, so neither is admitted and
        // the accusation carries both — the owner never lands an update,
        // exactly like a crash, and needs no recovery (the slash reveals
        // its key).
        if (injector_ != nullptr && injector_->OwnerEquivocates(i)) {
          WallTimer submit_timer;
          BCFL_RETURN_IF_ERROR(SlashEquivocator(
              i, round, round_scratch_.slots[i].payload, &result));
          submit_wall_us += submit_timer.ElapsedUs();
          continue;
        }
        WallTimer submit_timer;
        BCFL_ASSIGN_OR_RETURN(
            bool submitted,
            SubmitPreparedWithRetries(i, round,
                                      round_scratch_.slots[i].payload,
                                      deadline_us, &result));
        submit_wall_us += submit_timer.ElapsedUs();
        if (!submitted) missing.insert(i);
      }
      if (config_.keep_local_models) {
        std::vector<ml::Matrix> locals(n);
        for (uint32_t i = 0; i < n; ++i) {
          if (round_scratch_.slots[i].active) {
            locals[i] = std::move(round_scratch_.slots[i].local);
          }
        }
        result.per_round_locals.push_back(std::move(locals));
      }
    } else {
      // Serial reference path: the seed-faithful interleaved loop (train
      // owner i, submit owner i, then owner i+1), kept verbatim as the
      // escape hatch the parallel engine is equivalence-tested against.
      std::vector<ml::Matrix> locals(n);
      obs::ScopedSpan span(obs::Tracer::Global(), "train", "fl");
      for (uint32_t i = 0; i < n; ++i) {
        if (retired_.count(i) > 0) continue;
        if (injector_ != nullptr && injector_->OwnerOffline(i)) {
          missing.insert(i);
          continue;
        }
        WallTimer train_timer;
        BCFL_ASSIGN_OR_RETURN(locals[i], clients_[i].LocalUpdate(global));
        train_wall_us += train_timer.ElapsedUs();
        // Equivocation at admission — see the parallel path above.
        if (injector_ != nullptr && injector_->OwnerEquivocates(i)) {
          WallTimer submit_timer;
          BCFL_ASSIGN_OR_RETURN(
              Bytes payload, BuildSubmitPayload(i, round, locals[i], groups));
          BCFL_RETURN_IF_ERROR(SlashEquivocator(i, round, payload, &result));
          submit_wall_us += submit_timer.ElapsedUs();
          continue;
        }
        WallTimer submit_timer;
        BCFL_ASSIGN_OR_RETURN(
            bool submitted,
            SubmitWithRetries(i, round, locals[i], groups, deadline_us,
                              &result));
        submit_wall_us += submit_timer.ElapsedUs();
        if (!submitted) missing.insert(i);
      }
      if (config_.keep_local_models) {
        result.per_round_locals.push_back(std::move(locals));
      }
    }

    // Consensus drains the submissions; if owners missed the deadline the
    // survivors then drive the on-chain Shamir recovery, which completes
    // the round with the dropped owners scored zero.
    WallTimer consensus_timer;
    BCFL_ASSIGN_OR_RETURN(auto commits, engine_->RunUntilDrained());
    consensus_wall_us = consensus_timer.ElapsedUs();
    WallTimer recover_timer;
    BCFL_RETURN_IF_ERROR(RecoverMissingOwners(round, missing, &result));
    if (!missing.empty()) {
      BCFL_ASSIGN_OR_RETURN(auto recovery_commits, engine_->RunUntilDrained());
      commits.insert(commits.end(), recovery_commits.begin(),
                     recovery_commits.end());
    }
    recover_wall_us = recover_timer.ElapsedUs();
    // Norm-gate audit (PR 9): a round held open by `flagged/` markers
    // means some group's decoded aggregate broke the agreed bound. The
    // audit convicts the violating submitters; their slashes convert them
    // into this round's dropouts and the re-evaluation completes clean.
    double audit_wall_us = 0.0;
    if (config_.update_norm_bound > 0 &&
        !engine_->CanonicalState().Has(keys::RoundComplete(round))) {
      WallTimer audit_timer;
      const size_t slashes_before = result.slash_transactions;
      BCFL_RETURN_IF_ERROR(AuditFlaggedGroups(round, &result));
      if (result.slash_transactions > slashes_before) {
        BCFL_ASSIGN_OR_RETURN(auto audit_commits, engine_->RunUntilDrained());
        commits.insert(commits.end(), audit_commits.begin(),
                       audit_commits.end());
      }
      audit_wall_us = audit_timer.ElapsedUs();
    }
    for (const auto& commit : commits) {
      if (!commit.committed) {
        return Status::Internal("consensus failed during round " +
                                std::to_string(round));
      }
      result.blocks_committed++;
      result.total_transactions += commit.num_txs;
    }

    const chain::ContractState& state = engine_->CanonicalState();
    if (!state.Has(keys::RoundComplete(round))) {
      return Status::Internal("round " + std::to_string(round) +
                              " did not complete on chain");
    }

    // Download the new global model (Sect. IV-B bullet 2).
    BCFL_ASSIGN_OR_RETURN(global,
                          GetMatrix(state, keys::GlobalModel(round)));
    std::vector<double> round_sv(n);
    for (uint32_t i = 0; i < n; ++i) {
      BCFL_ASSIGN_OR_RETURN(round_sv[i],
                            GetDouble(state, keys::RoundSv(round, i)));
    }
    result.per_round_sv.push_back(std::move(round_sv));

    obs::ScopedSpan eval_span(obs::Tracer::Global(), "eval", "fl");
    BCFL_ASSIGN_OR_RETURN(ml::LogisticRegression model,
                          ml::LogisticRegression::FromWeights(global));
    BCFL_ASSIGN_OR_RETURN(double acc, model.Accuracy(test_set_));
    accuracy_gauge.Set(acc);
    result.round_accuracies.push_back(acc);

    if (ledger_ != nullptr) {
      obs::RoundRecord record;
      record.round = round;
      // Masking and SV evaluation run inside other phases' walls;
      // attribute them via instrument deltas. Serially, masking happens
      // inside the submit wall (subtract it out); in parallel mode it
      // happens inside the fan-out, whose barrier-to-barrier wall — the
      // max-over-workers critical path — lands on the parallel-only
      // `owner_fanout` key while `train` keeps the aggregate per-owner
      // sum the serial path has always reported.
      const double mask_us = mask_us_hist.Sum() - mask_us0;
      const double sv_eval_us = sv_eval_us_hist.Sum() - sv_eval_us0;
      record.phase_us["train"] = train_wall_us;
      if (engine_mode_ == RoundEngineMode::kParallel) {
        record.phase_us["tx_admission"] = submit_wall_us;
        record.phase_us["owner_fanout"] = fanout_wall_us;
      } else {
        record.phase_us["tx_admission"] =
            std::max(0.0, submit_wall_us - mask_us);
      }
      record.phase_us["secureagg_mask"] = mask_us;
      record.phase_us["consensus"] = consensus_wall_us;
      if (!missing.empty()) {
        record.phase_us["secureagg_recover"] = recover_wall_us;
      }
      record.phase_us["sv_eval"] = sv_eval_us;
      const uint64_t hits = sig_hits.Value() - sig_hits0;
      const uint64_t misses = sig_misses.Value() - sig_misses0;
      record.sig_cache_lookups = hits + misses;
      record.sig_cache_hit_rate =
          record.sig_cache_lookups > 0
              ? static_cast<double>(hits) /
                    static_cast<double>(record.sig_cache_lookups)
              : 0.0;
      if (injector_ != nullptr) {
        const auto& log = injector_->executed_log();
        for (size_t k = fault_log0; k < log.size(); ++k) {
          record.fault_events.push_back(
              "round " + std::to_string(log[k].round) + ": " + log[k].what);
        }
      }
      if (audit_wall_us > 0.0) {
        record.phase_us["norm_audit"] = audit_wall_us;
      }
      record.dropouts.assign(missing.begin(), missing.end());
      for (const auto& [owner, retired_round] : retired_) {
        if (retired_round == round && result.slashed_at.count(owner) == 0) {
          record.recovered.push_back(owner);
        }
      }
      record.accusations = result.slash_transactions - slash_txs0;
      for (const auto& [owner, slash_round] : result.slashed_at) {
        if (slash_round == round) record.slashed.push_back(owner);
      }
      record.sv = result.per_round_sv.back();
      record.accuracy = acc;
      record.blocks_committed = result.blocks_committed - blocks0;
      record.transactions = result.total_transactions - txs0;
      if (round + 1 == config_.rounds && config_.reward_pool > 0) {
        pending_final_record = std::move(record);
        have_pending_final_record = true;
      } else {
        BCFL_RETURN_IF_ERROR(ledger_->Append(record));
      }
    }

    // Session checkpoint (PR 10): taken at the round boundary, after the
    // ledger record landed, so checkpoint.ledger_rounds counts exactly the
    // records a resume keeps. The final round is never checkpointed — a
    // completed session has nothing left to resume.
    if (persistence_attached_ && round + 1 < config_.rounds &&
        (round + 1) % persist_.checkpoint_every == 0) {
      BCFL_RETURN_IF_ERROR(
          WriteCheckpoint(round + 1, result, global)
              .WithContext("checkpoint after round " + std::to_string(round)));
    }
  }

  // Final totals from the canonical state: v_i = sum_r v_i^r.
  {
    const chain::ContractState& state = engine_->CanonicalState();
    result.total_sv.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      BCFL_ASSIGN_OR_RETURN(result.total_sv[i],
                            GetDouble(state, keys::TotalSv(i)));
    }
  }
  result.global_weights = std::move(global);

  // Optional incentive phase: fund -> distribute -> per-owner claims,
  // all as on-chain transactions.
  if (config_.reward_pool > 0) {
    obs::ScopedSpan reward_span(obs::Tracer::Global(), "reward_phase", "fl");
    WallTimer reward_timer;
    const size_t reward_blocks0 = result.blocks_committed;
    const size_t reward_txs0 = result.total_transactions;
    chain::Transaction fund;
    fund.contract = "reward";
    fund.method = "fund";
    fund.payload = RewardContract::EncodeFund(config_.reward_pool);
    fund.nonce = kFundNonce;
    fund.Sign(schnorr_, schnorr_keys_[0], rng_.get());
    BCFL_RETURN_IF_ERROR(engine_->SubmitTransaction(fund));

    chain::Transaction distribute;
    distribute.contract = "reward";
    distribute.method = "distribute";
    distribute.nonce = kDistributeNonce;
    distribute.Sign(schnorr_, schnorr_keys_[0], rng_.get());
    BCFL_RETURN_IF_ERROR(engine_->SubmitTransaction(distribute));

    for (uint32_t i = 0; i < n; ++i) {
      if (retired_.count(i) > 0) continue;  // Retired owners cannot claim.
      chain::Transaction claim;
      claim.contract = "reward";
      claim.method = "claim";
      claim.payload = RewardContract::EncodeClaim(i);
      claim.nonce = kClaimNonceBase + i;
      claim.Sign(schnorr_, schnorr_keys_[i], rng_.get());
      BCFL_RETURN_IF_ERROR(engine_->SubmitTransaction(claim));
    }
    BCFL_ASSIGN_OR_RETURN(auto commits, engine_->RunUntilDrained());
    for (const auto& commit : commits) {
      if (!commit.committed) {
        return Status::Internal("reward phase failed to commit");
      }
      result.blocks_committed++;
      result.total_transactions += commit.num_txs;
    }
    const chain::ContractState& state = engine_->CanonicalState();
    result.rewards.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      result.rewards[i] = ReadU64OrZero(state, RewardContract::ClaimedKey(i));
    }
    result.reward_burned = ReadU64OrZero(state, RewardContract::BurnedKey());
    if (have_pending_final_record) {
      pending_final_record.phase_us["reward"] = reward_timer.ElapsedUs();
      pending_final_record.blocks_committed +=
          result.blocks_committed - reward_blocks0;
      pending_final_record.transactions +=
          result.total_transactions - reward_txs0;
    }
  }
  if (have_pending_final_record) {
    BCFL_RETURN_IF_ERROR(ledger_->Append(pending_final_record));
  }
  result.retired_at = retired_;
  return result;
}

}  // namespace bcfl::core
