#pragma once

#include "chain/contract.h"
#include "common/bytes.h"

namespace bcfl::core {

/// On-chain reward distribution — the incentive mechanism the paper's
/// introduction motivates ("a fair reward based on their contributions").
///
/// Shares the contract state with `FlContract`: once the final FL round
/// has completed on chain, anyone can trigger a deterministic
/// distribution of the funded pool proportionally to the accumulated
/// `sv_total/<owner>` scores (negative scores clamp to zero). Owners
/// then claim their allocations with their registered signing keys.
///
/// Methods:
///  - "fund":       payload = u64 amount; adds to the pool. Must happen
///                  before distribution.
///  - "distribute": payload = empty; requires setup done, all rounds
///                  complete and a non-empty pool; writes one
///                  allocation per owner and locks the pool.
///  - "claim":      payload = u32 owner id; the tx must be signed with
///                  that owner's key from the setup roster; moves the
///                  allocation to the claimed ledger. Double claims
///                  fail.
///
/// Slashed owners (a `slashed/<owner>` conviction record on chain) have
/// their allocation *burned* at distribution: it is moved to the
/// "reward/burned" sink instead of their claimable balance, so
/// misbehavior forfeits the pending reward without inflating anyone
/// else's share (PR 9).
///
/// State keys: "reward/pool", "reward/distributed",
/// "reward/allocation/<owner>", "reward/claimed/<owner>",
/// "reward/burned".
class RewardContract : public chain::SmartContract {
 public:
  std::string name() const override { return "reward"; }

  Status Execute(const chain::Transaction& tx,
                 chain::ContractState* state) override;

  static Bytes EncodeFund(uint64_t amount);
  static Bytes EncodeClaim(uint32_t owner);

  // State-key helpers (shared with tests and read-back code).
  static std::string PoolKey() { return "reward/pool"; }
  static std::string DistributedKey() { return "reward/distributed"; }
  static std::string AllocationKey(uint32_t owner);
  static std::string ClaimedKey(uint32_t owner);
  static std::string BurnedKey() { return "reward/burned"; }

 private:
  Status ExecuteFund(const chain::Transaction& tx,
                     chain::ContractState* state);
  Status ExecuteDistribute(chain::ContractState* state);
  Status ExecuteClaim(const chain::Transaction& tx,
                      chain::ContractState* state);
};

/// Reads a u64 counter stored at `key` (0 when absent).
uint64_t ReadU64OrZero(const chain::ContractState& state,
                       const std::string& key);

}  // namespace bcfl::core
