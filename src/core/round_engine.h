#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fault/injector.h"
#include "fl/client.h"
#include "ml/matrix.h"
#include "secureagg/participant.h"

namespace bcfl::core {

/// How the coordinator executes the per-owner phase of a round.
enum class RoundEngineMode {
  /// The seed-faithful interleaved loop: train owner i, submit owner i,
  /// then owner i+1 — kept verbatim as the reference path, mirroring
  /// `reference::` in the kernel and crypto layers.
  kSerial,
  /// Fan owner work (train, encode, mask, payload) across the thread
  /// pool, then replay submissions in canonical owner order. Bit-identical
  /// to kSerial for any pool size (see DESIGN.md §13).
  kParallel,
};

/// "serial" / "parallel" — for flags, logs and metrics.json.
const char* RoundEngineModeName(RoundEngineMode mode);

/// Byzantine update perturbations (PR 9), shared by the serial submit
/// path and the parallel fan-out so the two engines stay bit-identical
/// under every fault plan. Both are pure functions of their arguments.
namespace byzantine {

/// The weights a poisoning owner actually encodes: its honest local
/// update scaled by `magnitude` (the `poison-update *m` DSL knob).
ml::Matrix PoisonedWeights(const ml::Matrix& local, double magnitude);

/// An inconsistent-mask owner's submission: the honestly masked vector
/// plus a deterministic per-(round, owner) SplitMix64 garbage stream.
/// The garbage never cancels against any peer's mask, so the group's
/// decoded aggregate lands far outside the honest envelope and the
/// contract's norm gate flags it.
void CorruptMaskedUpdate(uint64_t round, uint32_t owner,
                         std::vector<uint64_t>* masked);

}  // namespace byzantine

/// Applies the `BCFL_ROUND_REFERENCE` escape hatch: when the environment
/// variable is set to anything but "" or "0", the configured mode is
/// overridden to kSerial (same convention as BCFL_KERNEL_REFERENCE /
/// BCFL_CRYPTO_REFERENCE, but at runtime — no rebuild needed).
RoundEngineMode ResolveRoundEngineMode(RoundEngineMode configured);

/// Per-owner slot of the round scratch: everything one owner's phase work
/// produces, plus the buffers it reuses round over round. Slots are
/// index-addressed — worker k only ever touches slot `active[k]` — which
/// is what makes the fan-out race-free without any locking.
struct OwnerRoundSlot {
  /// True when the owner trains this round (online, not retired).
  bool active = false;
  ml::Matrix local;                      ///< Trained local weights.
  std::vector<uint64_t> encoded;         ///< Fixed-point encoding.
  std::vector<uint64_t> masked;          ///< Pairwise-masked update.
  Bytes payload;                         ///< Serialized submit_update body.
  std::vector<secureagg::OwnerId> group_members;
  secureagg::MaskScratch mask_scratch;   ///< Mask buffers, reused.
  /// Per-owner SplitMix64-derived RNG stream. No phase consumes
  /// randomness today (training is deterministic full-batch GD and
  /// signing stays on the coordinator thread), but the stream is seeded
  /// per (session, round, owner) so a future stochastic trainer draws
  /// from isolated streams instead of racing a shared generator.
  Xoshiro256 stream{0};
  Status status = Status::OK();
  double train_us = 0.0;                 ///< Wall time of LocalUpdate.
  double prepare_us = 0.0;               ///< Wall of encode+mask+payload.
};

/// Reusable arena for the per-owner fan-out. `Reset` clears per-round
/// state but keeps every buffer's capacity, so from the second round on
/// the fan-out allocates nothing beyond what training itself needs.
struct RoundScratch {
  std::vector<OwnerRoundSlot> slots;
  void Reset(size_t num_owners);
};

/// Wall-time attribution of one fan-out, for the round ledger: totals are
/// the aggregate work (what the serial path's per-phase walls measured);
/// maxima approximate the critical path; `fanout_wall_us` is the actual
/// barrier-to-barrier wall time (max over workers plus scheduling).
struct RoundEngineStats {
  double fanout_wall_us = 0.0;
  double train_us_total = 0.0;
  double train_us_max = 0.0;
  double prepare_us_total = 0.0;
  double prepare_us_max = 0.0;
};

/// The parallel half of the coordinator's round loop: fans per-owner
/// local training, fixed-point encoding, pairwise mask expansion and
/// payload serialization across the shared ThreadPool. Everything that
/// orders protocol state — simulated-clock advances, injector drop
/// draws, transaction signing (which consumes the session RNG) and chain
/// submission — stays on the coordinator thread, replayed in canonical
/// owner order. Since training and masking touch neither the clock nor
/// the session RNG, the replayed sequence of protocol events is exactly
/// the serial path's, which is the determinism argument (DESIGN.md §13).
class RoundEngine {
 public:
  /// Non-owning references into the coordinator. `injector` (nullable) is
  /// only read via const queries; `BeginRound` must have run on the
  /// coordinator thread before `PrepareOwners` (see fault/injector.h for
  /// the thread-safety contract).
  struct Deps {
    std::vector<fl::FlClient>* clients = nullptr;
    std::vector<std::unique_ptr<secureagg::SecureAggParticipant>>*
        participants = nullptr;
    const fault::FaultInjector* injector = nullptr;
    const std::map<uint32_t, uint64_t>* retired = nullptr;
    int fixed_point_bits = 24;
    uint64_t session_seed = 0;
  };

  /// `pool` may be nullptr (everything runs inline — useful for tests
  /// that want the parallel code path without threads).
  RoundEngine(Deps deps, ThreadPool* pool) : deps_(deps), pool_(pool) {}

  /// Trains, encodes, masks and serializes every participating owner's
  /// update for `round` into `scratch` (grain 1: one owner per pool
  /// task). Offline/retired owners get inactive slots; the caller decides
  /// dropouts during replay. On a per-owner failure the lowest-indexed
  /// owner's error is returned — the same error a serial loop would
  /// surface first.
  Status PrepareOwners(uint64_t round, const ml::Matrix& global,
                       const std::vector<std::vector<size_t>>& groups,
                       RoundScratch* scratch, RoundEngineStats* stats);

  ThreadPool* pool() const { return pool_; }

 private:
  Deps deps_;
  ThreadPool* pool_;
};

}  // namespace bcfl::core
