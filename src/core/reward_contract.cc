#include "core/reward_contract.h"

#include <algorithm>
#include <cmath>

#include "core/params.h"
#include "core/state_keys.h"

namespace bcfl::core {

namespace {

void WriteU64(chain::ContractState* state, const std::string& key,
              uint64_t value) {
  ByteWriter writer;
  writer.WriteU64(value);
  state->Put(key, writer.Take());
}

}  // namespace

uint64_t ReadU64OrZero(const chain::ContractState& state,
                       const std::string& key) {
  auto raw = state.Get(key);
  if (!raw.ok()) return 0;
  ByteReader reader(*raw);
  auto value = reader.ReadU64();
  return value.ok() ? *value : 0;
}

std::string RewardContract::AllocationKey(uint32_t owner) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08u", owner);
  return std::string("reward/allocation/") + buf;
}

std::string RewardContract::ClaimedKey(uint32_t owner) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08u", owner);
  return std::string("reward/claimed/") + buf;
}

Bytes RewardContract::EncodeFund(uint64_t amount) {
  ByteWriter writer;
  writer.WriteU64(amount);
  return writer.Take();
}

Bytes RewardContract::EncodeClaim(uint32_t owner) {
  ByteWriter writer;
  writer.WriteU32(owner);
  return writer.Take();
}

Status RewardContract::Execute(const chain::Transaction& tx,
                               chain::ContractState* state) {
  if (tx.method == "fund") return ExecuteFund(tx, state);
  if (tx.method == "distribute") return ExecuteDistribute(state);
  if (tx.method == "claim") return ExecuteClaim(tx, state);
  return Status::Unimplemented("unknown method: " + tx.method);
}

Status RewardContract::ExecuteFund(const chain::Transaction& tx,
                                   chain::ContractState* state) {
  if (state->Has(DistributedKey())) {
    return Status::FailedPrecondition("pool already distributed");
  }
  ByteReader reader(tx.payload);
  BCFL_ASSIGN_OR_RETURN(uint64_t amount, reader.ReadU64());
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes in fund payload");
  }
  if (amount == 0) {
    return Status::InvalidArgument("cannot fund zero");
  }
  uint64_t pool = ReadU64OrZero(*state, PoolKey());
  if (pool + amount < pool) {
    return Status::OutOfRange("pool overflow");
  }
  WriteU64(state, PoolKey(), pool + amount);
  return Status::OK();
}

Status RewardContract::ExecuteDistribute(chain::ContractState* state) {
  if (state->Has(DistributedKey())) {
    return Status::AlreadyExists("already distributed");
  }
  auto params_bytes = state->Get(keys::SetupParams());
  if (!params_bytes.ok()) {
    return Status::FailedPrecondition("setup has not run");
  }
  BCFL_ASSIGN_OR_RETURN(SetupParams params,
                        SetupParams::Deserialize(*params_bytes));
  // All agreed rounds must have completed.
  if (!state->Has(keys::RoundComplete(params.rounds - 1))) {
    return Status::FailedPrecondition(
        "training has not finished: final round incomplete");
  }
  uint64_t pool = ReadU64OrZero(*state, PoolKey());
  if (pool == 0) {
    return Status::FailedPrecondition("reward pool is empty");
  }

  // Clamp negative contributions; distribute proportionally with
  // integer arithmetic (largest-remainder for the dust so the total
  // always sums to the pool exactly and deterministically).
  std::vector<double> scores(params.num_owners, 0.0);
  double total = 0;
  for (uint32_t i = 0; i < params.num_owners; ++i) {
    auto sv = GetDouble(*state, keys::TotalSv(i));
    scores[i] = sv.ok() ? std::max(0.0, *sv) : 0.0;
    total += scores[i];
  }
  std::vector<uint64_t> allocations(params.num_owners, 0);
  if (total <= 0.0) {
    // Degenerate: split evenly.
    uint64_t each = pool / params.num_owners;
    for (auto& a : allocations) a = each;
    allocations[0] += pool - each * params.num_owners;
  } else {
    uint64_t assigned = 0;
    std::vector<std::pair<double, uint32_t>> remainders;
    for (uint32_t i = 0; i < params.num_owners; ++i) {
      double exact = static_cast<double>(pool) * scores[i] / total;
      allocations[i] = static_cast<uint64_t>(exact);
      assigned += allocations[i];
      remainders.push_back({exact - std::floor(exact), i});
    }
    // Hand the dust to the largest fractional parts (ties by owner id
    // for determinism).
    std::sort(remainders.begin(), remainders.end(), [](auto a, auto b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (uint64_t dust = pool - assigned; dust > 0; --dust) {
      allocations[remainders[(pool - assigned) - dust].second] += 1;
    }
  }

  // Slashing forfeits the pending reward (PR 9): a convicted owner's
  // proportional allocation is moved to the burn sink, not redistributed
  // — honest owners' payouts are exactly what they would have been had
  // the offender stayed honest with the same scores.
  uint64_t burned = 0;
  for (uint32_t i = 0; i < params.num_owners; ++i) {
    if (state->Has(keys::Slashed(i))) {
      burned += allocations[i];
      allocations[i] = 0;
    }
  }
  if (burned > 0) {
    WriteU64(state, BurnedKey(), burned);
  }

  for (uint32_t i = 0; i < params.num_owners; ++i) {
    WriteU64(state, AllocationKey(i), allocations[i]);
  }
  WriteU64(state, DistributedKey(), 1);
  return Status::OK();
}

Status RewardContract::ExecuteClaim(const chain::Transaction& tx,
                                    chain::ContractState* state) {
  if (!state->Has(DistributedKey())) {
    return Status::FailedPrecondition("rewards not yet distributed");
  }
  ByteReader reader(tx.payload);
  BCFL_ASSIGN_OR_RETURN(uint32_t owner, reader.ReadU32());
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes in claim payload");
  }
  BCFL_ASSIGN_OR_RETURN(Bytes params_bytes, state->Get(keys::SetupParams()));
  BCFL_ASSIGN_OR_RETURN(SetupParams params,
                        SetupParams::Deserialize(params_bytes));
  if (owner >= params.num_owners) {
    return Status::InvalidArgument("unknown owner id");
  }
  if (tx.sender != params.schnorr_public_keys[owner]) {
    return Status::PermissionDenied(
        "claim signed with a key not registered for owner " +
        std::to_string(owner));
  }
  if (state->Has(ClaimedKey(owner))) {
    return Status::AlreadyExists("already claimed");
  }
  uint64_t allocation = ReadU64OrZero(*state, AllocationKey(owner));
  WriteU64(state, ClaimedKey(owner), allocation);
  return Status::OK();
}

}  // namespace bcfl::core
