#include "core/slash_contract.h"

#include <cmath>

#include "crypto/dh.h"
#include "obs/metrics.h"
#include "secureagg/fixed_point.h"
#include "secureagg/mask.h"
#include "secureagg/participant.h"
#include "shapley/group_sv.h"

namespace bcfl::core {

namespace {

/// (x, values) — the canonical wire form of one Shamir share, used both
/// inside the evidence payload and under the reveal signature.
void WriteShare(ByteWriter* writer, const crypto::ShamirShare& share) {
  writer->WriteU64(share.x);
  writer->WriteU64Vector(share.values);
}

Result<crypto::ShamirShare> ReadShare(ByteReader* reader) {
  crypto::ShamirShare share;
  BCFL_ASSIGN_OR_RETURN(share.x, reader->ReadU64());
  BCFL_ASSIGN_OR_RETURN(share.values, reader->ReadU64Vector());
  return share;
}

size_t EffectiveThreshold(const SetupParams& params) {
  return params.shamir_threshold != 0 ? params.shamir_threshold
                                      : params.num_owners / 2 + 1;
}

}  // namespace

SlashContract::SlashContract(std::shared_ptr<FlContract> fl)
    : fl_(std::move(fl)) {}

Bytes SlashContract::BadShareMessage(uint64_t round, uint32_t dealer,
                                     const crypto::ShamirShare& share) {
  ByteWriter writer;
  writer.WriteString("bcfl-bad-share");
  writer.WriteU64(round);
  writer.WriteU32(dealer);
  WriteShare(&writer, share);
  return writer.Take();
}

Bytes SlashContract::EncodeBadShare(uint64_t round, uint32_t offender,
                                    const crypto::UInt256& offender_key,
                                    uint32_t dealer,
                                    const crypto::ShamirShare& share,
                                    const crypto::SchnorrSignature& sig) {
  ByteWriter writer;
  writer.WriteU64(round);
  writer.WriteU32(offender);
  writer.WriteU8(static_cast<uint8_t>(SlashKind::kBadShare));
  writer.WriteRaw(offender_key.ToBytes().data(), 32);
  writer.WriteU32(dealer);
  WriteShare(&writer, share);
  const Bytes sig_bytes = sig.ToBytes();
  writer.WriteRaw(sig_bytes.data(), sig_bytes.size());
  return writer.Take();
}

Bytes SlashContract::EncodeEquivocation(uint64_t round, uint32_t offender,
                                        const crypto::UInt256& offender_key,
                                        const chain::Transaction& first,
                                        const chain::Transaction& second) {
  ByteWriter writer;
  writer.WriteU64(round);
  writer.WriteU32(offender);
  writer.WriteU8(static_cast<uint8_t>(SlashKind::kEquivocation));
  writer.WriteRaw(offender_key.ToBytes().data(), 32);
  writer.WriteBytes(first.Serialize());
  writer.WriteBytes(second.Serialize());
  return writer.Take();
}

Bytes SlashContract::EncodeNormViolation(uint64_t round, uint32_t offender,
                                         const crypto::UInt256& offender_key) {
  ByteWriter writer;
  writer.WriteU64(round);
  writer.WriteU32(offender);
  writer.WriteU8(static_cast<uint8_t>(SlashKind::kNormViolation));
  writer.WriteRaw(offender_key.ToBytes().data(), 32);
  return writer.Take();
}

Status SlashContract::Execute(const chain::Transaction& tx,
                              chain::ContractState* state) {
  static auto& slash_execs =
      obs::MetricsRegistry::Global().GetCounter("contract.slash_execs");
  slash_execs.Add();
  if (tx.method != "slash") {
    return Status::Unimplemented("unknown method: " + tx.method);
  }
  auto params_bytes = state->Get(keys::SetupParams());
  if (!params_bytes.ok()) {
    return Status::FailedPrecondition("setup has not run");
  }
  BCFL_ASSIGN_OR_RETURN(SetupParams params,
                        SetupParams::Deserialize(*params_bytes));

  ByteReader reader(tx.payload);
  BCFL_ASSIGN_OR_RETURN(uint64_t round, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(uint32_t offender, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(uint8_t kind_raw, reader.ReadU8());
  BCFL_ASSIGN_OR_RETURN(Bytes key_bytes, reader.ReadRaw(32));

  if (offender >= params.num_owners) {
    return Status::InvalidArgument("unknown offender id");
  }
  if (round >= params.rounds) {
    return Status::InvalidArgument("round beyond the agreed horizon");
  }
  // Accusations come from registered owners (in this simulation, the
  // coordinator acting as the reporting watchdog).
  bool sender_registered = false;
  for (const auto& key : params.schnorr_public_keys) {
    if (tx.sender == key) {
      sender_registered = true;
      break;
    }
  }
  if (!sender_registered) {
    return Status::PermissionDenied("accusation must come from an owner");
  }
  if (state->Has(keys::Slashed(offender))) {
    return Status::AlreadyExists("owner already slashed");
  }
  if (state->Has(keys::Retired(offender))) {
    return Status::AlreadyExists("owner already retired; nothing to slash");
  }

  // Every conviction reveals the offender's DH private key so the round
  // can complete over the survivors: g^x == pub, same check as recovery.
  BCFL_ASSIGN_OR_RETURN(crypto::UInt256 offender_key,
                        crypto::UInt256::FromBytes(key_bytes));
  crypto::DiffieHellman dh;
  crypto::UInt256 derived = dh.params().g.ModPow(offender_key, dh.params().p);
  if (derived != params.dh_public_keys[offender]) {
    return Status::PermissionDenied(
        "revealed key does not match owner " + std::to_string(offender) +
        "'s public key");
  }

  switch (static_cast<SlashKind>(kind_raw)) {
    case SlashKind::kBadShare:
      BCFL_RETURN_IF_ERROR(VerifyBadShare(params, round, offender, &reader));
      break;
    case SlashKind::kEquivocation:
      BCFL_RETURN_IF_ERROR(
          VerifyEquivocation(params, round, offender, &reader));
      break;
    case SlashKind::kNormViolation:
      BCFL_RETURN_IF_ERROR(
          VerifyNormViolation(params, round, offender, offender_key, state));
      break;
    default:
      return Status::InvalidArgument("unknown slash kind");
  }
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes in slash payload");
  }

  // Conviction: convert the offender into this round's dropout (so the
  // residual-mask arithmetic and SV degradation run exactly as a crash
  // would produce), retire it permanently, and record the slash so the
  // reward distribution burns its allocation.
  state->Delete(keys::Update(round, offender));
  state->Put(keys::Dropped(round, offender), key_bytes);
  ByteWriter retired;
  retired.WriteU64(round);
  retired.WriteRaw(key_bytes.data(), key_bytes.size());
  state->Put(keys::Retired(offender), retired.Take());
  ByteWriter slashed;
  slashed.WriteU64(round);
  slashed.WriteU8(kind_raw);
  state->Put(keys::Slashed(offender), slashed.Take());

  // The conviction may have been the round's last missing accounting (or
  // removed the submission that kept a group flagged): re-check.
  return fl_->EvaluateIfComplete(round, state);
}

Status SlashContract::VerifyBadShare(const SetupParams& params, uint64_t round,
                                     uint32_t offender,
                                     ByteReader* reader) const {
  BCFL_ASSIGN_OR_RETURN(uint32_t dealer, reader->ReadU32());
  BCFL_ASSIGN_OR_RETURN(crypto::ShamirShare share, ReadShare(reader));
  BCFL_ASSIGN_OR_RETURN(Bytes sig_bytes, reader->ReadRaw(64));
  BCFL_ASSIGN_OR_RETURN(crypto::SchnorrSignature sig,
                        crypto::SchnorrSignature::FromBytes(sig_bytes));
  if (dealer >= params.num_owners) {
    return Status::InvalidArgument("unknown dealer id");
  }
  if (params.vss_commitments.size() != params.num_owners) {
    return Status::FailedPrecondition(
        "no VSS commitments on chain; bad-share evidence unverifiable");
  }
  // The signature binds the forged share to the offender's authenticated
  // reveal message — without it, anyone could frame anyone.
  const Bytes message = BadShareMessage(round, dealer, share);
  if (!schnorr_.Verify(params.schnorr_public_keys[offender], message, sig)) {
    return Status::PermissionDenied(
        "reveal signature does not bind the share to the offender");
  }
  // The share must sit in the offender's own slot of the dealer's split.
  if (share.x != static_cast<uint64_t>(offender) + 1) {
    return Status::InvalidArgument(
        "share coordinate is not the offender's slot");
  }
  BCFL_ASSIGN_OR_RETURN(
      crypto::VssCommitment commitment,
      crypto::VssCommitment::Deserialize(params.vss_commitments[dealer]));
  BCFL_ASSIGN_OR_RETURN(crypto::ShamirSecretSharing scheme,
                        crypto::ShamirSecretSharing::Create(
                            EffectiveThreshold(params), params.num_owners));
  if (scheme.VerifyShare(share, commitment)) {
    return Status::PermissionDenied(
        "share verifies against the dealer's commitment; accusation is bogus");
  }
  return Status::OK();
}

Status SlashContract::VerifyEquivocation(const SetupParams& params,
                                         uint64_t round, uint32_t offender,
                                         ByteReader* reader) const {
  BCFL_ASSIGN_OR_RETURN(Bytes first_bytes, reader->ReadBytes());
  BCFL_ASSIGN_OR_RETURN(Bytes second_bytes, reader->ReadBytes());
  BCFL_ASSIGN_OR_RETURN(chain::Transaction first,
                        chain::Transaction::Deserialize(first_bytes));
  BCFL_ASSIGN_OR_RETURN(chain::Transaction second,
                        chain::Transaction::Deserialize(second_bytes));
  for (const chain::Transaction* tx : {&first, &second}) {
    if (tx->contract != fl_->name() || tx->method != "submit_update") {
      return Status::InvalidArgument(
          "equivocation evidence must be submit_update transactions");
    }
    if (tx->sender != params.schnorr_public_keys[offender]) {
      return Status::PermissionDenied(
          "evidence transaction not signed by the offender");
    }
    if (!tx->VerifySignature(schnorr_)) {
      return Status::PermissionDenied("evidence transaction badly signed");
    }
    ByteReader payload(tx->payload);
    BCFL_ASSIGN_OR_RETURN(uint64_t tx_round, payload.ReadU64());
    BCFL_ASSIGN_OR_RETURN(uint32_t tx_owner, payload.ReadU32());
    if (tx_round != round || tx_owner != offender) {
      return Status::InvalidArgument(
          "evidence transaction targets a different round or owner");
    }
  }
  if (first.payload == second.payload) {
    return Status::InvalidArgument(
        "evidence transactions agree; no equivocation");
  }
  return Status::OK();
}

Result<double> SlashContract::UnmaskedUpdateNorm(
    const SetupParams& params, uint64_t round, uint32_t owner,
    const crypto::UInt256& owner_key, const chain::ContractState& state) {
  BCFL_ASSIGN_OR_RETURN(std::vector<uint64_t> masked,
                        GetU64Vector(state, keys::Update(round, owner)));

  // Re-derive the owner's group and strip its pairwise masks with the
  // revealed key: masked = encoded + sum_{v>owner} mask - sum_{v<owner}.
  std::vector<size_t> perm =
      shapley::PermutationFromSeed(params.seed_e, round, params.num_owners);
  BCFL_ASSIGN_OR_RETURN(std::vector<std::vector<size_t>> groups,
                        shapley::GroupUsers(perm, params.num_groups));
  const std::vector<size_t>* group = nullptr;
  for (const auto& candidate : groups) {
    for (size_t member : candidate) {
      if (member == owner) {
        group = &candidate;
        break;
      }
    }
    if (group != nullptr) break;
  }
  if (group == nullptr) {
    return Status::Internal("owner not in any group");
  }
  crypto::DiffieHellman dh;
  for (size_t member : *group) {
    const uint32_t v = static_cast<uint32_t>(member);
    if (v == owner) continue;
    crypto::UInt256 shared =
        dh.ComputeShared(owner_key, params.dh_public_keys[v]);
    auto pair_key = secureagg::DerivePairKey(shared, owner, v);
    std::vector<uint64_t> mask =
        secureagg::ExpandMask(pair_key, round, masked.size());
    if (owner < v) {
      for (size_t k = 0; k < masked.size(); ++k) masked[k] -= mask[k];
    } else {
      for (size_t k = 0; k < masked.size(); ++k) masked[k] += mask[k];
    }
  }
  secureagg::FixedPointCodec codec(static_cast<int>(params.fixed_point_bits));
  BCFL_ASSIGN_OR_RETURN(std::vector<double> decoded,
                        codec.DecodeMean(masked, 1));
  double norm_sq = 0.0;
  for (double v : decoded) norm_sq += v * v;
  return std::sqrt(norm_sq);
}

Status SlashContract::VerifyNormViolation(const SetupParams& params,
                                          uint64_t round, uint32_t offender,
                                          const crypto::UInt256& offender_key,
                                          chain::ContractState* state) const {
  if (params.update_norm_bound <= 0.0) {
    return Status::FailedPrecondition("no norm bound agreed at setup");
  }
  BCFL_ASSIGN_OR_RETURN(
      double norm,
      UnmaskedUpdateNorm(params, round, offender, offender_key, *state));
  if (norm <= params.update_norm_bound) {
    return Status::PermissionDenied(
        "unmasked update is within the norm bound; accusation is bogus");
  }
  return Status::OK();
}

}  // namespace bcfl::core
