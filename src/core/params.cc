#include "core/params.h"

namespace bcfl::core {

Bytes SetupParams::Serialize() const {
  ByteWriter writer;
  writer.WriteU32(num_owners);
  writer.WriteU32(rounds);
  writer.WriteU32(num_groups);
  writer.WriteU64(seed_e);
  writer.WriteU32(fixed_point_bits);
  writer.WriteU32(weight_rows);
  writer.WriteU32(weight_cols);
  writer.WriteU32(static_cast<uint32_t>(schnorr_public_keys.size()));
  for (const auto& key : schnorr_public_keys) {
    writer.WriteRaw(key.ToBytes().data(), 32);
  }
  writer.WriteU32(static_cast<uint32_t>(dh_public_keys.size()));
  for (const auto& key : dh_public_keys) {
    writer.WriteRaw(key.ToBytes().data(), 32);
  }
  writer.WriteU32(shamir_threshold);
  writer.WriteDouble(update_norm_bound);
  writer.WriteU32(static_cast<uint32_t>(vss_commitments.size()));
  for (const auto& commitment : vss_commitments) {
    writer.WriteBytes(commitment);
  }
  return writer.Take();
}

Result<SetupParams> SetupParams::Deserialize(const Bytes& bytes) {
  ByteReader reader(bytes);
  SetupParams params;
  BCFL_ASSIGN_OR_RETURN(params.num_owners, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(params.rounds, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(params.num_groups, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(params.seed_e, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(params.fixed_point_bits, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(params.weight_rows, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(params.weight_cols, reader.ReadU32());

  BCFL_ASSIGN_OR_RETURN(uint32_t schnorr_count, reader.ReadU32());
  if (static_cast<uint64_t>(schnorr_count) * 32 > reader.remaining()) {
    return Status::Corruption("key count exceeds payload");
  }
  params.schnorr_public_keys.reserve(schnorr_count);
  for (uint32_t i = 0; i < schnorr_count; ++i) {
    BCFL_ASSIGN_OR_RETURN(Bytes raw, reader.ReadRaw(32));
    BCFL_ASSIGN_OR_RETURN(crypto::UInt256 key, crypto::UInt256::FromBytes(raw));
    params.schnorr_public_keys.push_back(key);
  }
  BCFL_ASSIGN_OR_RETURN(uint32_t dh_count, reader.ReadU32());
  if (static_cast<uint64_t>(dh_count) * 32 > reader.remaining()) {
    return Status::Corruption("key count exceeds payload");
  }
  params.dh_public_keys.reserve(dh_count);
  for (uint32_t i = 0; i < dh_count; ++i) {
    BCFL_ASSIGN_OR_RETURN(Bytes raw, reader.ReadRaw(32));
    BCFL_ASSIGN_OR_RETURN(crypto::UInt256 key, crypto::UInt256::FromBytes(raw));
    params.dh_public_keys.push_back(key);
  }
  BCFL_ASSIGN_OR_RETURN(params.shamir_threshold, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(params.update_norm_bound, reader.ReadDouble());
  BCFL_ASSIGN_OR_RETURN(uint32_t vss_count, reader.ReadU32());
  if (static_cast<uint64_t>(vss_count) * 8 > reader.remaining()) {
    return Status::Corruption("vss commitment count exceeds payload");
  }
  params.vss_commitments.reserve(vss_count);
  for (uint32_t i = 0; i < vss_count; ++i) {
    BCFL_ASSIGN_OR_RETURN(Bytes raw, reader.ReadBytes());
    params.vss_commitments.push_back(std::move(raw));
  }
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes after setup params");
  }
  BCFL_RETURN_IF_ERROR(params.Validate());
  return params;
}

Status SetupParams::Validate() const {
  if (num_owners == 0) {
    return Status::InvalidArgument("num_owners must be >= 1");
  }
  if (num_groups == 0 || num_groups > num_owners) {
    return Status::InvalidArgument("num_groups must be in [1, num_owners]");
  }
  if (num_groups > 20) {
    return Status::InvalidArgument("num_groups > 20 is intractable");
  }
  if (rounds == 0) {
    return Status::InvalidArgument("rounds must be >= 1");
  }
  if (weight_rows == 0 || weight_cols == 0) {
    return Status::InvalidArgument("model shape must be non-zero");
  }
  if (schnorr_public_keys.size() != num_owners ||
      dh_public_keys.size() != num_owners) {
    return Status::InvalidArgument(
        "key roster size does not match num_owners");
  }
  if (shamir_threshold > num_owners) {
    return Status::InvalidArgument("shamir_threshold exceeds num_owners");
  }
  if (update_norm_bound < 0.0) {
    return Status::InvalidArgument("update_norm_bound must be >= 0");
  }
  if (!vss_commitments.empty() && vss_commitments.size() != num_owners) {
    return Status::InvalidArgument(
        "vss commitment roster size does not match num_owners");
  }
  return Status::OK();
}

}  // namespace bcfl::core
