#include "core/state_keys.h"

#include <cstdio>

namespace bcfl::core {

namespace keys {

namespace {

std::string Pad(uint64_t value) {
  char buf[21];
  std::snprintf(buf, sizeof(buf), "%08llu",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

std::string SetupParams() { return "setup/params"; }

std::string Update(uint64_t round, uint32_t owner) {
  return "update/" + Pad(round) + "/" + Pad(owner);
}

std::string UpdatePrefix(uint64_t round) {
  return "update/" + Pad(round) + "/";
}

std::string GroupModel(uint64_t round, uint32_t group) {
  return "group_model/" + Pad(round) + "/" + Pad(group);
}

std::string GlobalModel(uint64_t round) { return "global/" + Pad(round); }

std::string RoundSv(uint64_t round, uint32_t owner) {
  return "sv/" + Pad(round) + "/" + Pad(owner);
}

std::string TotalSv(uint32_t owner) { return "sv_total/" + Pad(owner); }

std::string RoundComplete(uint64_t round) {
  return "round_complete/" + Pad(round);
}

std::string Dropped(uint64_t round, uint32_t owner) {
  return "dropped/" + Pad(round) + "/" + Pad(owner);
}

std::string DroppedPrefix(uint64_t round) {
  return "dropped/" + Pad(round) + "/";
}

std::string Retired(uint32_t owner) { return "retired/" + Pad(owner); }

std::string RetiredPrefix() { return "retired/"; }

std::string Slashed(uint32_t owner) { return "slashed/" + Pad(owner); }

std::string SlashedPrefix() { return "slashed/"; }

std::string Flagged(uint64_t round, uint32_t group) {
  return "flagged/" + Pad(round) + "/" + Pad(group);
}

std::string FlaggedPrefix(uint64_t round) {
  return "flagged/" + Pad(round) + "/";
}

}  // namespace keys

Status PutDouble(chain::ContractState* state, const std::string& key,
                 double value) {
  ByteWriter writer;
  writer.WriteDouble(value);
  state->Put(key, writer.Take());
  return Status::OK();
}

Result<double> GetDouble(const chain::ContractState& state,
                         const std::string& key) {
  BCFL_ASSIGN_OR_RETURN(Bytes raw, state.Get(key));
  ByteReader reader(raw);
  return reader.ReadDouble();
}

Status PutMatrix(chain::ContractState* state, const std::string& key,
                 const ml::Matrix& m) {
  ByteWriter writer;
  m.Serialize(&writer);
  state->Put(key, writer.Take());
  return Status::OK();
}

Result<ml::Matrix> GetMatrix(const chain::ContractState& state,
                             const std::string& key) {
  BCFL_ASSIGN_OR_RETURN(Bytes raw, state.Get(key));
  ByteReader reader(raw);
  return ml::Matrix::Deserialize(&reader);
}

Status PutU64Vector(chain::ContractState* state, const std::string& key,
                    const std::vector<uint64_t>& v) {
  ByteWriter writer;
  writer.WriteU64Vector(v);
  state->Put(key, writer.Take());
  return Status::OK();
}

Result<std::vector<uint64_t>> GetU64Vector(const chain::ContractState& state,
                                           const std::string& key) {
  BCFL_ASSIGN_OR_RETURN(Bytes raw, state.Get(key));
  ByteReader reader(raw);
  return reader.ReadU64Vector();
}

Status PutU64(chain::ContractState* state, const std::string& key,
              uint64_t value) {
  ByteWriter writer;
  writer.WriteU64(value);
  state->Put(key, writer.Take());
  return Status::OK();
}

Result<uint64_t> GetU64(const chain::ContractState& state,
                        const std::string& key) {
  BCFL_ASSIGN_OR_RETURN(Bytes raw, state.Get(key));
  ByteReader reader(raw);
  return reader.ReadU64();
}

}  // namespace bcfl::core
