#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "ml/matrix.h"
#include "net/network.h"

namespace bcfl::core {

/// Everything a coordinator needs to resume a killed session
/// bit-identically from the start of `next_round` (PR 10), given the
/// durable block log next to it:
///
///  - the session RNG and the simulated network's RNG/clock/sequence
///    state, so every later random draw and timestamp matches;
///  - the canonical chain tip and each replica's committed height, so
///    the block-log replay reconstructs exactly the per-miner lag the
///    crashed run had (offline replicas catch up in-session, as they
///    would have);
///  - the run accumulators (SV history, accuracies, counters, roster
///    retirements) that the finished result reports;
///  - the round-ledger position, so the JSONL file is truncated to the
///    checkpoint and re-appended identically.
///
/// On disk the serialized payload rides behind a magic/version header
/// and a CRC32C, and `SaveCheckpoint` writes atomically (tmp + fsync +
/// rename + directory fsync): a crash mid-checkpoint leaves the previous
/// checkpoint intact, and a flipped byte fails the load closed.
struct SessionCheckpoint {
  /// Hash of every determinism-relevant config knob; resume refuses a
  /// checkpoint taken under a different configuration.
  uint64_t config_fingerprint = 0;
  uint64_t next_round = 0;

  Xoshiro256::State session_rng;
  net::SimulatedNetwork::ResumeState network;

  uint64_t tip_height = 0;
  crypto::Digest tip_hash{};
  std::map<uint32_t, uint64_t> miner_heights;

  ml::Matrix global_weights;
  std::vector<std::vector<double>> per_round_sv;
  std::vector<double> round_accuracies;
  uint64_t blocks_committed = 0;
  uint64_t total_transactions = 0;
  uint64_t recover_transactions = 0;
  uint64_t submission_retries = 0;
  uint64_t slash_transactions = 0;
  std::map<uint32_t, uint64_t> retired_at;
  std::map<uint32_t, uint64_t> slashed_at;
  uint64_t ledger_rounds = 0;

  Bytes Serialize() const;
  static Result<SessionCheckpoint> Deserialize(const Bytes& bytes);
};

/// Atomically replaces the checkpoint at `path` (tmp file, fsync, rename,
/// directory fsync).
Status SaveCheckpoint(const SessionCheckpoint& checkpoint,
                      const std::string& path);

/// Fail-closed load: NotFound when no checkpoint exists, Corruption on
/// any framing/CRC/decode mismatch — never a partial checkpoint.
Result<SessionCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace bcfl::core
