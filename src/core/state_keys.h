#pragma once

#include <cstdint>
#include <string>

#include "chain/state.h"
#include "common/result.h"
#include "ml/matrix.h"

namespace bcfl::core {

/// Canonical contract-state key layout of the BCFL framework. Numeric
/// components are zero-padded so lexicographic prefix scans enumerate
/// rounds and owners in order.
namespace keys {

/// "setup/params"
std::string SetupParams();
/// "update/<round>/<owner>" — a masked model update.
std::string Update(uint64_t round, uint32_t owner);
/// Prefix of all updates of a round.
std::string UpdatePrefix(uint64_t round);
/// "group_model/<round>/<group>" — decoded group model W_j.
std::string GroupModel(uint64_t round, uint32_t group);
/// "global/<round>" — global model after the round.
std::string GlobalModel(uint64_t round);
/// "sv/<round>/<owner>" — per-round contribution v_i^r.
std::string RoundSv(uint64_t round, uint32_t owner);
/// "sv_total/<owner>" — accumulated contribution.
std::string TotalSv(uint32_t owner);
/// "round_complete/<round>" — marker written after evaluation.
std::string RoundComplete(uint64_t round);
/// "dropped/<round>/<owner>" — revealed DH private key of a dropped owner.
std::string Dropped(uint64_t round, uint32_t owner);
/// Prefix of all dropout records of a round.
std::string DroppedPrefix(uint64_t round);
/// "retired/<owner>" — permanent retirement record (retirement round +
/// revealed DH private key). Once an owner's key is revealed by a
/// recovery it can never safely mask again, so it is retired for good.
std::string Retired(uint32_t owner);
/// Prefix of all retirement records.
std::string RetiredPrefix();
/// "slashed/<owner>" — byzantine conviction record (slash round + evidence
/// kind). Written by the SlashContract alongside the dropout/retirement
/// records; the reward distribution burns the owner's allocation.
std::string Slashed(uint32_t owner);
/// Prefix of all slash records.
std::string SlashedPrefix();
/// "flagged/<round>/<group>" — norm-gate marker: the group's decoded
/// aggregate exceeded `update_norm_bound`, so evaluation is withheld
/// until an audit slashes the offender. Deleted by the clean evaluation.
std::string Flagged(uint64_t round, uint32_t group);
/// Prefix of all norm-gate markers of a round.
std::string FlaggedPrefix(uint64_t round);

}  // namespace keys

/// Typed helpers over the raw byte values stored at the keys above.
Status PutDouble(chain::ContractState* state, const std::string& key,
                 double value);
Result<double> GetDouble(const chain::ContractState& state,
                         const std::string& key);
Status PutMatrix(chain::ContractState* state, const std::string& key,
                 const ml::Matrix& m);
Result<ml::Matrix> GetMatrix(const chain::ContractState& state,
                             const std::string& key);
Status PutU64Vector(chain::ContractState* state, const std::string& key,
                    const std::vector<uint64_t>& v);
Result<std::vector<uint64_t>> GetU64Vector(const chain::ContractState& state,
                                           const std::string& key);
Status PutU64(chain::ContractState* state, const std::string& key,
              uint64_t value);
Result<uint64_t> GetU64(const chain::ContractState& state,
                        const std::string& key);

}  // namespace bcfl::core
