#include "core/fl_contract.h"

#include <algorithm>
#include <cmath>

#include "crypto/dh.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "secureagg/fixed_point.h"
#include "secureagg/mask.h"
#include "secureagg/participant.h"
#include "shapley/group_sv.h"

namespace bcfl::core {

FlContract::FlContract(ml::Dataset validation_set)
    : validation_set_(std::move(validation_set)),
      utility_(std::make_unique<shapley::CachingUtility>(
          std::make_unique<shapley::TestAccuracyUtility>(validation_set_))) {}

Bytes FlContract::EncodeSubmitUpdate(uint64_t round, uint32_t owner,
                                     const std::vector<uint64_t>& masked) {
  ByteWriter writer;
  writer.WriteU64(round);
  writer.WriteU32(owner);
  writer.WriteU64Vector(masked);
  return writer.Take();
}

Bytes FlContract::EncodeRecover(uint64_t round, uint32_t dropped_owner,
                                const crypto::UInt256& dh_private_key) {
  ByteWriter writer;
  writer.WriteU64(round);
  writer.WriteU32(dropped_owner);
  writer.WriteRaw(dh_private_key.ToBytes().data(), 32);
  return writer.Take();
}

Status FlContract::Execute(const chain::Transaction& tx,
                           chain::ContractState* state) {
  // Executions are counted per miner re-execution, not per unique tx:
  // the same transaction runs once during proposal validation on each
  // validator and once at commit on each replica.
  if (tx.method == "setup") {
    static auto& setups =
        obs::MetricsRegistry::Global().GetCounter("contract.setup_execs");
    setups.Add();
    return ExecuteSetup(tx, state);
  }
  if (tx.method == "submit_update") {
    static auto& submits = obs::MetricsRegistry::Global().GetCounter(
        "contract.submit_update_execs");
    submits.Add();
    return ExecuteSubmitUpdate(tx, state);
  }
  if (tx.method == "recover") {
    static auto& recovers =
        obs::MetricsRegistry::Global().GetCounter("contract.recover_execs");
    recovers.Add();
    return ExecuteRecover(tx, state);
  }
  return Status::Unimplemented("unknown method: " + tx.method);
}

Status FlContract::ExecuteSetup(const chain::Transaction& tx,
                                chain::ContractState* state) {
  if (state->Has(keys::SetupParams())) {
    return Status::AlreadyExists("setup already executed");
  }
  auto params = SetupParams::Deserialize(tx.payload);
  if (!params.ok()) {
    return params.status().WithContext("bad setup payload");
  }
  // The initiator (owner 0) must sign the setup transaction.
  if (params->schnorr_public_keys.empty() ||
      tx.sender != params->schnorr_public_keys[0]) {
    return Status::PermissionDenied("setup must be signed by owner 0");
  }
  state->Put(keys::SetupParams(), tx.payload);
  return Status::OK();
}

Status FlContract::ExecuteSubmitUpdate(const chain::Transaction& tx,
                                       chain::ContractState* state) {
  auto params_bytes = state->Get(keys::SetupParams());
  if (!params_bytes.ok()) {
    return Status::FailedPrecondition("setup has not run");
  }
  BCFL_ASSIGN_OR_RETURN(SetupParams params,
                        SetupParams::Deserialize(*params_bytes));

  ByteReader reader(tx.payload);
  BCFL_ASSIGN_OR_RETURN(uint64_t round, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(uint32_t owner, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(std::vector<uint64_t> masked, reader.ReadU64Vector());
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes in submit_update payload");
  }

  if (owner >= params.num_owners) {
    return Status::InvalidArgument("unknown owner id");
  }
  if (round >= params.rounds) {
    return Status::InvalidArgument("round beyond the agreed horizon");
  }
  // Authentication: the tx must be signed with the owner's key published
  // at setup (the host already checked the signature itself).
  if (tx.sender != params.schnorr_public_keys[owner]) {
    return Status::PermissionDenied(
        "submission signed with a key not registered for owner " +
        std::to_string(owner));
  }
  size_t expected =
      static_cast<size_t>(params.weight_rows) * params.weight_cols;
  if (masked.size() != expected) {
    return Status::InvalidArgument("masked update has wrong dimension");
  }
  std::string update_key = keys::Update(round, owner);
  if (state->Has(update_key)) {
    return Status::AlreadyExists("owner already submitted this round");
  }
  if (state->Has(keys::Dropped(round, owner))) {
    return Status::FailedPrecondition(
        "owner was already recovered as dropped this round");
  }
  // A recovery revealed this owner's DH key on chain; its masks are
  // public forever, so the contract never accepts its updates again.
  if (state->Has(keys::Retired(owner))) {
    return Status::FailedPrecondition("owner " + std::to_string(owner) +
                                      " was retired by an earlier recovery");
  }
  BCFL_RETURN_IF_ERROR(PutU64Vector(state, update_key, masked));
  return MaybeEvaluateRound(params, round, state);
}

Status FlContract::ExecuteRecover(const chain::Transaction& tx,
                                  chain::ContractState* state) {
  auto params_bytes = state->Get(keys::SetupParams());
  if (!params_bytes.ok()) {
    return Status::FailedPrecondition("setup has not run");
  }
  BCFL_ASSIGN_OR_RETURN(SetupParams params,
                        SetupParams::Deserialize(*params_bytes));

  ByteReader reader(tx.payload);
  BCFL_ASSIGN_OR_RETURN(uint64_t round, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(uint32_t dropped, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(Bytes key_bytes, reader.ReadRaw(32));
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes in recover payload");
  }
  if (dropped >= params.num_owners) {
    return Status::InvalidArgument("unknown owner id");
  }
  if (round >= params.rounds) {
    return Status::InvalidArgument("round beyond the agreed horizon");
  }
  // Any *registered* owner may submit the recovery (it is the product
  // of a threshold of share reveals, not one party's secret).
  bool sender_registered = false;
  for (const auto& key : params.schnorr_public_keys) {
    if (tx.sender == key) {
      sender_registered = true;
      break;
    }
  }
  if (!sender_registered) {
    return Status::PermissionDenied("recovery must come from an owner");
  }
  if (state->Has(keys::Update(round, dropped))) {
    return Status::FailedPrecondition(
        "owner submitted this round; nothing to recover");
  }
  if (state->Has(keys::Dropped(round, dropped))) {
    return Status::AlreadyExists("owner already recovered this round");
  }
  if (state->Has(keys::Retired(dropped))) {
    return Status::AlreadyExists("owner already retired; its key is on chain");
  }

  // Verifiability: the revealed private key must match the dropped
  // owner's DH public key broadcast at setup — g^x == pub. A forged
  // "recovery" is rejected deterministically by every miner.
  BCFL_ASSIGN_OR_RETURN(crypto::UInt256 private_key,
                        crypto::UInt256::FromBytes(key_bytes));
  crypto::DiffieHellman dh;
  crypto::UInt256 derived = dh.params().g.ModPow(private_key, dh.params().p);
  if (derived != params.dh_public_keys[dropped]) {
    return Status::PermissionDenied(
        "revealed key does not match owner " + std::to_string(dropped) +
        "'s public key");
  }
  state->Put(keys::Dropped(round, dropped), key_bytes);
  // Retirement record: (round, key). Later rounds read it to count the
  // owner as permanently accounted for and to cancel the residual masks
  // survivors still generate against it.
  ByteWriter retired;
  retired.WriteU64(round);
  retired.WriteRaw(key_bytes.data(), key_bytes.size());
  state->Put(keys::Retired(dropped), retired.Take());
  return MaybeEvaluateRound(params, round, state);
}

Result<std::map<uint32_t, crypto::UInt256>> FlContract::RetiredBefore(
    const chain::ContractState& state, uint64_t round) {
  std::map<uint32_t, crypto::UInt256> retired;
  for (const auto& key : state.KeysWithPrefix(keys::RetiredPrefix())) {
    uint32_t owner = static_cast<uint32_t>(
        std::stoul(key.substr(key.rfind('/') + 1)));
    BCFL_ASSIGN_OR_RETURN(Bytes record, state.Get(key));
    ByteReader reader(record);
    BCFL_ASSIGN_OR_RETURN(uint64_t retired_round, reader.ReadU64());
    BCFL_ASSIGN_OR_RETURN(Bytes key_bytes, reader.ReadRaw(32));
    if (retired_round >= round) continue;  // Counted by this round's drops.
    BCFL_ASSIGN_OR_RETURN(crypto::UInt256 priv,
                          crypto::UInt256::FromBytes(key_bytes));
    retired[owner] = priv;
  }
  return retired;
}

Status FlContract::EvaluateIfComplete(uint64_t round,
                                      chain::ContractState* state) {
  auto params_bytes = state->Get(keys::SetupParams());
  if (!params_bytes.ok()) {
    return Status::FailedPrecondition("setup has not run");
  }
  BCFL_ASSIGN_OR_RETURN(SetupParams params,
                        SetupParams::Deserialize(*params_bytes));
  if (round >= params.rounds) {
    return Status::InvalidArgument("round beyond the agreed horizon");
  }
  return MaybeEvaluateRound(params, round, state);
}

Status FlContract::MaybeEvaluateRound(const SetupParams& params,
                                      uint64_t round,
                                      chain::ContractState* state) {
  if (state->Has(keys::RoundComplete(round))) {
    return Status::OK();  // Already evaluated.
  }
  // Per-owner union membership rather than summed set sizes (PR 9): a
  // slash both deletes a submitted update and writes a dropout record in
  // one transaction, so counting the sets independently could transiently
  // double-count an owner; membership is exact under any interleaving.
  BCFL_ASSIGN_OR_RETURN(auto retired, RetiredBefore(*state, round));
  size_t accounted = 0;
  size_t submitted = 0;
  for (uint32_t i = 0; i < params.num_owners; ++i) {
    const bool has_update = state->Has(keys::Update(round, i));
    if (has_update) ++submitted;
    if (has_update || state->Has(keys::Dropped(round, i)) ||
        retired.count(i) > 0) {
      ++accounted;
    }
  }
  if (accounted < params.num_owners) {
    return Status::OK();  // Round still in progress.
  }
  if (submitted == 0) {
    return Status::FailedPrecondition("no survivors: cannot evaluate round");
  }
  return EvaluateRound(params, round, state);
}

Status FlContract::EvaluateRound(const SetupParams& params, uint64_t round,
                                 chain::ContractState* state) {
  static auto& round_evals =
      obs::MetricsRegistry::Global().GetCounter("contract.round_evals");
  static auto& eval_us = obs::MetricsRegistry::Global().GetHistogram(
      "contract.round_eval_us");
  obs::ScopedSpan span(obs::Tracer::Global(), "round_eval", "contract");
  obs::ScopedLatency latency(eval_us);
  round_evals.Add();
  const size_t n = params.num_owners;
  const size_t rows = params.weight_rows;
  const size_t cols = params.weight_cols;
  secureagg::FixedPointCodec codec(
      static_cast<int>(params.fixed_point_bits));
  crypto::DiffieHellman dh;

  // Collect the revealed keys of every absent member: owners recovered
  // this round plus owners retired by earlier recoveries. Survivors mask
  // against the full group roster (they need not even know who retired),
  // so every absent member's residual masks are regenerated from its
  // on-chain key and removed — the same arithmetic either way.
  std::map<uint32_t, crypto::UInt256> dropped_keys;
  for (const auto& key : state->KeysWithPrefix(keys::DroppedPrefix(round))) {
    // Key layout: "dropped/<round>/<owner>".
    uint32_t owner = static_cast<uint32_t>(
        std::stoul(key.substr(key.rfind('/') + 1)));
    BCFL_ASSIGN_OR_RETURN(Bytes key_bytes, state->Get(key));
    BCFL_ASSIGN_OR_RETURN(crypto::UInt256 priv,
                          crypto::UInt256::FromBytes(key_bytes));
    dropped_keys[owner] = priv;
  }
  BCFL_ASSIGN_OR_RETURN(auto retired_keys, RetiredBefore(*state, round));
  dropped_keys.insert(retired_keys.begin(), retired_keys.end());

  // Derive the deterministic grouping for this round (Algorithm 1,
  // lines 1-2) — identical on every miner.
  std::vector<size_t> perm =
      shapley::PermutationFromSeed(params.seed_e, round, n);
  BCFL_ASSIGN_OR_RETURN(std::vector<std::vector<size_t>> groups,
                        shapley::GroupUsers(perm, params.num_groups));

  // Line 3: within-group ring sums over the *survivors*; pairwise masks
  // between survivors cancel, and each survivor<->dropped residual mask
  // is regenerated from the revealed key and removed. Decode the mean
  // over survivors as the group model. Models are held in memory until
  // the norm gate below passes: a flagged evaluation must leave the state
  // exactly as it found it (plus the flag markers), or the eventual clean
  // evaluation would diverge from a run where the offender just crashed.
  struct PendingGroup {
    uint32_t index;
    std::vector<size_t> survivors;
    ml::Matrix model;
  };
  std::vector<PendingGroup> pending;
  pending.reserve(groups.size());
  {
    obs::ScopedSpan unmask_span(obs::Tracer::Global(), "mask_round",
                                "secureagg");
    for (size_t j = 0; j < groups.size(); ++j) {
      std::vector<size_t> survivors;
      std::vector<uint32_t> dropped_members;
      for (size_t member : groups[j]) {
        if (dropped_keys.count(static_cast<uint32_t>(member)) > 0) {
          dropped_members.push_back(static_cast<uint32_t>(member));
        } else {
          survivors.push_back(member);
        }
      }
      if (survivors.empty()) {
        // Every member dropped or retired: the group contributes no model
        // this round and GroupSV degrades to the surviving groups.
        continue;
      }

      std::vector<uint64_t> sum(rows * cols, 0);
      for (size_t member : survivors) {
        BCFL_ASSIGN_OR_RETURN(
            std::vector<uint64_t> masked,
            GetU64Vector(*state,
                         keys::Update(round, static_cast<uint32_t>(member))));
        for (size_t k = 0; k < sum.size(); ++k) sum[k] += masked[k];
      }
      // Residual-mask removal (the recovery path of Bonawitz et al.).
      for (uint32_t u : dropped_members) {
        for (size_t v : survivors) {
          crypto::UInt256 shared = dh.ComputeShared(
              dropped_keys[u], params.dh_public_keys[v]);
          auto pair_key = secureagg::DerivePairKey(
              shared, u, static_cast<secureagg::OwnerId>(v));
          std::vector<uint64_t> mask =
              secureagg::ExpandMask(pair_key, round, sum.size());
          if (v < u) {
            // Survivor v added +mask against the (larger-id) dropped u.
            for (size_t k = 0; k < sum.size(); ++k) sum[k] -= mask[k];
          } else {
            for (size_t k = 0; k < sum.size(); ++k) sum[k] += mask[k];
          }
        }
      }

      BCFL_ASSIGN_OR_RETURN(std::vector<double> mean,
                            codec.DecodeMean(sum, survivors.size()));
      ml::Matrix model(rows, cols);
      model.mutable_data() = std::move(mean);
      pending.push_back(
          {static_cast<uint32_t>(j), std::move(survivors), std::move(model)});
    }
  }

  // Norm gate (PR 9): a poisoned or mask-inconsistent submission survives
  // masking arithmetically, but it drags its group's decoded aggregate
  // far outside the honest envelope. Groups over the bound are flagged on
  // chain and the round is *held open* — no models, SVs or completion
  // marker are written — until an audit slashes the offender, at which
  // point the re-evaluation below runs clean over the survivors.
  if (params.update_norm_bound > 0.0) {
    bool any_flagged = false;
    for (const auto& group : pending) {
      double norm_sq = 0.0;
      for (double v : group.model.data()) norm_sq += v * v;
      const double norm = std::sqrt(norm_sq);
      if (norm > params.update_norm_bound) {
        BCFL_RETURN_IF_ERROR(
            PutDouble(state, keys::Flagged(round, group.index), norm));
        any_flagged = true;
      }
    }
    if (any_flagged) return Status::OK();
  }
  // Clean evaluation: flags from a pre-slash attempt are removed so the
  // final state matches a run where the offender simply crashed.
  for (const auto& key : state->KeysWithPrefix(keys::FlaggedPrefix(round))) {
    state->Delete(key);
  }
  std::vector<std::vector<size_t>> surviving_groups;
  surviving_groups.reserve(pending.size());
  std::vector<ml::Matrix> group_models;
  group_models.reserve(pending.size());
  for (auto& group : pending) {
    BCFL_RETURN_IF_ERROR(PutMatrix(
        state, keys::GroupModel(round, group.index), group.model));
    surviving_groups.push_back(std::move(group.survivors));
    group_models.push_back(std::move(group.model));
  }

  // Lines 4-7 over the surviving membership: coalition models, group
  // SVs, per-user assignment. Dropped owners appear in no group and
  // score zero for the round.
  shapley::GroupShapley evaluator(
      n, {params.num_groups, params.seed_e}, utility_.get());
  BCFL_ASSIGN_OR_RETURN(shapley::GroupShapleyRound result,
                        evaluator.EvaluateRoundFromGroupModels(
                            surviving_groups, std::move(group_models)));

  for (uint32_t i = 0; i < n; ++i) {
    BCFL_RETURN_IF_ERROR(
        PutDouble(state, keys::RoundSv(round, i), result.user_values[i]));
    double total = 0.0;
    auto prev = GetDouble(*state, keys::TotalSv(i));
    if (prev.ok()) total = *prev;
    BCFL_RETURN_IF_ERROR(
        PutDouble(state, keys::TotalSv(i), total + result.user_values[i]));
  }

  BCFL_RETURN_IF_ERROR(
      PutMatrix(state, keys::GlobalModel(round), result.global_model));
  ByteWriter marker;
  marker.WriteU8(1);
  state->Put(keys::RoundComplete(round), marker.Take());
  return Status::OK();
}

}  // namespace bcfl::core
