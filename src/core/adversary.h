#pragma once

#include <cstdint>

#include "chain/miner.h"
#include "common/result.h"

namespace bcfl::core {

/// Byzantine behaviours for the threat-model experiments (Sect. III-A and
/// the future-work items of Sect. VI).

/// A fraudulent leader that "tries to maximize his/her contribution by
/// proposing incorrect evaluation results": after executing the round it
/// rewrites the on-chain total SV of `beneficiary_owner`, adding
/// `inflation`. Honest validators re-execute, obtain a different state
/// root, and vote reject — the chain only ever commits truthful results
/// while a majority of miners is honest.
chain::MinerBehavior MakeSvInflationBehavior(uint32_t beneficiary_owner,
                                             double inflation);

/// A leader that silently drops a victim owner's per-round SV record
/// (sets it to zero) — a targeted suppression attack.
chain::MinerBehavior MakeSvSuppressionBehavior(uint32_t victim_owner);

/// A griefing validator that rejects every proposal regardless of
/// validity. Consensus tolerates a minority of these.
chain::MinerBehavior MakeAlwaysRejectBehavior();

/// A leader that accepts a bogus slash (PR 9): it writes the conviction
/// records — `slashed/`, `retired/`, a `dropped/` entry for `round` —
/// against `victim_owner` directly into its post-execution state, as if
/// evidence that every honest miner would reject had verified. Honest
/// validators re-execute the block without the fabricated conviction,
/// reach a different state root and vote reject, so the honest owner is
/// never slashed on the committed chain.
chain::MinerBehavior MakeBogusSlashBehavior(uint32_t victim_owner,
                                            uint64_t round);

}  // namespace bcfl::core
