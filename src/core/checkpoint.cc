#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/fsync_util.h"

namespace bcfl::core {

namespace {

constexpr char kMagic[4] = {'B', 'C', 'K', 'P'};
constexpr uint32_t kVersion = 1;

void WriteU32Map(ByteWriter* writer,
                 const std::map<uint32_t, uint64_t>& map) {
  writer->WriteU32(static_cast<uint32_t>(map.size()));
  for (const auto& [key, value] : map) {
    writer->WriteU32(key);
    writer->WriteU64(value);
  }
}

Result<std::map<uint32_t, uint64_t>> ReadU32Map(ByteReader* reader) {
  BCFL_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  std::map<uint32_t, uint64_t> map;
  for (uint32_t i = 0; i < count; ++i) {
    BCFL_ASSIGN_OR_RETURN(uint32_t key, reader->ReadU32());
    BCFL_ASSIGN_OR_RETURN(uint64_t value, reader->ReadU64());
    map[key] = value;
  }
  return map;
}

void WriteRngState(ByteWriter* writer, const Xoshiro256::State& state) {
  for (uint64_t word : state.s) writer->WriteU64(word);
  writer->WriteU8(state.has_cached_gaussian ? 1 : 0);
  writer->WriteDouble(state.cached_gaussian);
}

Result<Xoshiro256::State> ReadRngState(ByteReader* reader) {
  Xoshiro256::State state;
  for (uint64_t& word : state.s) {
    BCFL_ASSIGN_OR_RETURN(word, reader->ReadU64());
  }
  BCFL_ASSIGN_OR_RETURN(uint8_t cached, reader->ReadU8());
  state.has_cached_gaussian = cached != 0;
  BCFL_ASSIGN_OR_RETURN(state.cached_gaussian, reader->ReadDouble());
  return state;
}

}  // namespace

Bytes SessionCheckpoint::Serialize() const {
  ByteWriter writer;
  writer.WriteU64(config_fingerprint);
  writer.WriteU64(next_round);

  WriteRngState(&writer, session_rng);
  WriteRngState(&writer, network.rng);
  writer.WriteU64(network.next_seq);
  writer.WriteU64(network.clock_us);
  writer.WriteU32(static_cast<uint32_t>(network.drop_streams.size()));
  for (const auto& [from, to, state] : network.drop_streams) {
    writer.WriteU32(from);
    writer.WriteU32(to);
    writer.WriteU64(state);
  }

  writer.WriteU64(tip_height);
  writer.WriteRaw(tip_hash.data(), tip_hash.size());
  WriteU32Map(&writer, miner_heights);

  global_weights.Serialize(&writer);
  writer.WriteU32(static_cast<uint32_t>(per_round_sv.size()));
  for (const auto& sv : per_round_sv) writer.WriteDoubleVector(sv);
  writer.WriteDoubleVector(round_accuracies);
  writer.WriteU64(blocks_committed);
  writer.WriteU64(total_transactions);
  writer.WriteU64(recover_transactions);
  writer.WriteU64(submission_retries);
  writer.WriteU64(slash_transactions);
  WriteU32Map(&writer, retired_at);
  WriteU32Map(&writer, slashed_at);
  writer.WriteU64(ledger_rounds);
  return writer.Take();
}

Result<SessionCheckpoint> SessionCheckpoint::Deserialize(const Bytes& bytes) {
  ByteReader reader(bytes);
  SessionCheckpoint cp;
  BCFL_ASSIGN_OR_RETURN(cp.config_fingerprint, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(cp.next_round, reader.ReadU64());

  BCFL_ASSIGN_OR_RETURN(cp.session_rng, ReadRngState(&reader));
  BCFL_ASSIGN_OR_RETURN(cp.network.rng, ReadRngState(&reader));
  BCFL_ASSIGN_OR_RETURN(cp.network.next_seq, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(cp.network.clock_us, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(uint32_t streams, reader.ReadU32());
  for (uint32_t i = 0; i < streams; ++i) {
    BCFL_ASSIGN_OR_RETURN(uint32_t from, reader.ReadU32());
    BCFL_ASSIGN_OR_RETURN(uint32_t to, reader.ReadU32());
    BCFL_ASSIGN_OR_RETURN(uint64_t state, reader.ReadU64());
    cp.network.drop_streams.emplace_back(from, to, state);
  }

  BCFL_ASSIGN_OR_RETURN(cp.tip_height, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(Bytes hash, reader.ReadRaw(cp.tip_hash.size()));
  std::copy(hash.begin(), hash.end(), cp.tip_hash.begin());
  BCFL_ASSIGN_OR_RETURN(cp.miner_heights, ReadU32Map(&reader));

  BCFL_ASSIGN_OR_RETURN(cp.global_weights, ml::Matrix::Deserialize(&reader));
  BCFL_ASSIGN_OR_RETURN(uint32_t sv_rounds, reader.ReadU32());
  for (uint32_t i = 0; i < sv_rounds; ++i) {
    BCFL_ASSIGN_OR_RETURN(std::vector<double> sv, reader.ReadDoubleVector());
    cp.per_round_sv.push_back(std::move(sv));
  }
  BCFL_ASSIGN_OR_RETURN(cp.round_accuracies, reader.ReadDoubleVector());
  BCFL_ASSIGN_OR_RETURN(cp.blocks_committed, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(cp.total_transactions, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(cp.recover_transactions, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(cp.submission_retries, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(cp.slash_transactions, reader.ReadU64());
  BCFL_ASSIGN_OR_RETURN(cp.retired_at, ReadU32Map(&reader));
  BCFL_ASSIGN_OR_RETURN(cp.slashed_at, ReadU32Map(&reader));
  BCFL_ASSIGN_OR_RETURN(cp.ledger_rounds, reader.ReadU64());
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes after checkpoint payload");
  }
  return cp;
}

Status SaveCheckpoint(const SessionCheckpoint& checkpoint,
                      const std::string& path) {
  Bytes payload = checkpoint.Serialize();
  ByteWriter writer;
  writer.WriteRaw(reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic));
  writer.WriteU32(kVersion);
  writer.WriteU32(static_cast<uint32_t>(payload.size()));
  writer.WriteU32(Crc32c(payload.data(), payload.size()));
  writer.WriteRaw(payload.data(), payload.size());

  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open checkpoint for writing: " + tmp_path);
  }
  const Bytes& buffer = writer.buffer();
  const size_t written = std::fwrite(buffer.data(), 1, buffer.size(), file);
  Status sync = written == buffer.size() ? FlushAndSync(file)
                                         : Status::Internal("short write");
  const int close_rc = std::fclose(file);
  if (written != buffer.size() || !sync.ok() || close_rc != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("short write while saving checkpoint");
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::Internal("checkpoint rename failed: " + ec.message());
  }
  return SyncParentDir(path);
}

Result<SessionCheckpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::Internal("cannot seek checkpoint");
  }
  long size = std::ftell(file);
  if (size < 0 || std::fseek(file, 0, SEEK_SET) != 0) {
    std::fclose(file);
    return Status::Internal("cannot stat checkpoint");
  }
  Bytes buffer(static_cast<size_t>(size));
  Status read = buffer.empty()
                    ? Status::Corruption("checkpoint file is empty")
                    : ReadExact(file, buffer.data(), buffer.size());
  std::fclose(file);
  if (!read.ok()) {
    return Status::Corruption("short read while loading checkpoint: " +
                              std::string(read.message()));
  }

  ByteReader reader(buffer);
  BCFL_ASSIGN_OR_RETURN(Bytes magic, reader.ReadRaw(sizeof(kMagic)));
  if (!std::equal(magic.begin(), magic.end(),
                  reinterpret_cast<const uint8_t*>(kMagic))) {
    return Status::Corruption("bad magic: not a BCFL checkpoint");
  }
  BCFL_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return Status::Unimplemented("unsupported checkpoint version " +
                                 std::to_string(version));
  }
  BCFL_ASSIGN_OR_RETURN(uint32_t length, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(uint32_t crc, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(Bytes payload, reader.ReadRaw(length));
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes after checkpoint");
  }
  if (Crc32c(payload.data(), payload.size()) != crc) {
    return Status::Corruption("checkpoint CRC mismatch — refusing to load");
  }
  Result<SessionCheckpoint> decoded = SessionCheckpoint::Deserialize(payload);
  if (!decoded.ok()) {
    return decoded.status().WithContext("decoding checkpoint " + path);
  }
  return decoded;
}

}  // namespace bcfl::core
