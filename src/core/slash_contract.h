#pragma once

#include <memory>

#include "chain/contract.h"
#include "chain/transaction.h"
#include "core/fl_contract.h"
#include "core/params.h"
#include "crypto/schnorr.h"
#include "crypto/shamir.h"

namespace bcfl::core {

/// Evidence category of a slash transaction (PR 9).
enum class SlashKind : uint8_t {
  kBadShare = 1,      ///< Forged Shamir share revealed during a recovery.
  kEquivocation = 2,  ///< Two conflicting signed submissions for one round.
  kNormViolation = 3, ///< Unmasked update exceeds the agreed norm bound.
};

/// The accusation → verification → slashing contract ("slash").
///
/// Every slash transaction carries the *evidence* of the misbehavior, and
/// the contract re-verifies it deterministically — so a conviction holds
/// exactly when every honest miner, re-executing the block, reaches the
/// same verdict; a bogus accusation (adversarial leader) fails evidence
/// verification on re-execution and its block is rejected. Payload layout:
/// (round u64, offender u32, kind u8, offender's revealed DH private key
/// 32B, kind-specific blob).
///
/// The revealed key is part of *every* evidence payload: a conviction must
/// not stall the round, and the survivors' residual pairwise masks against
/// the offender can only be cancelled from its key — reconstructed
/// off-chain from the threshold of VSS-verified Shamir shares, exactly as
/// the dropout path does. The contract checks g^x == pub_offender, then
/// converts the offender into a dropout: its submitted update (if any) is
/// deleted, a `dropped/` record carries the key into aggregation, the
/// owner is permanently retired via the existing retirement path, and a
/// `slashed/` record marks the conviction so the reward distribution burns
/// the owner's allocation. The round then degrades gracefully over the
/// honest survivors with SVs recomputed exactly as the dropout path does.
///
/// Kind-specific evidence:
///  - kBadShare: (dealer u32, share, offender's signature over the reveal
///    message). Valid iff the signature binds the share to the offender,
///    the share sits in the offender's slot (x = offender + 1), and the
///    share FAILS Feldman verification against the dealer's on-chain VSS
///    commitment. An honest share verifies, so the accusation dies.
///  - kEquivocation: two full serialized transactions. Valid iff both are
///    validly signed `submit_update`s by the offender for this round with
///    different payloads.
///  - kNormViolation: no blob. The contract unmasks the offender's own
///    on-chain submission with the revealed key (subtracting its pairwise
///    masks against its group roster), decodes it, and convicts iff the
///    L2 norm exceeds the setup's `update_norm_bound`.
class SlashContract : public chain::SmartContract {
 public:
  /// `fl` is the registered FL contract instance: a completing slash
  /// triggers its round evaluation, like the last submit/recover would.
  explicit SlashContract(std::shared_ptr<FlContract> fl);

  std::string name() const override { return "slash"; }

  Status Execute(const chain::Transaction& tx,
                 chain::ContractState* state) override;

  /// The authenticated share-reveal message a holder signs; the signature
  /// is what pins a forged share on its sender.
  static Bytes BadShareMessage(uint64_t round, uint32_t dealer,
                               const crypto::ShamirShare& share);

  // Payload encoders (helpers for the accusing coordinator and tests).
  static Bytes EncodeBadShare(uint64_t round, uint32_t offender,
                              const crypto::UInt256& offender_key,
                              uint32_t dealer,
                              const crypto::ShamirShare& share,
                              const crypto::SchnorrSignature& reveal_sig);
  static Bytes EncodeEquivocation(uint64_t round, uint32_t offender,
                                  const crypto::UInt256& offender_key,
                                  const chain::Transaction& first,
                                  const chain::Transaction& second);
  static Bytes EncodeNormViolation(uint64_t round, uint32_t offender,
                                   const crypto::UInt256& offender_key);

  /// L2 norm of `owner`'s on-chain round submission after stripping its
  /// pairwise masks with the revealed private key — the deterministic
  /// measurement both the contract's verification and the coordinator's
  /// flagged-group audit apply. Fails when the owner has no update on
  /// chain or the key material is malformed.
  static Result<double> UnmaskedUpdateNorm(const SetupParams& params,
                                           uint64_t round, uint32_t owner,
                                           const crypto::UInt256& owner_key,
                                           const chain::ContractState& state);

 private:
  Status VerifyBadShare(const SetupParams& params, uint64_t round,
                        uint32_t offender, ByteReader* reader) const;
  Status VerifyEquivocation(const SetupParams& params, uint64_t round,
                            uint32_t offender, ByteReader* reader) const;
  Status VerifyNormViolation(const SetupParams& params, uint64_t round,
                             uint32_t offender,
                             const crypto::UInt256& offender_key,
                             chain::ContractState* state) const;

  std::shared_ptr<FlContract> fl_;
  crypto::Schnorr schnorr_;  ///< Verifies evidence signatures.
};

}  // namespace bcfl::core
