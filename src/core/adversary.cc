#include "core/adversary.h"

#include "core/state_keys.h"

namespace bcfl::core {

chain::MinerBehavior MakeSvInflationBehavior(uint32_t beneficiary_owner,
                                             double inflation) {
  chain::MinerBehavior behavior;
  behavior.tamper_state = [beneficiary_owner,
                           inflation](chain::ContractState* state) {
    std::string key = keys::TotalSv(beneficiary_owner);
    double current = 0.0;
    auto existing = GetDouble(*state, key);
    if (existing.ok()) current = *existing;
    (void)PutDouble(state, key, current + inflation);
  };
  return behavior;
}

chain::MinerBehavior MakeSvSuppressionBehavior(uint32_t victim_owner) {
  chain::MinerBehavior behavior;
  behavior.tamper_state = [victim_owner](chain::ContractState* state) {
    std::string key = keys::TotalSv(victim_owner);
    if (state->Has(key)) {
      (void)PutDouble(state, key, 0.0);
    }
  };
  return behavior;
}

chain::MinerBehavior MakeAlwaysRejectBehavior() {
  chain::MinerBehavior behavior;
  behavior.always_reject = true;
  return behavior;
}

chain::MinerBehavior MakeBogusSlashBehavior(uint32_t victim_owner,
                                            uint64_t round) {
  chain::MinerBehavior behavior;
  behavior.tamper_state = [victim_owner, round](chain::ContractState* state) {
    // The records a real conviction would write — minus any evidence that
    // re-verifies. The revealed "key" is zero bytes: honest re-execution
    // never produces these entries, so the roots diverge.
    const Bytes zero_key(32, 0);
    state->Delete(keys::Update(round, victim_owner));
    state->Put(keys::Dropped(round, victim_owner), zero_key);
    ByteWriter retired;
    retired.WriteU64(round);
    retired.WriteRaw(zero_key.data(), zero_key.size());
    state->Put(keys::Retired(victim_owner), retired.Take());
    ByteWriter slashed;
    slashed.WriteU64(round);
    slashed.WriteU8(3);  // Claims a norm violation nobody can re-verify.
    state->Put(keys::Slashed(victim_owner), slashed.Take());
  };
  return behavior;
}

}  // namespace bcfl::core
