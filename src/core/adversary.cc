#include "core/adversary.h"

#include "core/state_keys.h"

namespace bcfl::core {

chain::MinerBehavior MakeSvInflationBehavior(uint32_t beneficiary_owner,
                                             double inflation) {
  chain::MinerBehavior behavior;
  behavior.tamper_state = [beneficiary_owner,
                           inflation](chain::ContractState* state) {
    std::string key = keys::TotalSv(beneficiary_owner);
    double current = 0.0;
    auto existing = GetDouble(*state, key);
    if (existing.ok()) current = *existing;
    (void)PutDouble(state, key, current + inflation);
  };
  return behavior;
}

chain::MinerBehavior MakeSvSuppressionBehavior(uint32_t victim_owner) {
  chain::MinerBehavior behavior;
  behavior.tamper_state = [victim_owner](chain::ContractState* state) {
    std::string key = keys::TotalSv(victim_owner);
    if (state->Has(key)) {
      (void)PutDouble(state, key, 0.0);
    }
  };
  return behavior;
}

chain::MinerBehavior MakeAlwaysRejectBehavior() {
  chain::MinerBehavior behavior;
  behavior.always_reject = true;
  return behavior;
}

}  // namespace bcfl::core
