#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/uint256.h"

namespace bcfl::core {

/// Everything the data owners agree on at the off-chain setup stage
/// (Sect. IV-B): FL parameters, secure-aggregation parameters and
/// contribution-evaluation parameters. The setup transaction publishes
/// this structure to the blockchain, after which every miner can derive
/// groupings, verify submissions and evaluate contributions.
struct SetupParams {
  uint32_t num_owners = 9;
  uint32_t rounds = 10;        ///< R, total FL rounds.
  uint32_t num_groups = 3;     ///< m, GroupSV resolution knob.
  uint64_t seed_e = 7;         ///< Permutation seed e.
  uint32_t fixed_point_bits = 24;
  uint32_t weight_rows = 65;   ///< Model shape: (features + 1).
  uint32_t weight_cols = 10;   ///< Classes.

  /// Broadcast key material, indexed by owner id.
  std::vector<crypto::UInt256> schnorr_public_keys;
  std::vector<crypto::UInt256> dh_public_keys;

  Bytes Serialize() const;
  static Result<SetupParams> Deserialize(const Bytes& bytes);

  /// Sanity checks (key counts match num_owners, m <= n, etc.).
  Status Validate() const;
};

}  // namespace bcfl::core
