#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/uint256.h"

namespace bcfl::core {

/// Everything the data owners agree on at the off-chain setup stage
/// (Sect. IV-B): FL parameters, secure-aggregation parameters and
/// contribution-evaluation parameters. The setup transaction publishes
/// this structure to the blockchain, after which every miner can derive
/// groupings, verify submissions and evaluate contributions.
struct SetupParams {
  uint32_t num_owners = 9;
  uint32_t rounds = 10;        ///< R, total FL rounds.
  uint32_t num_groups = 3;     ///< m, GroupSV resolution knob.
  uint64_t seed_e = 7;         ///< Permutation seed e.
  uint32_t fixed_point_bits = 24;
  uint32_t weight_rows = 65;   ///< Model shape: (features + 1).
  uint32_t weight_cols = 10;   ///< Classes.

  /// Shamir recovery threshold the owners agreed on; 0 = floor(n/2) + 1.
  /// Published so every miner can verify revealed shares against the VSS
  /// commitments with the right polynomial degree.
  uint32_t shamir_threshold = 0;
  /// L2 norm gate on decoded group aggregates (PR 9): a group model whose
  /// norm exceeds the bound is flagged instead of evaluated, pending an
  /// audit + slash. 0 disables the gate.
  double update_norm_bound = 0.0;

  /// Broadcast key material, indexed by owner id.
  std::vector<crypto::UInt256> schnorr_public_keys;
  std::vector<crypto::UInt256> dh_public_keys;
  /// Per-owner serialized `crypto::VssCommitment` to the owner's DH-key
  /// sharing polynomial (PR 9). Published with the setup transaction so
  /// every miner can re-verify a revealed share — and convict the holder
  /// of a forged one. Empty = VSS checks off (pre-PR-9 behavior).
  std::vector<Bytes> vss_commitments;

  Bytes Serialize() const;
  static Result<SetupParams> Deserialize(const Bytes& bytes);

  /// Sanity checks (key counts match num_owners, m <= n, etc.).
  Status Validate() const;
};

}  // namespace bcfl::core
