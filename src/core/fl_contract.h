#pragma once

#include <map>
#include <memory>

#include "chain/contract.h"
#include "core/params.h"
#include "core/state_keys.h"
#include "ml/dataset.h"
#include "shapley/utility.h"

namespace bcfl::core {

/// The BCFL smart contract — "Smart contract builds the FL model and
/// evaluates the contribution" (Sect. III).
///
/// Methods (dispatched on tx.method):
///  - "setup": publishes the agreed `SetupParams`; must be the first tx,
///    signed by owner 0 (the session initiator).
///  - "recover": payload = (round, dropped owner id, that owner's DH
///    private key, reconstructed off-chain from the threshold of Shamir
///    shares the owner distributed at setup). The contract *verifies*
///    the revealed key against the owner's published DH public key
///    (g^x == pub) before accepting it — a forged recovery cannot
///    corrupt the aggregate. Once every owner of a round has either
///    submitted or been recovered, the round evaluates over the
///    survivors: residual pairwise masks of the dropped members are
///    regenerated from the revealed keys and removed, group models are
///    means over survivors, and dropped owners score 0 for the round.
///  - "submit_update": payload = (round, owner_id, masked ring vector).
///    The contract checks that the tx is signed with the owner's
///    registered Schnorr key and that the owner has not already
///    submitted for the round. When the round's last update arrives the
///    contract immediately — and deterministically — runs the on-chain
///    pipeline: within-group ring sums (pairwise masks cancel), decode
///    to group models W_j, coalition models over the powerset of groups,
///    GroupSV (Algorithm 1), the global model W_G, and accumulated
///    per-owner totals. Every miner re-executes this and consensus
///    compares the resulting state roots, which is exactly what makes
///    the evaluation transparent and verifiable.
///
/// The utility's validation dataset is public setup data replicated on
/// every miner (a `TestAccuracyUtility` over the agreed test split).
class FlContract : public chain::SmartContract {
 public:
  /// `validation_set`: the public test split agreed at setup.
  explicit FlContract(ml::Dataset validation_set);

  std::string name() const override { return "bcfl"; }

  Status Execute(const chain::Transaction& tx,
                 chain::ContractState* state) override;

  /// Encodes a submit_update payload (helper for owners).
  static Bytes EncodeSubmitUpdate(uint64_t round, uint32_t owner,
                                  const std::vector<uint64_t>& masked);

  /// Encodes a recover payload (helper for the share-reveal step).
  static Bytes EncodeRecover(uint64_t round, uint32_t dropped_owner,
                             const crypto::UInt256& dh_private_key);

  /// Re-runs the round-completeness check against current state. Public
  /// so the SlashContract can trigger the (deterministic) evaluation
  /// after a conviction converts an offender into a dropout — the exact
  /// hook submit_update and recover use internally.
  Status EvaluateIfComplete(uint64_t round, chain::ContractState* state);

 private:
  Status ExecuteSetup(const chain::Transaction& tx,
                      chain::ContractState* state);
  Status ExecuteSubmitUpdate(const chain::Transaction& tx,
                             chain::ContractState* state);
  Status ExecuteRecover(const chain::Transaction& tx,
                        chain::ContractState* state);
  /// Owners retired by recoveries in rounds before `round`, with their
  /// on-chain revealed DH private keys.
  static Result<std::map<uint32_t, crypto::UInt256>> RetiredBefore(
      const chain::ContractState& state, uint64_t round);
  /// Evaluates the round once every owner has submitted, been recovered
  /// this round, or retired in an earlier one.
  Status MaybeEvaluateRound(const SetupParams& params, uint64_t round,
                            chain::ContractState* state);
  /// Runs group aggregation + GroupSV over the round's survivors.
  Status EvaluateRound(const SetupParams& params, uint64_t round,
                       chain::ContractState* state);

  ml::Dataset validation_set_;
  /// Shared memoizing utility (pure function of the weights, so sharing
  /// one instance across miner replicas cannot break determinism).
  std::unique_ptr<shapley::CachingUtility> utility_;
};

}  // namespace bcfl::core
