#include "core/round_engine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/sim_clock.h"
#include "core/fl_contract.h"
#include "secureagg/fixed_point.h"

namespace bcfl::core {

const char* RoundEngineModeName(RoundEngineMode mode) {
  return mode == RoundEngineMode::kSerial ? "serial" : "parallel";
}

RoundEngineMode ResolveRoundEngineMode(RoundEngineMode configured) {
  const char* env = std::getenv("BCFL_ROUND_REFERENCE");
  if (env != nullptr && std::strlen(env) > 0 && std::strcmp(env, "0") != 0) {
    return RoundEngineMode::kSerial;
  }
  return configured;
}

namespace byzantine {

ml::Matrix PoisonedWeights(const ml::Matrix& local, double magnitude) {
  return local.Scaled(magnitude);
}

void CorruptMaskedUpdate(uint64_t round, uint32_t owner,
                         std::vector<uint64_t>* masked) {
  // Seeded from (round, owner) only: the corruption an owner submits is a
  // property of the owner's misbehavior, not of which engine ran it.
  SplitMix64 stream(((round + 1) * 0x9e3779b97f4a7c15ULL) ^
                    ((static_cast<uint64_t>(owner) << 32) | 0xbadc0deULL));
  for (uint64_t& word : *masked) word += stream.Next();
}

}  // namespace byzantine

void RoundScratch::Reset(size_t num_owners) {
  if (slots.size() != num_owners) slots.resize(num_owners);
  for (OwnerRoundSlot& slot : slots) {
    slot.active = false;
    slot.group_members.clear();
    slot.status = Status::OK();
    slot.train_us = 0.0;
    slot.prepare_us = 0.0;
    // local/encoded/masked/payload/mask_scratch keep their storage; every
    // active phase overwrites them before they are read again.
  }
}

namespace {

/// Seed of owner `i`'s round stream: a SplitMix64 walk over (session
/// seed, round, owner), so streams are decorrelated across all three
/// axes and reproducible from the config alone.
uint64_t DeriveStreamSeed(uint64_t session_seed, uint64_t round,
                          uint32_t owner) {
  SplitMix64 mix(session_seed ^ 0x9e3779b97f4a7c15ULL);
  uint64_t a = mix.Next() ^ round;
  SplitMix64 mix2(a);
  return mix2.Next() ^ (static_cast<uint64_t>(owner) + 1);
}

}  // namespace

Status RoundEngine::PrepareOwners(uint64_t round, const ml::Matrix& global,
                                  const std::vector<std::vector<size_t>>& groups,
                                  RoundScratch* scratch,
                                  RoundEngineStats* stats) {
  const size_t n = deps_.clients->size();
  scratch->Reset(n);
  *stats = RoundEngineStats{};

  // Participation, grouping and stream seeding are decided here on the
  // coordinator thread: the injector's per-round sets were computed by
  // BeginRound (also coordinator thread) and are immutable during the
  // round, so these const reads are ordered-before the fan-out below.
  std::vector<uint32_t> active;
  active.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (deps_.retired != nullptr && deps_.retired->count(i) > 0) continue;
    if (deps_.injector != nullptr && deps_.injector->OwnerOffline(i)) continue;
    OwnerRoundSlot& slot = scratch->slots[i];
    for (const auto& group : groups) {
      if (std::find(group.begin(), group.end(), i) != group.end()) {
        for (size_t member : group) {
          slot.group_members.push_back(
              static_cast<secureagg::OwnerId>(member));
        }
        break;
      }
    }
    if (slot.group_members.empty()) {
      return Status::Internal("owner missing from grouping");
    }
    slot.active = true;
    slot.stream = Xoshiro256(DeriveStreamSeed(deps_.session_seed, round, i));
    active.push_back(i);
  }

  const secureagg::FixedPointCodec codec(deps_.fixed_point_bits);
  Stopwatch fanout_timer;
  // One owner per task (grain 1): training dominates and owner costs are
  // uneven (different partition sizes, different group fan-ins), so fine
  // chunks load-balance. Worker k writes only slot active[k] — disjoint
  // slots, no shared mutable state, no locks.
  auto prepare_one = [&](size_t k) {
    const uint32_t i = active[k];
    OwnerRoundSlot& slot = scratch->slots[i];
    Stopwatch train_timer;
    auto local = (*deps_.clients)[i].LocalUpdate(global);
    if (!local.ok()) {
      slot.status = local.status();
      return;
    }
    slot.local = std::move(local).value();
    slot.train_us = train_timer.ElapsedSeconds() * 1e6;
    Stopwatch prepare_timer;
    // Byzantine perturbations (PR 9): a poisoning owner encodes scaled
    // weights (slot.local stays the honest model, matching what the
    // serial path records in per_round_locals); an inconsistent-mask
    // owner corrupts the masked vector after honest masking. Injector
    // queries are const per-round sets — safe from workers.
    const double poison =
        deps_.injector != nullptr ? deps_.injector->OwnerPoisonMagnitude(i)
                                  : 0.0;
    if (poison != 0.0) {
      codec.EncodeMatrixInto(byzantine::PoisonedWeights(slot.local, poison),
                             &slot.encoded);
    } else {
      codec.EncodeMatrixInto(slot.local, &slot.encoded);
    }
    Status masked = (*deps_.participants)[i]->MaskUpdateInto(
        round, slot.group_members, slot.encoded, &slot.mask_scratch,
        &slot.masked);
    if (!masked.ok()) {
      slot.status = masked;
      return;
    }
    if (deps_.injector != nullptr && deps_.injector->OwnerInconsistentMask(i)) {
      byzantine::CorruptMaskedUpdate(round, i, &slot.masked);
    }
    slot.payload = FlContract::EncodeSubmitUpdate(round, i, slot.masked);
    slot.prepare_us = prepare_timer.ElapsedSeconds() * 1e6;
  };
  if (pool_ != nullptr && active.size() > 1) {
    pool_->ParallelFor(active.size(), prepare_one, /*grain=*/1);
  } else {
    for (size_t k = 0; k < active.size(); ++k) prepare_one(k);
  }
  stats->fanout_wall_us = fanout_timer.ElapsedSeconds() * 1e6;

  // Surface the lowest-indexed owner's error — what a serial loop would
  // hit first — and fold the per-owner walls into the ledger stats.
  for (uint32_t i : active) {
    const OwnerRoundSlot& slot = scratch->slots[i];
    if (!slot.status.ok()) return slot.status;
    stats->train_us_total += slot.train_us;
    stats->train_us_max = std::max(stats->train_us_max, slot.train_us);
    stats->prepare_us_total += slot.prepare_us;
    stats->prepare_us_max = std::max(stats->prepare_us_max, slot.prepare_us);
  }
  return Status::OK();
}

}  // namespace bcfl::core
