#include "secureagg/aggregator.h"

#include <algorithm>

#include "secureagg/mask.h"

namespace bcfl::secureagg {

SecureAggregator::SecureAggregator(
    crypto::GroupParams params, std::map<OwnerId, crypto::UInt256> public_keys)
    : params_(params), public_keys_(std::move(public_keys)) {}

Result<std::vector<uint64_t>> SecureAggregator::SumGroup(
    uint64_t round, const std::vector<OwnerId>& group_members,
    const std::map<OwnerId, std::vector<uint64_t>>& submissions,
    const UnmaskingInfo& unmask, bool self_masks_in_use) const {
  if (group_members.empty()) {
    return Status::InvalidArgument("empty group");
  }

  // Split the group into survivors (submitted) and dropped.
  std::vector<OwnerId> survivors, dropped;
  for (OwnerId id : group_members) {
    if (submissions.count(id) > 0) {
      survivors.push_back(id);
    } else {
      dropped.push_back(id);
    }
  }
  if (survivors.empty()) {
    return Status::FailedPrecondition("no submissions for the group");
  }

  // Ring-sum the survivors' masked vectors.
  size_t length = submissions.at(survivors[0]).size();
  std::vector<uint64_t> sum(length, 0);
  for (OwnerId id : survivors) {
    const auto& vec = submissions.at(id);
    if (vec.size() != length) {
      return Status::InvalidArgument("submission length mismatch for owner " +
                                     std::to_string(id));
    }
    for (size_t i = 0; i < length; ++i) sum[i] += vec[i];
  }

  // Remove survivors' self masks. Seeds are validated up front; the
  // expansions are independent ChaCha streams and fill per-survivor
  // slots (possibly on the pool), then fold into the sum in roster order.
  if (self_masks_in_use) {
    std::vector<const std::array<uint8_t, 32>*> seeds;
    seeds.reserve(survivors.size());
    for (OwnerId id : survivors) {
      auto it = unmask.survivor_self_seeds.find(id);
      if (it == unmask.survivor_self_seeds.end()) {
        return Status::FailedPrecondition(
            "missing self-mask seed for survivor " + std::to_string(id));
      }
      seeds.push_back(&it->second);
    }
    std::vector<std::vector<uint64_t>> selfs(seeds.size());
    auto expand_self = [&](size_t s) {
      selfs[s] = ExpandSelfMask(*seeds[s], round, length);
    };
    if (pool_ != nullptr && seeds.size() > 1) {
      pool_->ParallelFor(seeds.size(), expand_self);
    } else {
      for (size_t s = 0; s < seeds.size(); ++s) expand_self(s);
    }
    for (const std::vector<uint64_t>& self : selfs) {
      for (size_t i = 0; i < length; ++i) sum[i] -= self[i];
    }
  }

  // Remove residual pairwise masks left by dropped members: survivor v's
  // submission contains sign(v, u) * m_uv for every dropped u in the
  // group; regenerate each from u's reconstructed DH private key. Each
  // (u, v) pair — DH shared secret, key derivation and mask expansion —
  // is independent, so the pairs fan out over the pool into slots and
  // fold back in pair order.
  struct PairTask {
    OwnerId u;
    OwnerId v;
    const crypto::UInt256* u_private;
    const crypto::UInt256* v_public;
  };
  std::vector<PairTask> pairs;
  pairs.reserve(dropped.size() * survivors.size());
  for (OwnerId u : dropped) {
    auto key_it = unmask.dropped_private_keys.find(u);
    if (key_it == unmask.dropped_private_keys.end()) {
      return Status::FailedPrecondition(
          "missing private key for dropped member " + std::to_string(u));
    }
    for (OwnerId v : survivors) {
      auto pub_it = public_keys_.find(v);
      if (pub_it == public_keys_.end()) {
        return Status::NotFound("no public key on chain for owner " +
                                std::to_string(v));
      }
      pairs.push_back({u, v, &key_it->second, &pub_it->second});
    }
  }
  crypto::DiffieHellman dh(params_);
  std::vector<std::vector<uint64_t>> masks(pairs.size());
  auto expand_pair = [&](size_t p) {
    const PairTask& t = pairs[p];
    crypto::UInt256 shared = dh.ComputeShared(*t.u_private, *t.v_public);
    std::array<uint8_t, 32> pair_key = DerivePairKey(shared, t.u, t.v);
    masks[p] = ExpandMask(pair_key, round, length);
  };
  if (pool_ != nullptr && pairs.size() > 1) {
    pool_->ParallelFor(pairs.size(), expand_pair);
  } else {
    for (size_t p = 0; p < pairs.size(); ++p) expand_pair(p);
  }
  for (size_t p = 0; p < pairs.size(); ++p) {
    const std::vector<uint64_t>& mask = masks[p];
    if (pairs[p].v < pairs[p].u) {
      // v added +mask; cancel it.
      for (size_t i = 0; i < length; ++i) sum[i] -= mask[i];
    } else {
      for (size_t i = 0; i < length; ++i) sum[i] += mask[i];
    }
  }

  return sum;
}

Result<std::array<uint8_t, 32>> SecureAggregator::ReconstructSecret32(
    const std::vector<crypto::ShamirShare>& shares, size_t threshold,
    size_t roster_size) {
  BCFL_ASSIGN_OR_RETURN(
      crypto::ShamirSecretSharing scheme,
      crypto::ShamirSecretSharing::Create(threshold, roster_size));
  BCFL_ASSIGN_OR_RETURN(Bytes secret, scheme.Reconstruct(shares, 32));
  std::array<uint8_t, 32> out;
  std::copy(secret.begin(), secret.end(), out.begin());
  return out;
}

Result<std::vector<std::array<uint8_t, 32>>>
SecureAggregator::ReconstructSecrets32(
    const std::vector<std::vector<crypto::ShamirShare>>& share_sets,
    size_t threshold, size_t roster_size, ThreadPool* pool) {
  BCFL_ASSIGN_OR_RETURN(
      crypto::ShamirSecretSharing scheme,
      crypto::ShamirSecretSharing::Create(threshold, roster_size));
  std::vector<size_t> sizes(share_sets.size(), 32);
  BCFL_ASSIGN_OR_RETURN(std::vector<Bytes> secrets,
                        scheme.ReconstructBatch(share_sets, sizes, pool));
  std::vector<std::array<uint8_t, 32>> out(secrets.size());
  for (size_t k = 0; k < secrets.size(); ++k) {
    std::copy(secrets[k].begin(), secrets[k].end(), out[k].begin());
  }
  return out;
}

}  // namespace bcfl::secureagg
