#include "secureagg/aggregator.h"

#include <algorithm>

#include "secureagg/mask.h"

namespace bcfl::secureagg {

SecureAggregator::SecureAggregator(
    crypto::GroupParams params, std::map<OwnerId, crypto::UInt256> public_keys)
    : params_(params), public_keys_(std::move(public_keys)) {}

Result<std::vector<uint64_t>> SecureAggregator::SumGroup(
    uint64_t round, const std::vector<OwnerId>& group_members,
    const std::map<OwnerId, std::vector<uint64_t>>& submissions,
    const UnmaskingInfo& unmask, bool self_masks_in_use) const {
  if (group_members.empty()) {
    return Status::InvalidArgument("empty group");
  }

  // Split the group into survivors (submitted) and dropped.
  std::vector<OwnerId> survivors, dropped;
  for (OwnerId id : group_members) {
    if (submissions.count(id) > 0) {
      survivors.push_back(id);
    } else {
      dropped.push_back(id);
    }
  }
  if (survivors.empty()) {
    return Status::FailedPrecondition("no submissions for the group");
  }

  // Ring-sum the survivors' masked vectors.
  size_t length = submissions.at(survivors[0]).size();
  std::vector<uint64_t> sum(length, 0);
  for (OwnerId id : survivors) {
    const auto& vec = submissions.at(id);
    if (vec.size() != length) {
      return Status::InvalidArgument("submission length mismatch for owner " +
                                     std::to_string(id));
    }
    for (size_t i = 0; i < length; ++i) sum[i] += vec[i];
  }

  // Remove survivors' self masks.
  if (self_masks_in_use) {
    for (OwnerId id : survivors) {
      auto it = unmask.survivor_self_seeds.find(id);
      if (it == unmask.survivor_self_seeds.end()) {
        return Status::FailedPrecondition(
            "missing self-mask seed for survivor " + std::to_string(id));
      }
      std::vector<uint64_t> self = ExpandSelfMask(it->second, round, length);
      for (size_t i = 0; i < length; ++i) sum[i] -= self[i];
    }
  }

  // Remove residual pairwise masks left by dropped members: survivor v's
  // submission contains sign(v, u) * m_uv for every dropped u in the
  // group; regenerate each from u's reconstructed DH private key.
  crypto::DiffieHellman dh(params_);
  for (OwnerId u : dropped) {
    auto key_it = unmask.dropped_private_keys.find(u);
    if (key_it == unmask.dropped_private_keys.end()) {
      return Status::FailedPrecondition(
          "missing private key for dropped member " + std::to_string(u));
    }
    for (OwnerId v : survivors) {
      auto pub_it = public_keys_.find(v);
      if (pub_it == public_keys_.end()) {
        return Status::NotFound("no public key on chain for owner " +
                                std::to_string(v));
      }
      crypto::UInt256 shared = dh.ComputeShared(key_it->second, pub_it->second);
      std::array<uint8_t, 32> pair_key = DerivePairKey(shared, u, v);
      std::vector<uint64_t> mask = ExpandMask(pair_key, round, length);
      if (v < u) {
        // v added +mask; cancel it.
        for (size_t i = 0; i < length; ++i) sum[i] -= mask[i];
      } else {
        for (size_t i = 0; i < length; ++i) sum[i] += mask[i];
      }
    }
  }

  return sum;
}

Result<std::array<uint8_t, 32>> SecureAggregator::ReconstructSecret32(
    const std::vector<crypto::ShamirShare>& shares, size_t threshold,
    size_t roster_size) {
  BCFL_ASSIGN_OR_RETURN(
      crypto::ShamirSecretSharing scheme,
      crypto::ShamirSecretSharing::Create(threshold, roster_size));
  BCFL_ASSIGN_OR_RETURN(Bytes secret, scheme.Reconstruct(shares, 32));
  std::array<uint8_t, 32> out;
  std::copy(secret.begin(), secret.end(), out.begin());
  return out;
}

}  // namespace bcfl::secureagg
