#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace bcfl::secureagg {

/// Fixed-point codec between doubles and the ring Z_{2^64}.
///
/// Secure aggregation needs masks that cancel *exactly*; floating-point
/// addition cannot guarantee that, so model weights are quantised to
/// 64-bit ring elements (two's-complement encoding of round(x * 2^scale)),
/// masked, summed with natural wrap-around, and decoded back. As long as
/// |sum| * 2^scale < 2^63 the decoded sum equals the sum of quantised
/// inputs exactly; quantisation error per element is <= 2^-scale / 2.
class FixedPointCodec {
 public:
  /// `scale_bits` in [1, 52]: fractional bits kept.
  explicit FixedPointCodec(int scale_bits = 24);

  int scale_bits() const { return scale_bits_; }
  /// Smallest representable increment (2^-scale_bits).
  double resolution() const { return resolution_; }

  /// Encodes one value (wraps on overflow of the ring; callers bound
  /// their magnitudes — model weights are O(1)).
  uint64_t Encode(double value) const;
  /// Decodes one ring element.
  double Decode(uint64_t element) const;

  std::vector<uint64_t> EncodeVector(const std::vector<double>& values) const;
  std::vector<double> DecodeVector(const std::vector<uint64_t>& ring) const;

  /// Flattens and encodes a matrix.
  std::vector<uint64_t> EncodeMatrix(const ml::Matrix& m) const;
  /// EncodeMatrix into a caller-owned buffer (resized, capacity kept) —
  /// the round engine re-encodes every round into the same scratch slot.
  void EncodeMatrixInto(const ml::Matrix& m, std::vector<uint64_t>* out) const;
  /// Decodes into a matrix of the given shape; size must match.
  Result<ml::Matrix> DecodeMatrix(const std::vector<uint64_t>& ring,
                                  size_t rows, size_t cols) const;

  /// Decodes `ring` as a sum of `count` encoded vectors and divides by
  /// `count` — the mean in the double domain.
  Result<std::vector<double>> DecodeMean(const std::vector<uint64_t>& ring,
                                         size_t count) const;

 private:
  int scale_bits_;
  double scale_;
  double resolution_;
};

/// Element-wise sum in the ring (natural uint64 wrap).
Result<std::vector<uint64_t>> RingAdd(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
/// a - b in the ring.
Result<std::vector<uint64_t>> RingSub(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);

}  // namespace bcfl::secureagg
