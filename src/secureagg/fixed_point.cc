#include "secureagg/fixed_point.h"

#include <algorithm>
#include <cmath>

namespace bcfl::secureagg {

FixedPointCodec::FixedPointCodec(int scale_bits)
    : scale_bits_(std::clamp(scale_bits, 1, 52)),
      scale_(std::ldexp(1.0, scale_bits_)),
      resolution_(std::ldexp(1.0, -scale_bits_)) {}

uint64_t FixedPointCodec::Encode(double value) const {
  double scaled = std::nearbyint(value * scale_);
  // Two's-complement wrap: int64 -> uint64 preserves additive structure.
  return static_cast<uint64_t>(static_cast<int64_t>(scaled));
}

double FixedPointCodec::Decode(uint64_t element) const {
  return static_cast<double>(static_cast<int64_t>(element)) / scale_;
}

std::vector<uint64_t> FixedPointCodec::EncodeVector(
    const std::vector<double>& values) const {
  std::vector<uint64_t> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) out[i] = Encode(values[i]);
  return out;
}

std::vector<double> FixedPointCodec::DecodeVector(
    const std::vector<uint64_t>& ring) const {
  std::vector<double> out(ring.size());
  for (size_t i = 0; i < ring.size(); ++i) out[i] = Decode(ring[i]);
  return out;
}

std::vector<uint64_t> FixedPointCodec::EncodeMatrix(const ml::Matrix& m) const {
  return EncodeVector(m.data());
}

void FixedPointCodec::EncodeMatrixInto(const ml::Matrix& m,
                                       std::vector<uint64_t>* out) const {
  const std::vector<double>& values = m.data();
  out->resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) (*out)[i] = Encode(values[i]);
}

Result<ml::Matrix> FixedPointCodec::DecodeMatrix(
    const std::vector<uint64_t>& ring, size_t rows, size_t cols) const {
  if (ring.size() != rows * cols) {
    return Status::InvalidArgument("ring size does not match matrix shape");
  }
  ml::Matrix out(rows, cols);
  for (size_t i = 0; i < ring.size(); ++i) {
    out.mutable_data()[i] = Decode(ring[i]);
  }
  return out;
}

Result<std::vector<double>> FixedPointCodec::DecodeMean(
    const std::vector<uint64_t>& ring, size_t count) const {
  if (count == 0) return Status::InvalidArgument("mean of zero vectors");
  std::vector<double> out(ring.size());
  double inv = 1.0 / static_cast<double>(count);
  for (size_t i = 0; i < ring.size(); ++i) out[i] = Decode(ring[i]) * inv;
  return out;
}

Result<std::vector<uint64_t>> RingAdd(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("RingAdd: size mismatch");
  }
  std::vector<uint64_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Result<std::vector<uint64_t>> RingSub(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("RingSub: size mismatch");
  }
  std::vector<uint64_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace bcfl::secureagg
