#include "secureagg/session.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::secureagg {

Result<SecureAggSession> SecureAggSession::Create(size_t num_owners,
                                                  SessionConfig config) {
  static auto& keygen_us =
      obs::MetricsRegistry::Global().GetHistogram("secureagg.keygen_us");
  static auto& agreement_us = obs::MetricsRegistry::Global().GetHistogram(
      "secureagg.key_agreement_us");
  static auto& share_us = obs::MetricsRegistry::Global().GetHistogram(
      "secureagg.share_secrets_us");
  obs::ScopedSpan setup_span(obs::Tracer::Global(), "secureagg_setup",
                             "secureagg");
  if (num_owners < 2) {
    return Status::InvalidArgument("secure aggregation needs >= 2 owners");
  }
  SecureAggSession session(config, FixedPointCodec(config.fixed_point_bits));
  session.threshold_ =
      config.threshold != 0 ? config.threshold : num_owners / 2 + 1;
  if (session.threshold_ > num_owners) {
    return Status::InvalidArgument("threshold exceeds owner count");
  }

  Xoshiro256 rng(config.seed);
  crypto::DiffieHellman dh;

  // Phase 1: key generation + broadcast.
  {
    obs::ScopedSpan span(obs::Tracer::Global(), "keygen", "secureagg");
    obs::ScopedLatency latency(keygen_us);
    session.participants_.reserve(num_owners);
    for (size_t i = 0; i < num_owners; ++i) {
      session.participants_.push_back(std::make_unique<SecureAggParticipant>(
          static_cast<OwnerId>(i), dh, &rng, config.use_self_masks));
    }
  }

  // Phase 2: pairwise key agreement from broadcast public keys.
  std::map<OwnerId, crypto::UInt256> roster;
  {
    obs::ScopedSpan span(obs::Tracer::Global(), "key_agreement", "secureagg");
    obs::ScopedLatency latency(agreement_us);
    for (const auto& p : session.participants_) {
      roster[p->id()] = p->public_key();
    }
    for (auto& p : session.participants_) {
      for (const auto& [peer, pub] : roster) {
        if (peer == p->id()) continue;
        BCFL_RETURN_IF_ERROR(p->RegisterPeer(peer, pub));
      }
    }
  }

  // Phase 3: secret-share recovery material.
  {
    obs::ScopedSpan span(obs::Tracer::Global(), "share_secrets", "secureagg");
    obs::ScopedLatency latency(share_us);
    session.recovery_shares_.reserve(num_owners);
    for (auto& p : session.participants_) {
      BCFL_ASSIGN_OR_RETURN(
          RecoveryShares shares,
          p->ShareSecrets(session.threshold_, num_owners, &rng));
      session.recovery_shares_.push_back(std::move(shares));
    }
  }

  session.aggregator_ = std::make_unique<SecureAggregator>(
      dh.params(), std::move(roster));
  session.dropouts_counter_ =
      &obs::MetricsRegistry::Global().GetCounter("secureagg.dropouts");
  session.recoveries_counter_ =
      &obs::MetricsRegistry::Global().GetCounter("secureagg.recoveries");
  return session;
}

Result<std::vector<uint64_t>> SecureAggSession::Submit(
    OwnerId owner, uint64_t round, const std::vector<OwnerId>& group,
    const std::vector<double>& update) {
  if (owner >= participants_.size()) {
    return Status::OutOfRange("unknown owner");
  }
  std::vector<uint64_t> encoded = codec_.EncodeVector(update);
  return participants_[owner]->MaskUpdate(round, group, encoded);
}

Result<std::vector<std::array<uint8_t, 32>>> SecureAggSession::RevealSecrets(
    const std::vector<RevealJob>& jobs, const std::set<OwnerId>& dropped) {
  std::vector<std::array<uint8_t, 32>> out(jobs.size());
  // Only shares held by *online* roster members can be revealed, and
  // which holders are online is a property of `dropped` alone — computed
  // once for the whole batch. The availability check runs before the
  // cache is consulted: a reveal with fewer than `threshold_` live
  // holders must fail closed even if an earlier call with a smaller
  // dropout set already reconstructed the secret.
  std::vector<size_t> holders;
  holders.reserve(participants_.size());
  for (size_t holder = 0; holder < participants_.size(); ++holder) {
    if (dropped.count(static_cast<OwnerId>(holder)) > 0) continue;
    holders.push_back(holder);
  }
  std::vector<size_t> pending;
  std::vector<std::vector<crypto::ShamirShare>> share_sets;
  BCFL_ASSIGN_OR_RETURN(
      const crypto::ShamirSecretSharing scheme,
      crypto::ShamirSecretSharing::Create(threshold_, participants_.size()));
  for (size_t j = 0; j < jobs.size(); ++j) {
    const RevealJob& job = jobs[j];
    if (holders.size() < threshold_) {
      return Status::FailedPrecondition(
          "only " + std::to_string(holders.size()) + " shares of owner " +
          std::to_string(job.id) + "'s secret survive; threshold is " +
          std::to_string(threshold_) + " — failing closed");
    }
    auto cached = reveal_cache_.find({job.id, job.dh_key});
    if (cached != reveal_cache_.end()) {
      out[j] = cached->second;
      continue;
    }
    const RecoveryShares& all = recovery_shares_[job.id];
    const auto& source =
        job.dh_key ? all.dh_private_shares : all.self_seed_shares;
    const crypto::VssCommitment& commitment =
        job.dh_key ? all.dh_commitment : all.self_seed_commitment;
    // Feldman check (PR 9): a holder revealing a share that is not on the
    // dealer's committed polynomial is caught *here*, before the forgery
    // can poison Lagrange interpolation; the reveal proceeds over the
    // remaining honest holders and fails closed below the threshold.
    std::vector<crypto::ShamirShare> available;
    available.reserve(holders.size());
    for (size_t holder : holders) {
      if (!commitment.empty() &&
          !scheme.VerifyShare(source[holder], commitment)) {
        continue;
      }
      available.push_back(source[holder]);
    }
    if (available.size() < threshold_) {
      return Status::FailedPrecondition(
          "only " + std::to_string(available.size()) +
          " verifiable shares of owner " + std::to_string(job.id) +
          "'s secret survive; threshold is " + std::to_string(threshold_) +
          " — failing closed");
    }
    pending.push_back(j);
    share_sets.push_back(std::move(available));
  }
  if (!pending.empty()) {
    // Every pending set shares its x-coordinates (the surviving holder
    // indices), so the batch reconstructs them all off one Lagrange
    // basis. Errors surface for the lowest job index, like a serial loop.
    BCFL_ASSIGN_OR_RETURN(
        auto secrets,
        SecureAggregator::ReconstructSecrets32(share_sets, threshold_,
                                               participants_.size(), pool_));
    for (size_t k = 0; k < pending.size(); ++k) {
      const RevealJob& job = jobs[pending[k]];
      out[pending[k]] = secrets[k];
      reveal_cache_.emplace(std::make_pair(job.id, job.dh_key), secrets[k]);
      if (job.dh_key) recoveries_counter_->Add();
    }
  }
  return out;
}

Result<std::vector<double>> SecureAggSession::AggregateGroupMean(
    uint64_t round, const std::vector<OwnerId>& group,
    const std::map<OwnerId, std::vector<uint64_t>>& submissions,
    const std::set<OwnerId>& dropped) {
  static auto& unmask_us =
      obs::MetricsRegistry::Global().GetHistogram("secureagg.unmask_us");
  obs::ScopedSpan span(obs::Tracer::Global(), "mask_round", "secureagg");
  obs::ScopedLatency latency(unmask_us);
  for (OwnerId id : group) {
    // Unique owners, not calls: aggregating two groups (or retrying one)
    // with the same dropout must count it once.
    if (dropped.count(id) > 0 && counted_dropouts_.insert(id).second) {
      dropouts_counter_->Add();
    }
  }
  UnmaskingInfo unmask;
  std::vector<RevealJob> jobs;
  jobs.reserve(group.size());
  for (OwnerId id : group) {
    if (dropped.count(id) > 0) {
      jobs.push_back({id, /*dh_key=*/true});
    } else if (config_.use_self_masks) {
      jobs.push_back({id, /*dh_key=*/false});
    }
  }
  BCFL_ASSIGN_OR_RETURN(auto secrets, RevealSecrets(jobs, dropped));
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].dh_key) {
      Bytes as_bytes(secrets[j].begin(), secrets[j].end());
      BCFL_ASSIGN_OR_RETURN(crypto::UInt256 key,
                            crypto::UInt256::FromBytes(as_bytes));
      unmask.dropped_private_keys[jobs[j].id] = key;
    } else {
      unmask.survivor_self_seeds[jobs[j].id] = secrets[j];
    }
  }

  BCFL_ASSIGN_OR_RETURN(
      std::vector<uint64_t> sum,
      aggregator_->SumGroup(round, group, submissions, unmask,
                            config_.use_self_masks));

  size_t survivors = 0;
  for (OwnerId id : group) {
    if (dropped.count(id) == 0 && submissions.count(id) > 0) ++survivors;
  }
  return codec_.DecodeMean(sum, survivors);
}

}  // namespace bcfl::secureagg
