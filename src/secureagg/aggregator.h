#pragma once

#include <map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "crypto/dh.h"
#include "secureagg/participant.h"

namespace bcfl::secureagg {

/// Information the aggregator needs to remove masks that do not cancel by
/// themselves: self-mask seeds of *surviving* submitters (reconstructed
/// from their revealed shares) and DH private keys of *dropped* members
/// (reconstructed from threshold shares).
struct UnmaskingInfo {
  std::map<OwnerId, std::array<uint8_t, 32>> survivor_self_seeds;
  std::map<OwnerId, crypto::UInt256> dropped_private_keys;
};

/// Server-side (on-chain) half of secure aggregation.
///
/// Deterministic: given identical submissions every blockchain miner that
/// re-executes `SumGroup` obtains the identical ring vector, which is
/// what makes the aggregation verifiable by the consensus protocol.
class SecureAggregator {
 public:
  /// `public_keys` is the on-chain roster of broadcast DH public keys.
  SecureAggregator(crypto::GroupParams params,
                   std::map<OwnerId, crypto::UInt256> public_keys);

  /// Sums the masked submissions of `group_members` for `round`.
  ///
  /// Happy path (all members present, no self masks): pairwise masks
  /// cancel and the result is the plain ring sum. With self masks and/or
  /// dropped members, `unmask` must carry the corresponding seeds/keys;
  /// missing material is an error, never a silently wrong sum.
  Result<std::vector<uint64_t>> SumGroup(
      uint64_t round, const std::vector<OwnerId>& group_members,
      const std::map<OwnerId, std::vector<uint64_t>>& submissions,
      const UnmaskingInfo& unmask = {}, bool self_masks_in_use = false) const;

  /// Reconstructs a participant's 32-byte secret from threshold shares
  /// (helper used by the protocol driver and the contracts for both the
  /// self-seed and, via ToBytes, the DH key path).
  static Result<std::array<uint8_t, 32>> ReconstructSecret32(
      const std::vector<crypto::ShamirShare>& shares, size_t threshold,
      size_t roster_size);

  /// Batch companion of `ReconstructSecret32`: reconstructs one 32-byte
  /// secret per share-set in a single call. A recovery round reveals every
  /// missing owner's secret from the *same* surviving holder set, so the
  /// Lagrange basis is computed once for the whole batch and the per-set
  /// share verification/evaluation runs on `pool` (nullptr = serial).
  /// Output k corresponds to share_sets[k]; bit-identical to calling
  /// ReconstructSecret32 per set, for any pool size.
  static Result<std::vector<std::array<uint8_t, 32>>> ReconstructSecrets32(
      const std::vector<std::vector<crypto::ShamirShare>>& share_sets,
      size_t threshold, size_t roster_size, ThreadPool* pool = nullptr);

  /// Regenerates unmasking material (self masks, dropped members'
  /// residual pairwise masks) on `pool` (nullptr = serial). Expansions
  /// fill index-addressed slots and are folded into the sum in roster
  /// order, so the output stays bit-identical — and thus consensus-safe —
  /// for any pool size.
  void SetPool(ThreadPool* pool) { pool_ = pool; }

 private:
  crypto::GroupParams params_;
  std::map<OwnerId, crypto::UInt256> public_keys_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace bcfl::secureagg
