#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/chacha20.h"
#include "crypto/dh.h"
#include "crypto/shamir.h"

namespace bcfl::secureagg {

/// Identifier of a secure-aggregation participant (same space as
/// fl::OwnerId).
using OwnerId = uint32_t;

/// Secret-shared recovery material produced at setup (Bonawitz et al.):
/// shares of the participant's DH private key (to reconstruct a *dropped*
/// user's pairwise masks) and of its self-mask seed (to remove a
/// *surviving* user's self mask). Share k is addressed to the k-th
/// participant of the session roster.
struct RecoveryShares {
  std::vector<crypto::ShamirShare> dh_private_shares;
  std::vector<crypto::ShamirShare> self_seed_shares;
  /// Feldman commitments to the two sharing polynomials (PR 9). Published
  /// with the setup transaction so a revealed share can be verified — and
  /// a forged one attributed to its holder — by anyone. Empty when the
  /// dealer used the plain (pre-VSS) path.
  crypto::VssCommitment dh_commitment;
  crypto::VssCommitment self_seed_commitment;
};

/// Reusable buffers for `MaskUpdateInto`: per-peer mask slots, the roster
/// snapshot, and the self-mask expansion. After the first round every
/// buffer is at capacity, so masking allocates nothing. One scratch per
/// owner — not shareable across concurrent calls.
struct MaskScratch {
  std::vector<OwnerId> peers;
  std::vector<const std::array<uint8_t, 32>*> keys;
  std::vector<std::vector<uint64_t>> masks;
  std::vector<uint64_t> self_mask;
};

/// Client-side state of the secure-aggregation protocol.
///
/// Lifecycle per the paper's Sect. IV-A-1:
///  1. Construct (generates the DH key pair) and broadcast `public_key()`.
///  2. `RegisterPeer` every other owner's public key — this derives the
///     pairwise mask keys PRNG will expand each round.
///  3. Each round, `MaskUpdate` turns a fixed-point-encoded update into a
///     masked submission for the given group.
///
/// Double masking: in addition to the paper's pairwise masks, each
/// participant adds a private self mask b_i^r (Bonawitz et al.) so that
/// recovering a dropped user's pairwise keys never exposes a survivor's
/// plain update. Self masks are removed by the aggregator from
/// secret-shared seeds. Set `use_self_mask = false` for the paper's
/// plain pairwise scheme (safe under its all-owners-always-online
/// assumption).
class SecureAggParticipant {
 public:
  SecureAggParticipant(OwnerId id, const crypto::DiffieHellman& dh,
                       Xoshiro256* rng, bool use_self_mask = true);

  OwnerId id() const { return id_; }
  const crypto::UInt256& public_key() const { return key_pair_.public_key; }
  bool use_self_mask() const { return use_self_mask_; }

  /// Derives and caches the pairwise mask key with `peer`. Fails on a
  /// self-registration or an out-of-group public key.
  Status RegisterPeer(OwnerId peer, const crypto::UInt256& peer_public);

  /// True once `peer`'s key material is registered.
  bool HasPeer(OwnerId peer) const;

  /// Masks `encoded` (ring elements) for `round`, cancelling pairwise
  /// with every *other* member of `group_members` (which must contain
  /// this participant and only registered peers).
  Result<std::vector<uint64_t>> MaskUpdate(
      uint64_t round, const std::vector<OwnerId>& group_members,
      const std::vector<uint64_t>& encoded) const;

  /// MaskUpdate writing through caller-owned scratch: the masked vector
  /// lands in `*out` and all intermediate buffers live in `*scratch`
  /// (resized on first use, reused afterwards). Bit-identical to
  /// MaskUpdate. Const + per-owner scratch means distinct owners can mask
  /// concurrently from pool workers: this object's only mutable state
  /// under the call is `*scratch`/`*out`, and `pair_keys_` is read-only
  /// after registration.
  Status MaskUpdateInto(uint64_t round,
                        const std::vector<OwnerId>& group_members,
                        const std::vector<uint64_t>& encoded,
                        MaskScratch* scratch,
                        std::vector<uint64_t>* out) const;

  /// Splits the recovery secrets into `roster_size` shares with the given
  /// threshold. Called once at setup; shares are distributed to the
  /// session roster in order.
  Result<RecoveryShares> ShareSecrets(size_t threshold, size_t roster_size,
                                      Xoshiro256* rng) const;

  /// The 32-byte self-mask seed (exposed so the protocol driver can model
  /// the share-reveal step; a real client reveals only shares).
  const std::array<uint8_t, 32>& self_seed() const { return self_seed_; }
  /// The DH private key (same caveat as `self_seed`).
  const crypto::UInt256& private_key() const { return key_pair_.private_key; }

  /// The derived pairwise key with `peer`, for tests and recovery checks.
  Result<std::array<uint8_t, 32>> PairKey(OwnerId peer) const;

  /// Expands per-peer masks on `pool` (nullptr = serial). Each expansion
  /// lands in its own index-addressed slot and the slots are combined
  /// sequentially in group order, so the masked vector is bit-identical
  /// for any pool size.
  void SetPool(ThreadPool* pool) { pool_ = pool; }

 private:
  OwnerId id_;
  crypto::DiffieHellman dh_;
  crypto::DhKeyPair key_pair_;
  std::array<uint8_t, 32> self_seed_;
  bool use_self_mask_;
  ThreadPool* pool_ = nullptr;
  std::map<OwnerId, std::array<uint8_t, 32>> pair_keys_;
};

/// Derives the pairwise mask key both endpoints agree on: the label binds
/// the unordered pair {a, b} so either side derives the same 32 bytes.
std::array<uint8_t, 32> DerivePairKey(const crypto::UInt256& shared,
                                      OwnerId a, OwnerId b);

}  // namespace bcfl::secureagg
