#include "secureagg/participant.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "secureagg/mask.h"

namespace bcfl::secureagg {

std::array<uint8_t, 32> DerivePairKey(const crypto::UInt256& shared,
                                      OwnerId a, OwnerId b) {
  if (a > b) std::swap(a, b);
  crypto::Sha256 hasher;
  hasher.Update("bcfl-pairwise-mask-key");
  uint8_t ids[8];
  for (int i = 0; i < 4; ++i) ids[i] = static_cast<uint8_t>(a >> (8 * i));
  for (int i = 0; i < 4; ++i) ids[4 + i] = static_cast<uint8_t>(b >> (8 * i));
  hasher.Update(ids, sizeof(ids));
  hasher.Update(shared.ToBytes());
  crypto::Digest digest = hasher.Finish();
  std::array<uint8_t, 32> key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

SecureAggParticipant::SecureAggParticipant(OwnerId id,
                                           const crypto::DiffieHellman& dh,
                                           Xoshiro256* rng, bool use_self_mask)
    : id_(id), dh_(dh), use_self_mask_(use_self_mask) {
  key_pair_ = dh_.GenerateKeyPair(rng);
  for (size_t i = 0; i < self_seed_.size(); i += 8) {
    uint64_t word = rng->Next();
    for (size_t j = 0; j < 8; ++j) {
      self_seed_[i + j] = static_cast<uint8_t>(word >> (8 * j));
    }
  }
}

Status SecureAggParticipant::RegisterPeer(OwnerId peer,
                                          const crypto::UInt256& peer_public) {
  if (peer == id_) {
    return Status::InvalidArgument("cannot register self as peer");
  }
  if (peer_public.IsZero() || peer_public >= dh_.params().p) {
    return Status::InvalidArgument("peer public key outside the group");
  }
  crypto::UInt256 shared =
      dh_.ComputeShared(key_pair_.private_key, peer_public);
  pair_keys_[peer] = DerivePairKey(shared, id_, peer);
  return Status::OK();
}

bool SecureAggParticipant::HasPeer(OwnerId peer) const {
  return pair_keys_.count(peer) > 0;
}

Result<std::array<uint8_t, 32>> SecureAggParticipant::PairKey(
    OwnerId peer) const {
  auto it = pair_keys_.find(peer);
  if (it == pair_keys_.end()) {
    return Status::NotFound("peer not registered: " + std::to_string(peer));
  }
  return it->second;
}

Result<std::vector<uint64_t>> SecureAggParticipant::MaskUpdate(
    uint64_t round, const std::vector<OwnerId>& group_members,
    const std::vector<uint64_t>& encoded) const {
  MaskScratch scratch;
  std::vector<uint64_t> out;
  Status status = MaskUpdateInto(round, group_members, encoded, &scratch, &out);
  if (!status.ok()) return status;
  return out;
}

Status SecureAggParticipant::MaskUpdateInto(
    uint64_t round, const std::vector<OwnerId>& group_members,
    const std::vector<uint64_t>& encoded, MaskScratch* scratch,
    std::vector<uint64_t>* out) const {
  static auto& masked_updates = obs::MetricsRegistry::Global().GetCounter(
      "secureagg.masked_updates");
  static auto& mask_us =
      obs::MetricsRegistry::Global().GetHistogram("secureagg.mask_us");
  obs::ScopedLatency latency(mask_us);
  masked_updates.Add();
  if (std::find(group_members.begin(), group_members.end(), id_) ==
      group_members.end()) {
    return Status::InvalidArgument("participant not in the given group");
  }
  *out = encoded;
  // Validate the roster up front, then expand every peer's mask into its
  // own slot — independent ChaCha streams, so slots can fill on the pool
  // in any order. The combine below walks slots in group order, keeping
  // the result bit-identical to the serial path for any pool size.
  scratch->peers.clear();
  scratch->keys.clear();
  scratch->peers.reserve(group_members.size());
  scratch->keys.reserve(group_members.size());
  for (OwnerId peer : group_members) {
    if (peer == id_) continue;
    auto it = pair_keys_.find(peer);
    if (it == pair_keys_.end()) {
      return Status::FailedPrecondition("peer key not registered: " +
                                        std::to_string(peer));
    }
    scratch->peers.push_back(peer);
    scratch->keys.push_back(&it->second);
  }
  const size_t num_peers = scratch->peers.size();
  if (scratch->masks.size() < num_peers) scratch->masks.resize(num_peers);
  auto expand_one = [&](size_t p) {
    ExpandMaskInto(*scratch->keys[p], round, out->size(), &scratch->masks[p]);
  };
  if (pool_ != nullptr && num_peers > 1 && !ThreadPool::InWorkerThread()) {
    pool_->ParallelFor(num_peers, expand_one);
  } else {
    for (size_t p = 0; p < num_peers; ++p) expand_one(p);
  }
  for (size_t p = 0; p < num_peers; ++p) {
    const std::vector<uint64_t>& mask = scratch->masks[p];
    if (id_ < scratch->peers[p]) {
      for (size_t i = 0; i < out->size(); ++i) (*out)[i] += mask[i];
    } else {
      for (size_t i = 0; i < out->size(); ++i) (*out)[i] -= mask[i];
    }
  }
  if (use_self_mask_) {
    ExpandSelfMaskInto(self_seed_, round, out->size(), &scratch->self_mask);
    for (size_t i = 0; i < out->size(); ++i) (*out)[i] += scratch->self_mask[i];
  }
  return Status::OK();
}

Result<RecoveryShares> SecureAggParticipant::ShareSecrets(
    size_t threshold, size_t roster_size, Xoshiro256* rng) const {
  BCFL_ASSIGN_OR_RETURN(
      crypto::ShamirSecretSharing scheme,
      crypto::ShamirSecretSharing::Create(threshold, roster_size));
  RecoveryShares out;
  // SplitVerifiable draws the exact RNG stream Split draws; the Feldman
  // commitments are derived from the same coefficients, so seeded runs
  // are bit-identical to the pre-VSS protocol.
  out.dh_private_shares = scheme.SplitVerifiable(
      key_pair_.private_key.ToBytes(), rng, &out.dh_commitment);
  Bytes seed_bytes(self_seed_.begin(), self_seed_.end());
  out.self_seed_shares =
      scheme.SplitVerifiable(seed_bytes, rng, &out.self_seed_commitment);
  return out;
}

}  // namespace bcfl::secureagg
