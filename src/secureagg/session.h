#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "secureagg/aggregator.h"
#include "secureagg/fixed_point.h"
#include "secureagg/participant.h"

namespace bcfl::secureagg {

/// Configuration of a secure-aggregation session.
struct SessionConfig {
  bool use_self_masks = true;
  /// Shamir threshold for recovery material; 0 = majority (floor(n/2)+1).
  size_t threshold = 0;
  int fixed_point_bits = 24;
  uint64_t seed = 1;
};

/// End-to-end facade wiring participants, key exchange, share
/// distribution and the aggregator — the whole Sect. IV-A-1 handshake in
/// one object. `BcflCoordinator` (src/core) performs the same steps
/// through blockchain transactions; this facade is the reference
/// implementation tests compare against, and the easiest entry point for
/// library users who want secure aggregation without the chain.
class SecureAggSession {
 public:
  /// Creates a session for owners 0..n-1 and performs the key exchange.
  static Result<SecureAggSession> Create(size_t num_owners,
                                         SessionConfig config = {});

  size_t num_owners() const { return participants_.size(); }
  const SessionConfig& config() const { return config_; }
  const FixedPointCodec& codec() const { return codec_; }

  /// Masks `update` on behalf of `owner` for the given round and group.
  Result<std::vector<uint64_t>> Submit(OwnerId owner, uint64_t round,
                                       const std::vector<OwnerId>& group,
                                       const std::vector<double>& update);

  /// Aggregates the group's masked submissions and returns the *mean* of
  /// the surviving members' updates. `dropped` members are recovered via
  /// their secret-shared DH keys (threshold shares must survive).
  Result<std::vector<double>> AggregateGroupMean(
      uint64_t round, const std::vector<OwnerId>& group,
      const std::map<OwnerId, std::vector<uint64_t>>& submissions,
      const std::set<OwnerId>& dropped = {});

  /// Direct access for advanced protocols and tests.
  SecureAggParticipant& participant(OwnerId id) { return *participants_[id]; }

  /// Runs mask regeneration (aggregator) and batched share reveals on
  /// `pool` (nullptr = serial). Results are bit-identical either way.
  void SetPool(ThreadPool* pool) {
    pool_ = pool;
    if (aggregator_) aggregator_->SetPool(pool);
  }

 private:
  SecureAggSession(SessionConfig config, FixedPointCodec codec)
      : config_(config), codec_(codec) {}

  struct RevealJob {
    OwnerId id;
    bool dh_key;
  };

  /// Reconstructs the listed owners' 32-byte secrets from the distributed
  /// shares, simulating the share-reveal step of the protocol — batched:
  /// the surviving holder set is a property of `dropped` alone, so the
  /// availability check and the Lagrange basis are shared by every job in
  /// the call. Successful reconstructions are cached, so re-recovering
  /// the same owner (e.g. a retried round) neither redoes the Lagrange
  /// work nor double-counts the recovery metrics; the availability check
  /// still runs before the cache is consulted (fail-closed).
  Result<std::vector<std::array<uint8_t, 32>>> RevealSecrets(
      const std::vector<RevealJob>& jobs, const std::set<OwnerId>& dropped);

  SessionConfig config_;
  FixedPointCodec codec_;
  std::vector<std::unique_ptr<SecureAggParticipant>> participants_;
  /// recovery_shares_[i] = shares produced by owner i at setup.
  std::vector<RecoveryShares> recovery_shares_;
  std::unique_ptr<SecureAggregator> aggregator_;
  size_t threshold_ = 0;
  ThreadPool* pool_ = nullptr;
  /// Counters resolved once at Create instead of via function-local
  /// statics in the aggregation path: no static-init guard or registry
  /// lock on the hot path, and the binding is per session, not pinned by
  /// whichever call ran first in the process.
  obs::Counter* dropouts_counter_ = nullptr;
  obs::Counter* recoveries_counter_ = nullptr;
  /// Cache of successful secret reconstructions, keyed by (owner, which
  /// secret); makes double recovery idempotent.
  std::map<std::pair<OwnerId, bool>, std::array<uint8_t, 32>> reveal_cache_;
  /// Owners already counted by `secureagg.dropouts` (unique, not per call).
  std::set<OwnerId> counted_dropouts_;
};

}  // namespace bcfl::secureagg
