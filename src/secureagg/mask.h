#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/chacha20.h"

namespace bcfl::secureagg {

/// Deterministic mask expansion — the paper's `PRNG(g^ab, r) -> m_ab^r`.
///
/// Expands a 32-byte pairwise key and an FL round number into `length`
/// ring elements via ChaCha20 (key = pairwise key, nonce = round). Both
/// endpoints of a pair derive identical masks; one adds, one subtracts,
/// so the pair contributes zero to the within-group sum.
std::vector<uint64_t> ExpandMask(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& pair_key,
    uint64_t round, size_t length);

/// Self-mask expansion for the double-masking variant (Bonawitz et al.):
/// each participant additionally adds a private mask derived from its own
/// seed so that revealing pairwise keys of dropped users never exposes a
/// survivor's plain update.
std::vector<uint64_t> ExpandSelfMask(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& self_seed,
    uint64_t round, size_t length);

/// Allocation-reusing variants: `out` is resized to `length` (keeping its
/// capacity across rounds) and overwritten. Same keystream, bit-identical
/// to the returning forms — these exist so the round engine's per-owner
/// scratch can mask every round without reallocating mask buffers.
void ExpandMaskInto(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& pair_key,
    uint64_t round, size_t length, std::vector<uint64_t>* out);
void ExpandSelfMaskInto(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& self_seed,
    uint64_t round, size_t length, std::vector<uint64_t>* out);

}  // namespace bcfl::secureagg
