#include "secureagg/mask.h"

#include "common/sim_clock.h"
#include "obs/metrics.h"

namespace bcfl::secureagg {

namespace {

/// Gauge update threshold: tiny expansions would just report timer noise.
constexpr size_t kRateGaugeMinWords = 4096;

void ExpandInto(const std::array<uint8_t, crypto::ChaCha20::kKeySize>& key,
                uint64_t round, uint8_t domain, size_t length,
                std::vector<uint64_t>* out) {
  static auto& words =
      obs::MetricsRegistry::Global().GetCounter("secureagg.mask_words");
  static auto& rate = obs::MetricsRegistry::Global().GetGauge(
      "secureagg.mask_bytes_per_s");
  // Nonce = round (LE) || domain separator || zero padding.
  std::array<uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<size_t>(i)] = static_cast<uint8_t>(round >> (8 * i));
  }
  nonce[8] = domain;
  crypto::ChaCha20 cipher(key, nonce);
  out->resize(length);
  words.Add(length);
  Stopwatch timer;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // A ring element is the next 8 keystream bytes little-endian, which on
  // a little-endian host is exactly the in-memory uint64 representation —
  // so the batched block generator writes straight into the vector: 8
  // words per keystream block, no per-word calls or copies.
  const size_t full_blocks = length / 8;
  if (full_blocks > 0) {
    cipher.FillBlocks(reinterpret_cast<uint8_t*>(out->data()), full_blocks);
  }
  for (size_t i = full_blocks * 8; i < length; ++i) {
    (*out)[i] = cipher.NextU64();
  }
#else
  for (auto& v : *out) v = cipher.NextU64();
#endif
  if (length >= kRateGaugeMinWords) {
    const double s = timer.ElapsedSeconds();
    if (s > 0) rate.Set(static_cast<double>(length) * 8.0 / s);
  }
}

std::vector<uint64_t> Expand(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& key,
    uint64_t round, uint8_t domain, size_t length) {
  std::vector<uint64_t> out;
  ExpandInto(key, round, domain, length, &out);
  return out;
}

}  // namespace

std::vector<uint64_t> ExpandMask(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& pair_key,
    uint64_t round, size_t length) {
  return Expand(pair_key, round, /*domain=*/0x01, length);
}

std::vector<uint64_t> ExpandSelfMask(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& self_seed,
    uint64_t round, size_t length) {
  return Expand(self_seed, round, /*domain=*/0x02, length);
}

void ExpandMaskInto(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& pair_key,
    uint64_t round, size_t length, std::vector<uint64_t>* out) {
  ExpandInto(pair_key, round, /*domain=*/0x01, length, out);
}

void ExpandSelfMaskInto(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& self_seed,
    uint64_t round, size_t length, std::vector<uint64_t>* out) {
  ExpandInto(self_seed, round, /*domain=*/0x02, length, out);
}

}  // namespace bcfl::secureagg
