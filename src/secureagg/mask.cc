#include "secureagg/mask.h"

namespace bcfl::secureagg {

namespace {

std::vector<uint64_t> Expand(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& key,
    uint64_t round, uint8_t domain, size_t length) {
  // Nonce = round (LE) || domain separator || zero padding.
  std::array<uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<size_t>(i)] = static_cast<uint8_t>(round >> (8 * i));
  }
  nonce[8] = domain;
  crypto::ChaCha20 cipher(key, nonce);
  std::vector<uint64_t> out(length);
  for (auto& v : out) v = cipher.NextU64();
  return out;
}

}  // namespace

std::vector<uint64_t> ExpandMask(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& pair_key,
    uint64_t round, size_t length) {
  return Expand(pair_key, round, /*domain=*/0x01, length);
}

std::vector<uint64_t> ExpandSelfMask(
    const std::array<uint8_t, crypto::ChaCha20::kKeySize>& self_seed,
    uint64_t round, size_t length) {
  return Expand(self_seed, round, /*domain=*/0x02, length);
}

}  // namespace bcfl::secureagg
