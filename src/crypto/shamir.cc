#include "crypto/shamir.h"

#include <set>

namespace bcfl::crypto {

uint64_t ShamirSecretSharing::FieldAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;  // < 2^62, no overflow.
  if (s >= kPrime) s -= kPrime;
  return s;
}

uint64_t ShamirSecretSharing::FieldSub(uint64_t a, uint64_t b) {
  return a >= b ? a - b : a + kPrime - b;
}

uint64_t ShamirSecretSharing::FieldMul(uint64_t a, uint64_t b) {
  unsigned __int128 product = static_cast<unsigned __int128>(a) * b;
  // Fast Mersenne reduction: x = hi*2^61 + lo == hi + lo (mod 2^61 - 1).
  uint64_t lo = static_cast<uint64_t>(product) & kPrime;
  uint64_t hi = static_cast<uint64_t>(product >> 61);
  uint64_t s = lo + hi;
  if (s >= kPrime) s -= kPrime;
  // One more fold covers hi parts beyond 61 bits (product < 2^122).
  if (s >= kPrime) s -= kPrime;
  return s;
}

uint64_t ShamirSecretSharing::FieldPow(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  base %= kPrime;
  while (exp > 0) {
    if (exp & 1) result = FieldMul(result, base);
    base = FieldMul(base, base);
    exp >>= 1;
  }
  return result;
}

uint64_t ShamirSecretSharing::FieldInv(uint64_t a) {
  return FieldPow(a, kPrime - 2);
}

Result<ShamirSecretSharing> ShamirSecretSharing::Create(size_t threshold,
                                                        size_t num_shares) {
  if (threshold == 0) {
    return Status::InvalidArgument("threshold must be >= 1");
  }
  if (threshold > num_shares) {
    return Status::InvalidArgument("threshold exceeds number of shares");
  }
  if (num_shares >= kPrime) {
    return Status::InvalidArgument("too many shares for the field");
  }
  return ShamirSecretSharing(threshold, num_shares);
}

std::vector<uint64_t> ShamirSecretSharing::Pack(const Bytes& secret) {
  std::vector<uint64_t> out;
  out.reserve((secret.size() + kChunkBytes - 1) / kChunkBytes);
  for (size_t i = 0; i < secret.size(); i += kChunkBytes) {
    uint64_t v = 0;
    for (size_t j = 0; j < kChunkBytes && i + j < secret.size(); ++j) {
      v |= static_cast<uint64_t>(secret[i + j]) << (8 * j);
    }
    out.push_back(v);
  }
  return out;
}

Bytes ShamirSecretSharing::Unpack(const std::vector<uint64_t>& elements,
                                  size_t size) {
  Bytes out;
  out.reserve(size);
  for (uint64_t v : elements) {
    for (size_t j = 0; j < kChunkBytes && out.size() < size; ++j) {
      out.push_back(static_cast<uint8_t>(v >> (8 * j)));
    }
  }
  out.resize(size);
  return out;
}

std::vector<ShamirShare> ShamirSecretSharing::Split(const Bytes& secret,
                                                    Xoshiro256* rng) const {
  std::vector<uint64_t> chunks = Pack(secret);
  std::vector<ShamirShare> shares(num_shares_);
  for (size_t s = 0; s < num_shares_; ++s) {
    shares[s].x = static_cast<uint64_t>(s + 1);
    shares[s].values.resize(chunks.size());
  }
  // One random polynomial of degree threshold-1 per chunk, constant term
  // = the chunk value.
  for (size_t c = 0; c < chunks.size(); ++c) {
    std::vector<uint64_t> coeffs(threshold_);
    coeffs[0] = chunks[c] % kPrime;
    for (size_t d = 1; d < threshold_; ++d) {
      coeffs[d] = rng->NextBounded(kPrime);
    }
    for (size_t s = 0; s < num_shares_; ++s) {
      // Horner evaluation at x = s+1.
      uint64_t x = shares[s].x;
      uint64_t y = 0;
      for (size_t d = threshold_; d-- > 0;) {
        y = FieldAdd(FieldMul(y, x), coeffs[d]);
      }
      shares[s].values[c] = y;
    }
  }
  return shares;
}

Result<Bytes> ShamirSecretSharing::Reconstruct(
    const std::vector<ShamirShare>& shares, size_t secret_size) const {
  if (shares.size() < threshold_) {
    return Status::FailedPrecondition(
        "insufficient shares: need " + std::to_string(threshold_) + ", have " +
        std::to_string(shares.size()));
  }
  // Use exactly `threshold_` shares; validate coordinates.
  std::set<uint64_t> seen;
  std::vector<const ShamirShare*> used;
  for (const auto& share : shares) {
    if (share.x == 0 || share.x >= kPrime) {
      return Status::InvalidArgument("share has invalid x coordinate");
    }
    if (!seen.insert(share.x).second) {
      return Status::InvalidArgument("duplicate share x coordinate");
    }
    used.push_back(&share);
    if (used.size() == threshold_) break;
  }
  size_t num_chunks = used[0]->values.size();
  for (const auto* share : used) {
    if (share->values.size() != num_chunks) {
      return Status::InvalidArgument("shares have mismatched chunk counts");
    }
  }

  // Lagrange interpolation at x = 0:
  //   secret = sum_i y_i * prod_{j != i} x_j / (x_j - x_i).
  std::vector<uint64_t> basis(used.size());
  for (size_t i = 0; i < used.size(); ++i) {
    uint64_t num = 1, den = 1;
    for (size_t j = 0; j < used.size(); ++j) {
      if (j == i) continue;
      num = FieldMul(num, used[j]->x % kPrime);
      den = FieldMul(den, FieldSub(used[j]->x % kPrime, used[i]->x % kPrime));
    }
    basis[i] = FieldMul(num, FieldInv(den));
  }

  std::vector<uint64_t> chunks(num_chunks, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    uint64_t acc = 0;
    for (size_t i = 0; i < used.size(); ++i) {
      acc = FieldAdd(acc, FieldMul(used[i]->values[c], basis[i]));
    }
    chunks[c] = acc;
  }
  return Unpack(chunks, secret_size);
}

}  // namespace bcfl::crypto
