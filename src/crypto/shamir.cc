#include "crypto/shamir.h"

#include <set>

#include "common/thread_pool.h"

namespace bcfl::crypto {

uint64_t ShamirSecretSharing::FieldAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;  // < 2^62, no overflow.
  if (s >= kPrime) s -= kPrime;
  return s;
}

uint64_t ShamirSecretSharing::FieldSub(uint64_t a, uint64_t b) {
  return a >= b ? a - b : a + kPrime - b;
}

uint64_t ShamirSecretSharing::FieldMul(uint64_t a, uint64_t b) {
  unsigned __int128 product = static_cast<unsigned __int128>(a) * b;
  // Fast Mersenne reduction: x = hi*2^61 + lo == hi + lo (mod 2^61 - 1).
  uint64_t lo = static_cast<uint64_t>(product) & kPrime;
  uint64_t hi = static_cast<uint64_t>(product >> 61);
  uint64_t s = lo + hi;
  if (s >= kPrime) s -= kPrime;
  // One more fold covers hi parts beyond 61 bits (product < 2^122).
  if (s >= kPrime) s -= kPrime;
  return s;
}

uint64_t ShamirSecretSharing::FieldPow(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  base %= kPrime;
  while (exp > 0) {
    if (exp & 1) result = FieldMul(result, base);
    base = FieldMul(base, base);
    exp >>= 1;
  }
  return result;
}

uint64_t ShamirSecretSharing::FieldInv(uint64_t a) {
  return FieldPow(a, kPrime - 2);
}

Result<ShamirSecretSharing> ShamirSecretSharing::Create(size_t threshold,
                                                        size_t num_shares) {
  if (threshold == 0) {
    return Status::InvalidArgument("threshold must be >= 1");
  }
  if (threshold > num_shares) {
    return Status::InvalidArgument("threshold exceeds number of shares");
  }
  if (num_shares >= kPrime) {
    return Status::InvalidArgument("too many shares for the field");
  }
  return ShamirSecretSharing(threshold, num_shares);
}

std::vector<uint64_t> ShamirSecretSharing::Pack(const Bytes& secret) {
  std::vector<uint64_t> out;
  out.reserve((secret.size() + kChunkBytes - 1) / kChunkBytes);
  for (size_t i = 0; i < secret.size(); i += kChunkBytes) {
    uint64_t v = 0;
    for (size_t j = 0; j < kChunkBytes && i + j < secret.size(); ++j) {
      v |= static_cast<uint64_t>(secret[i + j]) << (8 * j);
    }
    out.push_back(v);
  }
  return out;
}

Bytes ShamirSecretSharing::Unpack(const std::vector<uint64_t>& elements,
                                  size_t size) {
  Bytes out;
  out.reserve(size);
  for (uint64_t v : elements) {
    for (size_t j = 0; j < kChunkBytes && out.size() < size; ++j) {
      out.push_back(static_cast<uint8_t>(v >> (8 * j)));
    }
  }
  out.resize(size);
  return out;
}

std::vector<ShamirShare> ShamirSecretSharing::Split(const Bytes& secret,
                                                    Xoshiro256* rng) const {
  return SplitVerifiable(secret, rng, nullptr);
}

GroupParams ShamirSecretSharing::VssGroup() {
  // P = 52 * (2^61 - 1) + 1 = 0x6_7FFF_FFFF_FFFF_FFCD, g = 2^52.
  return GroupParams{UInt256(0x7FFFFFFFFFFFFFCDull, 6, 0, 0),
                     UInt256(1ULL << 52)};
}

namespace {

/// Process-wide Montgomery context for the commitment group; the registry
/// in GroupContext::Get deduplicates, the static local skips its lock.
const GroupContext& VssContext() {
  static const std::shared_ptr<const GroupContext> ctx =
      GroupContext::Get(ShamirSecretSharing::VssGroup());
  return *ctx;
}

}  // namespace

std::vector<ShamirShare> ShamirSecretSharing::SplitVerifiable(
    const Bytes& secret, Xoshiro256* rng, VssCommitment* commitment) const {
  std::vector<uint64_t> chunks = Pack(secret);
  std::vector<ShamirShare> shares(num_shares_);
  for (size_t s = 0; s < num_shares_; ++s) {
    shares[s].x = static_cast<uint64_t>(s + 1);
    shares[s].values.resize(chunks.size());
  }
  if (commitment != nullptr) {
    commitment->rows.assign(chunks.size(), {});
  }
  // One random polynomial of degree threshold-1 per chunk, constant term
  // = the chunk value.
  for (size_t c = 0; c < chunks.size(); ++c) {
    std::vector<uint64_t> coeffs(threshold_);
    coeffs[0] = chunks[c] % kPrime;
    for (size_t d = 1; d < threshold_; ++d) {
      coeffs[d] = rng->NextBounded(kPrime);
    }
    for (size_t s = 0; s < num_shares_; ++s) {
      // Horner evaluation at x = s+1.
      uint64_t x = shares[s].x;
      uint64_t y = 0;
      for (size_t d = threshold_; d-- > 0;) {
        y = FieldAdd(FieldMul(y, x), coeffs[d]);
      }
      shares[s].values[c] = y;
    }
    if (commitment != nullptr) {
      auto& row = commitment->rows[c];
      row.reserve(threshold_);
      for (size_t d = 0; d < threshold_; ++d) {
        row.push_back(VssContext().PowG(UInt256(coeffs[d])));
      }
    }
  }
  return shares;
}

bool ShamirSecretSharing::VerifyShare(const ShamirShare& share,
                                      const VssCommitment& commitment) const {
  if (share.x == 0 || share.x >= kPrime) return false;
  if (commitment.rows.size() != share.values.size()) return false;
  const GroupContext& ctx = VssContext();
  const UInt256& p = ctx.params().p;
  // x^d mod kPrime, shared by every chunk of this share.
  std::vector<uint64_t> exps(threshold_);
  exps[0] = 1;
  for (size_t d = 1; d < threshold_; ++d) {
    exps[d] = FieldMul(exps[d - 1], share.x % kPrime);
  }
  for (size_t c = 0; c < commitment.rows.size(); ++c) {
    const auto& row = commitment.rows[c];
    if (row.size() != threshold_) return false;
    const uint64_t y = share.values[c];
    if (y >= kPrime) return false;
    UInt256 acc = row[0].Mod(p);  // exps[0] == 1.
    for (size_t d = 1; d < threshold_; ++d) {
      acc = acc.ModMul(ctx.PowBase(row[d], UInt256(exps[d])), p);
    }
    if (ctx.PowG(UInt256(y)) != acc) return false;
  }
  return true;
}

bool ShamirSecretSharing::VerifyShareReference(
    const ShamirShare& share, const VssCommitment& commitment) const {
  if (share.x == 0 || share.x >= kPrime) return false;
  if (commitment.rows.size() != share.values.size()) return false;
  const GroupParams group = VssGroup();
  for (size_t c = 0; c < commitment.rows.size(); ++c) {
    const auto& row = commitment.rows[c];
    if (row.size() != threshold_) return false;
    const uint64_t y = share.values[c];
    if (y >= kPrime) return false;
    uint64_t exp = 1;
    UInt256 acc(1);
    for (size_t d = 0; d < threshold_; ++d) {
      acc = acc.ModMul(row[d].Mod(group.p).ModPow(UInt256(exp), group.p),
                       group.p);
      exp = FieldMul(exp, share.x % kPrime);
    }
    if (group.g.ModPow(UInt256(y), group.p) != acc) return false;
  }
  return true;
}

Bytes VssCommitment::Serialize() const {
  ByteWriter writer;
  writer.WriteU32(static_cast<uint32_t>(rows.size()));
  writer.WriteU32(rows.empty() ? 0 : static_cast<uint32_t>(rows[0].size()));
  for (const auto& row : rows) {
    for (const auto& point : row) {
      const Bytes raw = point.ToBytes();
      writer.WriteRaw(raw.data(), raw.size());
    }
  }
  return std::move(writer).Take();
}

Result<VssCommitment> VssCommitment::Deserialize(const Bytes& bytes) {
  ByteReader reader(bytes);
  uint32_t num_rows = 0, num_cols = 0;
  BCFL_ASSIGN_OR_RETURN(num_rows, reader.ReadU32());
  BCFL_ASSIGN_OR_RETURN(num_cols, reader.ReadU32());
  if (num_rows != 0 && num_cols == 0) {
    return Status::InvalidArgument("vss commitment with empty rows");
  }
  const UInt256 p = ShamirSecretSharing::VssGroup().p;
  VssCommitment out;
  out.rows.assign(num_rows, {});
  for (uint32_t r = 0; r < num_rows; ++r) {
    out.rows[r].reserve(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      BCFL_ASSIGN_OR_RETURN(Bytes raw, reader.ReadRaw(32));
      BCFL_ASSIGN_OR_RETURN(UInt256 point, UInt256::FromBytes(raw));
      if (point.IsZero() || point >= p) {
        return Status::InvalidArgument("vss commitment element out of group");
      }
      out.rows[r].push_back(point);
    }
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after vss commitment");
  }
  return out;
}

Result<ShamirSecretSharing::LagrangeBasis> ShamirSecretSharing::PrepareBasis(
    const std::vector<ShamirShare>& shares) const {
  if (shares.size() < threshold_) {
    return Status::FailedPrecondition(
        "insufficient shares: need " + std::to_string(threshold_) + ", have " +
        std::to_string(shares.size()));
  }
  // Use exactly `threshold_` shares; validate coordinates.
  std::set<uint64_t> seen;
  LagrangeBasis basis;
  basis.x.reserve(threshold_);
  for (const auto& share : shares) {
    if (share.x == 0 || share.x >= kPrime) {
      return Status::InvalidArgument("share has invalid x coordinate");
    }
    if (!seen.insert(share.x).second) {
      return Status::InvalidArgument("duplicate share x coordinate");
    }
    basis.x.push_back(share.x);
    if (basis.x.size() == threshold_) break;
  }

  // Lagrange interpolation at x = 0:
  //   secret = sum_i y_i * prod_{j != i} x_j / (x_j - x_i).
  // All denominators are inverted at once with Montgomery's batch trick:
  // invert the running product of the dens, then peel each den back out
  // with the prefix products. One FieldInv (a 61-squaring exponentiation)
  // instead of threshold() of them — exact field arithmetic, so the
  // coefficients are bit-identical to inverting each den directly.
  const size_t t = basis.x.size();
  std::vector<uint64_t> nums(t), dens(t), prefix(t);
  for (size_t i = 0; i < t; ++i) {
    uint64_t num = 1, den = 1;
    for (size_t j = 0; j < t; ++j) {
      if (j == i) continue;
      num = FieldMul(num, basis.x[j] % kPrime);
      den = FieldMul(den, FieldSub(basis.x[j] % kPrime, basis.x[i] % kPrime));
    }
    nums[i] = num;
    dens[i] = den;
    prefix[i] = i == 0 ? den : FieldMul(prefix[i - 1], den);
  }
  // dens[i] != 0 always: the x are distinct mod kPrime (each < kPrime).
  uint64_t inv_running = FieldInv(prefix[t - 1]);
  basis.coeffs.resize(t);
  for (size_t i = t; i-- > 0;) {
    uint64_t inv_den =
        i == 0 ? inv_running : FieldMul(inv_running, prefix[i - 1]);
    basis.coeffs[i] = FieldMul(nums[i], inv_den);
    inv_running = FieldMul(inv_running, dens[i]);
  }
  return basis;
}

Result<Bytes> ShamirSecretSharing::ReconstructWithBasis(
    const LagrangeBasis& basis, const std::vector<ShamirShare>& shares,
    size_t secret_size) const {
  if (basis.x.size() != threshold_ || basis.coeffs.size() != threshold_) {
    return Status::InvalidArgument("basis size does not match threshold");
  }
  if (shares.size() < threshold_) {
    return Status::FailedPrecondition(
        "insufficient shares: need " + std::to_string(threshold_) + ", have " +
        std::to_string(shares.size()));
  }
  // Every holder's share is checked against the basis before any value is
  // combined — a share at the wrong coordinate would silently corrupt the
  // secret otherwise.
  for (size_t i = 0; i < threshold_; ++i) {
    if (shares[i].x != basis.x[i]) {
      return Status::InvalidArgument("share x does not match basis");
    }
  }
  size_t num_chunks = shares[0].values.size();
  for (size_t i = 0; i < threshold_; ++i) {
    if (shares[i].values.size() != num_chunks) {
      return Status::InvalidArgument("shares have mismatched chunk counts");
    }
  }

  std::vector<uint64_t> chunks(num_chunks, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    uint64_t acc = 0;
    for (size_t i = 0; i < threshold_; ++i) {
      acc = FieldAdd(acc, FieldMul(shares[i].values[c], basis.coeffs[i]));
    }
    chunks[c] = acc;
  }
  return Unpack(chunks, secret_size);
}

Result<Bytes> ShamirSecretSharing::Reconstruct(
    const std::vector<ShamirShare>& shares, size_t secret_size) const {
  auto basis = PrepareBasis(shares);
  if (!basis.ok()) return basis.status();
  return ReconstructWithBasis(basis.value(), shares, secret_size);
}

Result<std::vector<Bytes>> ShamirSecretSharing::ReconstructBatch(
    const std::vector<std::vector<ShamirShare>>& share_sets,
    const std::vector<size_t>& secret_sizes, ThreadPool* pool) const {
  if (share_sets.size() != secret_sizes.size()) {
    return Status::InvalidArgument(
        "share_sets and secret_sizes length mismatch");
  }
  const size_t n = share_sets.size();
  std::vector<Bytes> out(n);
  if (n == 0) return out;

  // One basis per *distinct* coordinate set. A recovery round reveals many
  // secrets held by the same surviving roster, so in practice this is a
  // single PrepareBasis for the whole batch; a change of roster mid-batch
  // just computes a fresh basis for the sets that need it.
  std::vector<LagrangeBasis> bases;
  std::vector<size_t> basis_of(n);
  auto same_coords = [&](const LagrangeBasis& basis,
                         const std::vector<ShamirShare>& shares) {
    if (shares.size() < basis.x.size()) return false;
    for (size_t i = 0; i < basis.x.size(); ++i) {
      if (shares[i].x != basis.x[i]) return false;
    }
    return true;
  };
  for (size_t k = 0; k < n; ++k) {
    size_t found = bases.size();
    for (size_t b = 0; b < bases.size(); ++b) {
      if (same_coords(bases[b], share_sets[k])) {
        found = b;
        break;
      }
    }
    if (found == bases.size()) {
      auto basis = PrepareBasis(share_sets[k]);
      if (!basis.ok()) return basis.status();
      bases.push_back(std::move(basis).value());
    }
    basis_of[k] = found;
  }

  // Per-set verification + polynomial evaluation is independent across
  // sets; outputs land in slot k for input k, so any pool size (or none)
  // produces bit-identical results. Errors fail the whole batch, lowest
  // set index first, matching a serial loop.
  std::vector<Status> errors(n, Status::OK());
  auto run_one = [&](size_t k) {
    auto secret = ReconstructWithBasis(bases[basis_of[k]], share_sets[k],
                                       secret_sizes[k]);
    if (secret.ok()) {
      out[k] = std::move(secret).value();
    } else {
      errors[k] = secret.status();
    }
  };
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, run_one, /*grain=*/1);
  } else {
    for (size_t k = 0; k < n; ++k) run_one(k);
  }
  for (size_t k = 0; k < n; ++k) {
    if (!errors[k].ok()) return errors[k];
  }
  return out;
}

Result<Bytes> ShamirSecretSharing::ReconstructReference(
    const std::vector<ShamirShare>& shares, size_t secret_size) const {
  if (shares.size() < threshold_) {
    return Status::FailedPrecondition(
        "insufficient shares: need " + std::to_string(threshold_) + ", have " +
        std::to_string(shares.size()));
  }
  // Use exactly `threshold_` shares; validate coordinates.
  std::set<uint64_t> seen;
  std::vector<const ShamirShare*> used;
  for (const auto& share : shares) {
    if (share.x == 0 || share.x >= kPrime) {
      return Status::InvalidArgument("share has invalid x coordinate");
    }
    if (!seen.insert(share.x).second) {
      return Status::InvalidArgument("duplicate share x coordinate");
    }
    used.push_back(&share);
    if (used.size() == threshold_) break;
  }
  size_t num_chunks = used[0]->values.size();
  for (const auto* share : used) {
    if (share->values.size() != num_chunks) {
      return Status::InvalidArgument("shares have mismatched chunk counts");
    }
  }

  // Lagrange interpolation at x = 0:
  //   secret = sum_i y_i * prod_{j != i} x_j / (x_j - x_i).
  std::vector<uint64_t> basis(used.size());
  for (size_t i = 0; i < used.size(); ++i) {
    uint64_t num = 1, den = 1;
    for (size_t j = 0; j < used.size(); ++j) {
      if (j == i) continue;
      num = FieldMul(num, used[j]->x % kPrime);
      den = FieldMul(den, FieldSub(used[j]->x % kPrime, used[i]->x % kPrime));
    }
    basis[i] = FieldMul(num, FieldInv(den));
  }

  std::vector<uint64_t> chunks(num_chunks, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    uint64_t acc = 0;
    for (size_t i = 0; i < used.size(); ++i) {
      acc = FieldAdd(acc, FieldMul(used[i]->values[c], basis[i]));
    }
    chunks[c] = acc;
  }
  return Unpack(chunks, secret_size);
}

}  // namespace bcfl::crypto
