#include "crypto/sha256.h"

#include <cstring>
#include <vector>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define BCFL_SHA256_HAVE_AVX2 1
#define BCFL_SHA256_TARGET_AVX2 __attribute__((target("avx2")))
#include <immintrin.h>
#else
#define BCFL_SHA256_HAVE_AVX2 0
#define BCFL_SHA256_TARGET_AVX2
#endif

namespace bcfl::crypto {

namespace {

constexpr std::array<uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  state_ = kInitialState;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::Update(const uint8_t* data, size_t size) {
  total_len_ += size;
  while (size > 0) {
    size_t take = std::min(size, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    size -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

Digest Sha256::Finish() {
  // Append 0x80, pad with zeros, then the 64-bit big-endian bit length.
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0x00;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass total_len_ bookkeeping for the length field itself.
  std::memcpy(buffer_ + 56, len_bytes, 8);
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i + 0] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

void Sha256::ProcessBlock(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
           static_cast<uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Digest Sha256::Hash(const uint8_t* data, size_t size) {
  Sha256 hasher;
  hasher.Update(data, size);
  return hasher.Finish();
}

Digest Sha256::Hash(const Bytes& data) { return Hash(data.data(), data.size()); }

Digest Sha256::Hash(std::string_view data) {
  return Hash(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

std::string DigestToHex(const Digest& digest) {
  return ToHex(digest.data(), digest.size());
}

Bytes DigestToBytes(const Digest& digest) {
  return Bytes(digest.begin(), digest.end());
}

// -- batched hashing -------------------------------------------------------

namespace {

/// Number of 64-byte blocks a `len`-byte message occupies once padded.
[[maybe_unused]] size_t PaddedBlocks(size_t len) {
  return (len + 9 + 63) / 64;
}

/// Standard SHA-256 padding of `msg` into `out` (PaddedBlocks(len)*64
/// bytes): 0x80, zeros, 64-bit big-endian bit length.
[[maybe_unused]] void PadMessage(const uint8_t* msg, size_t len,
                                 uint8_t* out) {
  size_t total = PaddedBlocks(len) * 64;
  std::memcpy(out, msg, len);
  out[len] = 0x80;
  std::memset(out + len + 1, 0, total - len - 9);
  uint64_t bit_len = static_cast<uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    out[total - 8 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
}

#if BCFL_SHA256_HAVE_AVX2

BCFL_SHA256_TARGET_AVX2 inline __m256i Rotr8x32(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n),
                         _mm256_slli_epi32(x, 32 - n));
}

/// Compresses eight already-padded messages of `nblocks` blocks each:
/// lane l of every vector register carries message l. The round function
/// is the scalar one transliterated to epi32 ops, so every lane computes
/// exactly the standard digest.
BCFL_SHA256_TARGET_AVX2 void Sha256x8Avx2(const uint8_t* const lanes[8],
                                          size_t nblocks, Digest* out) {
  __m256i s[8];
  for (int i = 0; i < 8; ++i) {
    s[i] = _mm256_set1_epi32(static_cast<int>(kInitialState[i]));
  }
  for (size_t blk = 0; blk < nblocks; ++blk) {
    __m256i w[64];
    alignas(32) uint32_t tmp[8];
    for (int t = 0; t < 16; ++t) {
      for (int l = 0; l < 8; ++l) {
        const uint8_t* p = lanes[l] + blk * 64 + static_cast<size_t>(t) * 4;
        tmp[l] = static_cast<uint32_t>(p[0]) << 24 |
                 static_cast<uint32_t>(p[1]) << 16 |
                 static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
      }
      w[t] = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
    }
    for (int t = 16; t < 64; ++t) {
      __m256i x15 = w[t - 15];
      __m256i x2 = w[t - 2];
      __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(Rotr8x32(x15, 7), Rotr8x32(x15, 18)),
          _mm256_srli_epi32(x15, 3));
      __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(Rotr8x32(x2, 17), Rotr8x32(x2, 19)),
          _mm256_srli_epi32(x2, 10));
      w[t] = _mm256_add_epi32(_mm256_add_epi32(w[t - 16], s0),
                              _mm256_add_epi32(w[t - 7], s1));
    }

    __m256i a = s[0], b = s[1], c = s[2], d = s[3];
    __m256i e = s[4], f = s[5], g = s[6], h = s[7];
    for (int t = 0; t < 64; ++t) {
      __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(Rotr8x32(e, 6), Rotr8x32(e, 11)), Rotr8x32(e, 25));
      __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                    _mm256_andnot_si256(e, g));
      __m256i temp1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(h, s1),
                           _mm256_add_epi32(ch, w[t])),
          _mm256_set1_epi32(static_cast<int>(kRoundConstants[t])));
      __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(Rotr8x32(a, 2), Rotr8x32(a, 13)), Rotr8x32(a, 22));
      __m256i maj = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
          _mm256_and_si256(b, c));
      __m256i temp2 = _mm256_add_epi32(s0, maj);
      h = g;
      g = f;
      f = e;
      e = _mm256_add_epi32(d, temp1);
      d = c;
      c = b;
      b = a;
      a = _mm256_add_epi32(temp1, temp2);
    }
    s[0] = _mm256_add_epi32(s[0], a);
    s[1] = _mm256_add_epi32(s[1], b);
    s[2] = _mm256_add_epi32(s[2], c);
    s[3] = _mm256_add_epi32(s[3], d);
    s[4] = _mm256_add_epi32(s[4], e);
    s[5] = _mm256_add_epi32(s[5], f);
    s[6] = _mm256_add_epi32(s[6], g);
    s[7] = _mm256_add_epi32(s[7], h);
  }
  alignas(32) uint32_t words[8][8];  // words[state index][lane]
  for (int i = 0; i < 8; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(words[i]), s[i]);
  }
  for (int l = 0; l < 8; ++l) {
    for (int i = 0; i < 8; ++i) {
      uint32_t v = words[i][l];
      out[l][4 * i + 0] = static_cast<uint8_t>(v >> 24);
      out[l][4 * i + 1] = static_cast<uint8_t>(v >> 16);
      out[l][4 * i + 2] = static_cast<uint8_t>(v >> 8);
      out[l][4 * i + 3] = static_cast<uint8_t>(v);
    }
  }
}

bool HasAvx2() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}

#else

bool HasAvx2() { return false; }

#endif  // BCFL_SHA256_HAVE_AVX2

}  // namespace

std::string_view Sha256BatchActivePath() {
  return HasAvx2() ? "avx2x8" : "scalar";
}

void Sha256Batch(const uint8_t* const* msgs, size_t len, size_t count,
                 Digest* out) {
#if BCFL_SHA256_HAVE_AVX2
  if (HasAvx2() && count >= 8) {
    size_t nblocks = PaddedBlocks(len);
    std::vector<uint8_t> padded(8 * nblocks * 64);
    size_t i = 0;
    for (; i + 8 <= count; i += 8) {
      const uint8_t* lanes[8];
      for (int l = 0; l < 8; ++l) {
        uint8_t* dst = padded.data() + static_cast<size_t>(l) * nblocks * 64;
        PadMessage(msgs[i + static_cast<size_t>(l)], len, dst);
        lanes[l] = dst;
      }
      Sha256x8Avx2(lanes, nblocks, out + i);
    }
    for (; i < count; ++i) out[i] = Sha256::Hash(msgs[i], len);
    return;
  }
#endif
  for (size_t i = 0; i < count; ++i) out[i] = Sha256::Hash(msgs[i], len);
}

}  // namespace bcfl::crypto
