#include "crypto/chacha20.h"

#include <algorithm>
#include <cstring>

namespace bcfl::crypto {

namespace {

#if defined(__GNUC__)
#define BCFL_CHACHA_ALWAYS_INLINE __attribute__((always_inline))
#else
#define BCFL_CHACHA_ALWAYS_INLINE
#endif

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define BCFL_CHACHA_HAVE_TARGET_CLONES 1
#define BCFL_CHACHA_TARGET_AVX2 __attribute__((target("avx2")))
#define BCFL_CHACHA_TARGET_AVX512 __attribute__((target("avx512f")))
#else
#define BCFL_CHACHA_HAVE_TARGET_CLONES 0
#endif

#if defined(__GNUC__)
// GNU vector extensions: element-wise +, ^, <<, >> compile directly to
// SIMD integer ops, sidestepping the auto-vectorizer (which refuses the
// equivalent lane loops because it cannot prove the rows distinct).
#define BCFL_CHACHA_HAVE_VECTOR_EXT 1
typedef uint32_t VecU32x4 __attribute__((vector_size(16)));
typedef uint32_t VecU32x8 __attribute__((vector_size(32)));
typedef uint32_t VecU32x16 __attribute__((vector_size(64)));
#else
#define BCFL_CHACHA_HAVE_VECTOR_EXT 0
#endif

inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

/// Single-block RFC 8439 core — the seed's scalar quarter-round, used
/// for the buffered path and as the portable batch fallback.
inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = Rotl32(d, 16);
  c += d; b ^= c; b = Rotl32(b, 12);
  a += b; d ^= a; d = Rotl32(d, 8);
  c += d; b ^= c; b = Rotl32(b, 7);
}

void BlockScalar(const std::array<uint32_t, 16>& state, uint8_t* out) {
  std::array<uint32_t, 16> x = state;
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    // Diagonal rounds.
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t word = x[i] + state[i];
    out[4 * i + 0] = static_cast<uint8_t>(word);
    out[4 * i + 1] = static_cast<uint8_t>(word >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(word >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(word >> 24);
  }
}

#if BCFL_CHACHA_HAVE_VECTOR_EXT

/// One ChaCha quarter-round applied to `L = sizeof(V) / 4` independent
/// blocks at once: every vector element belongs to a different block, so
/// the rotate never crosses lanes and each statement is one SIMD op.
template <typename V>
BCFL_CHACHA_ALWAYS_INLINE inline void QuarterRoundLanes(V& a, V& b, V& c,
                                                        V& d) {
  a += b; d ^= a; d = (d << 16) | (d >> 16);
  c += d; b ^= c; b = (b << 12) | (b >> 20);
  a += b; d ^= a; d = (d << 8) | (d >> 24);
  c += d; b ^= c; b = (b << 7) | (b >> 25);
}

/// Generates `L` consecutive RFC 8439 blocks (counters state[12] .. +L-1)
/// into out[0..64*L). Working state is interleaved word-major — x[i][l]
/// is word i of block l — so every round step touches whole vectors. The
/// byte stream is identical to running the single-block function L times
/// with incrementing counters.
template <typename V>
BCFL_CHACHA_ALWAYS_INLINE inline void BlocksLanes(
    const std::array<uint32_t, 16>& state, uint8_t* out) {
  constexpr size_t L = sizeof(V) / sizeof(uint32_t);
  V x[16];
  V feed[16];
  for (int i = 0; i < 16; ++i) {
    for (size_t l = 0; l < L; ++l) feed[i][l] = state[i];
  }
  for (size_t l = 0; l < L; ++l) {
    feed[12][l] = state[12] + static_cast<uint32_t>(l);
  }
  for (int i = 0; i < 16; ++i) x[i] = feed[i];
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    QuarterRoundLanes(x[0], x[4], x[8], x[12]);
    QuarterRoundLanes(x[1], x[5], x[9], x[13]);
    QuarterRoundLanes(x[2], x[6], x[10], x[14]);
    QuarterRoundLanes(x[3], x[7], x[11], x[15]);
    // Diagonal rounds.
    QuarterRoundLanes(x[0], x[5], x[10], x[15]);
    QuarterRoundLanes(x[1], x[6], x[11], x[12]);
    QuarterRoundLanes(x[2], x[7], x[8], x[13]);
    QuarterRoundLanes(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) x[i] += feed[i];
  for (size_t l = 0; l < L; ++l) {
    uint8_t* b = out + 64 * l;
    for (int i = 0; i < 16; ++i) {
      const uint32_t word = x[i][l];
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
      std::memcpy(b + 4 * i, &word, 4);
#else
      b[4 * i + 0] = static_cast<uint8_t>(word);
      b[4 * i + 1] = static_cast<uint8_t>(word >> 8);
      b[4 * i + 2] = static_cast<uint8_t>(word >> 16);
      b[4 * i + 3] = static_cast<uint8_t>(word >> 24);
#endif
    }
  }
}

/// Batch generator over vector type V: L blocks per pass, scalar tail.
/// Advances state[12] past the blocks written.
template <typename V>
BCFL_CHACHA_ALWAYS_INLINE inline void GenerateBlocksLanes(
    std::array<uint32_t, 16>& state, uint8_t* out, size_t num_blocks) {
  constexpr size_t L = sizeof(V) / sizeof(uint32_t);
  while (num_blocks >= L) {
    BlocksLanes<V>(state, out);
    state[12] += static_cast<uint32_t>(L);
    out += L * 64;
    num_blocks -= L;
  }
  while (num_blocks > 0) {
    BlockScalar(state, out);
    state[12] += 1;
    out += 64;
    num_blocks -= 1;
  }
}

/// Baseline batch generator: 4 counters per pass (SSE2-width lanes on
/// x86-64, NEON-width elsewhere).
void GenerateBlocksBase(std::array<uint32_t, 16>& state, uint8_t* out,
                        size_t num_blocks) {
  GenerateBlocksLanes<VecU32x4>(state, out, num_blocks);
}

#if BCFL_CHACHA_HAVE_TARGET_CLONES
BCFL_CHACHA_TARGET_AVX2 void GenerateBlocksAvx2(std::array<uint32_t, 16>& state,
                                                uint8_t* out,
                                                size_t num_blocks) {
  GenerateBlocksLanes<VecU32x8>(state, out, num_blocks);
}

BCFL_CHACHA_TARGET_AVX512 void GenerateBlocksAvx512(
    std::array<uint32_t, 16>& state, uint8_t* out, size_t num_blocks) {
  GenerateBlocksLanes<VecU32x16>(state, out, num_blocks);
}

bool HasAvx2() {
  static const bool kHas = __builtin_cpu_supports("avx2") != 0;
  return kHas;
}

bool HasAvx512() {
  static const bool kHas = __builtin_cpu_supports("avx512f") != 0;
  return kHas;
}
#endif

#endif  // BCFL_CHACHA_HAVE_VECTOR_EXT

void GenerateBlocks(std::array<uint32_t, 16>& state, uint8_t* out,
                    size_t num_blocks) {
#if BCFL_CHACHA_HAVE_VECTOR_EXT
#if BCFL_CHACHA_HAVE_TARGET_CLONES
  if (HasAvx512()) {
    GenerateBlocksAvx512(state, out, num_blocks);
    return;
  }
  if (HasAvx2()) {
    GenerateBlocksAvx2(state, out, num_blocks);
    return;
  }
#endif
  GenerateBlocksBase(state, out, num_blocks);
#else
  while (num_blocks > 0) {
    BlockScalar(state, out);
    state[12] += 1;
    out += 64;
    num_blocks -= 1;
  }
#endif
}

}  // namespace

ChaCha20::ChaCha20(const std::array<uint8_t, kKeySize>& key,
                   const std::array<uint8_t, kNonceSize>& nonce,
                   uint32_t counter)
    : block_offset_(64) {
  // "expand 32-byte k" sigma constants.
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = LoadLe32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = LoadLe32(nonce.data() + 4 * i);
}

void ChaCha20::RefillBlock() {
  BlockScalar(state_, block_.data());
  state_[12] += 1;  // Block counter.
  block_offset_ = 0;
}

void ChaCha20::Keystream(uint8_t* out, size_t size) {
  // Drain the buffered partial block first.
  if (block_offset_ < 64) {
    size_t take = std::min<size_t>(size, 64 - block_offset_);
    std::memcpy(out, block_.data() + block_offset_, take);
    block_offset_ += take;
    out += take;
    size -= take;
  }
  // Whole blocks are generated straight into `out`, several counters per
  // pass; only a sub-block tail goes through the buffer.
  size_t blocks = size / 64;
  if (blocks > 0) {
    GenerateBlocks(state_, out, blocks);
    out += blocks * 64;
    size -= blocks * 64;
  }
  if (size > 0) {
    RefillBlock();
    std::memcpy(out, block_.data(), size);
    block_offset_ = size;
  }
}

Bytes ChaCha20::Keystream(size_t size) {
  Bytes out(size);
  Keystream(out.data(), size);
  return out;
}

void ChaCha20::FillBlocks(uint8_t* out, size_t num_blocks) {
  Keystream(out, num_blocks * 64);
}

void ChaCha20::Crypt(uint8_t* data, size_t size) {
  while (size > 0) {
    if (block_offset_ == 64) RefillBlock();
    size_t take = std::min<size_t>(size, 64 - block_offset_);
    for (size_t i = 0; i < take; ++i) data[i] ^= block_[block_offset_ + i];
    block_offset_ += take;
    data += take;
    size -= take;
  }
}

uint64_t ChaCha20::NextU64() {
  uint8_t raw[8];
  Keystream(raw, sizeof(raw));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(raw[i]) << (8 * i);
  return v;
}

ChaChaRng::ChaChaRng(const std::array<uint8_t, ChaCha20::kKeySize>& key,
                     uint64_t stream_id)
    : cipher_(key,
              [stream_id] {
                std::array<uint8_t, ChaCha20::kNonceSize> nonce{};
                for (int i = 0; i < 8; ++i) {
                  nonce[i] = static_cast<uint8_t>(stream_id >> (8 * i));
                }
                return nonce;
              }(),
              0) {}

uint64_t ChaChaRng::NextU64() { return cipher_.NextU64(); }

double ChaChaRng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

}  // namespace bcfl::crypto
