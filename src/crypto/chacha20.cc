#include "crypto/chacha20.h"

#include <cstring>

namespace bcfl::crypto {

namespace {

inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = Rotl32(d, 16);
  c += d; b ^= c; b = Rotl32(b, 12);
  a += b; d ^= a; d = Rotl32(d, 8);
  c += d; b ^= c; b = Rotl32(b, 7);
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

ChaCha20::ChaCha20(const std::array<uint8_t, kKeySize>& key,
                   const std::array<uint8_t, kNonceSize>& nonce,
                   uint32_t counter)
    : block_offset_(64) {
  // "expand 32-byte k" sigma constants.
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = LoadLe32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = LoadLe32(nonce.data() + 4 * i);
}

void ChaCha20::RefillBlock() {
  std::array<uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    // Diagonal rounds.
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t word = x[i] + state_[i];
    block_[4 * i + 0] = static_cast<uint8_t>(word);
    block_[4 * i + 1] = static_cast<uint8_t>(word >> 8);
    block_[4 * i + 2] = static_cast<uint8_t>(word >> 16);
    block_[4 * i + 3] = static_cast<uint8_t>(word >> 24);
  }
  state_[12] += 1;  // Block counter.
  block_offset_ = 0;
}

void ChaCha20::Keystream(uint8_t* out, size_t size) {
  while (size > 0) {
    if (block_offset_ == 64) RefillBlock();
    size_t take = std::min<size_t>(size, 64 - block_offset_);
    std::memcpy(out, block_.data() + block_offset_, take);
    block_offset_ += take;
    out += take;
    size -= take;
  }
}

Bytes ChaCha20::Keystream(size_t size) {
  Bytes out(size);
  Keystream(out.data(), size);
  return out;
}

void ChaCha20::Crypt(uint8_t* data, size_t size) {
  while (size > 0) {
    if (block_offset_ == 64) RefillBlock();
    size_t take = std::min<size_t>(size, 64 - block_offset_);
    for (size_t i = 0; i < take; ++i) data[i] ^= block_[block_offset_ + i];
    block_offset_ += take;
    data += take;
    size -= take;
  }
}

uint64_t ChaCha20::NextU64() {
  uint8_t raw[8];
  Keystream(raw, sizeof(raw));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(raw[i]) << (8 * i);
  return v;
}

ChaChaRng::ChaChaRng(const std::array<uint8_t, ChaCha20::kKeySize>& key,
                     uint64_t stream_id)
    : cipher_(key,
              [stream_id] {
                std::array<uint8_t, ChaCha20::kNonceSize> nonce{};
                for (int i = 0; i < 8; ++i) {
                  nonce[i] = static_cast<uint8_t>(stream_id >> (8 * i));
                }
                return nonce;
              }(),
              0) {}

uint64_t ChaChaRng::NextU64() { return cipher_.NextU64(); }

double ChaChaRng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

}  // namespace bcfl::crypto
