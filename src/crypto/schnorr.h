#pragma once

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/dh.h"
#include "crypto/uint256.h"

namespace bcfl::crypto {

/// A Schnorr-style signature (R, s) over the library's discrete-log group.
struct SchnorrSignature {
  UInt256 r;  ///< Commitment R = g^k mod p.
  UInt256 s;  ///< Response s = k + e*x mod (p-1).

  /// Serializes as 64 big-endian bytes (R || s).
  Bytes ToBytes() const;
  static Result<SchnorrSignature> FromBytes(const Bytes& bytes);
};

/// Signing key pair; public_key = g^x mod p (shares the DH group).
struct SchnorrKeyPair {
  UInt256 private_key;
  UInt256 public_key;
};

/// Schnorr identification-scheme signatures, used to authenticate every
/// blockchain transaction: miners verify that a masked model update or an
/// evaluation proposal really originates from the claimed data owner.
///
/// Sign:   k <-$ [2, p-2];  R = g^k;  e = H(R || pub || msg) mod (p-1);
///         s = k + e*x mod (p-1).
/// Verify: g^s == R * pub^e (mod p).
///
/// Exponent arithmetic is mod (p-1); the identity holds for any group
/// element order dividing p-1, so verification is exact. (Production
/// would pick a prime-order subgroup; documented in DESIGN.md.)
class Schnorr {
 public:
  explicit Schnorr(GroupParams params = GroupParams::Default());

  const GroupParams& params() const { return params_; }

  /// Generates a fresh signing key pair.
  SchnorrKeyPair GenerateKeyPair(Xoshiro256* rng) const;

  /// Signs `message` with `key`. `rng` supplies the per-signature nonce.
  SchnorrSignature Sign(const SchnorrKeyPair& key, const Bytes& message,
                        Xoshiro256* rng) const;

  /// Verifies `sig` over `message` against `public_key`.
  bool Verify(const UInt256& public_key, const Bytes& message,
              const SchnorrSignature& sig) const;

 private:
  /// e = SHA-256(R || pub || msg) interpreted big-endian, mod (p-1).
  UInt256 Challenge(const UInt256& r, const UInt256& public_key,
                    const Bytes& message) const;

  GroupParams params_;
  UInt256 order_;  ///< p - 1, modulus for exponent arithmetic.
  /// Shared per-group fast-exponentiation state; null under the
  /// BCFL_CRYPTO_REFERENCE build, which pins the seed ModPow path.
  std::shared_ptr<const GroupContext> ctx_;
};

namespace reference {

/// The seed's scalar verification equation, verbatim: range checks, then
/// g^s == R * pub^e (mod p) via square-and-multiply over restoring
/// division. Kept callable in every build so benches can equivalence-gate
/// the optimized path against it.
bool SchnorrVerify(const GroupParams& params, const UInt256& public_key,
                   const Bytes& message, const SchnorrSignature& sig);

}  // namespace reference

}  // namespace bcfl::crypto
