#include "crypto/dh.h"

namespace bcfl::crypto {

GroupParams GroupParams::Default() {
  // p = 2^255 - 19, little-endian limbs.
  UInt256 p(0xffffffffffffffedULL, 0xffffffffffffffffULL,
            0xffffffffffffffffULL, 0x7fffffffffffffffULL);
  return GroupParams{p, UInt256(2)};
}

UInt256 RandomInRange(Xoshiro256* rng, const UInt256& low,
                      const UInt256& high) {
  // range = high - low + 1; sample 256 random bits, reduce mod range.
  UInt256 range = high.Sub(low).Add(UInt256(1));
  UInt256 sample(rng->Next(), rng->Next(), rng->Next(), rng->Next());
  if (range.IsZero()) {
    // Full 2^256 range: the raw sample is already uniform.
    return sample;
  }
  return low.Add(sample.Mod(range));
}

DhKeyPair DiffieHellman::GenerateKeyPair(Xoshiro256* rng) const {
  UInt256 two(2);
  UInt256 max = params_.p.Sub(UInt256(2));
  UInt256 x = RandomInRange(rng, two, max);
  UInt256 y = params_.g.ModPow(x, params_.p);
  return DhKeyPair{x, y};
}

UInt256 DiffieHellman::ComputeShared(const UInt256& private_key,
                                     const UInt256& peer_public) const {
  return peer_public.ModPow(private_key, params_.p);
}

std::array<uint8_t, 32> DiffieHellman::DeriveKey(const UInt256& shared,
                                                 std::string_view label) {
  Sha256 hasher;
  hasher.Update(label);
  Bytes bytes = shared.ToBytes();
  hasher.Update(bytes);
  Digest digest = hasher.Finish();
  std::array<uint8_t, 32> key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

}  // namespace bcfl::crypto
