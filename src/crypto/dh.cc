#include "crypto/dh.h"

namespace bcfl::crypto {

namespace {

// BCFL_CRYPTO_REFERENCE pins the schemes to the seed's
// square-and-multiply path (mirrors BCFL_KERNEL_REFERENCE in src/ml).
#if defined(BCFL_CRYPTO_REFERENCE)
constexpr bool kUseFastCrypto = false;
#else
constexpr bool kUseFastCrypto = true;
#endif

std::string LimbKey(const UInt256& v) {
  std::string key(32, '\0');
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = v.limb(i);
    for (int b = 0; b < 8; ++b) {
      key[static_cast<size_t>(i * 8 + b)] =
          static_cast<char>(limb >> (b * 8));
    }
  }
  return key;
}

}  // namespace

std::string_view CryptoActivePath() {
  return kUseFastCrypto ? "montgomery" : "reference";
}

GroupParams GroupParams::Default() {
  // p = 2^255 - 19, little-endian limbs.
  UInt256 p(0xffffffffffffffedULL, 0xffffffffffffffffULL,
            0xffffffffffffffffULL, 0x7fffffffffffffffULL);
  return GroupParams{p, UInt256(2)};
}

GroupContext::GroupContext(const GroupParams& params) : params_(params) {
  bool odd = params.p.Bit(0);
  if (odd && params.p > UInt256(1)) {
    mont_ = std::make_unique<Montgomery>(params.p);
    g_table_ = std::make_unique<FixedBaseTable>(*mont_, params.g);
  }
}

std::shared_ptr<const GroupContext> GroupContext::Get(
    const GroupParams& params) {
  // Leaked singleton registry: contexts live for the process, so raw
  // FixedBaseTable pointers handed out under shard locks stay valid.
  static std::mutex* mu = new std::mutex;
  static auto* registry =
      new std::unordered_map<std::string,
                             std::shared_ptr<const GroupContext>>;
  std::string key = LimbKey(params.p) + LimbKey(params.g);
  std::lock_guard<std::mutex> lock(*mu);
  auto& slot = (*registry)[key];
  if (slot == nullptr) {
    slot = std::shared_ptr<const GroupContext>(new GroupContext(params));
  }
  return slot;
}

UInt256 GroupContext::PowG(const UInt256& exp) const {
  if (g_table_ == nullptr) return params_.g.ModPow(exp, params_.p);
  return g_table_->Pow(exp);
}

UInt256 GroupContext::PowBase(const UInt256& base, const UInt256& exp) const {
  if (mont_ == nullptr) return base.ModPow(exp, params_.p);
  return mont_->FromMont(PowBaseMont(base, exp));
}

bool GroupContext::VerifyGsEq(const UInt256& s, const UInt256& r,
                              const UInt256& base, const UInt256& e) const {
  if (mont_ == nullptr) {
    UInt256 lhs = params_.g.ModPow(s, params_.p);
    UInt256 rhs = r.ModMul(base.ModPow(e, params_.p), params_.p);
    return lhs == rhs;
  }
  UInt256 lhs = g_table_->PowMont(s);
  UInt256 rhs = mont_->Mul(mont_->ToMont(r), PowBaseMont(base, e));
  return lhs == rhs;
}

UInt256 GroupContext::PowBaseMont(const UInt256& base,
                                  const UInt256& exp) const {
  std::string key = LimbKey(base);
  Shard& shard = shards_[base.limb(0) % kShards];
  const FixedBaseTable* table = nullptr;
  bool build = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      KeyEntry& entry = it->second;
      ++entry.uses;
      if (entry.table != nullptr) {
        table = entry.table.get();
      } else if (entry.uses >= 2) {
        // Second sighting: the base is hot enough to earn a table.
        build = true;
      }
    } else if (shard.entries.size() < kMaxKeysPerShard) {
      shard.entries[key].uses = 1;
    }
  }
  if (build) {
    // Built outside the lock (~1k multiplies); a racing thread may build
    // a duplicate, and the first install wins.
    auto built = std::make_unique<FixedBaseTable>(*mont_, base);
    std::lock_guard<std::mutex> lock(shard.mu);
    KeyEntry& entry = shard.entries[key];
    if (entry.table == nullptr) entry.table = std::move(built);
    table = entry.table.get();
  }
  // Entries are never erased, so `table` outlives the lock scope.
  if (table != nullptr) return table->PowMont(exp);
  return mont_->PowMont(mont_->ToMont(base.Mod(params_.p)), exp);
}

UInt256 RandomInRange(Xoshiro256* rng, const UInt256& low,
                      const UInt256& high) {
  // range = high - low + 1; sample 256 random bits, reduce mod range.
  UInt256 range = high.Sub(low).Add(UInt256(1));
  UInt256 sample(rng->Next(), rng->Next(), rng->Next(), rng->Next());
  if (range.IsZero()) {
    // Full 2^256 range: the raw sample is already uniform.
    return sample;
  }
  return low.Add(sample.Mod(range));
}

DiffieHellman::DiffieHellman(GroupParams params)
    : params_(params),
      ctx_(kUseFastCrypto ? GroupContext::Get(params) : nullptr) {}

DhKeyPair DiffieHellman::GenerateKeyPair(Xoshiro256* rng) const {
  UInt256 two(2);
  UInt256 max = params_.p.Sub(UInt256(2));
  UInt256 x = RandomInRange(rng, two, max);
  UInt256 y = ctx_ != nullptr ? ctx_->PowG(x)
                              : params_.g.ModPow(x, params_.p);
  return DhKeyPair{x, y};
}

UInt256 DiffieHellman::ComputeShared(const UInt256& private_key,
                                     const UInt256& peer_public) const {
  if (ctx_ != nullptr) return ctx_->PowBase(peer_public, private_key);
  return peer_public.ModPow(private_key, params_.p);
}

std::array<uint8_t, 32> DiffieHellman::DeriveKey(const UInt256& shared,
                                                 std::string_view label) {
  Sha256 hasher;
  hasher.Update(label);
  Bytes bytes = shared.ToBytes();
  hasher.Update(bytes);
  Digest digest = hasher.Finish();
  std::array<uint8_t, 32> key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

}  // namespace bcfl::crypto
