#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"

namespace bcfl::crypto {

/// One participant's share of a secret-shared value.
struct ShamirShare {
  uint64_t x;                    ///< Evaluation point (participant index, >= 1).
  std::vector<uint64_t> values;  ///< One field element per secret chunk.
};

/// Shamir secret sharing over GF(p) with p = 2^61 - 1 (Mersenne prime).
///
/// The secure-aggregation protocol (following Bonawitz et al., which the
/// paper adopts) secret-shares each owner's mask seeds so the remaining
/// owners can reconstruct the pairwise masks of a dropped participant and
/// un-stick the aggregate. Byte secrets are packed 7 bytes per field
/// element (56 bits < 61 bits), so any byte string round-trips exactly.
class ShamirSecretSharing {
 public:
  /// Field modulus, 2^61 - 1.
  static constexpr uint64_t kPrime = (1ULL << 61) - 1;
  /// Bytes packed into each field element.
  static constexpr size_t kChunkBytes = 7;

  /// Creates a (threshold, num_shares) scheme: any `threshold` shares
  /// reconstruct, fewer reveal nothing. Requires
  /// 1 <= threshold <= num_shares < kPrime.
  static Result<ShamirSecretSharing> Create(size_t threshold,
                                            size_t num_shares);

  size_t threshold() const { return threshold_; }
  size_t num_shares() const { return num_shares_; }

  /// Splits `secret` (arbitrary bytes) into `num_shares()` shares.
  std::vector<ShamirShare> Split(const Bytes& secret, Xoshiro256* rng) const;

  /// Reconstructs the secret from >= threshold() shares with distinct,
  /// valid x coordinates. `secret_size` restores the exact original
  /// length (packing pads the final chunk).
  Result<Bytes> Reconstruct(const std::vector<ShamirShare>& shares,
                            size_t secret_size) const;

  // Field helpers, exposed for tests.
  static uint64_t FieldAdd(uint64_t a, uint64_t b);
  static uint64_t FieldSub(uint64_t a, uint64_t b);
  static uint64_t FieldMul(uint64_t a, uint64_t b);
  /// Multiplicative inverse via Fermat's little theorem; a != 0.
  static uint64_t FieldInv(uint64_t a);
  static uint64_t FieldPow(uint64_t base, uint64_t exp);

 private:
  ShamirSecretSharing(size_t threshold, size_t num_shares)
      : threshold_(threshold), num_shares_(num_shares) {}

  /// Packs bytes into field elements, 7 bytes each, zero-padded.
  static std::vector<uint64_t> Pack(const Bytes& secret);
  /// Inverse of Pack.
  static Bytes Unpack(const std::vector<uint64_t>& elements, size_t size);

  size_t threshold_;
  size_t num_shares_;
};

}  // namespace bcfl::crypto
