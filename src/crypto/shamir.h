#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/dh.h"

namespace bcfl {
class ThreadPool;
}  // namespace bcfl

namespace bcfl::crypto {

/// One participant's share of a secret-shared value.
struct ShamirShare {
  uint64_t x;                    ///< Evaluation point (participant index, >= 1).
  std::vector<uint64_t> values;  ///< One field element per secret chunk.
};

/// Feldman commitment to the sharing polynomials of one Split call:
/// `rows[c][d] = g^{coeff_c[d]} mod P` for secret chunk `c` and polynomial
/// degree `d` (d = 0 commits the chunk itself). Published alongside the
/// shares, it lets any holder check its own share — and any verifier check
/// a *revealed* share — without learning the secret: the discrete logs of
/// the row entries are hidden, but `g^y == prod_d rows[c][d]^(x^d)` holds
/// exactly when `y` is the dealer's polynomial evaluated at `x`.
struct VssCommitment {
  std::vector<std::vector<UInt256>> rows;

  bool empty() const { return rows.empty(); }

  /// Canonical wire format: row/column counts then 32-byte group elements.
  Bytes Serialize() const;
  /// Rejects truncated input, ragged rows and out-of-group elements.
  static Result<VssCommitment> Deserialize(const Bytes& bytes);

  bool operator==(const VssCommitment& other) const {
    return rows == other.rows;
  }
};

/// Shamir secret sharing over GF(p) with p = 2^61 - 1 (Mersenne prime).
///
/// The secure-aggregation protocol (following Bonawitz et al., which the
/// paper adopts) secret-shares each owner's mask seeds so the remaining
/// owners can reconstruct the pairwise masks of a dropped participant and
/// un-stick the aggregate. Byte secrets are packed 7 bytes per field
/// element (56 bits < 61 bits), so any byte string round-trips exactly.
class ShamirSecretSharing {
 public:
  /// Field modulus, 2^61 - 1.
  static constexpr uint64_t kPrime = (1ULL << 61) - 1;
  /// Bytes packed into each field element.
  static constexpr size_t kChunkBytes = 7;

  /// Creates a (threshold, num_shares) scheme: any `threshold` shares
  /// reconstruct, fewer reveal nothing. Requires
  /// 1 <= threshold <= num_shares < kPrime.
  static Result<ShamirSecretSharing> Create(size_t threshold,
                                            size_t num_shares);

  size_t threshold() const { return threshold_; }
  size_t num_shares() const { return num_shares_; }

  /// Splits `secret` (arbitrary bytes) into `num_shares()` shares.
  std::vector<ShamirShare> Split(const Bytes& secret, Xoshiro256* rng) const;

  /// The Feldman commitment group: P = 52 * (2^61 - 1) + 1 (a 67-bit
  /// prime) with generator g = 2^52. Because g = 2^52 = h^52 with h = 2
  /// and g != 1, the order of g divides (P-1)/52 = 2^61 - 1 — the Shamir
  /// field modulus, itself prime — so ord(g) is *exactly* kPrime and
  /// exponent arithmetic mod kPrime agrees with group exponentiation.
  /// (The DH group 2^255 - 19 cannot be reused: its generator order is
  /// unrelated to kPrime, so polynomial identities would not transfer.)
  static GroupParams VssGroup();

  /// Split plus a Feldman commitment to every chunk polynomial. Consumes
  /// the *identical* RNG stream as Split — commitments are derived from
  /// the same coefficients, no extra randomness — so a seeded protocol
  /// run produces bit-identical shares whichever entry point it uses.
  std::vector<ShamirShare> SplitVerifiable(const Bytes& secret,
                                           Xoshiro256* rng,
                                           VssCommitment* commitment) const;

  /// True iff `share` is consistent with `commitment`: for every chunk c,
  /// g^{y_c} == prod_d rows[c][d]^{x^d} (mod P). Structural mismatches
  /// (x = 0 or out of field, value out of field, chunk-count mismatch,
  /// coefficient count != threshold()) return false rather than erroring:
  /// a malformed share is exactly as damning as a forged one. Batch path:
  /// the exponents x^d are computed once and the commitment entries go
  /// through the Montgomery GroupContext's cached fixed-base tables.
  bool VerifyShare(const ShamirShare& share,
                   const VssCommitment& commitment) const;

  /// Seed-faithful verification via plain UInt256::ModPow — the reference
  /// the Montgomery batch path is regression-tested against.
  bool VerifyShareReference(const ShamirShare& share,
                            const VssCommitment& commitment) const;

  /// Lagrange-at-zero basis for one fixed, ordered set of share
  /// x-coordinates. The basis depends only on the coordinates, not on the
  /// share values, so one basis serves every secret reconstructed from
  /// shares at those coordinates (a recovery round reveals many secrets
  /// held by the same surviving roster).
  struct LagrangeBasis {
    std::vector<uint64_t> x;       ///< Coordinates, in use order.
    std::vector<uint64_t> coeffs;  ///< l_i(0) for each x_i.
  };

  /// Validates the first threshold() entries of `shares` (non-zero,
  /// in-field, distinct x) and computes their shared Lagrange basis. All
  /// threshold() denominators are inverted with one batch inversion
  /// (Montgomery's trick): a single FieldInv instead of one 61-squaring
  /// exponentiation per coefficient.
  Result<LagrangeBasis> PrepareBasis(
      const std::vector<ShamirShare>& shares) const;

  /// Reconstructs one secret with a precomputed basis. The first
  /// threshold() shares must present exactly the basis coordinates in
  /// order, with consistent chunk counts — every holder's share is
  /// verified against the basis before any value is combined.
  Result<Bytes> ReconstructWithBasis(const LagrangeBasis& basis,
                                     const std::vector<ShamirShare>& shares,
                                     size_t secret_size) const;

  /// Reconstructs the secret from >= threshold() shares with distinct,
  /// valid x coordinates. `secret_size` restores the exact original
  /// length (packing pads the final chunk). Equivalent to PrepareBasis +
  /// ReconstructWithBasis.
  Result<Bytes> Reconstruct(const std::vector<ShamirShare>& shares,
                            size_t secret_size) const;

  /// Reconstructs `share_sets.size()` secrets in one call. The basis is
  /// computed once per *distinct* x-coordinate set (consecutive sets from
  /// the same surviving roster share it), and the per-set share
  /// verification + polynomial evaluation runs on `pool` when one is
  /// given (nullptr = serial). Outputs land in slot `k` for input `k`,
  /// so the result is bit-identical for any pool size.
  Result<std::vector<Bytes>> ReconstructBatch(
      const std::vector<std::vector<ShamirShare>>& share_sets,
      const std::vector<size_t>& secret_sizes,
      ThreadPool* pool = nullptr) const;

  /// The seed-faithful single-secret path (per-call basis, one field
  /// exponentiation per coefficient) kept verbatim as the reference the
  /// batched/basis paths are regression-tested against — mirrors the
  /// `reference::` escape hatches in the kernel and crypto layers.
  Result<Bytes> ReconstructReference(const std::vector<ShamirShare>& shares,
                                     size_t secret_size) const;

  // Field helpers, exposed for tests.
  static uint64_t FieldAdd(uint64_t a, uint64_t b);
  static uint64_t FieldSub(uint64_t a, uint64_t b);
  static uint64_t FieldMul(uint64_t a, uint64_t b);
  /// Multiplicative inverse via Fermat's little theorem; a != 0.
  static uint64_t FieldInv(uint64_t a);
  static uint64_t FieldPow(uint64_t base, uint64_t exp);

 private:
  ShamirSecretSharing(size_t threshold, size_t num_shares)
      : threshold_(threshold), num_shares_(num_shares) {}

  /// Packs bytes into field elements, 7 bytes each, zero-padded.
  static std::vector<uint64_t> Pack(const Bytes& secret);
  /// Inverse of Pack.
  static Bytes Unpack(const std::vector<uint64_t>& elements, size_t size);

  size_t threshold_;
  size_t num_shares_;
};

}  // namespace bcfl::crypto
