#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"

namespace bcfl {
class ThreadPool;
}  // namespace bcfl

namespace bcfl::crypto {

/// One participant's share of a secret-shared value.
struct ShamirShare {
  uint64_t x;                    ///< Evaluation point (participant index, >= 1).
  std::vector<uint64_t> values;  ///< One field element per secret chunk.
};

/// Shamir secret sharing over GF(p) with p = 2^61 - 1 (Mersenne prime).
///
/// The secure-aggregation protocol (following Bonawitz et al., which the
/// paper adopts) secret-shares each owner's mask seeds so the remaining
/// owners can reconstruct the pairwise masks of a dropped participant and
/// un-stick the aggregate. Byte secrets are packed 7 bytes per field
/// element (56 bits < 61 bits), so any byte string round-trips exactly.
class ShamirSecretSharing {
 public:
  /// Field modulus, 2^61 - 1.
  static constexpr uint64_t kPrime = (1ULL << 61) - 1;
  /// Bytes packed into each field element.
  static constexpr size_t kChunkBytes = 7;

  /// Creates a (threshold, num_shares) scheme: any `threshold` shares
  /// reconstruct, fewer reveal nothing. Requires
  /// 1 <= threshold <= num_shares < kPrime.
  static Result<ShamirSecretSharing> Create(size_t threshold,
                                            size_t num_shares);

  size_t threshold() const { return threshold_; }
  size_t num_shares() const { return num_shares_; }

  /// Splits `secret` (arbitrary bytes) into `num_shares()` shares.
  std::vector<ShamirShare> Split(const Bytes& secret, Xoshiro256* rng) const;

  /// Lagrange-at-zero basis for one fixed, ordered set of share
  /// x-coordinates. The basis depends only on the coordinates, not on the
  /// share values, so one basis serves every secret reconstructed from
  /// shares at those coordinates (a recovery round reveals many secrets
  /// held by the same surviving roster).
  struct LagrangeBasis {
    std::vector<uint64_t> x;       ///< Coordinates, in use order.
    std::vector<uint64_t> coeffs;  ///< l_i(0) for each x_i.
  };

  /// Validates the first threshold() entries of `shares` (non-zero,
  /// in-field, distinct x) and computes their shared Lagrange basis. All
  /// threshold() denominators are inverted with one batch inversion
  /// (Montgomery's trick): a single FieldInv instead of one 61-squaring
  /// exponentiation per coefficient.
  Result<LagrangeBasis> PrepareBasis(
      const std::vector<ShamirShare>& shares) const;

  /// Reconstructs one secret with a precomputed basis. The first
  /// threshold() shares must present exactly the basis coordinates in
  /// order, with consistent chunk counts — every holder's share is
  /// verified against the basis before any value is combined.
  Result<Bytes> ReconstructWithBasis(const LagrangeBasis& basis,
                                     const std::vector<ShamirShare>& shares,
                                     size_t secret_size) const;

  /// Reconstructs the secret from >= threshold() shares with distinct,
  /// valid x coordinates. `secret_size` restores the exact original
  /// length (packing pads the final chunk). Equivalent to PrepareBasis +
  /// ReconstructWithBasis.
  Result<Bytes> Reconstruct(const std::vector<ShamirShare>& shares,
                            size_t secret_size) const;

  /// Reconstructs `share_sets.size()` secrets in one call. The basis is
  /// computed once per *distinct* x-coordinate set (consecutive sets from
  /// the same surviving roster share it), and the per-set share
  /// verification + polynomial evaluation runs on `pool` when one is
  /// given (nullptr = serial). Outputs land in slot `k` for input `k`,
  /// so the result is bit-identical for any pool size.
  Result<std::vector<Bytes>> ReconstructBatch(
      const std::vector<std::vector<ShamirShare>>& share_sets,
      const std::vector<size_t>& secret_sizes,
      ThreadPool* pool = nullptr) const;

  /// The seed-faithful single-secret path (per-call basis, one field
  /// exponentiation per coefficient) kept verbatim as the reference the
  /// batched/basis paths are regression-tested against — mirrors the
  /// `reference::` escape hatches in the kernel and crypto layers.
  Result<Bytes> ReconstructReference(const std::vector<ShamirShare>& shares,
                                     size_t secret_size) const;

  // Field helpers, exposed for tests.
  static uint64_t FieldAdd(uint64_t a, uint64_t b);
  static uint64_t FieldSub(uint64_t a, uint64_t b);
  static uint64_t FieldMul(uint64_t a, uint64_t b);
  /// Multiplicative inverse via Fermat's little theorem; a != 0.
  static uint64_t FieldInv(uint64_t a);
  static uint64_t FieldPow(uint64_t base, uint64_t exp);

 private:
  ShamirSecretSharing(size_t threshold, size_t num_shares)
      : threshold_(threshold), num_shares_(num_shares) {}

  /// Packs bytes into field elements, 7 bytes each, zero-padded.
  static std::vector<uint64_t> Pack(const Bytes& secret);
  /// Inverse of Pack.
  static Bytes Unpack(const std::vector<uint64_t>& elements, size_t size);

  size_t threshold_;
  size_t num_shares_;
};

}  // namespace bcfl::crypto
