#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "crypto/uint256.h"

namespace bcfl::crypto {

/// Multiplicative-group parameters for discrete-log cryptography.
///
/// The default group uses p = 2^255 - 19 (a well-known 255-bit prime) with
/// generator g = 2. The paper's secure-aggregation sketch ("based on
/// discrete logarithm cryptography") only needs a commutative group where
/// g^(ab) is derivable by both endpoints; a production deployment would
/// use an RFC 3526 MODP group or an elliptic curve, which is a drop-in
/// swap behind this interface.
struct GroupParams {
  UInt256 p;  ///< Prime modulus.
  UInt256 g;  ///< Generator.

  /// p = 2^255 - 19, g = 2.
  static GroupParams Default();
};

/// Which exponentiation path the crypto schemes compiled to:
/// "montgomery" (fixed-base tables + CIOS) or "reference" (the seed's
/// square-and-multiply over restoring division, selected by the
/// BCFL_CRYPTO_REFERENCE define). Exported into bench metadata.
std::string_view CryptoActivePath();

/// Shared fast-exponentiation state for one discrete-log group: a
/// Montgomery context for p, a fixed-base comb table for the generator
/// g, and a bounded thread-safe cache of per-public-key tables.
///
/// Obtained from a process-wide registry keyed by (p, g), so every
/// by-value copy of a Schnorr or DiffieHellman scheme built from the
/// same parameters shares one context — each miner re-verifying a
/// block reuses the same g-table and the same pub^e tables.
///
/// Groups whose modulus is even or <= 1 (never the library default) get
/// no Montgomery state and fall back to UInt256::ModPow, bit-identical.
class GroupContext {
 public:
  /// Returns the shared context for `params`, creating it on first use.
  static std::shared_ptr<const GroupContext> Get(const GroupParams& params);

  /// True when the modulus admits Montgomery arithmetic (odd, > 1).
  bool fast() const { return mont_ != nullptr; }

  /// g^exp mod p via the generator's fixed-base table.
  UInt256 PowG(const UInt256& exp) const;

  /// base^exp mod p. A base seen repeatedly (a public key verified more
  /// than once) gets its own fixed-base table, built on second use;
  /// otherwise a windowed Montgomery ladder. Thread-safe.
  UInt256 PowBase(const UInt256& base, const UInt256& exp) const;

  /// Schnorr verification equation g^s == r * base^e (mod p), evaluated
  /// entirely in the Montgomery domain (equality is preserved by the
  /// domain bijection, so no final conversions are needed).
  bool VerifyGsEq(const UInt256& s, const UInt256& r, const UInt256& base,
                  const UInt256& e) const;

  const GroupParams& params() const { return params_; }

 private:
  explicit GroupContext(const GroupParams& params);

  /// base^exp in the Montgomery domain; requires fast().
  UInt256 PowBaseMont(const UInt256& base, const UInt256& exp) const;

  struct KeyEntry {
    uint32_t uses = 0;
    std::unique_ptr<FixedBaseTable> table;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, KeyEntry> entries;
  };
  static constexpr size_t kShards = 16;
  /// Caps table memory (~32 KiB each); past the cap new bases use the
  /// plain windowed ladder, which is merely slower, never wrong.
  static constexpr size_t kMaxKeysPerShard = 64;

  GroupParams params_;
  std::unique_ptr<Montgomery> mont_;
  std::unique_ptr<FixedBaseTable> g_table_;
  mutable std::array<Shard, kShards> shards_;
};

/// A Diffie–Hellman key pair: x and g^x mod p.
struct DhKeyPair {
  UInt256 private_key;
  UInt256 public_key;
};

/// Diffie–Hellman key agreement over `GroupParams`.
///
/// Every data owner broadcasts g^x to the blockchain during setup
/// (Sect. IV-A-1 of the paper); pairwise shared secrets g^(xy) then key
/// the mask PRNG in the secure-aggregation module.
class DiffieHellman {
 public:
  explicit DiffieHellman(GroupParams params = GroupParams::Default());

  const GroupParams& params() const { return params_; }

  /// Samples a private key uniformly from [2, p-2] and derives the public
  /// key. Deterministic given the RNG state, so protocol runs are
  /// reproducible.
  DhKeyPair GenerateKeyPair(Xoshiro256* rng) const;

  /// Computes the shared group element peer_public^private mod p.
  UInt256 ComputeShared(const UInt256& private_key,
                        const UInt256& peer_public) const;

  /// Derives a 32-byte symmetric key from a shared group element:
  /// SHA-256(label || shared.bytes). Distinct labels yield independent
  /// keys from the same secret.
  static std::array<uint8_t, 32> DeriveKey(const UInt256& shared,
                                           std::string_view label);

 private:
  GroupParams params_;
  std::shared_ptr<const GroupContext> ctx_;
};

/// Samples a uniformly random value in [low, high] (inclusive) using
/// rejection-free mod reduction; bias is negligible for 256-bit ranges.
UInt256 RandomInRange(Xoshiro256* rng, const UInt256& low,
                      const UInt256& high);

}  // namespace bcfl::crypto
