#pragma once

#include <array>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "crypto/uint256.h"

namespace bcfl::crypto {

/// Multiplicative-group parameters for discrete-log cryptography.
///
/// The default group uses p = 2^255 - 19 (a well-known 255-bit prime) with
/// generator g = 2. The paper's secure-aggregation sketch ("based on
/// discrete logarithm cryptography") only needs a commutative group where
/// g^(ab) is derivable by both endpoints; a production deployment would
/// use an RFC 3526 MODP group or an elliptic curve, which is a drop-in
/// swap behind this interface.
struct GroupParams {
  UInt256 p;  ///< Prime modulus.
  UInt256 g;  ///< Generator.

  /// p = 2^255 - 19, g = 2.
  static GroupParams Default();
};

/// A Diffie–Hellman key pair: x and g^x mod p.
struct DhKeyPair {
  UInt256 private_key;
  UInt256 public_key;
};

/// Diffie–Hellman key agreement over `GroupParams`.
///
/// Every data owner broadcasts g^x to the blockchain during setup
/// (Sect. IV-A-1 of the paper); pairwise shared secrets g^(xy) then key
/// the mask PRNG in the secure-aggregation module.
class DiffieHellman {
 public:
  explicit DiffieHellman(GroupParams params = GroupParams::Default())
      : params_(params) {}

  const GroupParams& params() const { return params_; }

  /// Samples a private key uniformly from [2, p-2] and derives the public
  /// key. Deterministic given the RNG state, so protocol runs are
  /// reproducible.
  DhKeyPair GenerateKeyPair(Xoshiro256* rng) const;

  /// Computes the shared group element peer_public^private mod p.
  UInt256 ComputeShared(const UInt256& private_key,
                        const UInt256& peer_public) const;

  /// Derives a 32-byte symmetric key from a shared group element:
  /// SHA-256(label || shared.bytes). Distinct labels yield independent
  /// keys from the same secret.
  static std::array<uint8_t, 32> DeriveKey(const UInt256& shared,
                                           std::string_view label);

 private:
  GroupParams params_;
};

/// Samples a uniformly random value in [low, high] (inclusive) using
/// rejection-free mod reduction; bias is negligible for 256-bit ranges.
UInt256 RandomInRange(Xoshiro256* rng, const UInt256& low,
                      const UInt256& high);

}  // namespace bcfl::crypto
