#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace bcfl::crypto {

/// HMAC-SHA256 (RFC 2104).
///
/// Used for key derivation (HKDF-style expand below) and as a keyed MAC
/// in tests/examples. Verified against RFC 4231 test vectors.
Digest HmacSha256(const Bytes& key, const Bytes& message);
Digest HmacSha256(const Bytes& key, std::string_view message);

/// Minimal HKDF-SHA256 expand step (RFC 5869): derives `length` bytes of
/// keying material from a pseudorandom key and an info label. The library
/// uses it to derive independent mask/cipher keys from a Diffie–Hellman
/// shared secret.
Bytes HkdfExpand(const Bytes& prk, std::string_view info, size_t length);

/// Full HKDF (extract + expand) with optional salt.
Bytes Hkdf(const Bytes& input_key, const Bytes& salt, std::string_view info,
           size_t length);

}  // namespace bcfl::crypto
