#include "crypto/hmac.h"

#include <cstring>

namespace bcfl::crypto {

namespace {

constexpr size_t kBlockSize = 64;

Digest HmacSha256Raw(const Bytes& key, const uint8_t* msg, size_t msg_len) {
  // Keys longer than the block size are hashed first (RFC 2104).
  uint8_t key_block[kBlockSize] = {0};
  if (key.size() > kBlockSize) {
    Digest hashed = Sha256::Hash(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[kBlockSize], opad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kBlockSize);
  inner.Update(msg, msg_len);
  Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kBlockSize);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

}  // namespace

Digest HmacSha256(const Bytes& key, const Bytes& message) {
  return HmacSha256Raw(key, message.data(), message.size());
}

Digest HmacSha256(const Bytes& key, std::string_view message) {
  return HmacSha256Raw(key, reinterpret_cast<const uint8_t*>(message.data()),
                       message.size());
}

Bytes HkdfExpand(const Bytes& prk, std::string_view info, size_t length) {
  Bytes out;
  out.reserve(length);
  Bytes previous;
  uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = previous;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    Digest t = HmacSha256(prk, block);
    previous.assign(t.begin(), t.end());
    size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

Bytes Hkdf(const Bytes& input_key, const Bytes& salt, std::string_view info,
           size_t length) {
  Digest prk = HmacSha256(salt, input_key);
  return HkdfExpand(DigestToBytes(prk), info, length);
}

}  // namespace bcfl::crypto
