#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace bcfl::crypto {

/// Fixed-width 256-bit unsigned integer with the modular arithmetic needed
/// for discrete-log cryptography (Diffie–Hellman key agreement and
/// Schnorr-style signatures).
///
/// Representation: four 64-bit limbs, least-significant first. All
/// arithmetic is constant-width; multiplication produces an internal
/// 512-bit product which is reduced by restoring binary division. This is
/// not a constant-time implementation — the library is a protocol
/// simulator, not a hardened crypto library, and DESIGN.md documents the
/// substitution.
class UInt256 {
 public:
  /// Zero.
  constexpr UInt256() : limbs_{0, 0, 0, 0} {}
  /// Value of a single 64-bit integer.
  constexpr explicit UInt256(uint64_t v) : limbs_{v, 0, 0, 0} {}
  /// From explicit limbs, least-significant first.
  constexpr UInt256(uint64_t l0, uint64_t l1, uint64_t l2, uint64_t l3)
      : limbs_{l0, l1, l2, l3} {}

  /// Parses big-endian hex (no 0x prefix, up to 64 digits).
  static Result<UInt256> FromHex(std::string_view hex);
  /// Big-endian hex, zero-padded to 64 digits.
  std::string ToHex() const;

  /// Parses exactly 32 big-endian bytes.
  static Result<UInt256> FromBytes(const Bytes& bytes);
  /// 32 big-endian bytes.
  Bytes ToBytes() const;

  bool IsZero() const;
  /// Index of the highest set bit, or -1 when zero.
  int BitLength() const;
  /// Value of bit `i` (0 = least significant).
  bool Bit(int i) const;

  uint64_t limb(int i) const { return limbs_[i]; }

  /// Truncates to the low 64 bits.
  uint64_t ToU64() const { return limbs_[0]; }

  // -- comparison ---------------------------------------------------------
  int Compare(const UInt256& other) const;
  bool operator==(const UInt256& o) const { return Compare(o) == 0; }
  bool operator!=(const UInt256& o) const { return Compare(o) != 0; }
  bool operator<(const UInt256& o) const { return Compare(o) < 0; }
  bool operator<=(const UInt256& o) const { return Compare(o) <= 0; }
  bool operator>(const UInt256& o) const { return Compare(o) > 0; }
  bool operator>=(const UInt256& o) const { return Compare(o) >= 0; }

  // -- plain width-preserving arithmetic ----------------------------------
  /// this + other; carry out returned via `carry` when non-null.
  UInt256 Add(const UInt256& other, bool* carry = nullptr) const;
  /// this - other; borrow out returned via `borrow` when non-null.
  UInt256 Sub(const UInt256& other, bool* borrow = nullptr) const;
  /// Left shift by one bit; returns the bit shifted out.
  bool ShiftLeft1();

  // -- modular arithmetic (all require operands already < modulus) --------
  /// (this + other) mod m.
  UInt256 ModAdd(const UInt256& other, const UInt256& m) const;
  /// (this - other) mod m.
  UInt256 ModSub(const UInt256& other, const UInt256& m) const;
  /// (this * other) mod m via 512-bit product + restoring division.
  UInt256 ModMul(const UInt256& other, const UInt256& m) const;
  /// this^exponent mod m by square-and-multiply. m must be > 1.
  UInt256 ModPow(const UInt256& exponent, const UInt256& m) const;
  /// this mod m for arbitrary `this`.
  UInt256 Mod(const UInt256& m) const;

 private:
  std::array<uint64_t, 4> limbs_;
};

/// Reduces a 512-bit value (8 limbs, little-endian) modulo `m` (> 0).
UInt256 Reduce512(const std::array<uint64_t, 8>& value, const UInt256& m);

/// Full 256x256 -> 512-bit product (schoolbook).
std::array<uint64_t, 8> MulWide(const UInt256& a, const UInt256& b);

/// Montgomery-form modular arithmetic for an odd modulus m > 1.
///
/// Replaces the seed's restoring-division reduction (512 shift/subtract
/// iterations per ModMul) with word-level CIOS multiplication: a 256-bit
/// modular multiply costs 16 64x64->128 products instead of a 512-step
/// bit loop, and exponentiation uses a 4-bit fixed window. All results
/// are exact modular values, so every caller is bit-identical to the
/// ModPow/ModMul path it replaces; UInt256::ModPow itself stays as the
/// seed-faithful reference (and the BCFL_CRYPTO_REFERENCE build keeps
/// routing the crypto schemes through it).
class Montgomery {
 public:
  /// `modulus` must be odd and > 1 (checked by assertion in debug).
  explicit Montgomery(const UInt256& modulus);

  const UInt256& modulus() const { return m_; }

  /// Maps x (< 2^256, any value) into the Montgomery domain: x*R mod m.
  UInt256 ToMont(const UInt256& x) const;
  /// Maps a Montgomery-domain value back: a*R^-1 mod m.
  UInt256 FromMont(const UInt256& a) const;
  /// Product of two Montgomery-domain values (CIOS), result in domain.
  UInt256 Mul(const UInt256& a, const UInt256& b) const;
  /// base^exp where `base_mont` and the result are in the Montgomery
  /// domain; 4-bit windowed left-to-right ladder.
  UInt256 PowMont(const UInt256& base_mont, const UInt256& exp) const;
  /// base^exp mod m, plain-domain in and out.
  UInt256 ModExp(const UInt256& base, const UInt256& exp) const;

  /// 1 in the Montgomery domain (R mod m).
  const UInt256& OneMont() const { return r_mod_; }

 private:
  UInt256 m_;       ///< The odd modulus.
  UInt256 r_mod_;   ///< R = 2^256 mod m.
  UInt256 r2_;      ///< R^2 mod m (for ToMont).
  uint64_t n0inv_;  ///< -m^-1 mod 2^64.
};

/// Precomputed fixed-base exponentiation table: for a fixed base b and
/// odd modulus m, stores b^(j * 16^i) for every 4-bit exponent digit
/// position i and digit value j, all in Montgomery form. b^e then costs
/// at most 63 Montgomery multiplications and zero squarings — the shape
/// of the Schnorr/DH hot loop, where the group generator g (and each
/// repeatedly-seen public key) is raised to many different exponents.
class FixedBaseTable {
 public:
  /// `base` is a plain-domain value (reduced mod ctx.modulus() first).
  FixedBaseTable(const Montgomery& ctx, const UInt256& base);

  /// base^exp in the Montgomery domain.
  UInt256 PowMont(const UInt256& exp) const;
  /// base^exp mod m, plain domain.
  UInt256 Pow(const UInt256& exp) const;

  const Montgomery& ctx() const { return ctx_; }

 private:
  static constexpr int kDigits = 64;   ///< 256 bits / 4-bit digits.
  static constexpr int kRadix = 16;

  Montgomery ctx_;  ///< Copied: the table must outlive any borrowed ctx.
  std::vector<UInt256> table_;  ///< table_[i*16+j] = base^(j*16^i), mont.
};

}  // namespace bcfl::crypto
