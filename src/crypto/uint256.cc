#include "crypto/uint256.h"

#include <algorithm>
#include <bit>

namespace bcfl::crypto {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

Result<UInt256> UInt256::FromHex(std::string_view hex) {
  if (hex.empty() || hex.size() > 64) {
    return Status::InvalidArgument("hex must be 1..64 digits");
  }
  UInt256 out;
  for (char c : hex) {
    int v = HexValue(c);
    if (v < 0) return Status::InvalidArgument("non-hex character");
    // out = out * 16 + v, via four single-bit shifts.
    for (int i = 0; i < 4; ++i) {
      if (out.ShiftLeft1()) {
        return Status::OutOfRange("hex value exceeds 256 bits");
      }
    }
    out.limbs_[0] |= static_cast<uint64_t>(v);
  }
  return out;
}

std::string UInt256::ToHex() const {
  std::string out(64, '0');
  for (int i = 0; i < 64; ++i) {
    // Nibble i counted from the most-significant end.
    int limb_index = 3 - i / 16;
    int shift = (15 - i % 16) * 4;
    out[i] = kHexDigits[(limbs_[limb_index] >> shift) & 0xf];
  }
  return out;
}

Result<UInt256> UInt256::FromBytes(const Bytes& bytes) {
  if (bytes.size() != 32) {
    return Status::InvalidArgument("UInt256 requires exactly 32 bytes");
  }
  UInt256 out;
  for (int i = 0; i < 32; ++i) {
    // bytes[0] is the most significant byte.
    int limb_index = 3 - i / 8;
    int shift = (7 - i % 8) * 8;
    out.limbs_[limb_index] |= static_cast<uint64_t>(bytes[i]) << shift;
  }
  return out;
}

Bytes UInt256::ToBytes() const {
  Bytes out(32);
  for (int i = 0; i < 32; ++i) {
    int limb_index = 3 - i / 8;
    int shift = (7 - i % 8) * 8;
    out[i] = static_cast<uint8_t>(limbs_[limb_index] >> shift);
  }
  return out;
}

bool UInt256::IsZero() const {
  return limbs_[0] == 0 && limbs_[1] == 0 && limbs_[2] == 0 && limbs_[3] == 0;
}

int UInt256::BitLength() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != 0) {
      return 64 * i + (64 - std::countl_zero(limbs_[i]));
    }
  }
  return 0;
}

bool UInt256::Bit(int i) const {
  return (limbs_[i / 64] >> (i % 64)) & 1;
}

int UInt256::Compare(const UInt256& other) const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] < other.limbs_[i]) return -1;
    if (limbs_[i] > other.limbs_[i]) return 1;
  }
  return 0;
}

UInt256 UInt256::Add(const UInt256& other, bool* carry_out) const {
  UInt256 out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 sum = static_cast<unsigned __int128>(limbs_[i]) +
                            other.limbs_[i] + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry_out != nullptr) *carry_out = carry != 0;
  return out;
}

UInt256 UInt256::Sub(const UInt256& other, bool* borrow_out) const {
  UInt256 out;
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t a = limbs_[i];
    uint64_t b = other.limbs_[i];
    uint64_t d1 = a - b;
    uint64_t borrow1 = a < b ? 1 : 0;
    uint64_t d2 = d1 - borrow;
    uint64_t borrow2 = d1 < borrow ? 1 : 0;
    out.limbs_[i] = d2;
    borrow = borrow1 | borrow2;
  }
  if (borrow_out != nullptr) *borrow_out = borrow != 0;
  return out;
}

bool UInt256::ShiftLeft1() {
  bool carry = (limbs_[3] >> 63) & 1;
  for (int i = 3; i > 0; --i) {
    limbs_[i] = (limbs_[i] << 1) | (limbs_[i - 1] >> 63);
  }
  limbs_[0] <<= 1;
  return carry;
}

UInt256 UInt256::ModAdd(const UInt256& other, const UInt256& m) const {
  bool carry = false;
  UInt256 sum = Add(other, &carry);
  // sum may exceed m (or have overflowed 2^256); one subtraction suffices
  // because both operands are < m <= 2^256.
  if (carry || sum >= m) {
    sum = sum.Sub(m);
  }
  return sum;
}

UInt256 UInt256::ModSub(const UInt256& other, const UInt256& m) const {
  bool borrow = false;
  UInt256 diff = Sub(other, &borrow);
  if (borrow) diff = diff.Add(m);
  return diff;
}

std::array<uint64_t, 8> MulWide(const UInt256& a, const UInt256& b) {
  std::array<uint64_t, 8> out{};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.limb(i)) *
                                  b.limb(j) +
                              out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    out[i + 4] = static_cast<uint64_t>(carry);
  }
  return out;
}

UInt256 Reduce512(const std::array<uint64_t, 8>& value, const UInt256& m) {
  // Restoring binary long division: scan the 512 bits from the most
  // significant down, maintaining remainder r < m. After the shift-in,
  // r < 2m <= 2^257, so we track one overflow bit explicitly.
  UInt256 r;
  for (int bit = 511; bit >= 0; --bit) {
    bool overflow = r.ShiftLeft1();
    if ((value[bit / 64] >> (bit % 64)) & 1) {
      bool carry = false;
      r = r.Add(UInt256(1), &carry);
      overflow = overflow || carry;
    }
    if (overflow || r >= m) {
      // r = (overflow * 2^256 + r) - m; the borrow is absorbed by the
      // overflow bit when present.
      r = r.Sub(m);
    }
  }
  return r;
}

UInt256 UInt256::ModMul(const UInt256& other, const UInt256& m) const {
  return Reduce512(MulWide(*this, other), m);
}

UInt256 UInt256::Mod(const UInt256& m) const {
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 4; ++i) wide[i] = limbs_[i];
  return Reduce512(wide, m);
}

UInt256 UInt256::ModPow(const UInt256& exponent, const UInt256& m) const {
  UInt256 result(1);
  result = result.Mod(m);  // Handles m == 1.
  UInt256 base = Mod(m);
  int bits = exponent.BitLength();
  // Left-to-right square-and-multiply.
  for (int i = bits - 1; i >= 0; --i) {
    result = result.ModMul(result, m);
    if (exponent.Bit(i)) {
      result = result.ModMul(base, m);
    }
  }
  return result;
}

}  // namespace bcfl::crypto
