#include "crypto/uint256.h"

#include <algorithm>
#include <bit>

namespace bcfl::crypto {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

Result<UInt256> UInt256::FromHex(std::string_view hex) {
  if (hex.empty() || hex.size() > 64) {
    return Status::InvalidArgument("hex must be 1..64 digits");
  }
  UInt256 out;
  for (char c : hex) {
    int v = HexValue(c);
    if (v < 0) return Status::InvalidArgument("non-hex character");
    // out = out * 16 + v, via four single-bit shifts.
    for (int i = 0; i < 4; ++i) {
      if (out.ShiftLeft1()) {
        return Status::OutOfRange("hex value exceeds 256 bits");
      }
    }
    out.limbs_[0] |= static_cast<uint64_t>(v);
  }
  return out;
}

std::string UInt256::ToHex() const {
  std::string out(64, '0');
  for (int i = 0; i < 64; ++i) {
    // Nibble i counted from the most-significant end.
    int limb_index = 3 - i / 16;
    int shift = (15 - i % 16) * 4;
    out[i] = kHexDigits[(limbs_[limb_index] >> shift) & 0xf];
  }
  return out;
}

Result<UInt256> UInt256::FromBytes(const Bytes& bytes) {
  if (bytes.size() != 32) {
    return Status::InvalidArgument("UInt256 requires exactly 32 bytes");
  }
  UInt256 out;
  for (int i = 0; i < 32; ++i) {
    // bytes[0] is the most significant byte.
    int limb_index = 3 - i / 8;
    int shift = (7 - i % 8) * 8;
    out.limbs_[limb_index] |= static_cast<uint64_t>(bytes[i]) << shift;
  }
  return out;
}

Bytes UInt256::ToBytes() const {
  Bytes out(32);
  for (int i = 0; i < 32; ++i) {
    int limb_index = 3 - i / 8;
    int shift = (7 - i % 8) * 8;
    out[i] = static_cast<uint8_t>(limbs_[limb_index] >> shift);
  }
  return out;
}

bool UInt256::IsZero() const {
  return limbs_[0] == 0 && limbs_[1] == 0 && limbs_[2] == 0 && limbs_[3] == 0;
}

int UInt256::BitLength() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != 0) {
      return 64 * i + (64 - std::countl_zero(limbs_[i]));
    }
  }
  return 0;
}

bool UInt256::Bit(int i) const {
  return (limbs_[i / 64] >> (i % 64)) & 1;
}

int UInt256::Compare(const UInt256& other) const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] < other.limbs_[i]) return -1;
    if (limbs_[i] > other.limbs_[i]) return 1;
  }
  return 0;
}

UInt256 UInt256::Add(const UInt256& other, bool* carry_out) const {
  UInt256 out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 sum = static_cast<unsigned __int128>(limbs_[i]) +
                            other.limbs_[i] + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry_out != nullptr) *carry_out = carry != 0;
  return out;
}

UInt256 UInt256::Sub(const UInt256& other, bool* borrow_out) const {
  UInt256 out;
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t a = limbs_[i];
    uint64_t b = other.limbs_[i];
    uint64_t d1 = a - b;
    uint64_t borrow1 = a < b ? 1 : 0;
    uint64_t d2 = d1 - borrow;
    uint64_t borrow2 = d1 < borrow ? 1 : 0;
    out.limbs_[i] = d2;
    borrow = borrow1 | borrow2;
  }
  if (borrow_out != nullptr) *borrow_out = borrow != 0;
  return out;
}

bool UInt256::ShiftLeft1() {
  bool carry = (limbs_[3] >> 63) & 1;
  for (int i = 3; i > 0; --i) {
    limbs_[i] = (limbs_[i] << 1) | (limbs_[i - 1] >> 63);
  }
  limbs_[0] <<= 1;
  return carry;
}

UInt256 UInt256::ModAdd(const UInt256& other, const UInt256& m) const {
  bool carry = false;
  UInt256 sum = Add(other, &carry);
  // sum may exceed m (or have overflowed 2^256); one subtraction suffices
  // because both operands are < m <= 2^256.
  if (carry || sum >= m) {
    sum = sum.Sub(m);
  }
  return sum;
}

UInt256 UInt256::ModSub(const UInt256& other, const UInt256& m) const {
  bool borrow = false;
  UInt256 diff = Sub(other, &borrow);
  if (borrow) diff = diff.Add(m);
  return diff;
}

std::array<uint64_t, 8> MulWide(const UInt256& a, const UInt256& b) {
  std::array<uint64_t, 8> out{};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.limb(i)) *
                                  b.limb(j) +
                              out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    out[i + 4] = static_cast<uint64_t>(carry);
  }
  return out;
}

UInt256 Reduce512(const std::array<uint64_t, 8>& value, const UInt256& m) {
  // Restoring binary long division: scan the 512 bits from the most
  // significant down, maintaining remainder r < m. After the shift-in,
  // r < 2m <= 2^257, so we track one overflow bit explicitly.
  UInt256 r;
  for (int bit = 511; bit >= 0; --bit) {
    bool overflow = r.ShiftLeft1();
    if ((value[bit / 64] >> (bit % 64)) & 1) {
      bool carry = false;
      r = r.Add(UInt256(1), &carry);
      overflow = overflow || carry;
    }
    if (overflow || r >= m) {
      // r = (overflow * 2^256 + r) - m; the borrow is absorbed by the
      // overflow bit when present.
      r = r.Sub(m);
    }
  }
  return r;
}

UInt256 UInt256::ModMul(const UInt256& other, const UInt256& m) const {
  return Reduce512(MulWide(*this, other), m);
}

UInt256 UInt256::Mod(const UInt256& m) const {
  if (Compare(m) < 0) return *this;
  if (m.IsZero()) {
    // Degenerate input; preserve the wide-path behaviour exactly.
    std::array<uint64_t, 8> wide{};
    for (int i = 0; i < 4; ++i) wide[i] = limbs_[i];
    return Reduce512(wide, m);
  }
  // Shift-subtract over just the significant bits: align m's top bit
  // with ours and walk down. At most BitLength()-m.BitLength()+1 steps
  // instead of the fixed 512-iteration wide reduction — the common
  // caller reduces a 256-bit hash mod a 255-bit group order, which is
  // two steps.
  int shift = BitLength() - m.BitLength();
  UInt256 r = *this;
  UInt256 d = m;
  // m << shift fits: its bit length becomes exactly ours.
  for (int i = 0; i < shift; ++i) d.ShiftLeft1();
  for (int i = 0; i <= shift; ++i) {
    if (r >= d) r = r.Sub(d);
    for (int j = 0; j < 3; ++j) {
      d.limbs_[j] = (d.limbs_[j] >> 1) | (d.limbs_[j + 1] << 63);
    }
    d.limbs_[3] >>= 1;
  }
  return r;
}

UInt256 UInt256::ModPow(const UInt256& exponent, const UInt256& m) const {
  UInt256 result(1);
  result = result.Mod(m);  // Handles m == 1.
  UInt256 base = Mod(m);
  int bits = exponent.BitLength();
  // Left-to-right square-and-multiply.
  for (int i = bits - 1; i >= 0; --i) {
    result = result.ModMul(result, m);
    if (exponent.Bit(i)) {
      result = result.ModMul(base, m);
    }
  }
  return result;
}

// -- Montgomery ------------------------------------------------------------

namespace {

// -m^-1 mod 2^64 for odd m, by Newton iteration on the 2-adic inverse:
// each step doubles the number of correct low bits.
uint64_t NegInv64(uint64_t m) {
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - m * inv;
  }
  return ~inv + 1;  // -inv mod 2^64.
}

}  // namespace

Montgomery::Montgomery(const UInt256& modulus) : m_(modulus) {
  // The class is only meaningful for odd moduli > 1; the library routes
  // even-modulus arithmetic (exponent math mod p-1) through the plain
  // ModMul/ModAdd path.
  n0inv_ = NegInv64(m_.limb(0));
  // R mod m via one restoring-division reduction of 2^256.
  std::array<uint64_t, 8> r_wide{};
  r_wide[4] = 1;
  r_mod_ = Reduce512(r_wide, m_);
  // R^2 mod m; a one-time cost per context, so the slow path is fine.
  r2_ = r_mod_.ModMul(r_mod_, m_);
}

UInt256 Montgomery::Mul(const UInt256& a, const UInt256& b) const {
  // CIOS (coarsely integrated operand scanning): interleave the partial
  // product a*b[i] with the Montgomery reduction step that cancels the
  // lowest limb. Accumulator t has 4 limbs plus a two-limb overflow
  // (t4, t5); t5 never exceeds 1.
  uint64_t t[4] = {0, 0, 0, 0};
  uint64_t t4 = 0, t5 = 0;
  for (int i = 0; i < 4; ++i) {
    // t += a * b[i]
    unsigned __int128 carry = 0;
    uint64_t bi = b.limb(i);
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a.limb(j)) * bi + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    unsigned __int128 s =
        static_cast<unsigned __int128>(t4) + static_cast<uint64_t>(carry);
    t4 = static_cast<uint64_t>(s);
    t5 += static_cast<uint64_t>(s >> 64);

    // u = t[0] * n0inv mod 2^64; t += u*m, then shift right one limb.
    uint64_t u = t[0] * n0inv_;
    carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(u) * m_.limb(j) + t[j] + carry;
      if (j > 0) t[j - 1] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    s = static_cast<unsigned __int128>(t4) + static_cast<uint64_t>(carry);
    t[3] = static_cast<uint64_t>(s);
    t4 = t5 + static_cast<uint64_t>(s >> 64);
    t5 = 0;
  }
  UInt256 out(t[0], t[1], t[2], t[3]);
  // Result < 2m; one conditional subtraction normalises to [0, m).
  if (t4 != 0 || out >= m_) out = out.Sub(m_);
  return out;
}

UInt256 Montgomery::ToMont(const UInt256& x) const {
  return Mul(x, r2_);
}

UInt256 Montgomery::FromMont(const UInt256& a) const {
  return Mul(a, UInt256(1));
}

UInt256 Montgomery::PowMont(const UInt256& base_mont, const UInt256& exp) const {
  int bits = exp.BitLength();
  if (bits == 0) return r_mod_;
  // Precompute base^0..base^15 (Montgomery domain), then consume the
  // exponent four bits at a time, most significant digit first.
  UInt256 window[16];
  window[0] = r_mod_;
  window[1] = base_mont;
  for (int i = 2; i < 16; ++i) window[i] = Mul(window[i - 1], base_mont);

  int top_digit = (bits - 1) / 4;
  auto digit_at = [&exp](int d) -> uint64_t {
    return (exp.limb(d / 16) >> ((d % 16) * 4)) & 0xf;
  };
  UInt256 acc = window[digit_at(top_digit)];
  for (int d = top_digit - 1; d >= 0; --d) {
    acc = Mul(acc, acc);
    acc = Mul(acc, acc);
    acc = Mul(acc, acc);
    acc = Mul(acc, acc);
    uint64_t digit = digit_at(d);
    if (digit != 0) acc = Mul(acc, window[digit]);
  }
  return acc;
}

UInt256 Montgomery::ModExp(const UInt256& base, const UInt256& exp) const {
  return FromMont(PowMont(ToMont(base), exp));
}

// -- FixedBaseTable --------------------------------------------------------

FixedBaseTable::FixedBaseTable(const Montgomery& ctx, const UInt256& base)
    : ctx_(ctx), table_(kDigits * kRadix) {
  // Row i holds base^(j * 16^i) for j in 0..15. Row 0 is the plain
  // window; each later row is the previous row raised to the 16th power
  // (computed once for j=1, then extended by multiplication).
  UInt256 b = ctx_.ToMont(base.Mod(ctx_.modulus()));
  for (int i = 0; i < kDigits; ++i) {
    UInt256* row = &table_[static_cast<size_t>(i) * kRadix];
    row[0] = ctx_.OneMont();
    row[1] = b;
    for (int j = 2; j < kRadix; ++j) row[j] = ctx_.Mul(row[j - 1], b);
    if (i + 1 < kDigits) {
      // b <- b^16 = (row base for the next digit position).
      UInt256 next = ctx_.Mul(row[kRadix - 1], b);  // b^16.
      b = next;
    }
  }
}

UInt256 FixedBaseTable::PowMont(const UInt256& exp) const {
  // Product over digit positions: base^e = prod_i base^(d_i * 16^i).
  // No squarings at all — at most 63 multiplications for a 256-bit
  // exponent, and positions with digit 0 are skipped.
  UInt256 acc = ctx_.OneMont();
  for (int d = 0; d < kDigits; ++d) {
    uint64_t digit = (exp.limb(d / 16) >> ((d % 16) * 4)) & 0xf;
    if (digit != 0) {
      acc = ctx_.Mul(acc, table_[static_cast<size_t>(d) * kRadix + digit]);
    }
  }
  return acc;
}

UInt256 FixedBaseTable::Pow(const UInt256& exp) const {
  return ctx_.FromMont(PowMont(exp));
}

}  // namespace bcfl::crypto
