#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace bcfl::crypto {

/// ChaCha20 stream cipher / deterministic random byte generator
/// (RFC 8439 block function).
///
/// In this library ChaCha20 is the `PRNG(key, round)` of the paper's
/// secure-aggregation sketch: pairwise Diffie–Hellman secrets key the
/// cipher, the FL round number selects the nonce, and the keystream
/// becomes the additive mask over the fixed-point ring.
class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;

  /// Initialises the cipher with a 256-bit key and a 96-bit nonce,
  /// starting at block `counter`.
  ChaCha20(const std::array<uint8_t, kKeySize>& key,
           const std::array<uint8_t, kNonceSize>& nonce,
           uint32_t counter = 0);

  /// Fills `out[0..size)` with keystream bytes.
  void Keystream(uint8_t* out, size_t size);
  Bytes Keystream(size_t size);

  /// Fills `out[0..64*num_blocks)` with keystream. Byte-for-byte
  /// equivalent to `Keystream(out, 64 * num_blocks)`, but whole blocks
  /// are generated straight into `out` with a lane-interleaved batch of
  /// the RFC 8439 block function (4 counters per pass, 8 with AVX2)
  /// instead of one 64-byte block at a time. This is the fast path
  /// behind mask expansion, where each pairwise mask consumes thousands
  /// of blocks.
  void FillBlocks(uint8_t* out, size_t num_blocks);

  /// XORs `size` bytes of keystream into `data` (encrypt == decrypt).
  void Crypt(uint8_t* data, size_t size);

  /// Next 64 bits of keystream interpreted little-endian — the generator
  /// behind mask sampling.
  uint64_t NextU64();

 private:
  void RefillBlock();

  std::array<uint32_t, 16> state_;
  std::array<uint8_t, 64> block_;
  size_t block_offset_;
};

/// Convenience: a seedable uint64 stream from a 32-byte key + 64-bit
/// stream id. Deterministic across platforms.
class ChaChaRng {
 public:
  ChaChaRng(const std::array<uint8_t, ChaCha20::kKeySize>& key,
            uint64_t stream_id);

  uint64_t NextU64();
  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  ChaCha20 cipher_;
};

}  // namespace bcfl::crypto
