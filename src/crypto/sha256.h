#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace bcfl::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4).
///
/// Implemented from scratch; verified in tests against the standard NIST
/// vectors ("abc", empty string, million 'a's, ...). Used for block and
/// transaction hashing, Merkle trees, key derivation and the Schnorr
/// challenge hash.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `size` bytes.
  void Update(const uint8_t* data, size_t size);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  /// Finishes the hash and returns the digest. The object must not be
  /// updated afterwards; call Reset() to reuse it.
  Digest Finish();

  /// Restores the initial state.
  void Reset();

  /// One-shot convenience.
  static Digest Hash(const uint8_t* data, size_t size);
  static Digest Hash(const Bytes& data);
  static Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint8_t buffer_[64];
  size_t buffer_len_;
  uint64_t total_len_;
};

/// Lowercase hex encoding of a digest.
std::string DigestToHex(const Digest& digest);

/// Converts a digest to a Bytes vector.
Bytes DigestToBytes(const Digest& digest);

/// Hashes `count` equal-length messages in one call: out[i] =
/// SHA-256(msgs[i], len). Dispatches at runtime to an 8-way interleaved
/// AVX2 compression (eight independent messages per vector register,
/// one 32-bit lane each) with a scalar tail/fallback. Lane order never
/// affects results — each digest is the standard one-message SHA-256,
/// bit-identical to Sha256::Hash.
///
/// Merkle levels (33-byte leaf / 65-byte node preimages) and batch
/// transaction hashing are the intended callers.
void Sha256Batch(const uint8_t* const* msgs, size_t len, size_t count,
                 Digest* out);

/// Which implementation Sha256Batch dispatches to on this machine:
/// "avx2x8" or "scalar".
std::string_view Sha256BatchActivePath();

}  // namespace bcfl::crypto
