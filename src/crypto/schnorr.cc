#include "crypto/schnorr.h"

namespace bcfl::crypto {

namespace {

#if defined(BCFL_CRYPTO_REFERENCE)
constexpr bool kUseFastCrypto = false;
#else
constexpr bool kUseFastCrypto = true;
#endif

}  // namespace

Bytes SchnorrSignature::ToBytes() const {
  Bytes out = r.ToBytes();
  Bytes s_bytes = s.ToBytes();
  out.insert(out.end(), s_bytes.begin(), s_bytes.end());
  return out;
}

Result<SchnorrSignature> SchnorrSignature::FromBytes(const Bytes& bytes) {
  if (bytes.size() != 64) {
    return Status::InvalidArgument("Schnorr signature must be 64 bytes");
  }
  Bytes r_bytes(bytes.begin(), bytes.begin() + 32);
  Bytes s_bytes(bytes.begin() + 32, bytes.end());
  BCFL_ASSIGN_OR_RETURN(UInt256 r, UInt256::FromBytes(r_bytes));
  BCFL_ASSIGN_OR_RETURN(UInt256 s, UInt256::FromBytes(s_bytes));
  return SchnorrSignature{r, s};
}

Schnorr::Schnorr(GroupParams params)
    : params_(params),
      order_(params.p.Sub(UInt256(1))),
      ctx_(kUseFastCrypto ? GroupContext::Get(params) : nullptr) {}

SchnorrKeyPair Schnorr::GenerateKeyPair(Xoshiro256* rng) const {
  UInt256 x = RandomInRange(rng, UInt256(2), params_.p.Sub(UInt256(2)));
  UInt256 y = ctx_ != nullptr ? ctx_->PowG(x)
                              : params_.g.ModPow(x, params_.p);
  return SchnorrKeyPair{x, y};
}

UInt256 Schnorr::Challenge(const UInt256& r, const UInt256& public_key,
                           const Bytes& message) const {
  Sha256 hasher;
  hasher.Update(r.ToBytes());
  hasher.Update(public_key.ToBytes());
  hasher.Update(message);
  Digest digest = hasher.Finish();
  Bytes digest_bytes(digest.begin(), digest.end());
  // FromBytes cannot fail on a 32-byte input.
  UInt256 e = UInt256::FromBytes(digest_bytes).value();
  return e.Mod(order_);
}

SchnorrSignature Schnorr::Sign(const SchnorrKeyPair& key,
                               const Bytes& message, Xoshiro256* rng) const {
  UInt256 k = RandomInRange(rng, UInt256(2), params_.p.Sub(UInt256(2)));
  UInt256 r = ctx_ != nullptr ? ctx_->PowG(k)
                              : params_.g.ModPow(k, params_.p);
  UInt256 e = Challenge(r, key.public_key, message);
  // s = k + e*x mod (p-1).
  UInt256 ex = e.ModMul(key.private_key.Mod(order_), order_);
  UInt256 s = k.Mod(order_).ModAdd(ex, order_);
  return SchnorrSignature{r, s};
}

bool Schnorr::Verify(const UInt256& public_key, const Bytes& message,
                     const SchnorrSignature& sig) const {
  if (sig.r.IsZero() || sig.r >= params_.p) return false;
  if (public_key.IsZero() || public_key >= params_.p) return false;
  UInt256 e = Challenge(sig.r, public_key, message);
  if (ctx_ != nullptr) {
    return ctx_->VerifyGsEq(sig.s, sig.r, public_key, e);
  }
  UInt256 lhs = params_.g.ModPow(sig.s, params_.p);
  UInt256 rhs = sig.r.ModMul(public_key.ModPow(e, params_.p), params_.p);
  return lhs == rhs;
}

namespace reference {

bool SchnorrVerify(const GroupParams& params, const UInt256& public_key,
                   const Bytes& message, const SchnorrSignature& sig) {
  if (sig.r.IsZero() || sig.r >= params.p) return false;
  if (public_key.IsZero() || public_key >= params.p) return false;
  UInt256 order = params.p.Sub(UInt256(1));
  Sha256 hasher;
  hasher.Update(sig.r.ToBytes());
  hasher.Update(public_key.ToBytes());
  hasher.Update(message);
  Digest digest = hasher.Finish();
  Bytes digest_bytes(digest.begin(), digest.end());
  UInt256 e = UInt256::FromBytes(digest_bytes).value().Mod(order);
  UInt256 lhs = params.g.ModPow(sig.s, params.p);
  UInt256 rhs = sig.r.ModMul(public_key.ModPow(e, params.p), params.p);
  return lhs == rhs;
}

}  // namespace reference

}  // namespace bcfl::crypto
