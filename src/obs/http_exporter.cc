#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace bcfl::obs {

namespace {

/// Prometheus sample values: full double precision, with the text
/// format's spellings for the non-finite values JSON cannot carry.
void AppendSampleValue(std::string* out, double value) {
  if (std::isnan(value)) {
    *out += "NaN";
  } else if (std::isinf(value)) {
    *out += value > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    *out += buf;
  }
}

/// `le` label values: trimmed %g so bounds read as "100" / "2e+06".
std::string BoundLabel(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

void AppendHistogram(std::string* out,
                     const MetricsSnapshot::HistogramSnapshot& h) {
  const std::string name = PrometheusName(h.name);
  *out += "# TYPE " + name + " histogram\n";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += h.bucket_counts[i];
    *out += name + "_bucket{le=\"" + BoundLabel(h.bounds[i]) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  cumulative += h.bucket_counts.empty() ? 0 : h.bucket_counts.back();
  *out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
  *out += name + "_sum ";
  AppendSampleValue(out, h.sum);
  *out += "\n";
  *out += name + "_count " + std::to_string(h.count) + "\n";
  // In-process quantile estimates as a companion gauge family, so p50/
  // p90/p99 are scrape-readable without server-side histogram_quantile().
  *out += "# TYPE " + name + "_quantile gauge\n";
  const struct { const char* q; double v; } quantiles[] = {
      {"0.5", h.p50}, {"0.9", h.p90}, {"0.99", h.p99}};
  for (const auto& [q, v] : quantiles) {
    *out += name + "_quantile{q=\"" + q + "\"} ";
    AppendSampleValue(out, h.count > 0 ? v : 0.0);
    *out += "\n";
  }
}

std::string HttpResponse(const char* status_line, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // Peer went away; a scrape retry is harmless.
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "bcfl_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    AppendSampleValue(&out, value);
    out += "\n";
  }
  for (const auto& histogram : snapshot.histograms) {
    AppendHistogram(&out, histogram);
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  return PrometheusText(registry.Snapshot());
}

Status HttpExporter::Start(uint16_t port) {
  if (running()) return Status::AlreadyExists("exporter already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int bind_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::ResourceExhausted("cannot bind metrics port " +
                               std::to_string(port) + ": " +
                               std::strerror(bind_errno));
  }
  if (::listen(listen_fd_, /*backlog=*/16) != 0) {
    const int listen_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen(): ") +
                            std::strerror(listen_errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("pipe(): ") + std::strerror(errno));
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the poll() so the loop observes running_ == false.
  const char byte = 'x';
  [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  port_ = 0;
}

void HttpExporter::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/250);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check running_.
    if (fds[1].revents != 0) return;  // Stop() woke us.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void HttpExporter::HandleConnection(int fd) {
  // One short read is enough for the request line of a scrape; a split
  // first line (unlikely for "GET /metrics") just earns a 400 and the
  // scraper retries.
  char buf[2048];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  const std::string request(buf);
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t method_end = line.find(' ');
  const size_t path_end = line.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos) {
    WriteAll(fd, HttpResponse("400 Bad Request", "text/plain",
                              "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, method_end);
  std::string path = line.substr(method_end + 1, path_end - method_end - 1);
  if (const size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);
  }
  if (method != "GET") {
    WriteAll(fd, HttpResponse("405 Method Not Allowed", "text/plain",
                              "only GET is supported\n"));
    return;
  }
  if (path == "/metrics") {
    WriteAll(fd, HttpResponse(
                     "200 OK",
                     "text/plain; version=0.0.4; charset=utf-8",
                     PrometheusText(*registry_)));
  } else if (path == "/healthz") {
    WriteAll(fd, HttpResponse("200 OK", "text/plain", "ok\n"));
  } else {
    WriteAll(fd, HttpResponse("404 Not Found", "text/plain",
                              "try /metrics or /healthz\n"));
  }
}

}  // namespace bcfl::obs
