#pragma once

// Minimal JSON parser, the read half of src/obs/json_writer.h: just
// enough to load the machine-readable artifacts this repo emits
// (BENCH_*.json, metrics.json, the round ledger) back into C++ — the
// bench-regression gate diffs two such documents, and the round-trip
// tests parse what JsonWriter wrote. Standard JSON is accepted (RFC
// 8259 value grammar); numbers are held as double, which is exact for
// every value JsonWriter can produce.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace bcfl::obs {

/// One parsed JSON value. Object member order is preserved so a diff
/// report lists metrics in document order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// First member named `key`, or nullptr (objects only).
  const JsonValue* Find(const std::string& key) const;
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Nesting is capped at 128 levels so a
/// fuzzed input cannot blow the stack.
Result<JsonValue> ParseJson(const std::string& text);

/// Reads and parses a whole file; errors carry the path.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace bcfl::obs
