#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>

#include "obs/json_writer.h"

namespace bcfl::obs {

namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Flattened numeric/bool leaves of a bench document, in document order.
struct Leaf {
  std::string path;
  bool is_bool = false;
  bool bool_value = false;
  double number = 0.0;
};

void Flatten(const JsonValue& value, const std::string& prefix,
             std::vector<Leaf>* out) {
  switch (value.type) {
    case JsonValue::Type::kNumber:
      out->push_back({prefix, false, false, value.number});
      break;
    case JsonValue::Type::kBool:
      out->push_back({prefix, true, value.bool_value, 0.0});
      break;
    case JsonValue::Type::kObject:
      for (const auto& [key, child] : value.object) {
        Flatten(child, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case JsonValue::Type::kArray:
      for (size_t i = 0; i < value.array.size(); ++i) {
        Flatten(value.array[i], prefix + "." + std::to_string(i), out);
      }
      break;
    default:
      break;  // Strings and nulls carry no comparable metric.
  }
}

const Leaf* FindLeaf(const std::vector<Leaf>& leaves,
                     const std::string& path) {
  for (const Leaf& leaf : leaves) {
    if (leaf.path == path) return &leaf;
  }
  return nullptr;
}

bool MatchesAny(const std::string& path,
                const std::vector<std::string>& needles) {
  return std::any_of(needles.begin(), needles.end(),
                     [&](const std::string& n) { return Contains(path, n); });
}

double ToleranceFor(const std::string& path, const BenchDiffOptions& opts) {
  size_t best_len = 0;
  double tolerance = opts.default_tolerance;
  for (const auto& [key, value] : opts.tolerance_overrides) {
    if (Contains(path, key) && key.size() >= best_len) {
      best_len = key.size();
      tolerance = value;
    }
  }
  return tolerance;
}

}  // namespace

MetricDirection InferDirection(const std::string& path) {
  const size_t dot = path.rfind('.');
  const std::string leaf =
      dot == std::string::npos ? path : path.substr(dot + 1);
  // Throughput-style names first: "tx_per_s" ends with "_s" but is a
  // rate, so the higher-is-better patterns must win the tie.
  if (Contains(leaf, "per_s") || Contains(leaf, "speedup") ||
      Contains(leaf, "gflops") || Contains(leaf, "hit_rate") ||
      Contains(leaf, "accuracy") || Contains(leaf, "spearman") ||
      Contains(leaf, "cosine")) {
    return MetricDirection::kHigherIsBetter;
  }
  if (EndsWith(leaf, "_s") || EndsWith(leaf, "_us") ||
      EndsWith(leaf, "_ms") || EndsWith(leaf, "_ns") ||
      Contains(leaf, "seconds") || Contains(leaf, "overhead") ||
      Contains(leaf, "ms_per_block")) {
    return MetricDirection::kLowerIsBetter;
  }
  return MetricDirection::kUnknown;
}

BenchDiffResult DiffBench(const JsonValue& baseline,
                          const JsonValue& candidate,
                          const BenchDiffOptions& options) {
  std::vector<Leaf> baseline_leaves;
  std::vector<Leaf> candidate_leaves;
  Flatten(baseline, "", &baseline_leaves);
  Flatten(candidate, "", &candidate_leaves);

  BenchDiffResult result;
  for (const Leaf& base : baseline_leaves) {
    if (!options.metric_filters.empty() &&
        !MatchesAny(base.path, options.metric_filters)) {
      continue;
    }
    if (MatchesAny(base.path, options.ignored)) continue;

    MetricVerdict verdict;
    verdict.path = base.path;
    const Leaf* cand = FindLeaf(candidate_leaves, base.path);
    if (cand == nullptr || cand->is_bool != base.is_bool) {
      verdict.baseline = base.is_bool ? (base.bool_value ? 1 : 0) : base.number;
      verdict.status = "missing";
      result.missing++;
      result.ok = false;
      result.verdicts.push_back(std::move(verdict));
      continue;
    }

    if (base.is_bool) {
      verdict.baseline = base.bool_value ? 1 : 0;
      verdict.candidate = cand->bool_value ? 1 : 0;
      if (base.bool_value && !cand->bool_value) {
        // A passing invariant (equivalence check, bit-identity flag)
        // flipped to false: always a regression, tolerance-free.
        verdict.status = "flag_regression";
        result.regressions++;
        result.ok = false;
      } else {
        verdict.status = "ok";
      }
      result.checked++;
      result.verdicts.push_back(std::move(verdict));
      continue;
    }

    verdict.baseline = base.number;
    verdict.candidate = cand->number;
    const MetricDirection direction = InferDirection(base.path);
    if (direction == MetricDirection::kUnknown || base.number == 0.0 ||
        !std::isfinite(base.number) || !std::isfinite(cand->number)) {
      verdict.status = "info";
      result.verdicts.push_back(std::move(verdict));
      continue;
    }
    verdict.tolerance = ToleranceFor(base.path, options);
    result.checked++;
    const double ratio = cand->number / base.number;
    if (direction == MetricDirection::kLowerIsBetter) {
      if (ratio > 1.0 + verdict.tolerance) {
        verdict.status = "regression";
      } else if (ratio < 1.0 - verdict.tolerance) {
        verdict.status = "improvement";
      } else {
        verdict.status = "ok";
      }
    } else {
      if (ratio < 1.0 - verdict.tolerance) {
        verdict.status = "regression";
      } else if (ratio > 1.0 + verdict.tolerance) {
        verdict.status = "improvement";
      } else {
        verdict.status = "ok";
      }
    }
    if (verdict.status == "regression") {
      result.regressions++;
      result.ok = false;
    }
    result.verdicts.push_back(std::move(verdict));
  }
  return result;
}

std::string BenchDiffResult::ToJson(const std::string& baseline_path,
                                    const std::string& candidate_path) const {
  JsonWriter json;
  json.BeginObject();
  json.Field("baseline", baseline_path);
  json.Field("candidate", candidate_path);
  json.Field("ok", ok);
  json.Field("checked", checked);
  json.Field("regressions", regressions);
  json.Field("missing", missing);
  json.BeginArray("metrics");
  for (const MetricVerdict& verdict : verdicts) {
    json.BeginObject();
    json.Field("path", verdict.path);
    json.Field("status", verdict.status);
    json.Field("baseline", verdict.baseline);
    json.Field("candidate", verdict.candidate);
    if (verdict.status != "info" && verdict.status != "missing") {
      json.Field("tolerance", verdict.tolerance);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace bcfl::obs
