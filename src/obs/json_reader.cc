#include "obs/json_reader.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bcfl::obs {

namespace {

constexpr int kMaxDepth = 128;

/// Recursive-descent parser over a borrowed buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    BCFL_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        out->type = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      BCFL_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      BCFL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      BCFL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            uint32_t code = 0;
            BCFL_RETURN_IF_ERROR(ParseHex4(&code));
            // Surrogate pair: combine \uD800-\uDBFF with the low half.
            // Either half on its own would encode an invalid scalar.
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (text_.compare(pos_, 2, "\\u") != 0) {
                return Error("unpaired UTF-16 surrogate");
              }
              pos_ += 2;
              uint32_t low = 0;
              BCFL_RETURN_IF_ERROR(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("unpaired UTF-16 surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("unpaired UTF-16 surrogate");
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            return Error("bad escape character");
        }
        continue;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      *out += static_cast<char>(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    // RFC 8259 forbids leading zeros ("01"); strtod would accept them.
    const size_t first_digit = token[0] == '-' ? 1 : 0;
    if (token.size() > first_digit + 1 && token[first_digit] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[first_digit + 1]))) {
      pos_ = start;
      return Error("leading zero in number '" + token + "'");
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open JSON file: " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("I/O error reading JSON file: " + path);
  }
  auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().ToString());
  }
  return parsed;
}

}  // namespace bcfl::obs
