#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"  // internal::EnabledFlag for the BCFL_OBS gate.

namespace bcfl::obs {

namespace {

/// One not-yet-closed span, parked on its opening thread's stack.
struct ActiveSpan {
  const Tracer* tracer;
  uint64_t generation;
  uint64_t id;
  uint64_t parent_id;
  uint32_t depth;
  std::string name;
  std::string category;
  uint64_t start_ns;
  bool has_sim_time;
  uint64_t sim_start_us;
};

/// Per-thread stack of open spans. One stack serves every tracer: RAII
/// guarantees LIFO destruction order regardless of which tracer a span
/// belongs to, and parent lookup filters by tracer.
std::vector<ActiveSpan>& ThreadStack() {
  static thread_local std::vector<ActiveSpan> stack;
  return stack;
}

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  static thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    // Global spans double as live phase-latency histograms (scraped by
    // the HTTP exposition endpoint); standalone tracers opt in.
    t->AttachMetrics(&MetricsRegistry::Global());
    return t;
  }();
  return *tracer;
}

Tracer::Tracer()
    : enabled_(internal::EnabledFlag().load(std::memory_order_relaxed)),
      epoch_ns_(SteadyNowNs()) {}

uint64_t Tracer::NowNs() const {
  const int64_t ns =
      SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed);
  return ns > 0 ? static_cast<uint64_t>(ns) : 0;
}

uint64_t Tracer::BeginSpan(std::string name, std::string category) {
  if (!enabled()) return 0;
  ActiveSpan span;
  span.tracer = this;
  span.generation = generation_.load(std::memory_order_relaxed);
  span.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent_id = 0;
  span.depth = 0;
  std::vector<ActiveSpan>& stack = ThreadStack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->tracer == this && it->generation == span.generation) {
      span.parent_id = it->id;
      span.depth = it->depth + 1;
      break;
    }
  }
  span.name = std::move(name);
  span.category = std::move(category);
  const SimClock* sim = sim_clock_.load(std::memory_order_acquire);
  span.has_sim_time = sim != nullptr;
  span.sim_start_us = sim != nullptr ? sim->NowMicros() : 0;
  span.start_ns = NowNs();
  stack.push_back(std::move(span));
  return stack.back().id;
}

void Tracer::EndSpan(uint64_t token) {
  if (token == 0) return;
  std::vector<ActiveSpan>& stack = ThreadStack();
  // The span is the top of the stack in correct RAII usage; tolerate a
  // mismatched close by searching downwards.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->tracer != this || it->id != token) continue;
    ActiveSpan span = std::move(*it);
    stack.erase(std::next(it).base());
    if (span.generation != generation_.load(std::memory_order_relaxed)) {
      return;  // Tracer was Reset while the span was open; drop it.
    }
    SpanRecord record;
    record.name = std::move(span.name);
    record.category = std::move(span.category);
    record.id = span.id;
    record.parent_id = span.parent_id;
    record.thread_index = ThreadIndex();
    record.depth = span.depth;
    record.start_ns = span.start_ns;
    const uint64_t end_ns = NowNs();
    record.duration_ns = end_ns > span.start_ns ? end_ns - span.start_ns : 0;
    record.has_sim_time = span.has_sim_time;
    if (span.has_sim_time) {
      const SimClock* sim = sim_clock_.load(std::memory_order_acquire);
      record.sim_start_us = span.sim_start_us;
      const uint64_t sim_now =
          sim != nullptr ? sim->NowMicros() : span.sim_start_us;
      record.sim_duration_us =
          sim_now > span.sim_start_us ? sim_now - span.sim_start_us : 0;
    }
    if (MetricsRegistry* metrics = metrics_.load(std::memory_order_acquire);
        metrics != nullptr) {
      metrics
          ->GetHistogram("span." + record.category + "." + record.name +
                         "_us")
          .Observe(static_cast<double>(record.duration_ns) / 1000.0);
    }
    std::lock_guard<std::mutex> lock(mu_);
    completed_.push_back(std::move(record));
    return;
  }
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_.size();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  completed_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
  sim_clock_.store(nullptr, std::memory_order_release);
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  next_id_.store(1, std::memory_order_relaxed);
}

void Tracer::WriteChromeTrace(JsonWriter* json) const {
  const std::vector<SpanRecord> spans = Snapshot();
  json->BeginObject();
  json->BeginArray("traceEvents");
  for (const SpanRecord& span : spans) {
    json->BeginObject();
    json->Field("name", span.name);
    json->Field("cat", span.category);
    json->Field("ph", "X");
    json->Field("ts", static_cast<double>(span.start_ns) / 1000.0);
    json->Field("dur", static_cast<double>(span.duration_ns) / 1000.0);
    json->Field("pid", size_t{1});
    json->Field("tid", static_cast<size_t>(span.thread_index));
    json->BeginObject("args");
    json->Field("span_id", static_cast<size_t>(span.id));
    json->Field("parent_id", static_cast<size_t>(span.parent_id));
    json->Field("depth", static_cast<size_t>(span.depth));
    if (span.has_sim_time) {
      json->Field("sim_ts_us", static_cast<size_t>(span.sim_start_us));
      json->Field("sim_dur_us", static_cast<size_t>(span.sim_duration_us));
    }
    json->EndObject();
    json->EndObject();
  }
  json->EndArray();
  json->Field("displayTimeUnit", "ms");
  json->EndObject();
}

std::string Tracer::ToChromeTraceJson() const {
  JsonWriter json;
  WriteChromeTrace(&json);
  return json.str();
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  JsonWriter json;
  WriteChromeTrace(&json);
  return json.WriteFile(path);
}

std::string Tracer::ToCsv() const {
  const std::vector<SpanRecord> spans = Snapshot();
  std::string out =
      "name,category,id,parent_id,thread,depth,start_us,duration_us,"
      "sim_start_us,sim_duration_us\n";
  char buf[160];
  for (const SpanRecord& span : spans) {
    out += span.name;
    out += ',';
    out += span.category;
    std::snprintf(buf, sizeof(buf),
                  ",%llu,%llu,%u,%u,%.3f,%.3f,",
                  static_cast<unsigned long long>(span.id),
                  static_cast<unsigned long long>(span.parent_id),
                  span.thread_index, span.depth,
                  static_cast<double>(span.start_ns) / 1000.0,
                  static_cast<double>(span.duration_ns) / 1000.0);
    out += buf;
    if (span.has_sim_time) {
      std::snprintf(buf, sizeof(buf), "%llu,%llu",
                    static_cast<unsigned long long>(span.sim_start_us),
                    static_cast<unsigned long long>(span.sim_duration_us));
      out += buf;
    } else {
      out += ',';
    }
    out += '\n';
  }
  return out;
}

bool Tracer::WriteCsvFile(const std::string& path) const {
  const std::string csv = ToCsv();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace bcfl::obs
