#include "obs/round_ledger.h"

#include <cmath>
#include <string>

#include "obs/json_reader.h"
#include "obs/json_writer.h"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace bcfl::obs {

std::vector<double> RollingSvVolatility(
    const std::vector<std::vector<double>>& sv_history, size_t window) {
  if (sv_history.empty()) return {};
  const size_t owners = sv_history.back().size();
  const size_t have = sv_history.size();
  const size_t use = window == 0 ? have : std::min(window, have);
  std::vector<double> volatility(owners, 0.0);
  if (use < 2) return volatility;
  for (size_t i = 0; i < owners; ++i) {
    double mean = 0.0;
    size_t n = 0;
    for (size_t r = have - use; r < have; ++r) {
      if (i >= sv_history[r].size()) continue;  // Roster grew? Skip.
      mean += sv_history[r][i];
      ++n;
    }
    if (n < 2) continue;
    mean /= static_cast<double>(n);
    double ss = 0.0;
    for (size_t r = have - use; r < have; ++r) {
      if (i >= sv_history[r].size()) continue;
      const double d = sv_history[r][i] - mean;
      ss += d * d;
    }
    volatility[i] = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return volatility;
}

RoundLedger::~RoundLedger() { Close(); }

Status RoundLedger::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    return Status::Internal("cannot open round ledger: " + path);
  }
  path_ = path;
  return Status::OK();
}

Status RoundLedger::OpenForResume(
    const std::string& path, size_t keep_rounds,
    const std::vector<std::vector<double>>* exact_sv_history) {
  if (exact_sv_history != nullptr && exact_sv_history->size() < keep_rounds) {
    return Status::InvalidArgument(
        "exact SV history holds " + std::to_string(exact_sv_history->size()) +
        " rounds, resume needs " + std::to_string(keep_rounds));
  }
  Close();
  sv_history_.clear();
  last_volatility_.clear();

  std::FILE* file = std::fopen(path.c_str(), "r+");
  if (file == nullptr) {
    if (keep_rounds == 0) return Open(path);
    return Status::NotFound("no round ledger to resume at " + path);
  }

  // Scan line by line, keeping the byte offset after each whole record.
  std::string line;
  size_t kept = 0;
  long keep_offset = 0;
  int c;
  while (kept < keep_rounds && (c = std::fgetc(file)) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    auto value = ParseJson(line);
    if (!value.ok() || !value->is_object()) {
      std::fclose(file);
      return Status::Corruption("unparseable round ledger record " +
                                std::to_string(kept) + " in " + path);
    }
    const JsonValue* sv = value->Find("sv");
    if (sv == nullptr || !sv->is_array()) {
      std::fclose(file);
      return Status::Corruption("round ledger record " + std::to_string(kept) +
                                " has no sv array");
    }
    std::vector<double> scores;
    scores.reserve(sv->array.size());
    for (const JsonValue& v : sv->array) scores.push_back(v.number);
    sv_history_.push_back(std::move(scores));
    line.clear();
    ++kept;
    keep_offset = std::ftell(file);
    if (keep_offset < 0) {
      std::fclose(file);
      return Status::Internal("cannot tell round ledger position");
    }
  }
  if (kept < keep_rounds) {
    std::fclose(file);
    return Status::Corruption(
        "round ledger holds " + std::to_string(kept) + " records, resume needs " +
        std::to_string(keep_rounds));
  }

  // Drop everything after the kept prefix (a torn tail from the kill, or
  // records past the checkpoint that the resumed run re-creates).
#if defined(_WIN32)
  std::fclose(file);
  return Status::Unimplemented("ledger resume unsupported on this platform");
#else
  if (std::fflush(file) != 0 ||
      ::ftruncate(fileno(file), static_cast<off_t>(keep_offset)) != 0 ||
      std::fseek(file, keep_offset, SEEK_SET) != 0) {
    std::fclose(file);
    return Status::Internal("cannot truncate round ledger: " + path);
  }
  file_ = file;
  path_ = path;
  if (exact_sv_history != nullptr) {
    // The parsed history validated the file; the checkpoint's doubles are
    // what the uninterrupted run's volatility window actually held.
    sv_history_.assign(exact_sv_history->begin(),
                       exact_sv_history->begin() +
                           static_cast<ptrdiff_t>(keep_rounds));
  }
  last_volatility_ = RollingSvVolatility(sv_history_, volatility_window_);
  return Status::OK();
#endif
}

Status RoundLedger::Append(const RoundRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("round ledger is not open");
  }
  sv_history_.push_back(record.sv);
  last_volatility_ = RollingSvVolatility(sv_history_, volatility_window_);
  double volatility_mean = 0.0;
  for (double v : last_volatility_) volatility_mean += v;
  if (!last_volatility_.empty()) {
    volatility_mean /= static_cast<double>(last_volatility_.size());
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("round", static_cast<size_t>(record.round));
  json.BeginObject("phase_us");
  for (const auto& [phase, us] : record.phase_us) json.Field(phase, us);
  json.EndObject();
  json.Field("sig_cache_hit_rate", record.sig_cache_hit_rate);
  json.Field("sig_cache_lookups",
             static_cast<size_t>(record.sig_cache_lookups));
  json.BeginArray("fault_events");
  for (const auto& event : record.fault_events) {
    json.Element(event.c_str());
  }
  json.EndArray();
  json.BeginArray("dropouts");
  for (uint32_t owner : record.dropouts) {
    json.Element(static_cast<size_t>(owner));
  }
  json.EndArray();
  json.BeginArray("recovered");
  for (uint32_t owner : record.recovered) {
    json.Element(static_cast<size_t>(owner));
  }
  json.EndArray();
  json.BeginArray("slashed");
  for (uint32_t owner : record.slashed) {
    json.Element(static_cast<size_t>(owner));
  }
  json.EndArray();
  json.Field("accusations", static_cast<size_t>(record.accusations));
  json.BeginArray("sv");
  for (double v : record.sv) json.Element(v);
  json.EndArray();
  json.BeginArray("sv_volatility");
  for (double v : last_volatility_) json.Element(v);
  json.EndArray();
  json.Field("sv_volatility_mean", volatility_mean);
  json.Field("accuracy", record.accuracy);
  json.Field("blocks_committed",
             static_cast<size_t>(record.blocks_committed));
  json.Field("transactions", static_cast<size_t>(record.transactions));
  json.EndObject();

  const std::string& line = json.str();
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    return Status::Internal("short write to round ledger: " + path_);
  }
  return Status::OK();
}

void RoundLedger::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace bcfl::obs
