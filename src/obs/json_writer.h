#pragma once

// Minimal JSON emitter shared by the observability exporters and the
// machine-readable bench dumps (BENCH_*.json, metrics.json, trace.json):
// just enough structure for nested metric documents that CI or a notebook
// can diff across PRs. Keys are plain ASCII identifiers; string *values*
// are escaped (including control characters below 0x20), so free-form
// span names and file paths are safe, and non-finite numbers degrade to
// null so the document always parses. src/obs/json_reader.h parses
// everything this writer can emit (round-trip tested).

#include <cmath>
#include <cstdio>
#include <string>

namespace bcfl::obs {

class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray(const char* key) {
    Key(key);
    Open('[');
  }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }
  void BeginObject(const char* key) {
    Key(key);
    Open('{');
  }

  void Field(const char* key, double value) {
    Key(key);
    AppendNumber(value);
    need_comma_ = true;
  }
  void Field(const char* key, size_t value) {
    Key(key);
    out_ += std::to_string(value);
    need_comma_ = true;
  }
  void Field(const char* key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    need_comma_ = true;
  }
  void Field(const char* key, const char* value) {
    Key(key);
    AppendEscaped(value);
    need_comma_ = true;
  }
  void Field(const char* key, const std::string& value) {
    Field(key, value.c_str());
  }
  /// Splices `raw_json` in verbatim as the value of `key`. The caller
  /// vouches that it is well-formed JSON (e.g. a document produced by
  /// another JsonWriter, like the executed fault schedule).
  void RawField(const char* key, const std::string& raw_json) {
    Key(key);
    out_ += raw_json;
    need_comma_ = true;
  }
  void RawField(const std::string& key, const std::string& raw_json) {
    RawField(key.c_str(), raw_json);
  }
  /// Field whose key is not a compile-time literal (metric names).
  void Field(const std::string& key, double value) { Field(key.c_str(), value); }
  void Field(const std::string& key, size_t value) { Field(key.c_str(), value); }
  void BeginObject(const std::string& key) { BeginObject(key.c_str()); }

  /// Bare array element (inside BeginArray/EndArray).
  void Element(double value) {
    MaybeComma();
    AppendNumber(value);
    need_comma_ = true;
  }
  void Element(size_t value) {
    MaybeComma();
    out_ += std::to_string(value);
    need_comma_ = true;
  }
  void Element(const char* value) {
    MaybeComma();
    AppendEscaped(value);
    need_comma_ = true;
  }

  const std::string& str() const { return out_; }

  /// Writes the document to `path`; returns false on I/O failure.
  bool WriteFile(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
    return std::fclose(f) == 0 && ok;
  }
  bool WriteFile(const std::string& path) const {
    return WriteFile(path.c_str());
  }

 private:
  void MaybeComma() {
    if (need_comma_) out_ += ',';
    need_comma_ = false;
  }
  void Key(const char* key) {
    MaybeComma();
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }
  void Open(char c) {
    MaybeComma();
    out_ += c;
    need_comma_ = false;
  }
  void Close(char c) {
    out_ += c;
    need_comma_ = true;
  }
  void AppendNumber(double value) {
    // JSON has no NaN/Inf tokens; a poisoned metric must not poison the
    // whole document, so non-finite values degrade to null.
    if (!std::isfinite(value)) {
      out_ += "null";
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out_ += buf;
  }
  void AppendEscaped(const char* value) {
    out_ += '"';
    for (const char* p = value; *p != '\0'; ++p) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += static_cast<char>(c);
      } else if (c < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out_ += buf;
      } else {
        out_ += static_cast<char>(c);
      }
    }
    out_ += '"';
  }

 private:
  std::string out_;
  bool need_comma_ = false;
};

}  // namespace bcfl::obs
