#pragma once

// Embedded Prometheus exposition endpoint: a blocking accept loop on one
// dedicated thread serving GET /metrics (text format 0.0.4 rendered from
// a MetricsRegistry snapshot) and GET /healthz. This is the "live" half
// of the telemetry plane — metrics.json is the post-hoc record, /metrics
// is what an operator points a Prometheus scraper (or curl) at while a
// long chaos sweep is still running.
//
//   bcfl::obs::HttpExporter exporter;
//   auto st = exporter.Start(9464);          // 0 picks an ephemeral port
//   ... run the session; scrape localhost:<exporter.port()>/metrics ...
//   exporter.Stop();                         // also runs at destruction

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/result.h"
#include "obs/metrics.h"

namespace bcfl::obs {

/// Renders a snapshot as Prometheus text exposition format 0.0.4.
///
/// Instrument names are sanitised (every non [a-zA-Z0-9_:] byte becomes
/// '_') and prefixed "bcfl_". Counters and gauges are one sample each;
/// histograms expose cumulative `_bucket{le="..."}` series (terminated
/// by le="+Inf"), `_sum`, `_count`, and — because the repo's quantile
/// estimator runs in-process — companion `_quantile{q="0.5|0.9|0.99"}`
/// gauges so p50/p90/p99 are readable straight off a curl without a
/// Prometheus server doing histogram_quantile().
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// Snapshot-and-render convenience used by the endpoint itself.
std::string PrometheusText(const MetricsRegistry& registry);

/// Sanitised, prefixed Prometheus name for one instrument ("fl.round_us"
/// -> "bcfl_fl_round_us"). Exposed for the golden-output tests.
std::string PrometheusName(const std::string& name);

/// The endpoint. Start binds + listens + spawns the serving thread;
/// Stop (idempotent, also run by the destructor) wakes the accept loop
/// and joins it. One exporter serves one registry; requests are handled
/// serially — a scrape is a snapshot plus a small write, so there is
/// nothing to overlap.
class HttpExporter {
 public:
  explicit HttpExporter(
      const MetricsRegistry* registry = &MetricsRegistry::Global())
      : registry_(registry) {}
  ~HttpExporter() { Stop(); }
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 0.0.0.0:`port` (0 = kernel-assigned, see port()) and starts
  /// serving. Fails with the bind/listen errno in the message — a port
  /// already in use reports as such and leaves the exporter stopped.
  Status Start(uint16_t port);

  /// Wakes and joins the serving thread, closes the socket. Safe to call
  /// twice or without a successful Start.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually-bound port (resolves port 0 requests).
  uint16_t port() const { return port_; }
  /// Total requests answered (any path), for tests.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  const MetricsRegistry* registry_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< Stop() writes to unblock poll().
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace bcfl::obs
