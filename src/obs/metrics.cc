#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>

namespace bcfl::obs {

namespace internal {

size_t ThreadShard() {
  // Hash the thread id once per thread; the cached index keeps the hot
  // path at one relaxed fetch_add on a (usually) thread-private line.
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricShards;
  return shard;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("BCFL_OBS");
    const bool off = env != nullptr && (std::strcmp(env, "off") == 0 ||
                                        std::strcmp(env, "0") == 0);
    return !off;
  }();
  return enabled;
}

namespace {

/// CAS loop for atomics without a native fetch-min/max/add (double).
template <typename T, typename Combine>
void AtomicCombine(std::atomic<T>* cell, T value, Combine combine) {
  T current = cell->load(std::memory_order_relaxed);
  T next = combine(current, value);
  while (next != current &&
         !cell->compare_exchange_weak(current, next,
                                      std::memory_order_relaxed)) {
    next = combine(current, value);
  }
}

}  // namespace

}  // namespace internal

const std::vector<double>& Histogram::DefaultLatencyBoundsUs() {
  static const std::vector<double> bounds = {
      1,     2,     5,     10,    20,    50,    100,   200,
      500,   1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,
      2e5,   5e5,   1e6,   2e6,   5e6,   1e7};
  return bounds;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBoundsUs();
  for (auto& shard : shards_) {
    shard.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  if (!internal::EnabledFlag().load(std::memory_order_relaxed)) return;
  Shard& shard = shards_[internal::ThreadShard()];
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicCombine(&shard.sum, value,
                          [](double a, double b) { return a + b; });
  internal::AtomicCombine(&shard.min, value,
                          [](double a, double b) { return std::min(a, b); });
  internal::AtomicCombine(&shard.max, value,
                          [](double a, double b) { return std::max(a, b); });
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Min() const {
  double out = std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {
    out = std::min(out, shard.min.load(std::memory_order_relaxed));
  }
  return out;
}

double Histogram::Max() const {
  double out = -std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {
    out = std::max(out, shard.max.load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::Percentile(double q) const {
  const std::vector<uint64_t> buckets = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket i: [lower, upper].
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : Max();
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    internal::EnabledFlag();  // Force the BCFL_OBS read.
    return new MetricsRegistry();
  }();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, std::move(bounds))))
             .first;
  }
  return *it->second;
}

namespace {

/// Linear-interpolated percentile over an already-materialised bucket
/// vector (same estimator as Histogram::Percentile, but computed from a
/// snapshot so every quantile of one scrape agrees with its buckets).
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& buckets,
                             uint64_t total, double max_value, double q) {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = i < bounds.size() ? bounds[i] : max_value;
      const double fraction = (target - static_cast<double>(cumulative)) /
                              static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max_value;
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.bucket_counts = histogram->BucketCounts();
    // Re-derive the count from the captured buckets: the live count cell
    // is updated by a separate relaxed op, so using it here could
    // disagree with the buckets of this same snapshot.
    for (uint64_t c : h.bucket_counts) h.count += c;
    h.sum = histogram->Sum();
    if (h.count > 0) {
      h.min = histogram->Min();
      h.max = histogram->Max();
      h.p50 = PercentileFromBuckets(h.bounds, h.bucket_counts, h.count,
                                    h.max, 0.50);
      h.p90 = PercentileFromBuckets(h.bounds, h.bucket_counts, h.count,
                                    h.max, 0.90);
      h.p99 = PercentileFromBuckets(h.bounds, h.bucket_counts, h.count,
                                    h.max, 0.99);
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

void MetricsRegistry::WriteJson(
    JsonWriter* json, const std::map<std::string, std::string>& extra) const {
  std::lock_guard<std::mutex> lock(mu_);
  json->BeginObject();
  json->BeginObject("counters");
  for (const auto& [name, counter] : counters_) {
    json->Field(name, static_cast<size_t>(counter->Value()));
  }
  json->EndObject();
  json->BeginObject("gauges");
  for (const auto& [name, gauge] : gauges_) {
    json->Field(name, gauge->Value());
  }
  json->EndObject();
  json->BeginObject("histograms");
  for (const auto& [name, histogram] : histograms_) {
    json->BeginObject(name);
    const uint64_t count = histogram->Count();
    json->Field("count", static_cast<size_t>(count));
    json->Field("sum", histogram->Sum());
    if (count > 0) {
      json->Field("min", histogram->Min());
      json->Field("max", histogram->Max());
      json->Field("mean", histogram->Mean());
      json->Field("p50", histogram->Percentile(0.50));
      json->Field("p90", histogram->Percentile(0.90));
      json->Field("p99", histogram->Percentile(0.99));
    }
    json->BeginArray("bucket_bounds");
    for (double bound : histogram->bounds()) json->Element(bound);
    json->EndArray();
    json->BeginArray("bucket_counts");
    for (uint64_t c : histogram->BucketCounts()) {
      json->Element(static_cast<size_t>(c));
    }
    json->EndArray();
    json->EndObject();
  }
  json->EndObject();
  for (const auto& [key, raw] : extra) json->RawField(key, raw);
  json->EndObject();
}

std::string MetricsRegistry::ToJsonString() const {
  JsonWriter json;
  WriteJson(&json);
  return json.str();
}

bool MetricsRegistry::WriteFile(
    const std::string& path,
    const std::map<std::string, std::string>& extra) const {
  JsonWriter json;
  WriteJson(&json, extra);
  return json.WriteFile(path);
}

}  // namespace bcfl::obs
