#pragma once

// Per-round protocol ledger: the auditable runtime record the paper's
// transparency story asks for. BcflCoordinator emits one RoundRecord per
// FL round — phase latencies correlated across the protocol stack, the
// signature-cache hit rate, the fault events that actually fired, the
// dropout/recovery roster and the round's per-owner SV vector — and the
// ledger appends it to a JSONL file (one self-contained JSON object per
// line, streamable while the run is still going) together with a rolling
// per-owner SV volatility score, since per-round SV trajectories, not
// just final totals, are what an operator must watch (arXiv:2405.08044).

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace bcfl::obs {

/// Everything one FL round contributed to the ledger. All latencies are
/// wall microseconds; phase keys are stable snake_case identifiers
/// ("train", "tx_admission", "consensus", "secureagg_mask",
/// "secureagg_recover", "sv_eval", "reward" — absent phases are simply
/// not listed).
struct RoundRecord {
  uint64_t round = 0;
  std::map<std::string, double> phase_us;
  /// Signature-cache hit rate over the verifications this round (0 when
  /// none ran).
  double sig_cache_hit_rate = 0.0;
  uint64_t sig_cache_lookups = 0;
  /// Executed fault-injector entries attributed to this round, verbatim.
  std::vector<std::string> fault_events;
  /// Owners that missed the round's submission deadline (or were down).
  std::vector<uint32_t> dropouts;
  /// Owners retired by an on-chain recovery committed this round.
  std::vector<uint32_t> recovered;
  /// Owners convicted by an on-chain slash committed this round (PR 9).
  std::vector<uint32_t> slashed;
  /// Accusation (slash) transactions submitted this round.
  uint64_t accusations = 0;
  /// The round's on-chain per-owner SV vector v_i^r.
  std::vector<double> sv;
  double accuracy = 0.0;
  uint64_t blocks_committed = 0;
  uint64_t transactions = 0;
};

/// Rolling per-owner volatility of the appended SV vectors: the sample
/// standard deviation of each owner's last `window` round scores
/// (fewer while warming up; 0 with fewer than two samples). Exposed as
/// a free function so tests can pin the math without a file in play.
std::vector<double> RollingSvVolatility(
    const std::vector<std::vector<double>>& sv_history, size_t window);

/// Append-only JSONL writer. Not thread-safe: one coordinator owns one
/// ledger and appends from its round loop.
class RoundLedger {
 public:
  /// `volatility_window`: how many trailing rounds feed the volatility
  /// score (the arXiv:2405.08044 monitoring window).
  explicit RoundLedger(size_t volatility_window = 5)
      : volatility_window_(volatility_window) {}
  ~RoundLedger();
  RoundLedger(const RoundLedger&) = delete;
  RoundLedger& operator=(const RoundLedger&) = delete;

  /// Opens (truncates) `path` for appending records.
  Status Open(const std::string& path);

  /// Resume-aware open: keeps the first `keep_rounds` records of the
  /// existing ledger at `path`, truncates everything after them (rounds
  /// past the checkpoint are re-run and re-appended bit-identically), and
  /// re-primes the rolling-volatility window from the kept records' "sv"
  /// arrays — so record `keep_rounds` onward serializes exactly as it
  /// would have in the uninterrupted run. Fails closed if the file holds
  /// fewer than `keep_rounds` parseable records. The JSON "sv" values are
  /// %.6f-rounded, which is lossy; pass `exact_sv_history` (the
  /// checkpoint's full-precision per-round SV vectors, >= keep_rounds
  /// entries) to prime the volatility window with the exact doubles the
  /// uninterrupted run would have used.
  Status OpenForResume(
      const std::string& path, size_t keep_rounds,
      const std::vector<std::vector<double>>* exact_sv_history = nullptr);
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Serialises `record` (plus the rolling volatility derived from every
  /// SV vector appended so far) as one JSON line and flushes, so a tail
  /// of the file is always whole records.
  Status Append(const RoundRecord& record);

  size_t rounds_written() const { return sv_history_.size(); }
  /// The volatility vector computed for the most recent Append.
  const std::vector<double>& last_volatility() const {
    return last_volatility_;
  }

  void Close();

 private:
  size_t volatility_window_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<std::vector<double>> sv_history_;
  std::vector<double> last_volatility_;
};

}  // namespace bcfl::obs
