#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "obs/json_writer.h"

namespace bcfl::obs {

class MetricsRegistry;

/// One completed span. Times are recorded against two clocks: the
/// steady_clock (real time, ns since the tracer epoch) always, and the
/// attached SimClock (simulated time, us) when one is present — so a
/// trace shows both what the wall paid and where the simulation was.
struct SpanRecord {
  std::string name;      ///< E.g. "round", "coalition_eval".
  std::string category;  ///< Subsystem: "chain", "secureagg", "fl", ...
  uint64_t id = 0;       ///< Unique per tracer, 1-based.
  uint64_t parent_id = 0;  ///< 0 = root span.
  uint32_t thread_index = 0;  ///< Small stable per-thread index.
  uint32_t depth = 0;         ///< Nesting depth on its thread (0 = root).
  uint64_t start_ns = 0;      ///< steady_clock, relative to tracer epoch.
  uint64_t duration_ns = 0;
  bool has_sim_time = false;
  uint64_t sim_start_us = 0;  ///< SimClock::NowMicros at span start.
  uint64_t sim_duration_us = 0;
};

/// Hierarchical span recorder.
///
/// Spans are strictly nested per thread (RAII via ScopedSpan enforces
/// this); parentage is tracked through a thread-local stack, so opening
/// spans from pool workers is safe and needs no coordination. Completed
/// spans land in a mutexed buffer — spans mark *phases* (a round, a
/// block commit, a coalition sweep), not per-element work, so the mutex
/// is cold.
///
/// Disabled tracers (set_enabled(false), or BCFL_OBS=off at startup)
/// reduce Begin/End to one relaxed atomic load.
class Tracer {
 public:
  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Attaches the simulation clock whose time stamps every subsequent
  /// span (nullptr detaches). The clock must outlive the spans recorded
  /// against it; Reset() also detaches.
  void AttachSimClock(const SimClock* clock) {
    sim_clock_.store(clock, std::memory_order_release);
  }

  /// Attaches a metrics registry: every span close then also records its
  /// wall duration into the `span.<category>.<name>_us` histogram of
  /// that registry, so phase latencies get live quantiles (and Prometheus
  /// exposition) without a second set of stopwatches at the call sites.
  /// nullptr detaches; the global tracer ships attached to the global
  /// registry. Spans mark phases, not per-element work, so the name
  /// lookup on close is off every hot path.
  void AttachMetrics(MetricsRegistry* registry) {
    metrics_.store(registry, std::memory_order_release);
  }

  /// Opens a span; returns an opaque token (0 when disabled). Spans on
  /// one thread must close in LIFO order — prefer ScopedSpan.
  uint64_t BeginSpan(std::string name, std::string category);
  void EndSpan(uint64_t token);

  size_t size() const;
  std::vector<SpanRecord> Snapshot() const;
  /// Drops recorded spans, restarts the epoch and detaches the SimClock.
  /// Spans still open keep recording but are dropped at EndSpan.
  void Reset();

  /// Chrome trace_event JSON ("X" complete events, ts/dur in wall us;
  /// simulated time rides in args) — loadable in chrome://tracing and
  /// Perfetto.
  void WriteChromeTrace(JsonWriter* json) const;
  std::string ToChromeTraceJson() const;
  bool WriteChromeTraceFile(const std::string& path) const;

  /// Flat CSV, one row per span, for notebook/awk consumption.
  std::string ToCsv() const;
  bool WriteCsvFile(const std::string& path) const;

 private:
  uint64_t NowNs() const;

  std::atomic<bool> enabled_;
  std::atomic<const SimClock*> sim_clock_{nullptr};
  std::atomic<MetricsRegistry*> metrics_{nullptr};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> epoch_ns_;        ///< steady_clock ns at epoch.
  std::atomic<uint64_t> generation_{0};  ///< Bumped by Reset.

  mutable std::mutex mu_;
  std::vector<SpanRecord> completed_;
};

/// RAII span: opens on construction, closes on destruction.
///
///   { obs::ScopedSpan span(obs::Tracer::Global(), "round", "fl"); ... }
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string name, std::string category)
      : tracer_(&tracer),
        token_(tracer.BeginSpan(std::move(name), std::move(category))) {}
  ~ScopedSpan() {
    if (token_ != 0) tracer_->EndSpan(token_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  uint64_t token_;
};

}  // namespace bcfl::obs
