#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::obs {

/// Where a run's self-reported observability artifacts go. Empty paths
/// skip that artifact.
struct ExportPaths {
  std::string metrics_json = "metrics.json";
  std::string trace_json = "trace.json";
  std::string trace_csv;  ///< Off by default.
  /// Extra top-level fields spliced into metrics.json verbatim
  /// (key -> raw JSON value), e.g. a chaos run's executed fault schedule.
  std::map<std::string, std::string> metrics_extra;
};

/// Writes `registry`/`tracer` to the given paths. Returns the first I/O
/// failure (with the offending path in the message).
Status ExportTo(const MetricsRegistry& registry, const Tracer& tracer,
                const ExportPaths& paths);

/// Exports the process-global registry and tracer — the one call every
/// experiment binary makes before exiting so the run self-reports.
Status ExportGlobal(const ExportPaths& paths = {});

/// Convenience for benches: exports the global instruments as
/// `<prefix>_metrics.json` / `<prefix>_trace.json` next to the
/// BENCH_*.json the bench already writes.
Status ExportGlobalWithPrefix(const std::string& prefix);

}  // namespace bcfl::obs
