#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json_writer.h"

namespace bcfl::obs {

/// Number of cache-line-padded cells each instrument spreads its updates
/// over. Threads hash to a cell, so pool workers incrementing the same
/// counter rarely touch the same line.
inline constexpr size_t kMetricShards = 16;

namespace internal {

/// One cache-line-padded atomic accumulator.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

/// Stable per-thread shard index in [0, kMetricShards).
size_t ThreadShard();

/// Process-wide enable flag (relaxed loads on the hot path). Initialised
/// from the BCFL_OBS environment variable ("off"/"0" disables) on first
/// registry access.
std::atomic<bool>& EnabledFlag();

}  // namespace internal

/// Monotonic counter, safe for concurrent Add from pool workers.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if (!internal::EnabledFlag().load(std::memory_order_relaxed)) return;
    cells_[internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

  std::string name_;
  std::array<internal::ShardCell, kMetricShards> cells_;
};

/// Last-write-wins double gauge (e.g. per-round accuracy).
class Gauge {
 public:
  void Set(double value) {
    if (!internal::EnabledFlag().load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (cumulative-style export, Prometheus-like).
/// Bucket `i` counts observations <= bounds[i]; one implicit overflow
/// bucket catches the rest. Observations are sharded the same way as
/// counters, so concurrent Observe calls from a thread pool are cheap
/// and TSan-clean.
class Histogram {
 public:
  /// Exponential latency grid in microseconds: 1us .. 10s.
  static const std::vector<double>& DefaultLatencyBoundsUs();

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  double Min() const;  ///< +inf when empty.
  double Max() const;  ///< -inf when empty.
  double Mean() const { return Count() == 0 ? 0.0 : Sum() / Count(); }
  /// Linear-interpolated percentile estimate from the bucket counts;
  /// q in [0, 1]. Returns 0 when empty.
  double Percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, length bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  void Reset();

  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    /// Seeded to +/-infinity so the CAS-combine needs no "first
    /// observation" branch (which would race between shard-mates).
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };

  std::string name_;
  std::vector<double> bounds_;  ///< Ascending upper bounds.
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time copy of every instrument, safe to render (JSON,
/// Prometheus text) without holding the registry lock. Quantiles are
/// pre-estimated so exposition endpoints serve them without touching
/// live shards again.
struct MetricsSnapshot {
  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;          ///< Ascending upper bounds.
    std::vector<uint64_t> bucket_counts; ///< bounds.size() + 1 (overflow).
    uint64_t count = 0;                  ///< Sum of bucket_counts.
    double sum = 0.0;
    double min = 0.0;  ///< Only meaningful when count > 0.
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<HistogramSnapshot> histograms;  ///< Sorted by name.
};

/// Process-wide registry of named instruments.
///
/// Instruments are created on first use and live for the registry's
/// lifetime, so call sites may cache the returned reference (the hot
/// paths resolve names once, outside their loops). Creation takes a
/// mutex; updates are lock-free sharded atomics.
///
/// Memory-order contract (all shard cells use relaxed atomics):
///  - `Add`/`Observe`/`Set` concurrent with `Snapshot`/`WriteJson` are
///    data-race-free; a snapshot may or may not include deltas that were
///    in flight when it started (eventual consistency), and because a
///    histogram updates its count, sum and bucket cells with separate
///    relaxed operations, one snapshot can transiently observe
///    `count != sum(bucket_counts)`. Snapshot() therefore re-derives
///    `count` from the bucket cells so each snapshot is self-consistent.
///  - `Reset` concurrent with `Add`/`Observe` is safe but racy by
///    design: an update that interleaves with the per-cell zeroing may
///    survive the reset or be lost with it (never torn). Quiesce writers
///    first when an exact zero matters; tests and benches do.
///  - No update is ever lost absent a Reset: relaxed fetch_add on the
///    sharded cells is atomic, and Value()/Snapshot() sum every cell.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` must be ascending; empty picks the default latency grid.
  /// The bounds of the first registration win.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Disables (or re-enables) every instrument process-wide; disabled
  /// updates are a single relaxed load. Used to measure instrumentation
  /// overhead (also reachable via BCFL_OBS=off).
  static void set_enabled(bool enabled) {
    internal::EnabledFlag().store(enabled, std::memory_order_relaxed);
  }
  static bool enabled() {
    return internal::EnabledFlag().load(std::memory_order_relaxed);
  }

  /// Zeroes every instrument, keeping registrations (for tests/benches).
  /// See the class comment for the contract under concurrent updates.
  void Reset();

  /// Copies every instrument's current state (see the memory-order
  /// contract above). This is what the HTTP exposition endpoint and the
  /// JSON exporter render, so one scrape touches each live cell once.
  MetricsSnapshot Snapshot() const;

  /// Serialises every instrument as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}.
  /// `extra` entries are spliced into the top-level object verbatim
  /// (key -> raw JSON value) — e.g. the executed fault schedule of a
  /// chaos run; callers vouch the values are well-formed JSON.
  void WriteJson(JsonWriter* json,
                 const std::map<std::string, std::string>& extra = {}) const;
  std::string ToJsonString() const;
  bool WriteFile(const std::string& path,
                 const std::map<std::string, std::string>& extra = {}) const;

 private:
  mutable std::mutex mu_;  ///< Guards the maps; instruments are stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII stopwatch that records elapsed wall time, in microseconds, into a
/// histogram on destruction.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram)
      : histogram_(&histogram),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bcfl::obs
