#pragma once

// Bench-regression gate: diffs two machine-readable bench documents
// (BENCH_*.json) metric by metric. Documents are flattened to
// dot-separated paths ("schnorr_verify.speedup", "group_sv.7.
// engine_parallel_s"); each numeric leaf is compared under a relative
// tolerance with the regression *direction* inferred from its name
// (seconds-like metrics regress upward, throughput-like downward;
// metrics with no inferable direction are reported but never fail the
// gate). Boolean leaves are treated as invariants: true in the baseline
// must stay true. A baseline metric missing from the candidate is a
// failure — a silently vanished metric is how regressions hide.
//
// tools/bench_diff.cc wraps this in a CLI; scripts/ci_check.sh runs it
// against the committed baselines.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json_reader.h"

namespace bcfl::obs {

enum class MetricDirection {
  kLowerIsBetter,   ///< Latencies, runtimes, overheads.
  kHigherIsBetter,  ///< Throughput, speedups, accuracies, hit rates.
  kUnknown,         ///< Configuration echoes, counts — informational.
};

/// Name-based direction heuristic, applied to the last path segment.
MetricDirection InferDirection(const std::string& path);

struct BenchDiffOptions {
  /// Relative tolerance applied when no override matches: a lower-is-
  /// better metric fails when candidate > baseline * (1 + tolerance),
  /// a higher-is-better one when candidate < baseline * (1 - tolerance).
  double default_tolerance = 0.25;
  /// Per-metric overrides; the longest key that is a substring of the
  /// flattened path wins.
  std::map<std::string, double> tolerance_overrides;
  /// When non-empty, only paths containing one of these substrings are
  /// checked (everything else is skipped entirely).
  std::vector<std::string> metric_filters;
  /// Paths containing one of these substrings are never checked.
  std::vector<std::string> ignored;
};

struct MetricVerdict {
  std::string path;
  double baseline = 0.0;
  double candidate = 0.0;
  double tolerance = 0.0;
  /// "ok" | "regression" | "improvement" | "missing" | "flag_regression"
  /// | "info".
  std::string status;
};

struct BenchDiffResult {
  bool ok = true;
  size_t checked = 0;      ///< Direction-checked numeric + flag metrics.
  size_t regressions = 0;  ///< Includes flag regressions.
  size_t missing = 0;
  std::vector<MetricVerdict> verdicts;  ///< Document order.

  /// Machine-readable verdict document.
  std::string ToJson(const std::string& baseline_path,
                     const std::string& candidate_path) const;
};

/// Diffs `candidate` against `baseline` (both parsed bench documents).
BenchDiffResult DiffBench(const JsonValue& baseline,
                          const JsonValue& candidate,
                          const BenchDiffOptions& options);

}  // namespace bcfl::obs
