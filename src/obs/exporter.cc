#include "obs/exporter.h"

namespace bcfl::obs {

Status ExportTo(const MetricsRegistry& registry, const Tracer& tracer,
                const ExportPaths& paths) {
  if (!paths.metrics_json.empty() &&
      !registry.WriteFile(paths.metrics_json, paths.metrics_extra)) {
    return Status::Internal("cannot write metrics to " + paths.metrics_json);
  }
  if (!paths.trace_json.empty() &&
      !tracer.WriteChromeTraceFile(paths.trace_json)) {
    return Status::Internal("cannot write trace to " + paths.trace_json);
  }
  if (!paths.trace_csv.empty() && !tracer.WriteCsvFile(paths.trace_csv)) {
    return Status::Internal("cannot write trace CSV to " + paths.trace_csv);
  }
  return Status::OK();
}

Status ExportGlobal(const ExportPaths& paths) {
  return ExportTo(MetricsRegistry::Global(), Tracer::Global(), paths);
}

Status ExportGlobalWithPrefix(const std::string& prefix) {
  ExportPaths paths;
  paths.metrics_json = prefix + "_metrics.json";
  paths.trace_json = prefix + "_trace.json";
  return ExportGlobal(paths);
}

}  // namespace bcfl::obs
