#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <tuple>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace bcfl::net {

/// Node identifier on the simulated P2P network.
using NodeId = uint32_t;

/// A message in flight.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  Bytes payload;
  uint64_t deliver_at_us = 0;
  uint64_t seq = 0;  ///< Tie-breaker for deterministic ordering.
};

/// Latency / loss model of the simulated network.
struct NetworkConfig {
  uint64_t min_latency_us = 500;
  uint64_t max_latency_us = 5000;
  double drop_probability = 0.0;
  uint64_t seed = 99;
};

/// Statistics accumulated by the network.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_duplicated = 0;  ///< Extra copies injected by faults.
  /// Messages delivered after a later-sent message already reached the
  /// same destination (program-order inversion).
  uint64_t messages_reordered = 0;
  uint64_t bytes_sent = 0;
  std::map<NodeId, uint64_t> delivered_per_node;
};

/// Verdict of the fault filter for one outbound message. The filter runs
/// after the config-level loss model, so injected faults compose with
/// background packet loss.
struct FaultDecision {
  bool drop = false;           ///< Lose the message entirely.
  uint32_t duplicates = 0;     ///< Extra copies to enqueue.
  uint64_t extra_delay_us = 0; ///< Added to the sampled latency.
};

/// Deterministic in-process P2P message bus.
///
/// The miners' P2P network "conceptually replaces the traditional
/// centralized server in FL" (Sect. III). This simulator delivers
/// messages in (deliver_time, seq) order with seedable random latency
/// and optional loss, driven by a simulated clock — so every consensus
/// run is exactly reproducible, and the chain-throughput benchmarks can
/// vary latency/loss without wall-clock noise. A fault filter installed
/// by the chaos harness (src/fault) can additionally drop, duplicate or
/// delay individual messages.
class SimulatedNetwork {
 public:
  using Handler = std::function<void(const Message&)>;
  using FaultFilter = std::function<FaultDecision(const Message&)>;

  explicit SimulatedNetwork(NetworkConfig config = {});

  /// Registers a node; its handler runs at message delivery. Handlers may
  /// send further messages (delivered in the same DeliverAll drain).
  Status RegisterNode(NodeId id, Handler handler);

  bool HasNode(NodeId id) const { return handlers_.count(id) > 0; }
  std::vector<NodeId> node_ids() const;

  /// Queues a unicast message. Unknown destinations are an error.
  Status Send(NodeId from, NodeId to, Bytes payload);

  /// Queues the payload to every node except the sender. Per-destination
  /// drop decisions come from independently seeded streams, so loss
  /// patterns do not correlate with roster iteration order.
  Status Broadcast(NodeId from, const Bytes& payload);

  /// Delivers all queued messages (including ones sent by handlers during
  /// the drain) in timestamp order; advances the simulated clock to the
  /// last delivery. Returns the number delivered.
  size_t DeliverAll();

  /// Installs (or clears, with nullptr) the per-message fault filter.
  void set_fault_filter(FaultFilter filter) {
    fault_filter_ = std::move(filter);
  }

  /// Advances the simulated clock without traffic — timeouts and retry
  /// backoff burn simulated, never wall-clock, time.
  void AdvanceClock(uint64_t delta_us) { clock_.AdvanceMicros(delta_us); }

  const NetworkStats& stats() const { return stats_; }
  const SimClock& clock() const { return clock_; }

  /// Everything that makes future deliveries bit-identical: the latency
  /// RNG, the per-pair loss streams, the message sequence counter and the
  /// simulated clock. Captured at a round boundary (empty queue) by the
  /// session checkpoint and restored on `--resume`; the stats counters
  /// are diagnostic and deliberately not part of it.
  struct ResumeState {
    Xoshiro256::State rng;
    uint64_t next_seq = 0;
    uint64_t clock_us = 0;
    /// (from, to, SplitMix64 state) of every lazily-created loss stream.
    std::vector<std::tuple<NodeId, NodeId, uint64_t>> drop_streams;
  };
  ResumeState SaveResumeState() const;
  /// Fails with FailedPrecondition while messages are in flight — resume
  /// state is only meaningful at a quiescent round boundary.
  Status RestoreResumeState(const ResumeState& state);

 private:
  uint64_t SampleLatency();
  /// Per-(from, to) loss stream, lazily seeded from the config seed and
  /// the pair — independent of every other pair's stream.
  bool SampleDrop(NodeId from, NodeId to);
  void Enqueue(Message msg);

  struct Ordering {
    bool operator()(const Message& a, const Message& b) const {
      if (a.deliver_at_us != b.deliver_at_us) {
        return a.deliver_at_us > b.deliver_at_us;  // min-heap.
      }
      return a.seq > b.seq;
    }
  };

  NetworkConfig config_;
  Xoshiro256 rng_;
  SimClock clock_;
  std::map<NodeId, Handler> handlers_;
  std::map<std::pair<NodeId, NodeId>, SplitMix64> drop_rngs_;
  std::priority_queue<Message, std::vector<Message>, Ordering> queue_;
  NetworkStats stats_;
  FaultFilter fault_filter_;
  /// Highest seq delivered per node, for reorder detection.
  std::map<NodeId, uint64_t> last_delivered_seq_;
  uint64_t next_seq_ = 0;
};

}  // namespace bcfl::net
