#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace bcfl::net {

/// Node identifier on the simulated P2P network.
using NodeId = uint32_t;

/// A message in flight.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  Bytes payload;
  uint64_t deliver_at_us = 0;
  uint64_t seq = 0;  ///< Tie-breaker for deterministic ordering.
};

/// Latency / loss model of the simulated network.
struct NetworkConfig {
  uint64_t min_latency_us = 500;
  uint64_t max_latency_us = 5000;
  double drop_probability = 0.0;
  uint64_t seed = 99;
};

/// Statistics accumulated by the network.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
};

/// Deterministic in-process P2P message bus.
///
/// The miners' P2P network "conceptually replaces the traditional
/// centralized server in FL" (Sect. III). This simulator delivers
/// messages in (deliver_time, seq) order with seedable random latency
/// and optional loss, driven by a simulated clock — so every consensus
/// run is exactly reproducible, and the chain-throughput benchmarks can
/// vary latency/loss without wall-clock noise.
class SimulatedNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  explicit SimulatedNetwork(NetworkConfig config = {});

  /// Registers a node; its handler runs at message delivery. Handlers may
  /// send further messages (delivered in the same DeliverAll drain).
  Status RegisterNode(NodeId id, Handler handler);

  bool HasNode(NodeId id) const { return handlers_.count(id) > 0; }
  std::vector<NodeId> node_ids() const;

  /// Queues a unicast message. Unknown destinations are an error.
  Status Send(NodeId from, NodeId to, Bytes payload);

  /// Queues the payload to every node except the sender.
  Status Broadcast(NodeId from, const Bytes& payload);

  /// Delivers all queued messages (including ones sent by handlers during
  /// the drain) in timestamp order; advances the simulated clock to the
  /// last delivery. Returns the number delivered.
  size_t DeliverAll();

  const NetworkStats& stats() const { return stats_; }
  const SimClock& clock() const { return clock_; }

 private:
  uint64_t SampleLatency();

  struct Ordering {
    bool operator()(const Message& a, const Message& b) const {
      if (a.deliver_at_us != b.deliver_at_us) {
        return a.deliver_at_us > b.deliver_at_us;  // min-heap.
      }
      return a.seq > b.seq;
    }
  };

  NetworkConfig config_;
  Xoshiro256 rng_;
  SimClock clock_;
  std::map<NodeId, Handler> handlers_;
  std::priority_queue<Message, std::vector<Message>, Ordering> queue_;
  NetworkStats stats_;
  uint64_t next_seq_ = 0;
};

}  // namespace bcfl::net
