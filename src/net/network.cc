#include "net/network.h"

namespace bcfl::net {

SimulatedNetwork::SimulatedNetwork(NetworkConfig config)
    : config_(config), rng_(config.seed) {}

Status SimulatedNetwork::RegisterNode(NodeId id, Handler handler) {
  if (handlers_.count(id) > 0) {
    return Status::AlreadyExists("node already registered: " +
                                 std::to_string(id));
  }
  if (!handler) {
    return Status::InvalidArgument("null handler");
  }
  handlers_[id] = std::move(handler);
  return Status::OK();
}

std::vector<NodeId> SimulatedNetwork::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(handlers_.size());
  for (const auto& [id, _] : handlers_) ids.push_back(id);
  return ids;
}

uint64_t SimulatedNetwork::SampleLatency() {
  if (config_.max_latency_us <= config_.min_latency_us) {
    return config_.min_latency_us;
  }
  uint64_t span = config_.max_latency_us - config_.min_latency_us;
  return config_.min_latency_us + rng_.NextBounded(span + 1);
}

bool SimulatedNetwork::SampleDrop(NodeId from, NodeId to) {
  if (config_.drop_probability <= 0.0) return false;
  auto key = std::make_pair(from, to);
  auto it = drop_rngs_.find(key);
  if (it == drop_rngs_.end()) {
    // Golden-ratio mixing of the pair keeps nearby (from, to) seeds far
    // apart before SplitMix64 scrambles them further.
    uint64_t pair_seed = config_.seed ^
                         (static_cast<uint64_t>(from) * 0x9E3779B97F4A7C15ULL) ^
                         (static_cast<uint64_t>(to) * 0xC2B2AE3D27D4EB4FULL);
    it = drop_rngs_.emplace(key, SplitMix64(pair_seed)).first;
  }
  return it->second.NextDouble() < config_.drop_probability;
}

void SimulatedNetwork::Enqueue(Message msg) {
  msg.seq = next_seq_++;
  queue_.push(std::move(msg));
}

Status SimulatedNetwork::Send(NodeId from, NodeId to, Bytes payload) {
  if (handlers_.count(to) == 0) {
    return Status::NotFound("unknown destination node: " + std::to_string(to));
  }
  stats_.messages_sent++;
  stats_.bytes_sent += payload.size();
  if (SampleDrop(from, to)) {
    stats_.messages_dropped++;
    return Status::OK();  // Silently lost, like a real datagram.
  }
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = std::move(payload);
  msg.deliver_at_us = clock_.NowMicros() + SampleLatency();

  FaultDecision decision;
  if (fault_filter_) decision = fault_filter_(msg);
  if (decision.drop) {
    stats_.messages_dropped++;
    return Status::OK();
  }
  msg.deliver_at_us += decision.extra_delay_us;
  for (uint32_t copy = 0; copy < decision.duplicates; ++copy) {
    Message dup = msg;
    dup.deliver_at_us =
        clock_.NowMicros() + SampleLatency() + decision.extra_delay_us;
    stats_.messages_duplicated++;
    Enqueue(std::move(dup));
  }
  Enqueue(std::move(msg));
  return Status::OK();
}

Status SimulatedNetwork::Broadcast(NodeId from, const Bytes& payload) {
  for (const auto& [id, _] : handlers_) {
    if (id == from) continue;
    BCFL_RETURN_IF_ERROR(Send(from, id, payload));
  }
  return Status::OK();
}

SimulatedNetwork::ResumeState SimulatedNetwork::SaveResumeState() const {
  ResumeState state;
  state.rng = rng_.SaveState();
  state.next_seq = next_seq_;
  state.clock_us = clock_.NowMicros();
  state.drop_streams.reserve(drop_rngs_.size());
  for (const auto& [pair, stream] : drop_rngs_) {
    state.drop_streams.emplace_back(pair.first, pair.second,
                                    stream.SaveState());
  }
  return state;
}

Status SimulatedNetwork::RestoreResumeState(const ResumeState& state) {
  if (!queue_.empty()) {
    return Status::FailedPrecondition(
        "cannot restore network state with messages in flight");
  }
  rng_.RestoreState(state.rng);
  next_seq_ = state.next_seq;
  // The replayed setup consumed strictly less simulated time than the
  // checkpointed session, so AdvanceTo (never backwards) is safe.
  clock_.AdvanceTo(state.clock_us);
  drop_rngs_.clear();
  for (const auto& [from, to, stream_state] : state.drop_streams) {
    SplitMix64 stream(0);
    stream.RestoreState(stream_state);
    drop_rngs_.emplace(std::make_pair(from, to), stream);
  }
  return Status::OK();
}

size_t SimulatedNetwork::DeliverAll() {
  size_t delivered = 0;
  while (!queue_.empty()) {
    Message msg = queue_.top();
    queue_.pop();
    clock_.AdvanceTo(msg.deliver_at_us);
    auto it = handlers_.find(msg.to);
    if (it != handlers_.end()) {
      auto [seq_it, first] = last_delivered_seq_.emplace(msg.to, msg.seq);
      if (!first) {
        if (msg.seq < seq_it->second) {
          stats_.messages_reordered++;
        } else {
          seq_it->second = msg.seq;
        }
      }
      it->second(msg);
      ++delivered;
      stats_.messages_delivered++;
      stats_.delivered_per_node[msg.to]++;
    }
  }
  return delivered;
}

}  // namespace bcfl::net
