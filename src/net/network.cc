#include "net/network.h"

namespace bcfl::net {

SimulatedNetwork::SimulatedNetwork(NetworkConfig config)
    : config_(config), rng_(config.seed) {}

Status SimulatedNetwork::RegisterNode(NodeId id, Handler handler) {
  if (handlers_.count(id) > 0) {
    return Status::AlreadyExists("node already registered: " +
                                 std::to_string(id));
  }
  if (!handler) {
    return Status::InvalidArgument("null handler");
  }
  handlers_[id] = std::move(handler);
  return Status::OK();
}

std::vector<NodeId> SimulatedNetwork::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(handlers_.size());
  for (const auto& [id, _] : handlers_) ids.push_back(id);
  return ids;
}

uint64_t SimulatedNetwork::SampleLatency() {
  if (config_.max_latency_us <= config_.min_latency_us) {
    return config_.min_latency_us;
  }
  uint64_t span = config_.max_latency_us - config_.min_latency_us;
  return config_.min_latency_us + rng_.NextBounded(span + 1);
}

Status SimulatedNetwork::Send(NodeId from, NodeId to, Bytes payload) {
  if (handlers_.count(to) == 0) {
    return Status::NotFound("unknown destination node: " + std::to_string(to));
  }
  stats_.messages_sent++;
  stats_.bytes_sent += payload.size();
  if (config_.drop_probability > 0.0 &&
      rng_.NextDouble() < config_.drop_probability) {
    stats_.messages_dropped++;
    return Status::OK();  // Silently lost, like a real datagram.
  }
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = std::move(payload);
  msg.deliver_at_us = clock_.NowMicros() + SampleLatency();
  msg.seq = next_seq_++;
  queue_.push(std::move(msg));
  return Status::OK();
}

Status SimulatedNetwork::Broadcast(NodeId from, const Bytes& payload) {
  for (const auto& [id, _] : handlers_) {
    if (id == from) continue;
    BCFL_RETURN_IF_ERROR(Send(from, id, payload));
  }
  return Status::OK();
}

size_t SimulatedNetwork::DeliverAll() {
  size_t delivered = 0;
  while (!queue_.empty()) {
    Message msg = queue_.top();
    queue_.pop();
    clock_.AdvanceTo(msg.deliver_at_us);
    auto it = handlers_.find(msg.to);
    if (it != handlers_.end()) {
      it->second(msg);
      ++delivered;
      stats_.messages_delivered++;
    }
  }
  return delivered;
}

}  // namespace bcfl::net
