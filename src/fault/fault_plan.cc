#include "fault/fault_plan.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace bcfl::fault {

namespace {

const char* KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kDropSubmit: return "drop-submit";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kBadShare: return "bad-share";
    case FaultKind::kInconsistentMask: return "inconsistent-mask";
    case FaultKind::kEquivocateSubmit: return "equivocate-submit";
    case FaultKind::kPoisonUpdate: return "poison-update";
    case FaultKind::kKill: return "kill";
  }
  return "?";
}

bool IsByzantine(FaultKind kind) {
  return kind == FaultKind::kBadShare || kind == FaultKind::kInconsistentMask ||
         kind == FaultKind::kEquivocateSubmit ||
         kind == FaultKind::kPoisonUpdate;
}

/// Shortest decimal that round-trips through ParseMagnitude, e.g. "50",
/// "1.5" — std::to_string's fixed six decimals would not re-parse cleanly.
std::string MagnitudeString(double magnitude) {
  std::ostringstream out;
  out << magnitude;
  return out.str();
}

Result<double> ParseMagnitude(const std::string& token) {
  bool dot = false;
  bool digit = false;
  for (char c : token) {
    if (c == '.') {
      if (dot) return Status::InvalidArgument("bad magnitude: '" + token + "'");
      dot = true;
    } else if (c >= '0' && c <= '9') {
      digit = true;
    } else {
      return Status::InvalidArgument("bad magnitude: '" + token + "'");
    }
  }
  if (!digit) {
    return Status::InvalidArgument("bad magnitude: '" + token + "'");
  }
  return std::stod(token);
}

std::string RangeString(uint64_t round, uint64_t end_round) {
  std::string out = "@" + std::to_string(round);
  if (end_round > round) out += ".." + std::to_string(end_round);
  return out;
}

Result<uint64_t> ParseNumber(const std::string& token, const char* what) {
  if (token.empty() ||
      !std::all_of(token.begin(), token.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    return Status::InvalidArgument(std::string("bad ") + what + ": '" +
                                   token + "'");
  }
  try {
    return static_cast<uint64_t>(std::stoull(token));
  } catch (const std::out_of_range&) {
    return Status::InvalidArgument(std::string("out-of-range ") + what +
                                   ": '" + token + "'");
  }
}

}  // namespace

std::vector<const FaultEvent*> EventsByRound(
    const std::vector<FaultEvent>& events) {
  std::vector<const FaultEvent*> ordered;
  ordered.reserve(events.size());
  for (const FaultEvent& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     return a->round < b->round;
                   });
  return ordered;
}

std::string FaultEvent::ToString() const {
  if (kind == FaultKind::kKill) {
    // Kills target the coordinator process itself, so there is no node.
    return "kill " + RangeString(round, end_round);
  }
  std::string out = KindName(kind);
  out += ' ';
  if (kind == FaultKind::kPartition) {
    out += "miners ";
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(members[i]);
    }
  } else {
    out += node_kind == NodeKind::kOwner ? "owner " : "miner ";
    out += std::to_string(node);
  }
  out += ' ' + RangeString(round, end_round);
  if (kind == FaultKind::kDropSubmit && count != 1) {
    out += " x" + std::to_string(count);
  }
  if (kind == FaultKind::kSlow) {
    out += " +" + std::to_string(delay_us) + "us";
  }
  if (kind == FaultKind::kPoisonUpdate) {
    out += " *" + MagnitudeString(magnitude);
  }
  return out;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const auto& event : events) {
    if (!out.empty()) out += '\n';
    out += event.ToString();
  }
  return out;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::string normalized = spec;
  std::replace(normalized.begin(), normalized.end(), ';', '\n');
  std::istringstream lines(normalized);
  std::string line;
  while (std::getline(lines, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::vector<std::string> parts;
    std::string token;
    while (tokens >> token) parts.push_back(token);
    if (parts.empty()) continue;
    if (parts[0] == "kill") {
      // `kill @<round>` — no target node; the coordinator process dies.
      if (parts.size() != 2 || parts[1].empty() || parts[1][0] != '@') {
        return Status::InvalidArgument("kill wants 'kill @<round>': '" + line +
                                       "'");
      }
      FaultEvent event;
      event.kind = FaultKind::kKill;
      BCFL_ASSIGN_OR_RETURN(event.round,
                            ParseNumber(parts[1].substr(1), "round"));
      event.end_round = event.round;
      plan.events.push_back(std::move(event));
      continue;
    }
    if (parts.size() < 3) {
      return Status::InvalidArgument("incomplete fault event: '" + line + "'");
    }

    FaultEvent event;
    const std::string& kind = parts[0];
    if (kind == "crash") event.kind = FaultKind::kCrash;
    else if (kind == "recover") event.kind = FaultKind::kRecover;
    else if (kind == "slow") event.kind = FaultKind::kSlow;
    else if (kind == "drop-submit") event.kind = FaultKind::kDropSubmit;
    else if (kind == "duplicate") event.kind = FaultKind::kDuplicate;
    else if (kind == "reorder") event.kind = FaultKind::kReorder;
    else if (kind == "partition") event.kind = FaultKind::kPartition;
    else if (kind == "bad-share") event.kind = FaultKind::kBadShare;
    else if (kind == "inconsistent-mask")
      event.kind = FaultKind::kInconsistentMask;
    else if (kind == "equivocate-submit")
      event.kind = FaultKind::kEquivocateSubmit;
    else if (kind == "poison-update") event.kind = FaultKind::kPoisonUpdate;
    else return Status::InvalidArgument("unknown fault kind: '" + kind + "'");

    size_t next = 2;
    if (event.kind == FaultKind::kPartition) {
      if (parts[1] != "miners") {
        return Status::InvalidArgument("partition targets 'miners': '" + line +
                                       "'");
      }
      std::istringstream ids(parts[2]);
      std::string id;
      while (std::getline(ids, id, ',')) {
        BCFL_ASSIGN_OR_RETURN(uint64_t value, ParseNumber(id, "miner id"));
        event.members.push_back(static_cast<uint32_t>(value));
      }
      if (event.members.empty()) {
        return Status::InvalidArgument("empty partition cell: '" + line + "'");
      }
      event.node_kind = NodeKind::kMiner;
      next = 3;
    } else {
      if (parts[1] == "owner") event.node_kind = NodeKind::kOwner;
      else if (parts[1] == "miner") event.node_kind = NodeKind::kMiner;
      else return Status::InvalidArgument("target must be owner or miner: '" +
                                          line + "'");
      BCFL_ASSIGN_OR_RETURN(uint64_t id, ParseNumber(parts[2], "node id"));
      event.node = static_cast<uint32_t>(id);
      next = 3;
    }

    if (next >= parts.size() || parts[next][0] != '@') {
      return Status::InvalidArgument("missing @round: '" + line + "'");
    }
    std::string range = parts[next].substr(1);
    size_t dots = range.find("..");
    if (dots == std::string::npos) {
      BCFL_ASSIGN_OR_RETURN(event.round, ParseNumber(range, "round"));
      event.end_round = event.round;
    } else {
      BCFL_ASSIGN_OR_RETURN(event.round,
                            ParseNumber(range.substr(0, dots), "round"));
      BCFL_ASSIGN_OR_RETURN(event.end_round,
                            ParseNumber(range.substr(dots + 2), "end round"));
      if (event.end_round < event.round) {
        return Status::InvalidArgument("inverted round range: '" + line + "'");
      }
    }

    for (++next; next < parts.size(); ++next) {
      const std::string& extra = parts[next];
      if (extra[0] == 'x') {
        BCFL_ASSIGN_OR_RETURN(uint64_t count,
                              ParseNumber(extra.substr(1), "drop count"));
        event.count = static_cast<uint32_t>(count);
      } else if (extra[0] == '+') {
        std::string value = extra.substr(1);
        if (value.size() >= 2 && value.substr(value.size() - 2) == "us") {
          value.erase(value.size() - 2);
        }
        BCFL_ASSIGN_OR_RETURN(event.delay_us, ParseNumber(value, "delay"));
      } else if (extra[0] == '*') {
        BCFL_ASSIGN_OR_RETURN(event.magnitude,
                              ParseMagnitude(extra.substr(1)));
      } else {
        return Status::InvalidArgument("unexpected token '" + extra +
                                       "' in: '" + line + "'");
      }
    }
    if (event.kind == FaultKind::kPoisonUpdate && event.magnitude == 0.0) {
      return Status::InvalidArgument("poison-update needs *<magnitude>: '" +
                                     line + "'");
    }
    plan.events.push_back(std::move(event));
  }
  return plan;
}

FaultPlan FaultPlan::Random(uint64_t seed, const FaultPlanOptions& options) {
  FaultPlan plan;
  Xoshiro256 rng(seed);
  const uint32_t n = options.num_owners;
  const uint32_t m = options.num_miners;
  const uint32_t rounds = std::max<uint32_t>(options.rounds, 1);
  const size_t threshold =
      options.shamir_threshold != 0 ? options.shamir_threshold : n / 2 + 1;
  auto random_round = [&]() -> uint64_t { return rng.NextBounded(rounds); };
  auto random_window = [&](FaultEvent* event) {
    event->round = random_round();
    event->end_round =
        event->round + rng.NextBounded(rounds - event->round);
  };

  // Owner crashes: spend at most the recovery budget (n - threshold), so
  // at least `threshold` share-holders stay online for every reveal.
  const size_t owner_budget = n > threshold ? n - threshold : 0;
  std::vector<uint32_t> owners(n);
  for (uint32_t i = 0; i < n; ++i) owners[i] = i;
  rng.Shuffle(&owners);
  size_t owner_crashes = 0;
  std::vector<bool> slot_crashed(owner_budget, false);
  for (size_t i = 0; i < owner_budget; ++i) {
    if (rng.NextDouble() >= options.owner_crash_rate) continue;
    FaultEvent crash;
    crash.kind = FaultKind::kCrash;
    crash.node_kind = NodeKind::kOwner;
    crash.node = owners[i];
    crash.round = crash.end_round = random_round();
    plan.events.push_back(crash);
    slot_crashed[i] = true;
    ++owner_crashes;
  }

  // Miner disruptions: crashes and at most one partition window share a
  // token budget that keeps a strict majority online and connected.
  size_t miner_tokens = m > 0 ? (m - 1) / 2 : 0;
  std::vector<uint32_t> miners(m);
  for (uint32_t i = 0; i < m; ++i) miners[i] = i;
  rng.Shuffle(&miners);
  size_t next_miner = 0;
  if (miner_tokens > 0 && rng.NextDouble() < options.partition_rate) {
    FaultEvent partition;
    partition.kind = FaultKind::kPartition;
    partition.node_kind = NodeKind::kMiner;
    size_t cell = 1 + rng.NextBounded(miner_tokens);
    for (size_t i = 0; i < cell; ++i) {
      partition.members.push_back(miners[next_miner++]);
    }
    random_window(&partition);
    plan.events.push_back(partition);
    miner_tokens -= cell;
  }
  for (size_t t = 0; t < miner_tokens; ++t) {
    if (rng.NextDouble() >= options.miner_crash_rate) continue;
    FaultEvent crash;
    crash.kind = FaultKind::kCrash;
    crash.node_kind = NodeKind::kMiner;
    crash.node = miners[next_miner++];
    crash.round = crash.end_round = rng.NextBounded(rounds);
    plan.events.push_back(crash);
    if (crash.round + 1 < rounds && rng.NextDouble() < 0.7) {
      FaultEvent recover;
      recover.kind = FaultKind::kRecover;
      recover.node_kind = NodeKind::kMiner;
      recover.node = crash.node;
      recover.round = recover.end_round =
          crash.round + 1 + rng.NextBounded(rounds - crash.round - 1);
      plan.events.push_back(recover);
    }
  }

  // Liveness-neutral noise: slow nodes, lost submission attempts,
  // duplicated and reordered miner traffic.
  for (uint32_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < options.slow_rate) {
      FaultEvent slow;
      slow.kind = FaultKind::kSlow;
      slow.node_kind = NodeKind::kOwner;
      slow.node = i;
      random_window(&slow);
      slow.delay_us = 1 + rng.NextBounded(options.max_extra_delay_us);
      plan.events.push_back(slow);
    }
    if (rng.NextDouble() < options.drop_submit_rate) {
      FaultEvent drop;
      drop.kind = FaultKind::kDropSubmit;
      drop.node_kind = NodeKind::kOwner;
      drop.node = i;
      drop.round = drop.end_round = random_round();
      drop.count = 1 + static_cast<uint32_t>(rng.NextBounded(2));
      plan.events.push_back(drop);
    }
  }
  for (uint32_t i = 0; i < m; ++i) {
    if (rng.NextDouble() < options.slow_rate) {
      FaultEvent slow;
      slow.kind = FaultKind::kSlow;
      slow.node_kind = NodeKind::kMiner;
      slow.node = i;
      random_window(&slow);
      slow.delay_us = 1 + rng.NextBounded(options.max_extra_delay_us);
      plan.events.push_back(slow);
    }
    if (rng.NextDouble() < options.duplicate_rate) {
      FaultEvent dup;
      dup.kind = FaultKind::kDuplicate;
      dup.node_kind = NodeKind::kMiner;
      dup.node = i;
      random_window(&dup);
      plan.events.push_back(dup);
    }
    if (rng.NextDouble() < options.reorder_rate) {
      FaultEvent reorder;
      reorder.kind = FaultKind::kReorder;
      reorder.node_kind = NodeKind::kMiner;
      reorder.node = i;
      random_window(&reorder);
      plan.events.push_back(reorder);
    }
  }
  // Byzantine owners (PR 9), drawn strictly after every crash/noise draw
  // so plans from pre-existing seeds replay bit-identically (the extra
  // draws only happen when the rate is enabled, and then only at the tail
  // of the stream). Byzantine owners come from the unused slots of the
  // shuffled crash budget: a misbehaving owner is slashed and permanently
  // retired, so |crashed ∪ byzantine| never exceeds the recovery budget
  // and every reveal keeps its threshold of honest holders.
  if (options.byzantine_rate > 0.0) {
    for (size_t i = 0; i < owner_budget; ++i) {
      if (slot_crashed[i]) continue;
      if (rng.NextDouble() >= options.byzantine_rate) continue;
      FaultEvent evil;
      evil.node_kind = NodeKind::kOwner;
      evil.node = owners[i];
      evil.round = evil.end_round = random_round();
      switch (rng.NextBounded(4)) {
        case 0:
          // Forged reveals only fire when some other owner needs recovery
          // that round; otherwise the event is a harmless no-op.
          evil.kind = FaultKind::kBadShare;
          break;
        case 1: evil.kind = FaultKind::kEquivocateSubmit; break;
        case 2:
          evil.kind = FaultKind::kPoisonUpdate;
          evil.magnitude = options.poison_magnitude;
          break;
        default: evil.kind = FaultKind::kInconsistentMask; break;
      }
      plan.events.push_back(evil);
    }
  }
  (void)owner_crashes;
  return plan;
}

Status FaultPlan::Validate(uint32_t num_owners, uint32_t num_miners,
                           size_t shamir_threshold) const {
  const size_t threshold =
      shamir_threshold != 0 ? shamir_threshold : num_owners / 2 + 1;
  uint64_t horizon = 0;
  std::set<uint32_t> unavailable_owners;
  for (const auto& event : events) {
    horizon = std::max(horizon, event.end_round);
    if (event.end_round < event.round) {
      return Status::InvalidArgument("inverted interval: " + event.ToString());
    }
    if (event.kind == FaultKind::kKill) {
      // Kills never cost liveness: the process restarts and resumes.
      continue;
    }
    if (event.kind == FaultKind::kPartition) {
      for (uint32_t id : event.members) {
        if (id >= num_miners) {
          return Status::OutOfRange("partition names unknown miner " +
                                    std::to_string(id));
        }
      }
      continue;
    }
    const uint32_t limit =
        event.node_kind == NodeKind::kOwner ? num_owners : num_miners;
    if (event.node >= limit) {
      return Status::OutOfRange("fault targets unknown node: " +
                                event.ToString());
    }
    if (event.kind == FaultKind::kDropSubmit &&
        event.node_kind != NodeKind::kOwner) {
      return Status::InvalidArgument("drop-submit targets owners only");
    }
    if ((event.kind == FaultKind::kDuplicate ||
         event.kind == FaultKind::kReorder) &&
        event.node_kind != NodeKind::kMiner) {
      return Status::InvalidArgument(std::string(KindName(event.kind)) +
                                     " targets miners only");
    }
    if (IsByzantine(event.kind)) {
      if (event.node_kind != NodeKind::kOwner) {
        return Status::InvalidArgument(std::string(KindName(event.kind)) +
                                       " targets owners only");
      }
      if (event.kind == FaultKind::kPoisonUpdate && event.magnitude <= 1.0) {
        return Status::InvalidArgument(
            "poison-update needs a magnitude > 1: " + event.ToString());
      }
    }
    if ((event.kind == FaultKind::kCrash || IsByzantine(event.kind)) &&
        event.node_kind == NodeKind::kOwner) {
      unavailable_owners.insert(event.node);
    }
  }
  // An owner that misses a round deadline is retired for good, and so is
  // a slashed byzantine owner — both permanently stop answering reveals.
  // The *union* of distinct crashed and byzantine owners is therefore the
  // right budget regardless of recover events.
  if (unavailable_owners.size() + threshold > num_owners) {
    return Status::FailedPrecondition(
        "plan crashes or corrupts " + std::to_string(unavailable_owners.size()) +
        " owners but only " + std::to_string(num_owners - threshold) +
        " may drop before Shamir recovery (t=" + std::to_string(threshold) +
        ") fails closed");
  }

  // Per-round miner liveness: online miners in the majority connectivity
  // cell must stay a strict majority of the full roster. Crash/recover
  // replay must walk events in round order — the plan may list them in
  // any order — so the latest event at or before the round decides.
  const std::vector<const FaultEvent*> ordered = EventsByRound(events);
  for (uint64_t round = 0; round <= horizon; ++round) {
    std::set<uint32_t> offline;
    for (const FaultEvent* event : ordered) {
      if (event->node_kind != NodeKind::kMiner) continue;
      if (event->kind == FaultKind::kCrash && event->round <= round) {
        offline.insert(event->node);
      }
      if (event->kind == FaultKind::kRecover && event->round <= round) {
        offline.erase(event->node);
      }
    }
    std::set<uint32_t> minority;
    for (const auto& event : events) {
      if (event.kind != FaultKind::kPartition) continue;
      if (event.round <= round && round <= event.end_round) {
        minority.insert(event.members.begin(), event.members.end());
      }
    }
    size_t connected_online = 0;
    for (uint32_t id = 0; id < num_miners; ++id) {
      if (offline.count(id) == 0 && minority.count(id) == 0) {
        ++connected_online;
      }
    }
    if (connected_online * 2 <= num_miners) {
      return Status::FailedPrecondition(
          "round " + std::to_string(round) + " leaves only " +
          std::to_string(connected_online) + "/" +
          std::to_string(num_miners) +
          " miners online and connected; consensus would stall");
    }
  }
  return Status::OK();
}

}  // namespace bcfl::fault
